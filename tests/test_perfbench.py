"""Tests for the perf benchmark suite: schema, comparison, identity guard.

The timing numbers themselves are machine-dependent and not asserted;
what these tests pin down is the *contract* — result schema, JSON suite
documents, baseline comparison math, and the Figure 1 byte-identity
guard's ability to detect drift.
"""

import json

import pytest

from repro.perfbench.e2e import (
    FIG1_BASELINE,
    IdentityDrift,
    fig1_identity_check,
)
from repro.perfbench.kernel import KERNEL_BENCHMARKS, run_kernel_suite
from repro.perfbench.report import (
    BenchResult,
    compare_suites,
    load_suite,
    render_comparison,
    suite_document,
    write_suite,
)


class TestKernelSuite:
    def test_quick_suite_schema(self):
        results = run_kernel_suite(quick=True)
        assert [r.name for r in results] == list(KERNEL_BENCHMARKS)
        for result in results:
            assert result.wall_s > 0
            assert result.events > 0, f"{result.name} reported no events"
            assert result.events_per_sec > 0
            assert result.extras["procs"] > 0
            assert result.extras["rounds"] > 0

    def test_benchmarks_are_deterministic_in_events(self):
        # The event count is a property of the workload, not the clock:
        # two runs of the same shape process identical event totals.
        first = {r.name: r.events for r in run_kernel_suite(quick=True)}
        second = {r.name: r.events for r in run_kernel_suite(quick=True)}
        assert first == second


class TestReportSchema:
    def test_result_json_roundtrip(self):
        result = BenchResult(name="demo", wall_s=0.5, events=1000,
                             repeats=3, peak_rss_kb=4096,
                             extras={"procs": 8.0})
        doc = result.to_json()
        assert doc["name"] == "demo"
        assert doc["events_per_sec"] == 2000.0
        assert doc["procs"] == 8.0
        json.dumps(doc)  # must be JSON-serializable as-is

    def test_suite_document_and_file_roundtrip(self, tmp_path):
        results = [BenchResult(name="a", wall_s=0.1, events=10)]
        document = suite_document("kernel", results, quick=True)
        assert document["suite"] == "kernel"
        assert document["quick"] is True
        assert len(document["benchmarks"]) == 1
        path = tmp_path / "BENCH_kernel.json"
        write_suite(str(path), document)
        assert load_suite(str(path)) == document

    def test_compare_suites_speedup_math(self):
        baseline = {"benchmarks": [
            {"name": "a", "wall_s": 1.0, "events_per_sec": 100.0},
            {"name": "only_in_baseline", "wall_s": 9.0},
        ]}
        current = {"benchmarks": [
            {"name": "a", "wall_s": 0.5, "events_per_sec": 200.0},
            {"name": "only_in_current", "wall_s": 1.0},
        ]}
        rows = compare_suites(baseline, current)
        assert len(rows) == 1
        assert rows[0]["name"] == "a"
        assert rows[0]["wall_speedup"] == pytest.approx(2.0)
        assert rows[0]["events_per_sec_ratio"] == pytest.approx(2.0)

    def test_render_comparison(self):
        rows = compare_suites(
            {"benchmarks": [{"name": "a", "wall_s": 1.0}]},
            {"benchmarks": [{"name": "a", "wall_s": 0.5}]})
        text = render_comparison(rows)
        assert "a" in text and "2.00x" in text
        assert render_comparison([]) == "no overlapping benchmarks to compare"


class TestIdentityGuard:
    def test_baseline_file_exists_with_crlf(self):
        data = FIG1_BASELINE.read_bytes()
        assert b"\r\n" in data
        header = data.split(b"\r\n", 1)[0]
        assert header.split(b",")[:4] == [b"figure", b"task", b"arch",
                                          b"disks"]

    @staticmethod
    def _stub_regeneration(monkeypatch):
        # Replace the (expensive) sweep with a canned reproduction of
        # the baseline's 16-disk subset, so the comparison logic can be
        # exercised in milliseconds.
        import repro.experiments as experiments
        from repro.perfbench import e2e

        lines = e2e._baseline_lines()
        subset = [lines[0]] + [
            line for line in lines[1:]
            if line and line.split(b",")[3] == b"16"] + [b""]
        canned = b"\r\n".join(subset).decode()
        monkeypatch.setattr(experiments, "run_fig1",
                            lambda sizes, scale: None)
        monkeypatch.setattr(experiments, "fig1_rows", lambda result: None)
        monkeypatch.setattr(experiments, "rows_to_csv", lambda rows: canned)
        return lines

    def test_matching_output_passes(self, monkeypatch):
        self._stub_regeneration(monkeypatch)
        report = fig1_identity_check(quick=True)
        assert report["identical"] is True
        assert report["cells"] == 24

    def test_drift_detection(self, monkeypatch):
        # Tamper with one baseline digit (in the elapsed column, past
        # everything the guard parses): the guard must raise, proving it
        # compares content rather than just running.
        from repro.perfbench import e2e

        lines = self._stub_regeneration(monkeypatch)
        tampered = list(lines)
        fields = tampered[1].split(b",")
        fields[-1] = fields[-1] + b"1"
        tampered[1] = b",".join(fields)
        monkeypatch.setattr(e2e, "_baseline_lines", lambda: tampered)
        with pytest.raises(IdentityDrift, match="drifted"):
            fig1_identity_check(quick=True)

    def test_quick_identity_holds(self):
        # The real thing: regenerate the 16-disk column and byte-compare
        # against results/fig1_arch_comparison.csv.
        report = fig1_identity_check(quick=True)
        assert report["identical"] is True
        assert report["cells"] == 24
