"""Tests for the open-loop arrival process and session mixes."""

import random

import pytest

from repro.traffic.arrivals import SessionSpec, TrafficMix, poisson_sessions
from repro.workloads import registered_tasks
from repro.workloads.skew import zipf_weights

TASKS = registered_tasks()


class TestTrafficMix:
    def test_weights_come_from_zipf(self):
        mix = TrafficMix(4, TASKS, tenant_theta=1.0, task_theta=0.5)
        assert mix.tenant_weights == pytest.approx(zipf_weights(4, 1.0))
        assert mix.task_weights == pytest.approx(
            zipf_weights(len(TASKS), 0.5))

    def test_zipf_tail_mass_is_sane(self):
        """Skewed mixes concentrate on tenant 0 but never starve the tail."""
        weights = TrafficMix(8, TASKS, tenant_theta=1.0).tenant_weights
        assert weights[0] > 2 * weights[-1]   # head dominates
        assert weights[-1] > 0                # tail never starves
        assert sum(weights) == pytest.approx(1.0)
        uniform = TrafficMix(8, TASKS, tenant_theta=0.0).tenant_weights
        assert all(w == pytest.approx(1 / 8) for w in uniform)

    def test_sample_respects_supports(self):
        mix = TrafficMix(3, TASKS[:2])
        rng = random.Random(5)
        for _ in range(500):
            tenant, task = mix.sample(rng)
            assert 0 <= tenant < 3
            assert task in TASKS[:2]

    def test_skewed_sampling_tracks_weights(self):
        mix = TrafficMix(4, TASKS, tenant_theta=1.0)
        rng = random.Random(9)
        counts = [0, 0, 0, 0]
        n = 20000
        for _ in range(n):
            tenant, _ = mix.sample(rng)
            counts[tenant] += 1
        for tenant, weight in enumerate(mix.tenant_weights):
            assert counts[tenant] / n == pytest.approx(weight, abs=0.02)


class TestPoissonSessions:
    def mix(self):
        return TrafficMix(2, TASKS)

    def test_seed_determinism(self):
        first = list(poisson_sessions(5.0, 200, self.mix(), seed=42))
        second = list(poisson_sessions(5.0, 200, self.mix(), seed=42))
        assert first == second
        different = list(poisson_sessions(5.0, 200, self.mix(), seed=43))
        assert first != different

    def test_interarrival_mean_within_tolerance(self):
        rate = 8.0
        sessions = list(poisson_sessions(rate, 5000, self.mix(), seed=1))
        gaps = [b.arrival - a.arrival
                for a, b in zip(sessions, sessions[1:])]
        mean = sum(gaps) / len(gaps)
        assert mean == pytest.approx(1.0 / rate, rel=0.05)
        assert all(gap >= 0 for gap in gaps)

    def test_arrivals_are_monotone_and_indexed(self):
        sessions = list(poisson_sessions(3.0, 100, self.mix(), seed=7))
        assert [s.index for s in sessions] == list(range(100))
        arrivals = [s.arrival for s in sessions]
        assert arrivals == sorted(arrivals)
        assert all(isinstance(s, SessionSpec) for s in sessions)

    def test_stream_is_lazy(self):
        stream = poisson_sessions(1.0, 10**9, self.mix(), seed=0)
        first = next(stream)
        assert first.index == 0   # a billion sessions, no list

    def test_zero_sessions(self):
        assert list(poisson_sessions(1.0, 0, self.mix())) == []
