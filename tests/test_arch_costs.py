"""Tests for the Table 1 cost model."""

import pytest

from repro.arch import (
    PRICE_DATES,
    PRICES,
    active_disk_cost,
    cluster_cost,
    cost_table,
    smp_cost_estimate,
)


class TestTable1:
    def test_published_totals_64_nodes(self):
        """The paper's Table 1 totals (rounded to the nearest $1-2k)."""
        assert active_disk_cost(64, "8/98") == pytest.approx(70_000, rel=0.02)
        assert active_disk_cost(64, "11/98") == pytest.approx(58_000, rel=0.03)
        assert active_disk_cost(64, "7/99") == pytest.approx(50_000, rel=0.03)
        assert cluster_cost(64, "8/98") == pytest.approx(167_000, rel=0.02)
        assert cluster_cost(64, "11/98") == pytest.approx(143_000, rel=0.02)
        # The paper's 7/99 cluster total ($108k) is ~15 % below what its
        # own per-component prices sum to (64 x $1,920 + $4,200 = $127k);
        # we reproduce the component arithmetic, so allow the gap.
        assert cluster_cost(64, "7/99") == pytest.approx(108_000, rel=0.2)

    def test_active_half_of_cluster_at_all_dates(self):
        """"consistently about half that of commodity cluster"."""
        for date, active, cluster, ratio in cost_table(64):
            assert 0.35 < ratio < 0.55

    def test_smp_estimate(self):
        """$1.5 M for the 64-processor Origin with 4 GB."""
        assert smp_cost_estimate(64) == pytest.approx(1_500_000)

    def test_smp_order_of_magnitude_above_active(self):
        assert smp_cost_estimate(64) > 10 * active_disk_cost(64, "7/99")

    def test_prices_decline_over_time(self):
        for kind in (active_disk_cost, cluster_cost):
            costs = [kind(64, date) for date in PRICE_DATES]
            assert costs == sorted(costs, reverse=True)

    def test_scaling_in_node_count(self):
        assert active_disk_cost(128) > 1.9 * active_disk_cost(64) - 10_000

    def test_memory_upgrade_priced(self):
        assert (active_disk_cost(64, memory_mb=64)
                > active_disk_cost(64, memory_mb=32))

    def test_all_dates_have_prices(self):
        assert set(PRICE_DATES) == set(PRICES)
