"""Tests for the DiskOS disklet scheduler."""

import pytest

from repro.diskos import DiskletScheduler
from repro.host import REFERENCE_MHZ, Cpu
from repro.sim import Simulator


def make(quantum=5e-3, dispatch=0.0, mhz=REFERENCE_MHZ):
    sim = Simulator()
    cpu = Cpu(sim, mhz, name="dcpu")
    return sim, cpu, DiskletScheduler(sim, cpu, quantum=quantum,
                                      dispatch_cost=dispatch)


class TestValidation:
    def test_bad_quantum(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            DiskletScheduler(sim, Cpu(sim, 200), quantum=0)

    def test_bad_dispatch(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            DiskletScheduler(sim, Cpu(sim, 200), dispatch_cost=-1)

    def test_negative_work(self):
        sim, cpu, scheduler = make()
        with pytest.raises(ValueError):
            list(scheduler.run("x", -1.0))


class TestScheduling:
    def test_single_disklet_takes_its_work_time(self):
        sim, _, scheduler = make()
        def proc():
            yield from scheduler.run("scan", 0.1)
        sim.process(proc())
        sim.run()
        assert sim.now == pytest.approx(0.1)
        assert scheduler.usage("scan") == pytest.approx(0.1)

    def test_clock_scaling_applies(self):
        sim, _, scheduler = make(mhz=REFERENCE_MHZ / 2)
        def proc():
            yield from scheduler.run("scan", 0.1)
        sim.process(proc())
        sim.run()
        assert sim.now == pytest.approx(0.2)

    def test_two_equal_disklets_share_fairly(self):
        sim, _, scheduler = make(quantum=1e-3)
        finish = {}
        def proc(name):
            yield from scheduler.run(name, 0.05)
            finish[name] = sim.now
        sim.process(proc("a"))
        sim.process(proc("b"))
        sim.run()
        # Both finish around 2x their solo time, within one quantum.
        assert finish["a"] == pytest.approx(0.1, abs=2e-3)
        assert finish["b"] == pytest.approx(0.1, abs=2e-3)

    def test_interleaving_at_quantum_granularity(self):
        """A short disklet arriving mid-run finishes long before a long
        one that started first — no head-of-line blocking."""
        sim, _, scheduler = make(quantum=1e-3)
        finish = {}
        def long_job():
            yield from scheduler.run("long", 0.2)
            finish["long"] = sim.now
        def short_job():
            yield sim.timeout(0.01)
            yield from scheduler.run("short", 0.005)
            finish["short"] = sim.now
        sim.process(long_job())
        sim.process(short_job())
        sim.run()
        assert finish["short"] < 0.25 * finish["long"]

    def test_dispatch_overhead_accounted(self):
        sim, cpu, scheduler = make(quantum=1e-3, dispatch=1e-4)
        def proc():
            yield from scheduler.run("scan", 0.01)
        sim.process(proc())
        sim.run()
        assert scheduler.dispatches == 10
        assert scheduler.overhead_fraction() == pytest.approx(
            0.1 / 1.1, abs=0.02)
        assert cpu.busy.buckets["dispatch"] == pytest.approx(1e-3)

    def test_usage_by_disklet(self):
        sim, cpu, scheduler = make(quantum=2e-3)
        def proc(name, work):
            yield from scheduler.run(name, work)
        sim.process(proc("a", 0.02))
        sim.process(proc("b", 0.04))
        sim.run()
        assert scheduler.usage("a") == pytest.approx(0.02)
        assert scheduler.usage("b") == pytest.approx(0.04)
        assert cpu.busy.buckets["disklet:a"] == pytest.approx(0.02)

    def test_register_idempotent(self):
        _, _, scheduler = make()
        scheduler.register("x")
        scheduler.register("x")
        assert scheduler.usage("x") == 0.0
