"""Unit tests for the segmented cache and request-queue disciplines."""

import pytest

from repro.disk import RequestQueue, SegmentedCache
from repro.disk.drive import DiskRequest
from repro.sim import Event, Simulator


def make_cache(segments=4, segment_sectors=512):
    return SegmentedCache(segments, segment_sectors)


class TestSegmentedCache:
    def test_validation(self):
        with pytest.raises(ValueError):
            SegmentedCache(0, 512)
        with pytest.raises(ValueError):
            SegmentedCache(4, 0)

    def test_first_access_is_miss(self):
        cache = make_cache()
        outcome = cache.lookup("read", 0, 100)
        assert not outcome.buffer_hit and not outcome.streaming
        assert cache.misses == 1

    def test_sequential_continuation_streams(self):
        cache = make_cache()
        cache.lookup("read", 0, 100)
        outcome = cache.lookup("read", 100, 200)
        assert outcome.streaming and not outcome.buffer_hit
        assert cache.streaming_hits == 1

    def test_reread_recent_data_is_buffer_hit(self):
        cache = make_cache()
        cache.lookup("read", 0, 100)
        cache.lookup("read", 100, 200)
        outcome = cache.lookup("read", 50, 150)
        assert outcome.buffer_hit

    def test_data_falls_out_of_window(self):
        cache = make_cache(segments=1, segment_sectors=100)
        cache.lookup("read", 0, 100)
        cache.lookup("read", 100, 200)   # window now [100, 200)
        outcome = cache.lookup("read", 0, 50)
        assert not outcome.buffer_hit

    def test_multiple_concurrent_streams(self):
        cache = make_cache(segments=2)
        cache.lookup("read", 0, 100)
        cache.lookup("read", 10_000, 10_100)
        assert cache.lookup("read", 100, 200).streaming
        assert cache.lookup("read", 10_100, 10_200).streaming

    def test_stream_eviction_when_over_capacity(self):
        cache = make_cache(segments=2)
        cache.lookup("read", 0, 100)          # stream A
        cache.lookup("read", 10_000, 10_100)  # stream B
        cache.lookup("read", 20_000, 20_100)  # stream C evicts A (LRU)
        outcome = cache.lookup("read", 100, 200)  # A's continuation
        assert not outcome.streaming

    def test_writes_do_not_match_read_streams(self):
        cache = make_cache()
        cache.lookup("read", 0, 100)
        outcome = cache.lookup("write", 100, 200)
        assert not outcome.streaming

    def test_write_stream_continuation(self):
        cache = make_cache()
        cache.lookup("write", 0, 100)
        assert cache.lookup("write", 100, 200).streaming

    def test_empty_request_rejected(self):
        with pytest.raises(ValueError):
            make_cache().lookup("read", 100, 100)

    def test_invalidate(self):
        cache = make_cache()
        cache.lookup("read", 0, 100)
        cache.invalidate()
        assert not cache.lookup("read", 100, 200).streaming

    def test_total_lookups(self):
        cache = make_cache()
        cache.lookup("read", 0, 100)
        cache.lookup("read", 100, 200)
        assert cache.total_lookups == 2


def request(sim, lbn, cylinder):
    req = DiskRequest(op="read", lbn=lbn, nbytes=512,
                      done=Event(sim), issued_at=0.0)
    req.cylinder = cylinder
    return req


class TestRequestQueue:
    def test_unknown_discipline_rejected(self):
        with pytest.raises(ValueError):
            RequestQueue("elevator-music")

    def test_pop_empty_rejected(self):
        with pytest.raises(IndexError):
            RequestQueue().pop_next(0)

    def test_fcfs_order(self):
        sim = Simulator()
        queue = RequestQueue("fcfs")
        for cyl in (500, 10, 900):
            queue.push(request(sim, 0, cyl))
        assert [queue.pop_next(0).cylinder for _ in range(3)] == [500, 10, 900]

    def test_sstf_picks_nearest(self):
        sim = Simulator()
        queue = RequestQueue("sstf")
        for cyl in (500, 10, 900):
            queue.push(request(sim, 0, cyl))
        assert queue.pop_next(450).cylinder == 500
        assert queue.pop_next(500).cylinder == 900
        assert queue.pop_next(900).cylinder == 10

    def test_look_continues_direction_then_reverses(self):
        sim = Simulator()
        queue = RequestQueue("look")
        for cyl in (100, 300, 50):
            queue.push(request(sim, 0, cyl))
        assert queue.pop_next(90).cylinder == 100
        assert queue.pop_next(100).cylinder == 300
        assert queue.pop_next(300).cylinder == 50

    def test_max_depth_tracked(self):
        sim = Simulator()
        queue = RequestQueue()
        for cyl in range(5):
            queue.push(request(sim, 0, cyl))
        queue.pop_next(0)
        assert queue.max_depth == 5

    def test_single_item_shortcut(self):
        sim = Simulator()
        queue = RequestQueue("sstf")
        queue.push(request(sim, 0, 123))
        assert queue.pop_next(0).cylinder == 123
