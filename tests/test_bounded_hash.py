"""Tests validating the dcube spill-amplification model functionally."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.algorithms import groupby_sum, make_relation
from repro.workloads.algorithms.bounded_hash import BoundedHashAggregator
from repro.workloads.pipehash import SPILL_FACTOR


def aggregate(records, capacity):
    aggregator = BoundedHashAggregator(capacity)
    aggregator.consume(
        (int(k), int(v)) for k, v in zip(records.key, records.value))
    merged = aggregator.drain()
    return merged, aggregator.stats


class TestCorrectness:
    def test_validation(self):
        with pytest.raises(ValueError):
            BoundedHashAggregator(0)

    def test_exact_result_regardless_of_capacity(self):
        records = make_relation(5_000, 300, seed=1)
        reference = groupby_sum(records)
        for capacity in (1, 7, 50, 1_000):
            merged, _ = aggregate(records, capacity)
            assert merged == reference, capacity

    @given(st.integers(min_value=0, max_value=2_000),
           st.integers(min_value=1, max_value=200),
           st.integers(min_value=1, max_value=64),
           st.integers(min_value=0, max_value=20))
    @settings(max_examples=30, deadline=None)
    def test_result_property(self, count, distinct, capacity, seed):
        records = make_relation(count, distinct, seed=seed)
        merged, _ = aggregate(records, capacity)
        assert merged == groupby_sum(records)


class TestSpillModel:
    def test_fitting_table_spills_once(self):
        """Capacity >= working set: the only 'spill' is the final flush
        — amplification 1.0, the no-spill regime of the cost model."""
        records = make_relation(5_000, 100, seed=2)
        _, stats = aggregate(records, capacity=200)
        assert stats.spill_amplification == pytest.approx(1.0)

    def test_thrashing_table_ships_nearly_every_insertion(self):
        """Capacity << working set with random keys: amplification
        approaches tuples/groups — the physical basis for the cube's
        SPILL_FACTOR = 24 (536 M tuples / 21.7 M root entries)."""
        records = make_relation(20_000, 1_000, seed=3)
        _, stats = aggregate(records, capacity=20)
        tuples_per_group = 20_000 / 1_000
        assert stats.spill_amplification > 0.7 * tuples_per_group

    def test_amplification_monotone_in_pressure(self):
        records = make_relation(10_000, 500, seed=4)
        amplifications = []
        for capacity in (2_000, 400, 100, 20):
            _, stats = aggregate(records, capacity)
            amplifications.append(stats.spill_amplification)
        assert amplifications == sorted(amplifications)

    def test_paper_operating_point_is_in_the_modelled_range(self):
        """At the cube's ratio (~25 tuples/group, table ~6 % resident)
        the measured amplification lands in the neighbourhood of the
        SPILL_FACTOR used by the planner."""
        tuples, groups = 25_000, 1_000   # 25 tuples per group
        records = make_relation(tuples, groups, seed=5)
        _, stats = aggregate(records, capacity=groups // 16)
        assert 0.5 * SPILL_FACTOR < stats.spill_amplification \
            < 1.3 * SPILL_FACTOR

    def test_clustered_keys_spill_less(self):
        """Key locality rescues a bounded table — why the group-by task
        (clustered fact tables) never pays this penalty."""
        groups = 500
        rng = np.random.default_rng(6)
        clustered_keys = np.sort(rng.integers(0, groups, size=10_000))
        records = np.rec.fromarrays(
            [clustered_keys, np.ones(10_000, dtype=np.int64)],
            names=("key", "value"))
        shuffled = np.rec.array(records[rng.permutation(10_000)])
        _, clustered_stats = aggregate(records, capacity=50)
        _, shuffled_stats = aggregate(shuffled, capacity=50)
        assert (clustered_stats.spill_amplification
                < 0.3 * shuffled_stats.spill_amplification)
