"""Tests for key-skew support: weights, destination cycles, variants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import ActiveDiskConfig, build_machine
from repro.arch.base import destination_cycle
from repro.sim import Simulator
from repro.workloads import build_program
from repro.workloads.skew import imbalance_factor, skewed_variant, zipf_weights


class TestZipfWeights:
    def test_uniform_at_zero(self):
        weights = zipf_weights(8, 0.0)
        assert all(w == pytest.approx(1 / 8) for w in weights)

    def test_normalized(self):
        assert sum(zipf_weights(17, 0.9)) == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        weights = zipf_weights(10, 1.0)
        assert weights == sorted(weights, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(4, -0.1)

    def test_imbalance_factor(self):
        assert imbalance_factor(16, 0.0) == pytest.approx(1.0)
        assert imbalance_factor(16, 1.0) > 3.0


class TestDestinationCycle:
    def test_uniform_is_a_rotation(self):
        cycle = destination_cycle(4, 0.0, start=1)
        assert sorted(cycle) == [0, 1, 2, 3]
        assert cycle[0] == 2

    def test_single_worker(self):
        assert destination_cycle(1, 0.7, start=0) == [0]

    def test_validation(self):
        with pytest.raises(ValueError):
            destination_cycle(0, 0.0, start=0)

    @given(st.integers(min_value=2, max_value=64),
           st.floats(min_value=0.0, max_value=1.5, allow_nan=False),
           st.integers(min_value=0, max_value=63))
    @settings(max_examples=100)
    def test_cycle_covers_plausible_length(self, workers, skew, start):
        cycle = destination_cycle(workers, skew, start=start % workers)
        assert cycle
        assert all(0 <= d < workers for d in cycle)

    @given(st.integers(min_value=2, max_value=32),
           st.floats(min_value=0.1, max_value=1.2, allow_nan=False))
    @settings(max_examples=100)
    def test_skewed_cycle_matches_zipf_frequencies(self, workers, skew):
        cycle = destination_cycle(workers, skew, start=0)
        weights = zipf_weights(workers, skew)
        for worker in range(workers):
            expected = weights[worker] * len(cycle)
            assert abs(cycle.count(worker) - expected) <= 1.0

    def test_hot_worker_interleaved_not_bursty(self):
        cycle = destination_cycle(8, 1.0, start=0)
        # Worker 0 appears most often but never more than twice in a row.
        longest_run = max(
            sum(1 for _ in group)
            for _, group in __import__("itertools").groupby(cycle))
        assert longest_run <= 2


class TestSkewedVariant:
    def test_only_shuffle_phases_touched(self):
        program = build_program("sort", ActiveDiskConfig(num_disks=8),
                                scale=1 / 256)
        skewed = skewed_variant(program, 0.8)
        assert skewed.phases[0].shuffle_skew == pytest.approx(0.8)
        assert skewed.phases[1].shuffle_skew == 0.0  # merge: no shuffle
        assert skewed.task.startswith("sort+skew")

    def test_negative_theta_rejected(self):
        program = build_program("select", ActiveDiskConfig(num_disks=8),
                                scale=1 / 256)
        with pytest.raises(ValueError):
            skewed_variant(program, -0.5)

    def test_skew_concentrates_received_bytes(self):
        config = ActiveDiskConfig(num_disks=8)
        program = skewed_variant(
            build_program("sort", config, scale=1 / 64), 1.0)
        sim = Simulator()
        machine = build_machine(sim, config)
        machine.run(program)
        writes = [node.drive.bytes_written for node in machine.nodes]
        # Worker 0 owns the hot partition: clearly more run data lands
        # on its drive than on the coldest worker's.
        assert writes[0] > 1.5 * min(writes)

    def test_skew_never_speeds_things_up(self):
        config = ActiveDiskConfig(num_disks=8)
        base = build_program("sort", config, scale=1 / 64)
        sim = Simulator()
        t_base = build_machine(sim, config).run(base).elapsed
        sim2 = Simulator()
        t_skew = build_machine(sim2, config).run(
            skewed_variant(base, 1.0)).elapsed
        assert t_skew >= t_base * 0.98
