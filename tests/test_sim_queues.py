"""Tests for the pluggable event-queue backends (``repro.sim.queues``).

The calendar queue must be *observationally identical* to the heap
reference: same pop order (including same-tick FIFO), same error
surfaces, same results under every kernel loop. These tests pin the
edge cases where calendar geometry could drift — bucket boundaries,
far-list overflow, mid-day resizes — plus the batch-aware ``peek()``
contract and backend selection plumbing.
"""

import random

import pytest

from repro.invariants import InvariantAuditor
from repro.sim import SimulationError, Simulator
from repro.sim.queues import (
    DEFAULT_BACKEND,
    ENV_VAR,
    QUEUE_BACKENDS,
    CalendarQueue,
    HeapEventQueue,
    make_queue,
    queue_override,
    resolve_backend,
)

BACKENDS = sorted(QUEUE_BACKENDS)


# --------------------------------------------------------------- helpers

def drain(queue):
    """Pop everything (batch API), returning entries in pop order."""
    order = []
    while True:
        batch = queue.pop_batch()
        if batch is None:
            return order
        order.extend([entry[0], entry[1]] for entry in batch)


def fill(queue, times):
    for seq, t in enumerate(times):
        queue.push([t, seq, None])


# ------------------------------------------------- direct queue ordering

class TestCalendarOrdering:
    def test_same_tick_fifo_across_bucket_boundaries(self):
        # Duplicate timestamps on both sides of bucket edges: pops must
        # come back time-ordered, seq-ordered within each timestamp.
        queue = CalendarQueue(nbuckets=4, width=1.0)
        times = [0.0, 3.9999999, 4.0, 0.0, 4.0, 1.0, 3.9999999, 1.0]
        fill(queue, times)
        expected = sorted(
            ([t, seq] for seq, t in enumerate(times)))
        assert drain(queue) == expected

    def test_far_overflow_pops_in_order(self):
        # Everything beyond day_end lands in the far list; day rolls
        # must re-bucket it without reordering.
        queue = CalendarQueue(nbuckets=4, width=1.0)
        times = [100.0, 2.0, 50.0, 2.0, 1e6, 7.5, 100.0]
        fill(queue, times)
        assert drain(queue) == sorted(
            [t, seq] for seq, t in enumerate(times))

    def test_skewed_burst_triggers_respread_and_keeps_order(self):
        queue = CalendarQueue(nbuckets=4, width=1e-6)
        rng = random.Random(42)
        # A burst inside the initial 4-microsecond day overfills the
        # tiny bucket array: the mid-day respread must fire.
        times = [rng.uniform(0.0, 4e-6) for _ in range(100)]
        fill(queue, times)
        assert queue.resizes > 0
        # Then a second, far-future population exercises the day-roll
        # re-tune on top of the respread geometry.
        times += [rng.uniform(0.0, 10.0) for _ in range(2000)]
        for seq, t in enumerate(times[100:], start=100):
            queue.push([t, seq, None])
        before = queue.resizes
        order = drain(queue)
        assert queue.resizes > before
        assert order == sorted([t, seq] for seq, t in enumerate(times))

    def test_interleaved_push_pop_matches_heap(self):
        rng = random.Random(7)
        heap, cal = HeapEventQueue(), CalendarQueue()
        heap_order, cal_order = [], []
        seq = 0
        now = 0.0
        for _ in range(300):
            for _ in range(rng.randrange(4)):
                t = now + rng.choice([0.0, 0.0, rng.expovariate(10.0),
                                      rng.expovariate(0.01)])
                heap.push([t, seq, None])
                cal.push([t, seq, None])
                seq += 1
            if rng.random() < 0.7 and len(heap):
                batch = heap.pop_batch()
                now = batch[0][0]
                heap_order.extend([e[0], e[1]] for e in batch)
                cal_order.extend(
                    [e[0], e[1]] for e in cal.pop_batch())
        heap_order.extend([e[0], e[1]] for e in iter_all(heap))
        cal_order.extend([e[0], e[1]] for e in iter_all(cal))
        assert cal_order == heap_order

    def test_len_tracks_population(self):
        queue = CalendarQueue(nbuckets=4, width=1.0)
        times = [0.0, 0.5, 7.0, 1e5, 0.0]
        fill(queue, times)
        assert len(queue) == 5
        queue.pop_batch()
        assert len(queue) == 3  # the two same-tick t=0 entries left
        drain(queue)
        assert len(queue) == 0


def iter_all(queue):
    while True:
        batch = queue.pop_batch()
        if batch is None:
            return
        yield from list(batch)


# ----------------------------------------------------- kernel behaviour

@pytest.mark.parametrize("backend", BACKENDS)
class TestKernelParity:
    def test_empty_step_raises(self, backend):
        sim = Simulator(queue=backend)
        with pytest.raises(SimulationError,
                           match=r"step\(\) on an empty event queue"):
            sim.step()

    def test_interrupts_and_pooled_timeouts(self, backend):
        # pause() recycles Timeouts through the pool; interrupts ride
        # the relay pool. Interleaving both must not disturb order or
        # leak recycled events.
        sim = Simulator(queue=backend)
        log = []

        def worker(i):
            for r in range(5):
                try:
                    yield sim.pause(1e-4 * ((i + r) % 3 + 1))
                except Exception:
                    pass
                log.append((round(sim.now, 9), i, r))

        workers = [sim.process(worker(i), name=f"w{i}")
                   for i in range(8)]

        def interrupter():
            yield sim.pause(2.5e-4)
            workers[0].interrupt("poke")
            workers[3].interrupt("poke")
            yield sim.pause(2.5e-4)

        sim.process(interrupter(), name="intr")
        sim.run()
        assert len(log) == 40
        times = [entry[0] for entry in log]
        assert times == sorted(times)
        if backend == DEFAULT_BACKEND:
            TestKernelParity.reference_log = log
        else:
            assert log == TestKernelParity.reference_log

    def test_batch_aware_peek(self, backend):
        # A callback running inside a same-tick batch must still see
        # peek() == now while later batch members are pending (the
        # Sampler loop depends on this).
        sim = Simulator(queue=backend)
        peeks = []

        def observer():
            while True:
                peeks.append((sim.now, sim.peek()))
                if sim.peek() == float("inf"):
                    return
                yield sim.pause(sim.peek() - sim.now)

        def worker():
            for _ in range(3):
                yield sim.pause(1.0)

        sim.process(observer(), name="obs")
        sim.process(worker(), name="work")
        sim.run()
        # The observer woke at every event time — including inside the
        # t=0 bootstrap batch — proving peek() never goes blind
        # mid-batch (same trace on every backend).
        assert [p[0] for p in peeks] == [0.0, 0.0, 1.0, 2.0, 3.0, 3.0]


def _workload(sim):
    done = []

    def burst(i):
        for r in range(20):
            yield sim.pause(1e-5 * ((i * 7 + r) % 11 + 1))
            if r % 5 == 0:
                yield sim.pause(0.0)  # same-tick re-arm
        done.append(i)

    def spawner():
        for i in range(4):
            child = sim.process(burst(100 + i), name=f"c{i}")
            yield child

    for i in range(12):
        sim.process(burst(i), name=f"b{i}")
    sim.process(spawner(), name="spawn")
    sim.run()
    return sim.now, sim.event_count, sorted(done)


@pytest.mark.parametrize("backend", BACKENDS)
def test_loop_parity_matrix(backend):
    """fast / checked / audited agree on clock, count and results."""
    results = []
    for make in (lambda: Simulator(queue=backend),
                 lambda: Simulator(queue=backend, debug=True)):
        results.append(_workload(make()))
    sim = Simulator(queue=backend)
    InvariantAuditor().install(sim)
    results.append(_workload(sim))
    assert results[0] == results[1] == results[2]
    # And the backends agree with each other.
    if backend == BACKENDS[0]:
        test_loop_parity_matrix.reference = results[0]
    else:
        assert results[0] == test_loop_parity_matrix.reference


# --------------------------------------------------- backend selection

class TestBackendSelection:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert resolve_backend() == DEFAULT_BACKEND
        assert Simulator().queue_backend == DEFAULT_BACKEND

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "heap")
        assert resolve_backend() == "heap"
        assert Simulator().queue_backend == "heap"

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "heap")
        with queue_override("calendar"):
            assert Simulator().queue_backend == "calendar"
        assert Simulator().queue_backend == "heap"

    def test_ctor_beats_override(self):
        with queue_override("calendar"):
            assert Simulator(queue="heap").queue_backend == "heap"

    def test_unknown_backend_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown event-queue backend"):
            Simulator(queue="btree")
        with pytest.raises(ValueError, match="unknown event-queue backend"):
            resolve_backend("btree")
        monkeypatch.setenv(ENV_VAR, "nope")
        with pytest.raises(ValueError, match="unknown event-queue backend"):
            make_queue()

    def test_instance_passthrough(self):
        queue = HeapEventQueue()
        sim = Simulator(queue=queue)
        assert sim._queue is queue
        assert sim.queue_backend == "heap"
