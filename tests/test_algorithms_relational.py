"""Tests for the reference relational algorithms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.algorithms import (
    aggregate_sum,
    grace_hash_join,
    groupby_sum,
    make_relation,
    select,
)


class TestMakeRelation:
    def test_shape_and_determinism(self):
        a = make_relation(100, 10, seed=1)
        b = make_relation(100, 10, seed=1)
        assert len(a) == 100
        assert (a.key == b.key).all() and (a.value == b.value).all()

    def test_keys_within_domain(self):
        rel = make_relation(500, 7, seed=2)
        assert rel.key.min() >= 0 and rel.key.max() < 7

    def test_validation(self):
        with pytest.raises(ValueError):
            make_relation(-1, 10)
        with pytest.raises(ValueError):
            make_relation(10, 0)


class TestSelect:
    def test_filters_by_predicate(self):
        rel = make_relation(1000, 50, seed=3)
        out = select(rel, lambda r: r.value < 100)
        assert (out.value < 100).all()
        assert len(out) == int((rel.value < 100).sum())

    def test_selectivity_close_to_target(self):
        rel = make_relation(20_000, 50, seed=4, payload=1000)
        out = select(rel, lambda r: r.value < 10)  # 1 % selectivity
        assert len(out) / len(rel) == pytest.approx(0.01, abs=0.004)

    def test_bad_predicate_shape_rejected(self):
        rel = make_relation(10, 5)
        with pytest.raises(ValueError):
            select(rel, lambda r: np.array([True]))


class TestAggregate:
    def test_matches_numpy_sum(self):
        rel = make_relation(5000, 50, seed=5)
        assert aggregate_sum(rel) == int(rel.value.sum())

    def test_empty_relation(self):
        assert aggregate_sum(make_relation(0, 5)) == 0


class TestGroupby:
    def test_group_sums_match_bruteforce(self):
        rel = make_relation(2000, 25, seed=6)
        groups = groupby_sum(rel)
        for key in range(25):
            expected = int(rel.value[rel.key == key].sum())
            assert groups.get(key, 0) == expected

    def test_total_preserved(self):
        rel = make_relation(3000, 100, seed=7)
        assert sum(groupby_sum(rel).values()) == int(rel.value.sum())

    @given(st.integers(min_value=1, max_value=2000),
           st.integers(min_value=1, max_value=100),
           st.integers(min_value=0, max_value=1000))
    @settings(max_examples=50, deadline=None)
    def test_group_count_bounded_by_distinct(self, count, distinct, seed):
        rel = make_relation(count, distinct, seed=seed)
        groups = groupby_sum(rel)
        assert len(groups) <= min(count, distinct)
        assert sum(groups.values()) == int(rel.value.sum())


class TestGraceHashJoin:
    def brute_force_size(self, left, right):
        from collections import Counter
        left_keys = Counter(left.key.tolist())
        return sum(left_keys[int(k)] for k in right.key)

    def test_output_size_matches_bruteforce(self):
        left = make_relation(300, 30, seed=8)
        right = make_relation(400, 30, seed=9)
        out = grace_hash_join(left, right)
        assert len(out) == self.brute_force_size(left, right)

    def test_keys_match_in_every_row(self):
        left = make_relation(100, 10, seed=10)
        right = make_relation(100, 10, seed=11)
        for key, _, _ in grace_hash_join(left, right):
            assert 0 <= key < 10

    def test_partition_count_does_not_change_result(self):
        left = make_relation(200, 16, seed=12)
        right = make_relation(200, 16, seed=13)
        a = sorted(grace_hash_join(left, right, partitions=2))
        b = sorted(grace_hash_join(left, right, partitions=16))
        assert a == b

    def test_empty_inputs(self):
        empty = make_relation(0, 5)
        other = make_relation(50, 5, seed=14)
        assert grace_hash_join(empty, other) == []
        assert grace_hash_join(other, empty) == []

    def test_validation(self):
        rel = make_relation(10, 5)
        with pytest.raises(ValueError):
            grace_hash_join(rel, rel, partitions=0)

    @given(st.integers(min_value=0, max_value=300),
           st.integers(min_value=0, max_value=300),
           st.integers(min_value=1, max_value=40),
           st.integers(min_value=0, max_value=100))
    @settings(max_examples=40, deadline=None)
    def test_size_property_random_inputs(self, nl, nr, distinct, seed):
        left = make_relation(nl, distinct, seed=seed)
        right = make_relation(nr, distinct, seed=seed + 1)
        out = grace_hash_join(left, right)
        assert len(out) == self.brute_force_size(left, right)
