"""Tests for the parameter-sensitivity framework."""

import pytest

from repro.arch import ActiveDiskConfig, SMPConfig
from repro.experiments.sensitivity import SensitivityResult, sweep_parameter

MB = 1_000_000
TINY = 1 / 128


class TestSweep:
    def test_validation(self):
        config = ActiveDiskConfig(num_disks=8)
        with pytest.raises(ValueError):
            sweep_parameter(config, "select", "disk_cpu_mhz", [])
        with pytest.raises(AttributeError):
            sweep_parameter(config, "select", "warp_factor", [1])

    def test_cpu_sweep_speeds_up_compute_bound_task(self):
        config = ActiveDiskConfig(num_disks=8)
        result = sweep_parameter(config, "select", "disk_cpu_mhz",
                                 [200.0, 400.0, 800.0], scale=TINY)
        speedups = [s for _, s in result.speedups()]
        assert speedups[0] == pytest.approx(1.0)
        assert speedups[1] > 1.4
        assert speedups[2] > speedups[1]

    def test_interconnect_sweep_flat_for_scan(self):
        config = ActiveDiskConfig(num_disks=8)
        result = sweep_parameter(config, "select", "interconnect_rate",
                                 [200 * MB, 400 * MB], scale=TINY)
        assert result.speedups()[1][1] == pytest.approx(1.0, abs=0.03)

    def test_smp_interconnect_sweep_matters(self):
        config = SMPConfig(num_disks=16)
        result = sweep_parameter(config, "select",
                                 "io_interconnect_rate",
                                 [200 * MB, 400 * MB], scale=TINY)
        assert result.speedups()[1][1] > 1.2

    def test_elasticity_compute_bound(self):
        config = ActiveDiskConfig(num_disks=8)
        # 200 -> 400 MHz keeps select CPU-bound; beyond that the media
        # takes over and elasticity naturally collapses.
        result = sweep_parameter(config, "select", "disk_cpu_mhz",
                                 [200.0, 400.0], scale=TINY)
        assert result.elasticity() > 0.5

    def test_elasticity_insensitive_parameter(self):
        config = ActiveDiskConfig(num_disks=8)
        result = sweep_parameter(config, "select",
                                 "disk_memory_bytes",
                                 [32 * MB, 128 * MB], scale=TINY)
        assert abs(result.elasticity()) < 0.1

    def test_render(self):
        config = ActiveDiskConfig(num_disks=4)
        result = sweep_parameter(config, "aggregate", "disk_cpu_mhz",
                                 [200.0, 400.0], scale=TINY)
        text = result.render()
        assert "Sensitivity" in text and "speedup" in text

    def test_elasticity_requires_numeric_values(self):
        result = SensitivityResult(
            task="t", arch="active", parameter="kind",
            points=(("a", 1.0), ("b", 2.0)))
        with pytest.raises(TypeError):
            result.elasticity()
