"""Behavioural tests for the drive model: throughput, latency, streams."""

import pytest

from repro.disk import DiskDrive, HITACHI_DK3E1T91, SEAGATE_ST39102, fast_variant
from repro.sim import Simulator

KB = 1024
MB = 1_000_000


def sequential_throughput(spec, request_bytes=256 * KB, count=100):
    sim = Simulator()
    drive = DiskDrive(sim, spec)
    def driver():
        lbn = 0
        for _ in range(count):
            yield drive.read(lbn, request_bytes)
            lbn += request_bytes // 512
    sim.process(driver())
    sim.run()
    return count * request_bytes / sim.now


class TestSequentialAccess:
    def test_seq_read_near_outer_media_rate(self):
        throughput = sequential_throughput(SEAGATE_ST39102)
        assert 0.85 * SEAGATE_ST39102.media_rate_max < throughput
        assert throughput < SEAGATE_ST39102.media_rate_max

    def test_fast_disk_is_faster(self):
        slow = sequential_throughput(SEAGATE_ST39102)
        fast = sequential_throughput(HITACHI_DK3E1T91)
        assert fast > slow * 1.15

    def test_fast_variant_scales(self):
        doubled = fast_variant(SEAGATE_ST39102, 2.0)
        assert sequential_throughput(doubled) > \
            1.7 * sequential_throughput(SEAGATE_ST39102)

    def test_seq_write_throughput_reasonable(self):
        sim = Simulator()
        drive = DiskDrive(sim, SEAGATE_ST39102)
        def driver():
            lbn = 0
            for _ in range(50):
                yield drive.write(lbn, 256 * KB)
                lbn += 512
        sim.process(driver())
        sim.run()
        throughput = 50 * 256 * KB / sim.now
        assert throughput > 0.8 * SEAGATE_ST39102.media_rate_max


class TestRandomAccess:
    def test_random_8k_latency_band(self):
        sim = Simulator()
        drive = DiskDrive(sim, SEAGATE_ST39102)
        lbns = [(i * 2_654_435) % (drive.geometry.total_sectors - 100)
                for i in range(100)]
        def driver():
            for lbn in lbns:
                yield drive.read(lbn, 8 * KB)
        sim.process(driver())
        sim.run()
        mean = drive.response_times.mean
        # overhead + ~avg seek + ~half rotation + transfer: 6-13 ms.
        assert 5e-3 < mean < 14e-3

    def test_random_much_slower_than_sequential(self):
        sim = Simulator()
        drive = DiskDrive(sim, SEAGATE_ST39102)
        lbns = [(i * 7_654_321) % (drive.geometry.total_sectors - 1000)
                for i in range(50)]
        def driver():
            for lbn in lbns:
                yield drive.read(lbn, 256 * KB)
        sim.process(driver())
        sim.run()
        random_tput = 50 * 256 * KB / sim.now
        assert random_tput < 0.7 * sequential_throughput(SEAGATE_ST39102)


class TestInterleavedStreams:
    def test_interleaved_read_write_pays_positioning(self):
        """Alternating read/write zones must cost seeks (the NOW-sort
        motivation for separate read/write disk groups)."""
        sim = Simulator()
        drive = DiskDrive(sim, SEAGATE_ST39102)
        half = drive.geometry.total_sectors // 2
        def driver():
            read_lbn, write_lbn = 0, half
            for _ in range(40):
                yield drive.read(read_lbn, 256 * KB)
                read_lbn += 512
                yield drive.write(write_lbn, 256 * KB)
                write_lbn += 512
        sim.process(driver())
        sim.run()
        interleaved_tput = 80 * 256 * KB / sim.now
        assert interleaved_tput < 0.8 * sequential_throughput(SEAGATE_ST39102)
        assert drive.busy.buckets.get("seek", 0) > 0

    def test_many_streams_exceeding_segments_lose_streaming(self):
        sim = Simulator()
        drive = DiskDrive(sim, SEAGATE_ST39102)
        streams = SEAGATE_ST39102.cache_segments + 4
        stride = drive.geometry.total_sectors // (streams + 1)
        cursors = [s * stride for s in range(streams)]
        def driver():
            for round_ in range(5):
                for s in range(streams):
                    yield drive.read(cursors[s], 256 * KB)
                    cursors[s] += 512
        sim.process(driver())
        sim.run()
        tput = 5 * streams * 256 * KB / sim.now
        assert tput < 0.75 * sequential_throughput(SEAGATE_ST39102)


class TestRequestHandling:
    def test_beyond_capacity_rejected(self):
        sim = Simulator()
        drive = DiskDrive(sim, SEAGATE_ST39102)
        with pytest.raises(ValueError):
            drive.read(drive.geometry.total_sectors - 1, 1 * MB)

    def test_bad_request_parameters_rejected(self):
        sim = Simulator()
        drive = DiskDrive(sim, SEAGATE_ST39102)
        with pytest.raises(ValueError):
            drive.submit("scan", 0, 512)
        with pytest.raises(ValueError):
            drive.submit("read", 0, 0)
        with pytest.raises(ValueError):
            drive.submit("read", -5, 512)

    def test_byte_accounting(self):
        sim = Simulator()
        drive = DiskDrive(sim, SEAGATE_ST39102)
        def driver():
            yield drive.read(0, 64 * KB)
            yield drive.write(100_000, 32 * KB)
        sim.process(driver())
        sim.run()
        assert drive.bytes_read == 64 * KB
        assert drive.bytes_written == 32 * KB

    def test_completion_event_carries_request(self):
        sim = Simulator()
        drive = DiskDrive(sim, SEAGATE_ST39102)
        got = []
        def driver():
            request = yield drive.read(1000, 4 * KB)
            got.append(request)
        sim.process(driver())
        sim.run()
        assert got[0].lbn == 1000 and got[0].op == "read"

    def test_utilization_positive_after_work(self):
        sim = Simulator()
        drive = DiskDrive(sim, SEAGATE_ST39102)
        def driver():
            yield drive.read(0, 256 * KB)
        sim.process(driver())
        sim.run()
        assert 0 < drive.utilization() <= 1.0

    def test_queued_requests_all_complete(self):
        sim = Simulator()
        drive = DiskDrive(sim, SEAGATE_ST39102)
        events = [drive.read(i * 1024, 8 * KB) for i in range(20)]
        sim.run()
        assert all(e.triggered for e in events)
        assert drive.response_times.count == 20
