"""Tests for the reproduction scorecard and degraded-hardware behaviour."""

import pytest

from repro.arch import ActiveDiskConfig, build_machine
from repro.disk import DiskDrive, SEAGATE_ST39102, fast_variant
from repro.experiments import paper_claims, run_scorecard
from repro.experiments.scorecard import Claim, ClaimResult
from repro.sim import Simulator
from repro.workloads import build_program


class TestScorecardMechanics:
    def test_claim_result_verdict(self):
        claim = Claim("ref", "s", 1.0, 2.0, lambda s: 1.5)
        assert ClaimResult(claim, 1.5).passed
        assert not ClaimResult(claim, 2.5).passed
        assert not ClaimResult(claim, 0.5).passed

    def test_claims_have_unique_statements(self):
        statements = [c.statement for c in paper_claims()]
        assert len(statements) == len(set(statements))

    def test_custom_claims_evaluated(self):
        claims = [Claim("x", "always passes", 0.0, 10.0, lambda s: 5.0),
                  Claim("y", "always fails", 0.0, 1.0, lambda s: 5.0)]
        results, table = run_scorecard(scale=1.0, claims=claims)
        assert [r.passed for r in results] == [True, False]
        assert "1/2 claims pass" in table
        assert "FAIL" in table and "PASS" in table


@pytest.mark.slow
class TestScorecardFull:
    def test_all_paper_claims_pass(self):
        """The headline acceptance check, as the CLI runs it."""
        results, table = run_scorecard(scale=1 / 64)
        failures = [r.claim.statement for r in results if not r.passed]
        assert not failures, f"failed claims: {failures}\n{table}"


class TestStragglers:
    """Degraded-hardware injection: one slow spindle in the farm."""

    def degrade(self, machine, node_index, factor):
        slow_spec = fast_variant(SEAGATE_ST39102, factor)
        node = machine.nodes[node_index]
        node.drive = DiskDrive(machine.sim, slow_spec,
                               name=f"slow{node_index}")

    def run_sort(self, degrade_factor=None):
        config = ActiveDiskConfig(num_disks=8)
        sim = Simulator()
        machine = build_machine(sim, config)
        if degrade_factor is not None:
            self.degrade(machine, 0, degrade_factor)
        program = build_program("sort", config, 1 / 128)
        return machine.run(program)

    def test_one_slow_disk_stretches_the_phase(self):
        healthy = self.run_sort()
        degraded = self.run_sort(degrade_factor=0.25)  # 4x slower disk
        assert degraded.elapsed > 1.3 * healthy.elapsed

    def test_straggler_shows_up_as_idle_elsewhere(self):
        healthy = self.run_sort()
        degraded = self.run_sort(degrade_factor=0.25)
        # The other seven disks wait at the barrier for the slow one.
        assert degraded.phases[0].idle > healthy.phases[0].idle

    def test_mild_degradation_mild_impact(self):
        healthy = self.run_sort()
        mild = self.run_sort(degrade_factor=0.8)
        assert mild.elapsed < 1.3 * healthy.elapsed
