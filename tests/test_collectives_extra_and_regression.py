"""Tests for broadcast/scatter/gather and the regression comparator."""

import pytest

from repro.experiments.regression import (
    Regression,
    compare_rows,
    render_regressions,
)
from repro.net import FatTree, Messaging, Network
from repro.sim import Simulator

KB = 1024


def run_collective(hosts, method, *args, **kwargs):
    sim = Simulator()
    messaging = Messaging(Network(FatTree(sim, hosts)), hosts)
    done = []

    def participant(host):
        yield from getattr(messaging, method)(host, *args, **kwargs)
        done.append(host)

    for host in range(hosts):
        sim.process(participant(host))
    sim.run()
    return sim, done


class TestBroadcast:
    @pytest.mark.parametrize("hosts", [2, 5, 8, 16])
    @pytest.mark.parametrize("root", [0, 1])
    def test_completes_for_any_root(self, hosts, root):
        _, done = run_collective(hosts, "broadcast",
                                 root % hosts, 32 * KB, key="b")
        assert sorted(done) == list(range(hosts))

    def test_logarithmic_rounds(self):
        sim16, _ = run_collective(16, "broadcast", 0, 256 * KB, key="b")
        sim4, _ = run_collective(4, "broadcast", 0, 256 * KB, key="b")
        # 16 hosts = 4 rounds vs 2 rounds: ~2x, not 4x.
        assert sim16.now < 3.0 * sim4.now


class TestScatterGather:
    @pytest.mark.parametrize("hosts", [2, 7, 8])
    def test_scatter_completes(self, hosts):
        _, done = run_collective(hosts, "scatter", 0, 16 * KB, key="s")
        assert sorted(done) == list(range(hosts))

    @pytest.mark.parametrize("hosts", [2, 7, 8])
    def test_gather_completes(self, hosts):
        _, done = run_collective(hosts, "gather", 0, 16 * KB, key="g")
        assert sorted(done) == list(range(hosts))

    def test_scatter_serializes_at_root_link(self):
        sim, _ = run_collective(8, "scatter", 0, 512 * KB, key="s")
        wire = 512 * KB / 12_500_000
        assert sim.now >= 7 * wire


def row(figure="fig1", task="select", arch="active", disks=16,
        elapsed=1.0):
    return {"figure": figure, "task": task, "arch": arch,
            "disks": disks, "elapsed_s": elapsed}


class TestRegressionComparison:
    def test_no_change_no_regressions(self):
        rows = [row(), row(task="sort", elapsed=5.0)]
        assert compare_rows(rows, [dict(r) for r in rows]) == []

    def test_detects_slowdown(self):
        baseline = [row(elapsed=1.0)]
        current = [row(elapsed=1.2)]
        found = compare_rows(baseline, current, tolerance=0.05)
        assert len(found) == 1
        assert found[0].change == pytest.approx(0.2)

    def test_within_tolerance_ignored(self):
        baseline = [row(elapsed=1.0)]
        current = [row(elapsed=1.03)]
        assert compare_rows(baseline, current, tolerance=0.05) == []

    def test_new_cells_ignored(self):
        baseline = [row()]
        current = [row(), row(task="sort", elapsed=9.0)]
        assert compare_rows(baseline, current) == []

    def test_sorted_by_magnitude(self):
        baseline = [row(task="a", elapsed=1.0), row(task="b", elapsed=1.0)]
        current = [row(task="a", elapsed=1.1), row(task="b", elapsed=2.0)]
        found = compare_rows(baseline, current, tolerance=0.05)
        assert [dict(f.key)["task"] for f in found] == ["b", "a"]

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            compare_rows([], [], tolerance=-0.1)

    def test_render(self):
        found = compare_rows([row(elapsed=1.0)], [row(elapsed=2.0)])
        text = render_regressions(found)
        assert "select" in text and "+100.0%" in text
        assert render_regressions([]) == "no regressions"

    def test_zero_baseline(self):
        regression = Regression(key=(), metric="x", baseline=0.0,
                                current=1.0)
        assert regression.change == float("inf")
