"""Worker reconnect: a dropped connection costs a handshake, not the
work. A completed-but-unsent result survives the reconnect and is
applied under the fresh epoch; a crashed-and-restarted coordinator gets
its workers back without any duplicate journal applications."""

import os
import threading
import time

from repro.experiments.harness import SweepRunner
from repro.experiments.journal import SweepJournal
from repro.service import (
    ChannelClosed,
    Coordinator,
    InProcTransport,
    ServiceWorker,
    SweepRequest,
)
from repro.service.gauntlet import _done_record_counts

REQUEST = {"figure": "fig1", "sizes": [2], "tasks": ["select"],
           "scale": 1 / 1024}


class _FlakySendChannel:
    """Dies (once) the moment the worker tries to send its first result,
    simulating a connection lost between computing and reporting."""

    def __init__(self, inner):
        self.inner = inner
        self.peer = inner.peer
        self.tripped = False

    def send(self, message):
        if not self.tripped and message.get("kind") == "result":
            self.tripped = True
            self.inner.close()
            raise ChannelClosed(f"{self.peer}: simulated connection loss")
        self.inner.send(message)

    def send_text(self, text):
        self.inner.send_text(text)

    def recv(self, timeout=None):
        return self.inner.recv(timeout)

    def poll(self):
        return self.inner.poll()

    def close(self):
        self.inner.close()


def _run_to_terminal(coordinator, timeout=60.0):
    deadline = time.monotonic() + timeout
    queue = coordinator.queue
    while not (queue.counts()["done"] + queue.counts()["failed"]):
        if not coordinator.step():
            time.sleep(0.002)
        assert time.monotonic() < deadline, "coordinator stalled"


def _inline_artifacts(tmp_path):
    out_dir = str(tmp_path / "inline-out")
    request = SweepRequest.from_dict(dict(REQUEST, out_dir=out_dir))
    request.run_with(SweepRunner(str(tmp_path / "inline.journal.jsonl")))
    return out_dir


def _assert_byte_identical(out_dir, inline_dir):
    for name in ("fig1.txt", "fig1.csv"):
        with open(os.path.join(out_dir, name), "rb") as service_file:
            with open(os.path.join(inline_dir, name), "rb") as inline_file:
                assert service_file.read() == inline_file.read(), name


class TestWorkerReconnect:
    def test_unsent_result_survives_reconnect_under_fresh_epoch(
            self, tmp_path):
        transport = InProcTransport()
        listener = transport.listen("coord")
        coordinator = Coordinator(str(tmp_path / "state"), listener,
                                  out_dir=str(tmp_path / "out"),
                                  retries=2, backoff=0.05)
        flaky = _FlakySendChannel(transport.connect("coord"))
        worker = ServiceWorker(
            flaky, "phoenix", heartbeat_interval=0.05,
            reconnect=lambda: transport.connect("coord", timeout=2.0),
            reconnect_backoff=0.01)
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        job = coordinator.submit(REQUEST)
        _run_to_terminal(coordinator)
        coordinator.close()
        thread.join(3.0)

        assert coordinator.queue.jobs[job.id].status == "done"
        assert flaky.tripped, "the simulated send failure never happened"
        assert worker.reconnects >= 1
        journal_path = coordinator.journal_path_for(job.id)
        counts = _done_record_counts(journal_path)
        assert len(counts) == 3, counts
        assert all(count == 1 for count in counts.values()), counts
        journal = SweepJournal.load(journal_path)
        assert journal.reconnects() >= 1
        _assert_byte_identical(str(tmp_path / "out"),
                               _inline_artifacts(tmp_path))

    def test_without_reconnect_factory_worker_exits(self, tmp_path):
        transport = InProcTransport()
        listener = transport.listen("coord")
        coordinator = Coordinator(str(tmp_path / "state"), listener,
                                  out_dir=str(tmp_path / "out"))
        channel = transport.connect("coord")
        worker = ServiceWorker(channel, "mortal", heartbeat_interval=0.05)
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        deadline = time.monotonic() + 5.0
        while "mortal" not in coordinator.workers:
            coordinator.step()
            assert time.monotonic() < deadline
        coordinator.workers["mortal"].channel.close()
        thread.join(5.0)
        assert not thread.is_alive(), "worker should give up, not spin"
        assert worker.reconnects == 0
        coordinator.close()


def _crash(coordinator):
    """Kill a coordinator the unclean way: no `stop` frames, just the
    listener and every channel yanked (state stays on disk)."""
    coordinator.stop()
    for state in coordinator.workers.values():
        state.channel.close()
    for channel in coordinator._unclassified:
        channel.close()
    if coordinator.active is not None:
        coordinator.active.journal.close()
    coordinator.queue.close()
    coordinator.listener.close()


class TestCoordinatorCrashRestart:
    def test_workers_reconnect_to_restarted_coordinator_exactly_once(
            self, tmp_path):
        transport = InProcTransport()
        listener = transport.listen("coord")
        first = Coordinator(str(tmp_path / "state"), listener,
                            out_dir=str(tmp_path / "out"),
                            retries=2, backoff=0.05)
        workers = []
        threads = []
        for index in range(2):
            worker = ServiceWorker(
                transport.connect("coord"), f"w{index + 1}",
                heartbeat_interval=0.05,
                reconnect=lambda: transport.connect("coord", timeout=2.0),
                reconnect_backoff=0.05, max_reconnects=10)
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            workers.append(worker)
            threads.append(thread)

        job = first.submit(REQUEST)
        deadline = time.monotonic() + 60.0
        while first.counters["results"] < 1:
            first.step()
            time.sleep(0.002)
            assert time.monotonic() < deadline
        _crash(first)
        done_before = SweepJournal.load(
            first.journal_path_for(job.id)).counts()["done"]
        assert done_before >= 1

        second = Coordinator(str(tmp_path / "state"),
                             transport.listen("coord"),
                             out_dir=str(tmp_path / "out"),
                             retries=2, backoff=0.05)
        assert [j.id for j in second.queue.pending()] == [job.id]
        _run_to_terminal(second)
        second.close()
        for thread in threads:
            thread.join(3.0)

        assert second.queue.jobs[job.id].status == "done"
        journal_path = second.journal_path_for(job.id)
        counts = _done_record_counts(journal_path)
        assert len(counts) == 3, counts
        assert all(count == 1 for count in counts.values()), counts
        assert sum(worker.reconnects for worker in workers) >= 1
        _assert_byte_identical(str(tmp_path / "out"),
                               _inline_artifacts(tmp_path))
