"""Tests for the Table 2 dataset descriptors."""

import pytest

from repro.workloads import TABLE2, TASKS, dataset_for

GB = 1_000_000_000


class TestTable2:
    def test_eight_tasks(self):
        assert len(TABLE2) == 8
        assert set(TASKS) == {"select", "aggregate", "groupby", "dcube",
                              "sort", "join", "dmine", "mview"}

    def test_published_sizes(self):
        assert TABLE2["select"].total_bytes == 16 * GB
        assert TABLE2["join"].total_bytes == 32 * GB
        assert TABLE2["mview"].total_bytes == 15 * GB

    def test_select_tuple_count_matches_paper(self):
        # 268 million 64-byte tuples.
        assert TABLE2["select"].tuple_count == pytest.approx(268e6, rel=0.07)

    def test_dcube_tuple_count_matches_paper(self):
        # 536 million 32-byte tuples.
        assert TABLE2["dcube"].tuple_count == pytest.approx(536e6, rel=0.07)

    def test_groupby_distinct(self):
        assert TABLE2["groupby"].params["distinct"] == 13_500_000

    def test_dmine_parameters(self):
        params = TABLE2["dmine"].params
        assert params["transactions"] == 300e6
        assert params["items"] == 1e6
        assert params["minsup"] == 0.001

    def test_mview_component_volumes(self):
        params = TABLE2["mview"].params
        assert params["derived_bytes"] == 4 * GB
        assert params["delta_bytes"] == 1 * GB


class TestScaling:
    def test_identity_scale(self):
        assert dataset_for("select", 1.0) is TABLE2["select"]

    def test_bytes_scale(self):
        scaled = dataset_for("select", 0.25)
        assert scaled.total_bytes == 4 * GB
        assert scaled.tuple_bytes == 64  # shape is preserved

    def test_volume_params_scale_but_densities_do_not(self):
        scaled = dataset_for("mview", 0.5)
        assert scaled.params["derived_bytes"] == 2 * GB
        assert scaled.params["delta_bytes"] == 0.5 * GB
        scaled_sel = dataset_for("select", 0.5)
        assert scaled_sel.params["selectivity"] == 0.01

    def test_scale_is_cumulative(self):
        scaled = dataset_for("sort", 0.5).scaled(0.5)
        assert scaled.total_bytes == 4 * GB
        assert scaled.scale == pytest.approx(0.25)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            dataset_for("select", 0.0)
        with pytest.raises(ValueError):
            dataset_for("select", 2.0)

    def test_unknown_task_rejected(self):
        with pytest.raises(KeyError):
            dataset_for("vacuum")
