"""Tests for repro.invariants: auditors, kernel parity, differential fuzz.

Four concerns:

* **Loop parity** — the fast, checked and audited kernel loops raise the
  same errors for the same defects (same class and message for fast vs
  checked; the audited loop upgrades kernel breaches to structured
  violations) and produce bit-identical simulations.
* **Deliberate corruption** — each auditor actually fires: a dropped or
  duplicated chunk breaks the drive's byte ledger, a double completion
  breaks request lifecycle, a scratch overdraw breaks the DiskOS memory
  budget, an over-granted stream buffer breaks occupancy bounds, a
  double-joined barrier breaks participation counts — and every
  violation carries an accurate expected-vs-observed ledger.
* **Armed-is-free** — arming every auditor changes no simulation result,
  up to and including regenerating Figure 1 byte-identically.
* **Differential fuzzing** — the seeded fuzz batch runs fast-audited vs
  checked on random small cells across all three architectures (with
  fault plans) and diffs the serialized results exactly.
"""

from types import SimpleNamespace

import pytest

from repro.experiments import config_for, run_task
from repro.experiments.artifacts import result_to_dict
from repro.experiments.journal import SweepJournal
from repro.experiments.workers import CellSpec, run_cell, run_cells
from repro.invariants import (
    NULL_INVARIANTS,
    InvariantAuditor,
    InvariantViolation,
    armed,
    default_auditor,
    is_armed,
)
from repro.sim import SimulationError, Simulator

SMALL = 1 / 512


def fast_sim():
    return Simulator()


def checked_sim():
    return Simulator(debug=True)


def audited_sim():
    sim = Simulator()
    InvariantAuditor().install(sim)
    return sim


ALL_LOOPS = [fast_sim, checked_sim, audited_sim]
LOOP_IDS = ["fast", "checked", "audited"]


def push_past_event(sim, at: float):
    """Corrupt the queue: an already-triggered event stamped in the past."""
    from repro.sim.core import Event
    event = Event(sim)
    event._triggered = True
    sim._queue.push([at, next(sim._counter), event])


class TestLoopParity:
    """Same defect, same exception — across all three run loops."""

    @pytest.mark.parametrize("make_sim", ALL_LOOPS, ids=LOOP_IDS)
    def test_past_event_raises_simulation_error(self, make_sim):
        sim = make_sim()

        def proc():
            yield sim.timeout(1.0)
            push_past_event(sim, at=0.5)
            yield sim.timeout(1.0)

        sim.process(proc())
        with pytest.raises(SimulationError,
                           match="event scheduled in the past"):
            sim.run()

    def test_fast_and_checked_messages_match_exactly(self):
        messages = []
        for make_sim in (fast_sim, checked_sim):
            sim = make_sim()

            def proc():
                yield sim.timeout(1.0)
                push_past_event(sim, at=0.5)
                yield sim.timeout(1.0)

            sim.process(proc())
            with pytest.raises(SimulationError) as excinfo:
                sim.run()
            messages.append((type(excinfo.value), str(excinfo.value)))
        assert messages[0] == messages[1]

    def test_audited_loop_reports_clock_monotonicity(self):
        sim = audited_sim()

        def proc():
            yield sim.timeout(1.0)
            push_past_event(sim, at=0.25)
            yield sim.timeout(1.0)

        sim.process(proc())
        with pytest.raises(InvariantViolation) as excinfo:
            sim.run()
        violation = excinfo.value
        assert violation.invariant == "clock-monotonicity"
        assert violation.component == "sim.kernel"
        assert "t=0.25" in violation.observed
        report = violation.report()
        assert report["invariant"] == "clock-monotonicity"
        assert report["sim_time"] == 1.0

    @pytest.mark.parametrize("make_sim", ALL_LOOPS, ids=LOOP_IDS)
    def test_non_event_yield_parity(self, make_sim):
        sim = make_sim()

        def bad():
            yield 42

        sim.process(bad())
        with pytest.raises(SimulationError, match="must yield Event"):
            sim.run()

    @pytest.mark.parametrize("make_sim", ALL_LOOPS, ids=LOOP_IDS)
    def test_stall_detection_parity(self, make_sim):
        from repro.sim import Event, SimStalled
        sim = make_sim()

        def stuck():
            yield Event(sim)

        sim.process(stuck(), name="stuck-waiter")
        with pytest.raises(SimStalled, match="stuck-waiter"):
            sim.run()

    @pytest.mark.parametrize("make_sim", ALL_LOOPS, ids=LOOP_IDS)
    def test_identical_simulation_results(self, make_sim):
        result = run_task(config_for("cluster", 2), "select", scale=SMALL,
                          invariants=(InvariantAuditor()
                                      if make_sim is audited_sim else None),
                          debug=make_sim is checked_sim)
        baseline = run_task(config_for("cluster", 2), "select", scale=SMALL)
        assert result_to_dict(result) == result_to_dict(baseline)


class TestArmedIsFree:
    """Armed auditors only observe: results match disarmed bit-for-bit."""

    @pytest.mark.parametrize("arch", ("active", "cluster", "smp"))
    def test_armed_run_bit_identical(self, arch):
        config = config_for(arch, 4)
        disarmed = run_task(config, "groupby", scale=SMALL)
        hub = InvariantAuditor()
        audited = run_task(config, "groupby", scale=SMALL, invariants=hub)
        assert result_to_dict(audited) == result_to_dict(disarmed)
        assert not hub.violations
        assert hub.counters["invariants.final_audits"] == 1
        assert hub.counters["invariants.phase_audits"] >= 1

    def test_armed_context_arms_run_task(self):
        assert not is_armed()
        assert default_auditor() is None
        with armed():
            assert is_armed()
            assert default_auditor() is not None
        assert not is_armed()

    def test_disarmed_simulator_carries_null_singleton(self):
        assert Simulator().invariants is NULL_INVARIANTS

    def test_armed_fig1_regeneration_is_byte_identical(self):
        # Satellite check of the whole contract: every auditor armed on
        # every cell of the quick Figure 1 column, output byte-compared
        # to the checked-in results/ baseline, nothing raised.
        from repro.perfbench.e2e import fig1_identity_check
        with armed():
            report = fig1_identity_check(quick=True)
        assert report["identical"] is True
        assert report["cells"] == 24


class TestDeliberateCorruption:
    """Each corruption trips its auditor with an accurate ledger."""

    def _armed_machine(self, arch="cluster", disks=2):
        from repro.arch import build_machine
        sim = Simulator()
        InvariantAuditor().install(sim)
        machine = build_machine(sim, config_for(arch, disks))
        return sim, machine

    def _program(self, arch, disks, task="select", scale=SMALL):
        from repro.workloads import build_program
        return build_program(task, config_for(arch, disks), scale)

    def test_duplicated_chunk_breaks_byte_conservation(self):
        sim, machine = self._armed_machine("cluster", 2)
        drive = machine.nodes[0].drive

        def duplicate_chunk():
            yield sim.timeout(0.01)
            drive.bytes_read += 4096   # a chunk counted twice

        sim.process(duplicate_chunk(), name="corruptor")
        with pytest.raises(InvariantViolation) as excinfo:
            machine.run(self._program("cluster", 2))
        violation = excinfo.value
        assert violation.invariant == "byte-conservation"
        assert violation.component == f"drive.{drive.name}"
        expected = violation.expected["bytes_read"]
        assert violation.observed["bytes_read"] == expected + 4096

    def test_dropped_chunk_breaks_byte_conservation(self):
        sim, machine = self._armed_machine("cluster", 2)
        drive = machine.nodes[1].drive

        def drop_chunk():
            yield sim.timeout(0.01)
            drive.bytes_read -= 4096   # a chunk lost from the tally

        sim.process(drop_chunk(), name="corruptor")
        with pytest.raises(InvariantViolation) as excinfo:
            machine.run(self._program("cluster", 2))
        violation = excinfo.value
        assert violation.invariant == "byte-conservation"
        expected = violation.expected["bytes_read"]
        assert violation.observed["bytes_read"] == expected - 4096

    def test_double_completion_breaks_request_lifecycle(self):
        sim, machine = self._armed_machine("cluster", 2)
        drive = machine.nodes[0].drive
        caught = []

        def double_complete():
            request = yield drive.read(0, 4096)
            try:
                drive._audit.request_completed(request)
            except InvariantViolation as violation:
                caught.append(violation)

        sim.process(double_complete())
        sim.run()
        assert len(caught) == 1
        violation = caught[0]
        assert violation.invariant == "request-lifecycle"
        assert "extra completion" in str(violation.observed)

    def test_scratch_overdraw_breaks_memory_budget(self):
        sim, machine = self._armed_machine("active", 2)
        node = machine.nodes[0]
        limit = node.scratch_audit.limit
        node.scratch_audit.reserve(limit, "legitimate phase scratch")
        with pytest.raises(InvariantViolation) as excinfo:
            node.scratch_audit.reserve(1, "the overdraw")
        violation = excinfo.value
        assert violation.invariant == "memory-budget"
        assert violation.expected == {"limit_bytes": limit}
        assert violation.observed == {"reserved_bytes": limit + 1}

    def test_buffer_overgrant_breaks_occupancy_bounds(self):
        from repro.diskos.streams import StreamBufferProbe
        from repro.telemetry import NULL_TELEMETRY
        sim = Simulator()
        hub = InvariantAuditor().install(sim)
        probe = StreamBufferProbe(NULL_TELEMETRY, "comm0", capacity=2,
                                  invariants=hub)
        probe.acquire()
        probe.acquire()
        with pytest.raises(InvariantViolation) as excinfo:
            probe.acquire()
        violation = excinfo.value
        assert violation.invariant == "occupancy-bounds"
        assert violation.observed == 3

    def test_double_barrier_join_breaks_participation(self):
        hub = InvariantAuditor()
        auditor = hub.messaging_auditor("net.messaging", num_hosts=4)
        auditor.join("barrier", "phase0", host=1, participants=4)
        with pytest.raises(InvariantViolation) as excinfo:
            auditor.join("barrier", "phase0", host=1, participants=4)
        violation = excinfo.value
        assert violation.invariant == "participation-count"
        assert "host 1 joined twice" in str(violation.observed)

    def test_shuffle_drop_breaks_phase_ledger(self):
        hub = InvariantAuditor()
        machine = SimpleNamespace(arch="cluster",
                                  _frontend_bytes_observed=lambda: None)
        auditor = hub.machine_auditor(machine)
        phase = SimpleNamespace(name="scan", read_bytes_total=1000,
                                shuffle_fraction=0.5, frontend_fraction=0.0)
        auditor.loop_started(phase)
        auditor.processed(phase, 1000)
        auditor.sent_shuffle(phase, 500)
        auditor.delivered_shuffle(phase, 400)   # 100 bytes vanished
        with pytest.raises(InvariantViolation) as excinfo:
            auditor.phase_finished(phase)
        violation = excinfo.value
        assert violation.invariant == "shuffle-conservation"
        assert violation.expected == {"delivered_bytes": 500}
        assert violation.observed == {"delivered_bytes": 400}


def _violating_cell(spec):
    raise InvariantViolation("drive.test0", "byte-conservation", 0.125,
                             expected={"bytes_read": 8192},
                             observed={"bytes_read": 4096},
                             detail="synthetic defect for routing tests")


class TestViolationRouting:
    """InvariantViolation quarantines immediately, report attached."""

    SPEC = CellSpec(task="select", arch="cluster", num_disks=2,
                    scale=SMALL)

    def test_inline_pool_quarantines_without_retry(self):
        events = []
        outcomes = run_cells(
            [self.SPEC], retries=3, cell_fn=_violating_cell,
            on_attempt_failed=lambda s, a, e, kind: events.append(kind))
        assert events == ["violation"]
        outcome = outcomes[0]
        assert outcome.status == "quarantined"
        assert outcome.attempts == 1     # deterministic: no retries burned
        assert outcome.violation["invariant"] == "byte-conservation"
        assert outcome.violation["expected"] == {"bytes_read": 8192}

    def test_subprocess_pool_routes_violation_report(self):
        events = []
        outcomes = run_cells(
            [self.SPEC], jobs=2, retries=3, cell_fn=_violating_cell,
            on_attempt_failed=lambda s, a, e, kind: events.append(kind))
        assert events == ["violation"]
        outcome = outcomes[0]
        assert outcome.status == "quarantined"
        assert outcome.attempts == 1
        assert outcome.violation["component"] == "drive.test0"
        assert outcome.violation["sim_time"] == 0.125

    def test_harness_counters_and_journal_field(self, tmp_path, monkeypatch):
        import repro.experiments.harness as harness
        from repro.experiments import SweepRunner

        def fake_run_cells(specs, **kwargs):
            outcomes = []
            for spec in specs:
                kwargs["on_start"](spec, 0)
                try:
                    _violating_cell(spec)
                except InvariantViolation as violation:
                    kwargs["on_attempt_failed"](spec, 0, str(violation),
                                                "violation")
                    from repro.experiments.workers import CellOutcome
                    outcome = CellOutcome(spec, "quarantined", 1,
                                          error=str(violation),
                                          violation=violation.report())
                    kwargs["on_outcome"](outcome)
                    outcomes.append(outcome)
            return outcomes

        monkeypatch.setattr(harness, "run_cells", fake_run_cells)
        path = str(tmp_path / "sweep.journal.jsonl")
        runner = SweepRunner(path, strict=False)
        runner.run([self.SPEC])
        assert runner.counters["violations"] == 1
        assert runner.counters["quarantined"] == 1

        journal = SweepJournal.load(path)
        assert list(journal.violated()) == [self.SPEC.key]
        cell = journal.cells[self.SPEC.key]
        assert cell.status == "quarantined"
        assert cell.violation["invariant"] == "byte-conservation"
        assert cell.violation["detail"] == ("synthetic defect for "
                                            "routing tests")


class TestDifferentialFuzz:
    """The seeded batch: fast-audited vs checked, diffed exactly."""

    def test_batch_is_deterministic_and_covers_the_space(self):
        from repro.invariants.fuzz import FUZZ_ARCHS, fuzz_cells
        cells = fuzz_cells(count=25, seed=3)
        assert cells == fuzz_cells(count=25, seed=3)
        assert cells != fuzz_cells(count=25, seed=4)
        assert {spec.arch for spec in cells} == set(FUZZ_ARCHS)
        assert sum(1 for spec in cells if spec.fault_disk is not None) == 5
        assert all(spec.audit for spec in cells)
        assert len({spec.key for spec in cells}) == 25

    def test_twenty_five_cells_pass_differentially(self, tmp_path):
        from repro.invariants.fuzz import run_fuzz
        path = str(tmp_path / "fuzz.journal.jsonl")
        report = run_fuzz(count=25, seed=0, journal_path=path)
        assert report.ok, report.summary()
        assert len(report.outcomes) == 25
        assert {o.spec.arch for o in report.outcomes} == {
            "active", "cluster", "smp"}
        assert any(o.spec.fault_disk is not None for o in report.outcomes)
        journal = SweepJournal.load(path)
        assert journal.counts()["done"] == 25
        assert not journal.violated()

    def test_divergence_is_reported(self, monkeypatch):
        from repro.invariants import fuzz

        def fake_run_cell(spec, invariants=None, debug=False):
            result = run_cell(
                CellSpec(task="select", arch="cluster", num_disks=2,
                         scale=SMALL))
            if debug:
                result.elapsed += 1e-9   # the loops disagree
            return result

        monkeypatch.setattr(fuzz, "run_cell", fake_run_cell)
        report = fuzz.run_fuzz(count=1, seed=0)
        assert not report.ok
        assert report.outcomes[0].status == "diverged"
        assert any("elapsed" in line for line in report.outcomes[0].diff)

    def test_violation_is_reported_with_ledger(self, monkeypatch):
        from repro.invariants import fuzz
        monkeypatch.setattr(fuzz, "run_cell", _violating_cell_kw)
        report = fuzz.run_fuzz(count=1, seed=0)
        assert not report.ok
        outcome = report.outcomes[0]
        assert outcome.status == "violation"
        assert outcome.violation["observed"] == {"bytes_read": 4096}


def _violating_cell_kw(spec, invariants=None, debug=False):
    return _violating_cell(spec)


class TestAuditedCellSpec:
    """CellSpec.audit arms run_cell without disturbing old hashes."""

    def test_audit_default_keeps_config_hash_stable(self):
        spec = CellSpec(task="select", arch="smp", num_disks=2, scale=SMALL)
        assert "audit" not in spec.to_dict()
        armed_spec = CellSpec(task="select", arch="smp", num_disks=2,
                              scale=SMALL, audit=True)
        assert armed_spec.to_dict()["audit"] is True
        assert spec.config_hash() != armed_spec.config_hash()

    def test_audited_cell_runs_armed_and_matches_disarmed(self):
        spec = CellSpec(task="select", arch="smp", num_disks=2, scale=SMALL)
        audited = run_cell(
            CellSpec(task="select", arch="smp", num_disks=2, scale=SMALL,
                     audit=True))
        assert result_to_dict(audited) == result_to_dict(run_cell(spec))
