"""Tests for the experiment drivers (small configurations, tiny scale)."""

import pytest

from repro.experiments import (
    config_for,
    render_series,
    render_table,
    run_fig1,
    run_fig3,
    run_fig4,
    run_fig5,
    run_table1,
    run_table2,
    run_task,
)

TINY = 1 / 256


class TestRunner:
    def test_config_dispatch(self):
        assert config_for("active", 8).arch == "active"
        assert config_for("cluster", 8).arch == "cluster"
        assert config_for("smp", 8).arch == "smp"

    def test_unknown_arch_rejected(self):
        with pytest.raises(ValueError):
            config_for("mainframe", 8)

    def test_run_task_returns_result(self):
        result = run_task(config_for("active", 4), "select", scale=TINY)
        assert result.task == "select"
        assert result.elapsed > 0


class TestReport:
    def test_render_table(self):
        text = render_table("T", ("a", "b"), [(1, 2.5), ("x", 10000.0)])
        assert "T" in text and "a" in text and "10,000" in text

    def test_render_series(self):
        text = render_series("S", {"one": [1.0, 2.0], "two": [3.0]})
        assert "one" in text and "two" in text


class TestTables:
    def test_table1_contains_all_dates(self):
        text = run_table1()
        for token in ("8/98", "11/98", "7/99", "SMP"):
            assert token in text

    def test_table2_lists_all_tasks(self):
        text = run_table2()
        for task in ("select", "dcube", "dmine", "mview"):
            assert task in text


class TestFigureDrivers:
    def test_fig1_structure_and_render(self):
        result = run_fig1(sizes=(4, 8), tasks=("select", "aggregate"),
                          scale=TINY)
        assert result.normalized("select", "active", 4) == pytest.approx(1.0)
        assert result.normalized("select", "smp", 8) > 0
        text = result.render()
        assert "Figure 1" in text and "select" in text

    def test_fig3_breakdown_sums_to_one(self):
        result = run_fig3(sizes=(4,), scale=TINY)
        fractions = result.breakdown(4, "base")
        assert sum(fractions.values()) == pytest.approx(1.0, abs=0.01)
        assert "Figure 3" in result.render()

    def test_fig4_improvement_computed(self):
        result = run_fig4(sizes=(4,), tasks=("select",),
                          memories_mb=(32, 64), scale=TINY)
        assert abs(result.improvement("select", 4, 64)) < 10
        assert "Figure 4" in result.render()

    def test_fig5_slowdowns(self):
        result = run_fig5(sizes=(4,), tasks=("select", "sort"), scale=TINY)
        assert result.slowdown("select", 4) == pytest.approx(1.0, abs=0.05)
        assert result.slowdown("sort", 4) >= 1.0
        assert "Figure 5" in result.render()
