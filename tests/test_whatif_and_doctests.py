"""Tests for the what-if explorer, distributed Apriori, and doctests."""

import doctest

import pytest

from repro.analysis import (
    DesignPoint,
    design_space,
    pareto_frontier,
    render_design_space,
)
from repro.funcsim import FunctionalCluster
from repro.funcsim.apriori_support import count_support
from repro.workloads.algorithms import make_transactions, support_counts


class TestDesignSpace:
    def test_needs_tasks(self):
        with pytest.raises(ValueError):
            design_space([])

    def test_covers_grid(self):
        points = design_space(["select"], sizes=(16, 64),
                              archs=("active", "smp"))
        assert len(points) == 4
        assert {(p.arch, p.num_disks) for p in points} == {
            ("active", 16), ("active", 64), ("smp", 16), ("smp", 64)}

    def test_smp_never_on_the_frontier(self):
        """The paper's bottom line as a Pareto statement: for scan +
        sort workloads the SMP is dominated at every size."""
        points = design_space(["select", "sort"], sizes=(16, 64, 128))
        frontier = pareto_frontier(points)
        assert frontier
        assert all(p.arch != "smp" for p in frontier)

    def test_smp_bottleneck_is_the_loop(self):
        points = design_space(["select"], sizes=(64,), archs=("smp",))
        assert points[0].bottleneck == "io_interconnect"

    def test_frontier_is_nondominated(self):
        points = design_space(["groupby", "sort"], sizes=(16, 32, 64))
        frontier = pareto_frontier(points)
        for a in frontier:
            for b in points:
                assert not (b.seconds < a.seconds and b.price < a.price)

    def test_render_flags(self):
        points = design_space(["select"], sizes=(16, 128))
        text = render_design_space(points, budget_seconds=1.0)
        assert "over budget" in text and "frontier" in text

    def test_cost_seconds(self):
        point = DesignPoint(arch="active", num_disks=16, seconds=2.0,
                            price=100.0, bottleneck="x")
        assert point.cost_seconds == 200.0


class TestDistributedApriori:
    def test_counts_match_centralized(self):
        transactions = make_transactions(800, 40, seed=1)
        candidates = [(i,) for i in range(10)] + [(0, 1), (1, 2)]
        cluster = FunctionalCluster(workers=4)
        merged, stats = cluster.apriori_pass(transactions, candidates)
        reference = count_support(transactions, candidates)
        assert merged == reference
        assert stats.elapsed > 0

    def test_counter_exchange_is_tiny(self):
        transactions = make_transactions(2_000, 60, seed=2)
        candidates = [(i,) for i in range(60)]
        cluster = FunctionalCluster(workers=8)
        _, stats = cluster.apriori_pass(transactions, candidates)
        data_bytes = sum(8 + 4 * len(t) for t in transactions)
        assert stats.bytes_exchanged < 0.3 * data_bytes

    def test_count_support_agrees_with_reference_counter(self):
        transactions = make_transactions(300, 20, seed=3)
        pairs = [(a, b) for a in range(5) for b in range(a + 1, 5)]
        ours = count_support(transactions, pairs)
        reference = support_counts(transactions, pairs)
        for pair in pairs:
            assert ours[pair] == reference[pair]


class TestDoctests:
    @pytest.mark.parametrize("module_name", [
        "repro.sim.core",
        "repro.sim.trace",
    ])
    def test_module_doctests(self, module_name):
        import importlib
        module = importlib.import_module(module_name)
        results = doctest.testmod(module, verbose=False)
        assert results.attempted > 0
        assert results.failed == 0
