"""Unit tests for host models: CPU scaling, OS costs, AIO, striping."""

import pytest

from repro.disk import DiskDrive, SEAGATE_ST39102
from repro.host import (
    LINUX_PII_300,
    REFERENCE_MHZ,
    AsyncIO,
    Cpu,
    StripedVolume,
    scaled_os_params,
)
from repro.sim import Simulator

KB = 1024


@pytest.fixture
def sim():
    return Simulator()


class TestCpu:
    def test_validation(self, sim):
        with pytest.raises(ValueError):
            Cpu(sim, 0)

    def test_scale_factor(self, sim):
        cpu = Cpu(sim, REFERENCE_MHZ / 2)
        assert cpu.scale == pytest.approx(2.0)
        assert cpu.scaled(1.0) == pytest.approx(2.0)

    def test_compute_scales_trace_time(self, sim):
        cpu = Cpu(sim, 550)  # 2x the reference clock
        def proc():
            yield from cpu.compute(1.0)
        sim.process(proc())
        sim.run()
        assert sim.now == pytest.approx(0.5)

    def test_compute_serializes_on_one_cpu(self, sim):
        cpu = Cpu(sim, REFERENCE_MHZ)
        def proc():
            yield from cpu.compute(1.0)
        sim.process(proc())
        sim.process(proc())
        sim.run()
        assert sim.now == pytest.approx(2.0)

    def test_busy_buckets(self, sim):
        cpu = Cpu(sim, REFERENCE_MHZ)
        def proc():
            yield from cpu.compute(1.0, bucket="hash")
            yield from cpu.compute_raw(0.5, bucket="os")
        sim.process(proc())
        sim.run()
        assert cpu.busy.buckets == {"hash": pytest.approx(1.0),
                                    "os": pytest.approx(0.5)}

    def test_zero_compute_is_free(self, sim):
        cpu = Cpu(sim, REFERENCE_MHZ)
        def proc():
            yield from cpu.compute(0.0)
        sim.process(proc())
        sim.run()
        assert sim.now == 0.0

    def test_negative_compute_rejected(self, sim):
        cpu = Cpu(sim, REFERENCE_MHZ)
        with pytest.raises(ValueError):
            list(cpu.compute(-1.0))


class TestOSParams:
    def test_published_figures(self):
        assert LINUX_PII_300.syscall == pytest.approx(10e-6)
        assert LINUX_PII_300.context_switch == pytest.approx(103e-6)
        assert LINUX_PII_300.driver_queue == pytest.approx(16e-6)

    def test_scaling_to_faster_cpu(self):
        fast = scaled_os_params(600)
        assert fast.syscall == pytest.approx(5e-6)
        assert fast.context_switch == pytest.approx(51.5e-6)

    def test_invalid_speed_rejected(self):
        with pytest.raises(ValueError):
            LINUX_PII_300.at_mhz(0)

    def test_io_cost_compositions(self):
        params = LINUX_PII_300
        assert params.io_submit_cost() == pytest.approx(26e-6)
        assert params.io_complete_cost() == pytest.approx(154.5e-6)


class TestAsyncIO:
    def make(self, sim, depth=2):
        cpu = Cpu(sim, 300)
        drive = DiskDrive(sim, SEAGATE_ST39102)
        aio = AsyncIO(sim, cpu, LINUX_PII_300.at_mhz(300),
                      drive.submit, depth=depth)
        return cpu, drive, aio

    def test_depth_validation(self, sim):
        with pytest.raises(ValueError):
            self.make(sim, depth=0)

    def test_submit_and_drain(self, sim):
        _, drive, aio = self.make(sim)
        def proc():
            for i in range(6):
                yield from aio.submit("read", i * 512, 64 * KB)
            yield from aio.drain()
        sim.process(proc())
        sim.run()
        assert aio.submitted == 6
        assert aio.completed == 6
        assert drive.bytes_read == 6 * 64 * KB

    def test_depth_bounds_inflight(self, sim):
        cpu, drive, aio = self.make(sim, depth=2)
        max_inflight = []
        def proc():
            for i in range(8):
                yield from aio.submit("read", i * 512, 64 * KB)
                max_inflight.append(aio.submitted - aio.completed)
            yield from aio.drain()
        sim.process(proc())
        sim.run()
        assert max(max_inflight) <= 2 + 1  # +1: completion cost pending

    def test_os_costs_charged_on_cpu(self, sim):
        cpu, _, aio = self.make(sim)
        def proc():
            yield from aio.submit("read", 0, 64 * KB)
            yield from aio.drain()
        sim.process(proc())
        sim.run()
        assert cpu.busy.buckets["os"] > 0


class TestStripedVolume:
    def make_volume(self, sim, drives=4, chunk=64 * KB):
        disks = [DiskDrive(sim, SEAGATE_ST39102, name=f"d{i}")
                 for i in range(drives)]
        return disks, StripedVolume(sim, disks, chunk_bytes=chunk)

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            StripedVolume(sim, [])
        disks = [DiskDrive(sim, SEAGATE_ST39102)]
        with pytest.raises(ValueError):
            StripedVolume(sim, disks, chunk_bytes=1000)  # not sector mult

    def test_request_spans_width_drives(self, sim):
        disks, volume = self.make_volume(sim)
        def proc():
            yield volume.read(0, 256 * KB)
        sim.process(proc())
        sim.run()
        assert all(d.bytes_read == 64 * KB for d in disks)

    def test_round_robin_layout(self, sim):
        disks, volume = self.make_volume(sim)
        def proc():
            yield volume.read(0, 64 * KB)       # drive 0
            yield volume.read(64 * KB, 64 * KB)  # drive 1
            yield volume.read(4 * 64 * KB, 64 * KB)  # drive 0, row 1
        sim.process(proc())
        sim.run()
        assert disks[0].bytes_read == 2 * 64 * KB
        assert disks[1].bytes_read == 64 * KB
        assert disks[2].bytes_read == 0

    def test_parallel_chunks_faster_than_serial(self, sim):
        _, volume = self.make_volume(sim)
        def proc():
            for i in range(10):
                yield volume.read(i * 256 * KB, 256 * KB)
        sim.process(proc())
        sim.run()
        parallel_time = sim.now
        sim2 = Simulator()
        drive = DiskDrive(sim2, SEAGATE_ST39102)
        def serial():
            lbn = 0
            for _ in range(10):
                yield drive.read(lbn, 256 * KB)
                lbn += 512
        sim2.process(serial())
        sim2.run()
        assert parallel_time < sim2.now

    def test_write_accounting(self, sim):
        disks, volume = self.make_volume(sim)
        def proc():
            yield volume.write(0, 512 * KB)
        sim.process(proc())
        sim.run()
        assert sum(d.bytes_written for d in disks) == 512 * KB

    def test_capacity(self, sim):
        disks, volume = self.make_volume(sim)
        assert volume.capacity_bytes() > 4 * 8e9

    def test_unaligned_offset_rejected(self, sim):
        _, volume = self.make_volume(sim)
        with pytest.raises(ValueError):
            volume._locate(1000)

    def test_bad_size_rejected(self, sim):
        _, volume = self.make_volume(sim)
        with pytest.raises(ValueError):
            volume.read(0, 0)
