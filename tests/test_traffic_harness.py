"""Traffic cells through the harness: journals, resume, oom budgets."""

import json
import os

import pytest

from repro.arch.base import RunResult
from repro.cli import main
from repro.experiments import SweepJournal, SweepRunner
from repro.experiments.workers import CellSpec, run_cells
from repro.traffic import TrafficConfig, run_traffic_cell, traffic_cell


def tconfig(**overrides):
    base = dict(arch="active", num_disks=16, sessions=200, load=1.5,
                queue_capacity=16)
    base.update(overrides)
    return TrafficConfig(**base)


class TestTrafficCells:
    def test_cellspec_round_trips_traffic_config(self):
        spec = traffic_cell(tconfig(policy="fair-share"))
        clone = CellSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.traffic == spec.traffic
        assert clone.config_hash() == spec.config_hash()

    def test_variant_distinguishes_load_and_policy(self):
        a = traffic_cell(tconfig(load=0.5))
        b = traffic_cell(tconfig(load=1.5))
        c = traffic_cell(tconfig(load=1.5, policy="deadline-drop"))
        assert len({a.key, b.key, c.key}) == 3

    def test_run_traffic_cell_returns_runresult(self):
        result = run_traffic_cell(traffic_cell(tconfig()))
        assert isinstance(result, RunResult)
        assert result.task == "traffic"
        assert result.extras["traffic.arrivals"] == 200.0

    def test_run_cell_dispatches_on_traffic_field(self):
        from repro.experiments.workers import run_cell
        spec = traffic_cell(tconfig())
        assert run_cell(spec).extras == run_traffic_cell(spec).extras

    def test_plain_cell_without_traffic_raises(self):
        with pytest.raises(ValueError, match="no traffic configuration"):
            run_traffic_cell(CellSpec(task="select", arch="active",
                                      num_disks=8))


class TestJournaledTraffic:
    def test_sweep_journals_and_resumes_byte_identically(self, tmp_path):
        journal_path = str(tmp_path / "traffic.journal.jsonl")
        specs = [traffic_cell(tconfig(load=load)) for load in (0.5, 1.5)]
        first = SweepRunner(journal_path).run(specs)

        resumed_runner = SweepRunner(journal_path)
        resumed = resumed_runner.run(specs)
        assert resumed_runner.counters["resumed_cells"] == 2
        assert resumed_runner.counters["completed"] == 0
        for key in first:
            assert resumed[key].extras == first[key].extras

    def test_journal_resume_rebuilds_spec_with_traffic(self, tmp_path):
        journal_path = str(tmp_path / "traffic.journal.jsonl")
        spec = traffic_cell(tconfig())
        SweepRunner(journal_path).run([spec])
        journal = SweepJournal.load(journal_path)
        state = journal.cells[spec.key]
        assert CellSpec.from_dict(state.spec) == spec


def hungry_cell(spec):
    """A cell that allocates far past any sane budget."""
    blob = bytearray(512 * 1024 * 1024)
    blob[0] = 1
    return RunResult(task=spec.task, arch=spec.arch,
                     num_disks=spec.num_disks, elapsed=1.0, phases=[])


class TestMemoryBudget:
    def spec(self):
        return CellSpec(task="select", arch="active", num_disks=8,
                        scale=1 / 256)

    def test_budget_bust_quarantines_as_oom_without_retry(self):
        outcomes = run_cells([self.spec()], cell_fn=hungry_cell,
                             memory_budget_mb=64, retries=3)
        outcome = outcomes[0]
        assert outcome.status == "quarantined"
        assert outcome.oom
        assert outcome.attempts == 1          # deterministic: no retries
        assert "64 MB memory budget" in outcome.error

    def test_within_budget_cell_completes(self):
        outcomes = run_cells([self.spec()], memory_budget_mb=2048)
        assert outcomes[0].status == "done"

    def test_budget_validation(self):
        with pytest.raises(ValueError, match="memory budget"):
            run_cells([self.spec()], memory_budget_mb=0)

    def test_journal_records_oom_and_doctor_reports_it(self, tmp_path,
                                                       capsys):
        journal_path = str(tmp_path / "oom.journal.jsonl")
        journal = SweepJournal(journal_path)
        journal.note_cell("traffic+active+16", "pending",
                          spec=traffic_cell(tconfig()).to_dict(),
                          config_hash="x")
        journal.note_cell("traffic+active+16", "quarantined",
                          error="cell exceeded its 64 MB memory budget",
                          oom=True)
        journal.close()

        loaded = SweepJournal.load(journal_path)
        assert list(loaded.oom_cells()) == ["traffic+active+16"]

        assert main(["doctor", "--journal", journal_path]) == 1
        out = capsys.readouterr().out
        assert "over their memory budget" in out
        assert "oom: traffic+active+16" in out

    def test_runner_counts_and_journals_ooms(self, tmp_path, monkeypatch):
        import repro.experiments.harness as harness_mod
        from repro.experiments.workers import run_cells as real_run_cells

        def with_hungry_cells(specs, **kwargs):
            kwargs["cell_fn"] = hungry_cell
            return real_run_cells(specs, **kwargs)

        monkeypatch.setattr(harness_mod, "run_cells", with_hungry_cells)
        journal_path = str(tmp_path / "oom2.journal.jsonl")
        runner = SweepRunner(journal_path, memory_budget_mb=64,
                             retries=2, strict=False)
        results = runner.run([self.spec()])
        assert results == {}
        assert runner.counters["ooms"] == 1
        assert runner.counters["quarantined"] == 1
        journal = SweepJournal.load(journal_path)
        assert list(journal.oom_cells()) == [self.spec().key]


class TestTrafficCLI:
    def test_traffic_writes_artifacts(self, tmp_path, capsys):
        out_dir = str(tmp_path / "out")
        assert main(["traffic", "--arch", "active", "--sessions", "300",
                     "--loads", "0.5,1.5", "--out-dir", out_dir]) == 0
        out = capsys.readouterr().out
        assert "every session accounted once" in out
        assert os.path.exists(os.path.join(out_dir, "traffic.txt"))
        assert os.path.exists(os.path.join(out_dir, "traffic.csv"))
        manifest = json.load(open(os.path.join(out_dir, "MANIFEST.json")))
        assert manifest

    def test_traffic_runs_are_byte_identical(self, tmp_path, capsys):
        texts = []
        for name in ("a", "b"):
            out_dir = str(tmp_path / name)
            assert main(["traffic", "--arch", "active", "--sessions",
                         "300", "--loads", "1.5", "--out-dir",
                         out_dir]) == 0
            with open(os.path.join(out_dir, "traffic.txt")) as handle:
                texts.append(handle.read())
        capsys.readouterr()
        assert texts[0] == texts[1]

    def test_traffic_journal_flag_enables_harness(self, tmp_path, capsys):
        out_dir = str(tmp_path / "out")
        journal_path = str(tmp_path / "t.journal.jsonl")
        assert main(["traffic", "--arch", "active", "--sessions", "200",
                     "--loads", "1.5", "--journal", journal_path,
                     "--out-dir", out_dir]) == 0
        out = capsys.readouterr().out
        assert "harness:" in out
        journal = SweepJournal.load(journal_path)
        assert journal.counts()["done"] == 1

    def test_doctor_smoke_includes_traffic_percentiles(self, capsys):
        assert main(["doctor"]) == 0
        out = capsys.readouterr().out
        assert "open-loop traffic (exact quantiles)" in out
        assert "p99" in out

    def test_sweep_knows_traffic_figure(self):
        from repro.cli import FIG_SWEEPS
        assert "traffic" in FIG_SWEEPS
