"""Tests for the durability gauntlet: CrashPointIO's power-loss model,
the end-to-end ``run_crashtest`` enumeration (every crash point must
recover), and the ``repro crashtest`` / ``repro doctor
--verify-artifacts`` CLI surfaces."""

import json
import os

import pytest

from repro.cli import main
from repro.durability import CrashPointIO, SimulatedCrash
from repro.durability.gauntlet import render_crashtest, run_crashtest
from repro.experiments.artifacts import write_manifest


# --------------------------------------------------- the power-loss model
class TestCrashPointIO:
    def test_counting_mode_passes_through(self, tmp_path):
        root = str(tmp_path)
        layer = CrashPointIO(root)
        handle = layer.open_append(os.path.join(root, "log"))
        layer.write(handle, b"hello\n")
        layer.fsync(handle)
        handle.close()
        layer.fsync_dir(root)
        assert [b.op for b in layer.boundaries] == [
            "create", "write", "fsync", "fsync_dir"]
        assert layer.crashed is None
        with open(os.path.join(root, "log"), "rb") as check:
            assert check.read() == b"hello\n"

    def test_created_entry_without_dir_fsync_vanishes(self, tmp_path):
        # fsync'd *content* is not enough: until the parent directory
        # is fsync'd the entry itself is volatile.
        root = str(tmp_path)
        path = os.path.join(root, "log")
        layer = CrashPointIO(root, crash_at=3)
        handle = layer.open_append(path)          # 0 create
        layer.write(handle, b"hello\n")           # 1
        layer.fsync(handle)                       # 2 content durable
        with pytest.raises(SimulatedCrash):
            layer.fsync(handle)                   # 3 crash
        handle.close()
        touched = layer.materialize()
        assert not os.path.exists(path)
        assert any("entry never durable" in note for note in touched)

    def test_dir_fsync_makes_the_entry_stick(self, tmp_path):
        root = str(tmp_path)
        path = os.path.join(root, "log")
        layer = CrashPointIO(root, crash_at=4)
        handle = layer.open_append(path)          # 0 create
        layer.fsync_dir(root)                     # 1 entry durable
        layer.write(handle, b"hello\n")           # 2
        layer.fsync(handle)                       # 3
        with pytest.raises(SimulatedCrash):
            layer.write(handle, b"world!\n")      # 4 torn write
        handle.close()
        layer.materialize()
        with open(path, "rb") as check:
            # Durable bytes plus half the interrupted buffer.
            assert check.read() == b"hello\n" + b"wor"

    def test_unsynced_write_is_lost(self, tmp_path):
        root = str(tmp_path)
        path = os.path.join(root, "log")
        layer = CrashPointIO(root, crash_at=3)
        handle = layer.open_append(path)          # 0 create
        layer.fsync_dir(root)                     # 1
        layer.write(handle, b"hello\n")           # 2 pending only
        with pytest.raises(SimulatedCrash):
            layer.fsync(handle)                   # 3 crash before flush
        handle.close()
        layer.materialize()
        with open(path, "rb") as check:
            assert check.read() == b""

    def test_rename_without_dir_fsync_keeps_old_content(self, tmp_path):
        root = str(tmp_path)
        dst = os.path.join(root, "report.txt")
        with open(dst, "wb") as seed:
            seed.write(b"old\n")                  # pre-existing: durable
        layer = CrashPointIO(root, crash_at=4)
        handle, tmp = layer.mkstemp(root, ".report.txt.", ".tmp")  # 0
        layer.write(handle, b"new\n")             # 1
        layer.fsync(handle)                       # 2
        handle.close()
        layer.replace(tmp, dst)                   # 3
        with pytest.raises(SimulatedCrash):
            layer.fsync_dir(root)                 # 4 rename still volatile
        layer.materialize()
        with open(dst, "rb") as check:
            assert check.read() == b"old\n"
        assert not [name for name in os.listdir(root)
                    if name.endswith(".tmp")]

    def test_boundary_labels_are_deterministic(self, tmp_path):
        # mkstemp's random token is normalized so the same workload
        # enumerates the same labels run after run.
        labels = []
        for attempt in range(2):
            root = str(tmp_path / f"r{attempt}")
            os.makedirs(root)
            layer = CrashPointIO(root)
            handle, tmp = layer.mkstemp(root, ".x.csv.", ".tmp")
            layer.write(handle, b"1\n")
            handle.close()
            labels.append([b.label for b in layer.boundaries])
        assert labels[0] == labels[1]
        assert labels[0][0] == "0:create:.x.csv..tmp"
        assert labels[0][1] == "1:write:.x.csv.*.tmp"

    def test_outside_root_is_untracked(self, tmp_path):
        root = str(tmp_path / "sandbox")
        os.makedirs(root)
        outside = str(tmp_path / "elsewhere.log")
        layer = CrashPointIO(root, crash_at=0)
        handle = layer.open_append(outside)  # no boundary, no crash
        layer.write(handle, b"x\n")
        handle.close()
        assert layer.boundaries == []
        assert os.path.exists(outside)


# ----------------------------------------------------- the full gauntlet
class TestRunCrashtest:
    def test_quick_gauntlet_recovers_every_point(self, tmp_path):
        out_dir = str(tmp_path / "results")
        report = run_crashtest(out_dir=out_dir, seed=0, quick=True)
        assert report["ok"], render_crashtest(report)
        assert report["recovered"] == report["points"] > 0
        assert all(f["ok"] for f in report["faults"])
        assert len(report["faults"]) == 4
        report_path = os.path.join(out_dir, "crashtest-report.json")
        with open(report_path, encoding="utf-8") as handle:
            assert json.load(handle)["ok"] is True
        assert "crashtest: OK" in render_crashtest(report)
        # Passing sandboxes are cleaned up; references are kept.
        leftovers = os.listdir(os.path.join(out_dir, "crashtest"))
        assert not [name for name in leftovers if "-p0" in name]

    def test_full_gauntlet_enumerates_fifty_plus_points(self, tmp_path):
        out_dir = str(tmp_path / "results")
        report = run_crashtest(out_dir=out_dir, seed=0, quick=False)
        assert report["ok"], render_crashtest(report)
        total = sum(w["boundaries"] for w in report["workloads"])
        assert total >= 50
        assert report["recovered"] == report["points"] == total

    def test_points_cap_samples_evenly(self, tmp_path):
        out_dir = str(tmp_path / "results")
        report = run_crashtest(out_dir=out_dir, seed=0, quick=True,
                               points=3)
        assert report["ok"], render_crashtest(report)
        for workload in report["workloads"]:
            assert workload["points"] == 3
            indices = [o["point"] for o in workload["outcomes"]]
            assert indices[0] == 0
            assert indices[-1] == workload["boundaries"] - 1


# --------------------------------------------------------------- the CLI
class TestCrashtestCli:
    def test_crashtest_command(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["crashtest", "--quick", "--points", "2",
                     "--out-dir", "out"]) == 0
        printed = capsys.readouterr().out
        assert "crashtest: OK" in printed
        assert os.path.exists(os.path.join("out",
                                           "crashtest-report.json"))

    def test_doctor_verify_artifacts(self, capsys, tmp_path,
                                     monkeypatch):
        monkeypatch.chdir(tmp_path)
        os.makedirs("arts")
        with open(os.path.join("arts", "fig1.csv"), "w") as handle:
            handle.write("disks,speedup\n16,1.0\n")
        write_manifest("arts")
        assert main(["doctor", "--verify-artifacts", "arts"]) == 0
        assert "file(s) match their checksums" in capsys.readouterr().out
        with open(os.path.join("arts", "fig1.csv"), "a") as handle:
            handle.write("tampered\n")
        assert main(["doctor", "--verify-artifacts", "arts"]) == 1
        printed = capsys.readouterr().out
        assert "drift: fig1.csv: checksum mismatch" in printed

    def test_doctor_verify_artifacts_no_manifest(self, capsys, tmp_path,
                                                 monkeypatch):
        monkeypatch.chdir(tmp_path)
        os.makedirs("empty")
        assert main(["doctor", "--verify-artifacts", "empty"]) == 1
        assert "no MANIFEST.json" in capsys.readouterr().out
