"""Gap-fill tests: worker shares, distinct-value math, small helpers."""

import pytest

from repro.arch import ActiveDiskConfig, Phase, build_machine
from repro.sim import Simulator
from repro.workloads.datasets import TABLE2, _expected_distinct


class TestWorkerShare:
    def machine(self, disks):
        return build_machine(Simulator(), ActiveDiskConfig(num_disks=disks))

    def test_even_split(self):
        machine = self.machine(4)
        phase = Phase(name="p", read_bytes_total=4096)
        shares = [machine.worker_share(phase, w) for w in range(4)]
        assert shares == [1024] * 4

    def test_remainder_spread_to_low_workers(self):
        machine = self.machine(4)
        phase = Phase(name="p", read_bytes_total=4098)
        shares = [machine.worker_share(phase, w) for w in range(4)]
        assert sum(shares) == 4098
        assert max(shares) - min(shares) <= 1
        assert shares[0] >= shares[-1]

    def test_zero_volume(self):
        machine = self.machine(4)
        phase = Phase(name="p", read_bytes_total=0)
        assert all(machine.worker_share(phase, w) == 0 for w in range(4))


class TestExpectedDistinct:
    """The occupancy formula behind the group-by modelling decision."""

    def test_edge_cases(self):
        assert _expected_distinct(0, 100) == 0.0
        assert _expected_distinct(100, 0) == 0.0

    def test_few_samples_mostly_distinct(self):
        assert _expected_distinct(1_000_000, 100) == pytest.approx(
            100, rel=0.001)

    def test_many_samples_saturate_domain(self):
        assert _expected_distinct(100, 1_000_000) == pytest.approx(
            100, rel=0.001)

    def test_monotone_in_samples(self):
        values = [_expected_distinct(1000, n) for n in (10, 100, 1000,
                                                        10_000)]
        assert values == sorted(values)

    def test_uniform_keys_would_break_the_paper_memory_claim(self):
        """Why the group-by task assumes clustered keys: with *uniform*
        keys, a 128-way split of the fact table leaves each worker with
        ~1.9M mostly-unique groups — 60 MB of table, overflowing a 32 MB
        disk and contradicting the paper's memory-insensitivity. The
        clustered layout (13.5M/128 ~ 105K groups, 3.4 MB) matches it."""
        params = TABLE2["groupby"].params
        distinct = params["distinct"]
        tuples_per_worker = TABLE2["groupby"].tuple_count / 128
        uniform_local = _expected_distinct(distinct, tuples_per_worker)
        uniform_table = uniform_local * params["group_entry_bytes"]
        clustered_table = (distinct / 128) * params["group_entry_bytes"]
        assert uniform_table > 32e6          # would not fit 32 MB
        assert clustered_table < 8e6         # fits easily
