"""Tests for the sweep harness building blocks: journal records,
crash-safe artifacts, cell specs, and the config_for override
validation."""

import json
import os

import pytest

from repro.experiments import (
    CellSpec,
    build_config,
    config_for,
    result_from_dict,
    result_to_dict,
    run_cell,
    verify_manifest,
    write_manifest,
)
from repro.experiments.artifacts import (
    MANIFEST_NAME,
    atomic_write_text,
    sha256_file,
)
from repro.experiments.journal import SweepJournal


# ----------------------------------------------------------------- journal
class TestJournal:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "sweep.journal.jsonl")
        with SweepJournal.load(path) as journal:
            journal.note_sweep({"figure": "fig1", "scale": 0.25})
            journal.note_cell("a", "pending", spec={"task": "select"},
                              config_hash="abc")
            journal.note_cell("a", "running", attempt=0)
            journal.note_cell("a", "done", result={"elapsed": 1.0})
            journal.note_cell("b", "pending", spec={"task": "sort"},
                              config_hash="def")
        loaded = SweepJournal.load(path)
        assert loaded.meta == {"figure": "fig1", "scale": 0.25}
        assert loaded.cells["a"].status == "done"
        assert loaded.cells["a"].spec == {"task": "select"}
        assert loaded.cells["a"].result == {"elapsed": 1.0}
        assert loaded.cells["b"].status == "pending"
        assert set(loaded.done()) == {"a"}
        assert set(loaded.incomplete()) == {"b"}
        assert loaded.counts()["done"] == 1

    def test_torn_final_line_is_ignored(self, tmp_path):
        path = str(tmp_path / "sweep.journal.jsonl")
        with SweepJournal.load(path) as journal:
            journal.note_cell("a", "pending", spec={}, config_hash="x")
            journal.note_cell("a", "done", result={})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "cell", "key": "b", "sta')  # torn write
        loaded = SweepJournal.load(path)
        assert loaded.torn_lines == 1
        assert loaded.cells["a"].status == "done"
        assert "b" not in loaded.cells
        # The journal stays appendable after a torn tail.
        loaded.note_cell("b", "pending", spec={}, config_hash="y")
        loaded.close()
        assert SweepJournal.load(path).cells["b"].status == "pending"

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "sweep.journal.jsonl"
        good = json.dumps({"kind": "cell", "key": "a", "status": "pending"})
        path.write_text("not json at all\n" + good + "\n" + good + "\n")
        with pytest.raises(ValueError, match="corrupt journal"):
            SweepJournal.load(str(path))

    def test_failure_history_accumulates(self, tmp_path):
        path = str(tmp_path / "sweep.journal.jsonl")
        with SweepJournal.load(path) as journal:
            journal.note_cell("a", "pending", spec={}, config_hash="x")
            journal.note_cell("a", "failed", attempt=0, error="boom 1")
            journal.note_cell("a", "failed", attempt=1, error="boom 2")
            journal.note_cell("a", "quarantined", attempt=1,
                              error="boom 2")
        cell = SweepJournal.load(path).cells["a"]
        assert cell.status == "quarantined"
        assert cell.failures == ["boom 1", "boom 2", "boom 2"]

    def test_bad_status_rejected(self, tmp_path):
        journal = SweepJournal(str(tmp_path / "j.jsonl"))
        with pytest.raises(ValueError, match="bad status"):
            journal.note_cell("a", "exploded")

    def test_summary_mentions_counts(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with SweepJournal.load(path) as journal:
            journal.note_cell("a", "pending", spec={}, config_hash="x")
        assert "1 pending" in SweepJournal.load(path).summary()


# --------------------------------------------------------------- artifacts
class TestArtifacts:
    def test_atomic_write_replaces_whole_file(self, tmp_path):
        target = tmp_path / "out.csv"
        atomic_write_text(str(target), "old content\n")
        atomic_write_text(str(target), "new content\n")
        assert target.read_text() == "new content\n"
        leftovers = [p for p in os.listdir(tmp_path)
                     if p.endswith(".tmp")]
        assert not leftovers

    def test_manifest_round_trip_and_verify(self, tmp_path):
        atomic_write_text(str(tmp_path / "fig1.csv"), "a,b\n1,2\n")
        atomic_write_text(str(tmp_path / "fig1.txt"), "table\n")
        # journals and temporaries are excluded from the manifest
        (tmp_path / "fig1.journal.jsonl").write_text("{}\n")
        manifest = write_manifest(str(tmp_path))
        assert set(manifest["files"]) == {"fig1.csv", "fig1.txt"}
        assert verify_manifest(str(tmp_path)) == []
        (tmp_path / "fig1.csv").write_text("tampered")
        problems = verify_manifest(str(tmp_path))
        assert problems == ["fig1.csv: checksum mismatch"]

    def test_verify_reports_missing_file(self, tmp_path):
        atomic_write_text(str(tmp_path / "fig1.txt"), "x\n")
        write_manifest(str(tmp_path))
        (tmp_path / "fig1.txt").unlink()
        assert verify_manifest(str(tmp_path)) == ["fig1.txt: missing"]

    def test_verify_without_manifest(self, tmp_path):
        assert verify_manifest(str(tmp_path)) == [
            f"no {MANIFEST_NAME} in {tmp_path}"]

    def test_sha256_matches_hashlib(self, tmp_path):
        import hashlib
        payload = b"x" * 4096
        (tmp_path / "blob").write_bytes(payload)
        assert (sha256_file(str(tmp_path / "blob"))
                == hashlib.sha256(payload).hexdigest())


class TestResultRoundTrip:
    def test_bit_identical_round_trip(self):
        result = run_cell(CellSpec(task="select", arch="active",
                                   num_disks=2, scale=1 / 1024))
        rebuilt = result_from_dict(
            json.loads(json.dumps(result_to_dict(result))))
        assert rebuilt == result
        assert rebuilt.elapsed == result.elapsed  # exact, not approx

    def test_schema_version_checked(self):
        data = result_to_dict(run_cell(CellSpec(
            task="select", arch="active", num_disks=2, scale=1 / 1024)))
        data["schema"] = 999
        with pytest.raises(ValueError, match="schema version"):
            result_from_dict(data)

    @pytest.mark.parametrize("mutation", [
        lambda d: d.pop("task"),
        lambda d: d.__setitem__("elapsed", "fast"),
        lambda d: d["phases"][0].pop("busy"),
        lambda d: d["phases"][0]["busy"].__setitem__("scan", "lots"),
        lambda d: d["extras"].__setitem__("bytes", None),
    ])
    def test_malformed_payloads_rejected(self, mutation):
        data = result_to_dict(run_cell(CellSpec(
            task="select", arch="active", num_disks=2, scale=1 / 1024)))
        mutation(data)
        with pytest.raises(ValueError):
            result_from_dict(data)


# --------------------------------------------------------------- cell spec
class TestCellSpec:
    def test_key_includes_variant(self):
        a = CellSpec(task="sort", arch="active", num_disks=8)
        b = CellSpec(task="sort", arch="active", num_disks=8,
                     variant="restricted", restricted=True)
        assert a.key != b.key

    def test_dict_round_trip(self):
        spec = CellSpec(task="sort", arch="active", num_disks=16,
                        variant="fastio", scale=1 / 64,
                        interconnect_mb=400)
        assert CellSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown CellSpec fields"):
            CellSpec.from_dict({"task": "sort", "arch": "active",
                                "num_disks": 8, "warp_factor": 9})

    def test_config_hash_tracks_variant_knobs(self):
        base = CellSpec(task="sort", arch="active", num_disks=8)
        fast = CellSpec(task="sort", arch="active", num_disks=8,
                        interconnect_mb=400)
        assert base.config_hash() != fast.config_hash()
        assert base.config_hash() == CellSpec.from_dict(
            base.to_dict()).config_hash()

    def test_build_config_applies_variants(self):
        spec = CellSpec(task="sort", arch="active", num_disks=8,
                        memory_mb=64, interconnect_mb=400,
                        restricted=True)
        config = build_config(spec)
        assert config.disk_memory_bytes == 64 * 1_000_000
        assert config.interconnect_rate == 400 * 1_000_000
        assert config.direct_disk_to_disk is False

    def test_build_config_fastdisk_drive(self):
        from repro.disk import HITACHI_DK3E1T91
        config = build_config(CellSpec(
            task="sort", arch="active", num_disks=8,
            drive="HITACHI_DK3E1T91"))
        assert config.drive is HITACHI_DK3E1T91

    def test_build_config_unknown_drive(self):
        with pytest.raises(ValueError, match="unknown drive"):
            build_config(CellSpec(task="sort", arch="active",
                                  num_disks=8, drive="QUANTUM_BIGFOOT"))


# ----------------------------------------------------- config_for overrides
class TestConfigForValidation:
    def test_valid_override_accepted(self):
        config = config_for("active", 8, disk_cpu_mhz=400.0)
        assert config.disk_cpu_mhz == 400.0

    def test_unknown_field_lists_valid_ones(self):
        with pytest.raises(ValueError) as excinfo:
            config_for("active", 8, disk_cpu_mzh=400.0)  # typo
        message = str(excinfo.value)
        assert "disk_cpu_mzh" in message
        assert "disk_cpu_mhz" in message      # the valid spelling is listed
        assert "ActiveDiskConfig" in message

    def test_num_disks_keyword_still_works(self):
        # existing callers pass num_disks by keyword; stay compatible
        assert config_for("cluster", num_disks=8).num_disks == 8

    def test_num_disks_not_listed_as_override(self):
        with pytest.raises(ValueError) as excinfo:
            config_for("cluster", 8, nope=1)
        valid_part = str(excinfo.value).split("valid fields:")[1]
        assert "num_disks" not in valid_part

    def test_foreign_field_rejected_per_arch(self):
        # an SMP-only field is invalid for the cluster config
        with pytest.raises(ValueError, match="unknown ClusterConfig"):
            config_for("cluster", 8, stripe_chunk_bytes=65536)

    def test_unknown_arch_still_value_error(self):
        with pytest.raises(ValueError, match="unknown architecture"):
            config_for("mainframe", 8)
