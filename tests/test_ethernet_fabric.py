"""Tests for the NASD-style Ethernet fabric for Active Disks."""

import pytest

from repro.arch import ActiveDiskConfig
from repro.experiments import run_task

SCALE = 1 / 64


class TestConfig:
    def test_variant(self):
        config = ActiveDiskConfig(num_disks=8).with_ethernet()
        assert config.interconnect_kind == "ethernet"

    def test_runs_every_task_shape(self):
        config = ActiveDiskConfig(num_disks=8).with_ethernet()
        for task in ("select", "sort", "groupby"):
            result = run_task(config, task, 1 / 256)
            assert result.elapsed > 0


class TestTradeOff:
    """The Ethernet fabric inverts the FC loop's trade-off."""

    def test_scaling_bisection_wins_shuffles_at_128(self):
        fc = run_task(ActiveDiskConfig(num_disks=128), "sort",
                      SCALE).elapsed
        eth = run_task(ActiveDiskConfig(num_disks=128).with_ethernet(),
                       "sort", SCALE).elapsed
        assert eth < 0.8 * fc

    def test_thin_frontend_link_loses_groupby_at_128(self):
        fc = run_task(ActiveDiskConfig(num_disks=128), "groupby",
                      SCALE).elapsed
        eth = run_task(ActiveDiskConfig(num_disks=128).with_ethernet(),
                       "groupby", SCALE).elapsed
        assert eth > 1.5 * fc

    def test_small_farms_indifferent(self):
        fc = run_task(ActiveDiskConfig(num_disks=16), "sort",
                      SCALE).elapsed
        eth = run_task(ActiveDiskConfig(num_disks=16).with_ethernet(),
                       "sort", SCALE).elapsed
        assert eth == pytest.approx(fc, rel=0.15)

    def test_tiny_result_tasks_indifferent_everywhere(self):
        """aggregate ships bytes, not megabytes: no fabric can matter."""
        for disks in (16, 128):
            fc = run_task(ActiveDiskConfig(num_disks=disks), "aggregate",
                          SCALE).elapsed
            eth = run_task(
                ActiveDiskConfig(num_disks=disks).with_ethernet(),
                "aggregate", SCALE).elapsed
            assert eth == pytest.approx(fc, rel=0.1)

    def test_select_pays_the_thin_frontend_pipe_at_scale(self):
        """Even 1% of 16 GB (160 MB) chokes a 12.5 MB/s front-end link
        once the scan itself takes only seconds."""
        fc = run_task(ActiveDiskConfig(num_disks=128), "select",
                      SCALE).elapsed
        eth = run_task(ActiveDiskConfig(num_disks=128).with_ethernet(),
                       "select", SCALE).elapsed
        assert 1.2 < eth / fc < 2.5
