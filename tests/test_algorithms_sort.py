"""Tests for the reference external sort."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.algorithms import (
    external_sort,
    form_runs,
    make_sort_records,
    merge_runs,
    partition_by_key_range,
)


class TestPartition:
    def test_partitions_cover_everything(self):
        records = make_sort_records(1000, seed=1)
        parts = partition_by_key_range(records, workers=4)
        assert sum(len(p) for p in parts) == 1000

    def test_ranges_are_ordered(self):
        records = make_sort_records(1000, seed=2)
        parts = partition_by_key_range(records, workers=4)
        previous_max = -1
        for part in parts:
            if len(part):
                assert part.key.min() > previous_max
                previous_max = part.key.max()

    def test_validation(self):
        records = make_sort_records(10)
        with pytest.raises(ValueError):
            partition_by_key_range(records, workers=0)


class TestRuns:
    def test_runs_are_sorted(self):
        records = make_sort_records(500, seed=3)
        for run in form_runs(records, run_records=64):
            assert (np.diff(run.key) >= 0).all()

    def test_run_count_matches_memory_bound(self):
        records = make_sort_records(500, seed=4)
        runs = form_runs(records, run_records=64)
        assert len(runs) == (500 + 63) // 64

    def test_validation(self):
        with pytest.raises(ValueError):
            form_runs(make_sort_records(10), run_records=0)

    def test_stability(self):
        records = make_sort_records(200, seed=5)
        runs = form_runs(records, run_records=50)
        total = sum(len(r) for r in runs)
        assert total == 200


class TestMerge:
    def test_merge_produces_sorted_output(self):
        records = make_sort_records(300, seed=6)
        merged = merge_runs(form_runs(records, run_records=37))
        assert (np.diff(merged.key) >= 0).all()
        assert len(merged) == 300

    def test_merge_is_permutation(self):
        records = make_sort_records(200, seed=7)
        merged = merge_runs(form_runs(records, run_records=23))
        assert sorted(merged.payload.tolist()) == sorted(
            records.payload.tolist())

    def test_merge_empty(self):
        assert len(merge_runs([])) == 0


class TestEndToEnd:
    def test_global_sortedness(self):
        records = make_sort_records(2000, seed=8)
        parts = external_sort(records, workers=4, run_records=100)
        keys = np.concatenate([p.key for p in parts if len(p)])
        assert (np.diff(keys) >= 0).all()

    def test_no_records_lost(self):
        records = make_sort_records(1500, seed=9)
        parts = external_sort(records, workers=3, run_records=128)
        payloads = np.concatenate([p.payload for p in parts if len(p)])
        assert sorted(payloads.tolist()) == list(range(1500))

    @given(st.integers(min_value=0, max_value=1000),
           st.integers(min_value=1, max_value=8),
           st.integers(min_value=1, max_value=200),
           st.integers(min_value=0, max_value=50))
    @settings(max_examples=40, deadline=None)
    def test_sort_property(self, count, workers, run_records, seed):
        records = make_sort_records(count, seed=seed)
        parts = external_sort(records, workers=workers,
                              run_records=run_records)
        keys = np.concatenate([p.key for p in parts if len(p)]) \
            if any(len(p) for p in parts) else np.array([])
        assert len(keys) == count
        if count > 1:
            assert (np.diff(keys) >= 0).all()
