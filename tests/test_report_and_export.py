"""Tests for report rendering (bars) and structured export."""

import csv
import io
import json

import pytest

from repro.experiments import (
    fig1_rows,
    fig3_rows,
    fig4_rows,
    fig5_rows,
    render_bars,
    render_grouped_bars,
    rows_to_csv,
    rows_to_json,
    run_fig1,
    run_fig3,
    run_fig4,
    run_fig5,
)

TINY = 1 / 512


@pytest.fixture(scope="module")
def fig1():
    return run_fig1(sizes=(4,), tasks=("select", "aggregate"), scale=TINY)


class TestBars:
    def test_longest_bar_has_full_width(self):
        text = render_bars("T", {"a": 1.0, "b": 4.0}, width=20)
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "#" * 20 in text
        assert text.count("#" * 20) == 1

    def test_bar_lengths_proportional(self):
        text = render_bars("T", {"a": 1.0, "b": 2.0}, width=30)
        a_line = next(l for l in text.splitlines() if l.startswith("a"))
        b_line = next(l for l in text.splitlines() if l.startswith("b"))
        assert a_line.count("#") == 15
        assert b_line.count("#") == 30

    def test_zero_values_render_empty(self):
        text = render_bars("T", {"a": 0.0, "b": 1.0})
        a_line = next(l for l in text.splitlines() if l.startswith("a"))
        assert "#" not in a_line

    def test_empty_values(self):
        assert render_bars("T", {}) == "T"

    def test_grouped_bars_scale_across_groups(self):
        text = render_grouped_bars("G", {
            "g1": {"x": 2.0},
            "g2": {"x": 4.0},
        }, width=10)
        lines = text.splitlines()
        g1_bar = lines[lines.index("[g1]") + 1]
        g2_bar = lines[lines.index("[g2]") + 1]
        assert g1_bar.count("#") == 5
        assert g2_bar.count("#") == 10


class TestExport:
    def test_fig1_rows_complete(self, fig1):
        rows = fig1_rows(fig1)
        assert len(rows) == 1 * 2 * 3  # sizes x tasks x archs
        active = [r for r in rows if r["arch"] == "active"]
        assert all(r["normalized"] == pytest.approx(1.0) for r in active)

    def test_fig3_rows_fractions_sum_to_one(self):
        result = run_fig3(sizes=(4,), scale=TINY)
        rows = fig3_rows(result)
        by_phase = {}
        for row in rows:
            key = (row["disks"], row["variant"], row["phase"])
            by_phase.setdefault(key, 0.0)
            by_phase[key] += row["fraction"]
        for key, total in by_phase.items():
            assert total == pytest.approx(1.0, abs=0.02), key

    def test_fig4_rows_have_improvements(self):
        result = run_fig4(sizes=(4,), tasks=("select",),
                          memories_mb=(32, 64), scale=TINY)
        rows = fig4_rows(result)
        improved = [r for r in rows if "improvement_pct" in r]
        assert improved and all(r["memory_mb"] == 64 for r in improved)

    def test_fig5_rows_paired_modes(self):
        result = run_fig5(sizes=(4,), tasks=("select",), scale=TINY)
        rows = fig5_rows(result)
        modes = {row["mode"] for row in rows}
        assert modes == {"direct", "restricted"}

    def test_csv_round_trip(self, fig1):
        text = rows_to_csv(fig1_rows(fig1))
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == 6
        assert {"task", "arch", "elapsed_s"} <= set(parsed[0])

    def test_csv_empty(self):
        assert rows_to_csv([]) == ""

    def test_json_round_trip(self, fig1):
        rows = json.loads(rows_to_json(fig1_rows(fig1)))
        assert len(rows) == 6
        assert all(isinstance(r["elapsed_s"], float) for r in rows)
