"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main, parse_scale


class TestParseScale:
    def test_fraction_syntax(self):
        assert parse_scale("1/32") == pytest.approx(1 / 32)

    def test_decimal_syntax(self):
        assert parse_scale("0.25") == pytest.approx(0.25)

    def test_unit(self):
        assert parse_scale("1") == 1.0

    def test_out_of_range(self):
        import argparse
        with pytest.raises(argparse.ArgumentTypeError):
            parse_scale("2")
        with pytest.raises(argparse.ArgumentTypeError):
            parse_scale("0")


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_arch_and_task(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--task", "select"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--arch", "active"])

    def test_unknown_task_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--arch", "active", "--task", "vacuum"])

    def test_bad_task_list_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig1", "--tasks", "select,vacuum"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "select" in out and "active" in out

    def test_run(self, capsys):
        assert main(["run", "--arch", "active", "--disks", "8",
                     "--task", "select", "--scale", "1/256"]) == 0
        out = capsys.readouterr().out
        assert "elapsed" in out and "phase scan" in out

    def test_run_with_variants(self, capsys):
        assert main(["run", "--arch", "active", "--disks", "8",
                     "--task", "sort", "--scale", "1/256",
                     "--memory-mb", "64", "--restricted"]) == 0
        out = capsys.readouterr().out
        assert "frontend_relay_bytes" in out

    def test_run_fibreswitch(self, capsys):
        assert main(["run", "--arch", "active", "--disks", "8",
                     "--task", "sort", "--scale", "1/256",
                     "--fibreswitch", "4"]) == 0

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "8/98" in capsys.readouterr().out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "dmine" in capsys.readouterr().out

    def test_fig1_small(self, capsys):
        assert main(["fig1", "--sizes", "4", "--tasks", "select",
                     "--scale", "1/256"]) == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_fig5_small(self, capsys):
        assert main(["fig5", "--sizes", "4", "--tasks", "select",
                     "--scale", "1/256"]) == 0
        assert "Figure 5" in capsys.readouterr().out


class TestHarnessCommands:
    def test_doctor(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["doctor"]) == 0
        out = capsys.readouterr().out
        assert "smoke: select on active" in out
        assert "checks passed" in out

    def test_sweep_writes_artifacts_and_manifest(self, capsys, tmp_path):
        out_dir = str(tmp_path / "results")
        assert main(["sweep", "fig1", "--sizes", "4", "--tasks", "select",
                     "--scale", "1/256", "--out-dir", out_dir]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "harness:" in out
        from repro.experiments import verify_manifest
        assert verify_manifest(out_dir) == []
        assert (tmp_path / "results" / "fig1.csv").exists()
        assert (tmp_path / "results" / "fig1.journal.jsonl").exists()

    def test_resume_completed_sweep_is_all_cache_hits(self, capsys,
                                                      tmp_path):
        out_dir = str(tmp_path / "results")
        assert main(["sweep", "fig1", "--sizes", "4", "--tasks", "select",
                     "--scale", "1/256", "--out-dir", out_dir]) == 0
        first = capsys.readouterr().out
        journal = str(tmp_path / "results" / "fig1.journal.jsonl")
        assert main(["resume", journal]) == 0
        second = capsys.readouterr().out
        assert "resumed" in second
        # the re-rendered figure is identical to the first run's
        assert [line for line in first.splitlines() if "|" in line] == \
               [line for line in second.splitlines() if "|" in line]

    def test_resume_missing_journal_fails(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["resume"])   # journal path is required
        assert main(["resume", str(tmp_path / "nope.jsonl")]) == 1
