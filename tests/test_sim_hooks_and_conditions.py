"""Sim-core edge cases the telemetry hooks rely on.

Covers: Simulator lifecycle-hook invocation order, AnyOf/AllOf
completion ordering, process termination mid-span, and the TraceLog
ring-buffer wraparound + telemetry delegation satellite work.
"""

import pytest

from repro.sim import AllOf, AnyOf, Interrupt, Simulator, TraceLog
from repro.telemetry import Telemetry


class TestLifecycleHooks:
    def test_hooks_run_in_registration_order(self):
        sim = Simulator()
        calls = []

        class Hook:
            def __init__(self, tag):
                self.tag = tag

            def run_started(self, s):
                calls.append(("started", self.tag))

            def run_finished(self, s):
                calls.append(("finished", self.tag))

        sim.add_hook(Hook("a"))
        sim.add_hook(Hook("b"))

        def proc():
            yield sim.timeout(1.0)

        sim.process(proc())
        sim.run()
        assert calls == [("started", "a"), ("started", "b"),
                         ("finished", "a"), ("finished", "b")]

    def test_add_hook_is_idempotent(self):
        sim = Simulator()
        calls = []

        class Hook:
            def run_started(self, s):
                calls.append("started")

        hook = Hook()
        sim.add_hook(hook)
        sim.add_hook(hook)
        sim.run()
        assert calls == ["started"]

    def test_partial_hooks_tolerated(self):
        sim = Simulator()
        calls = []

        class StartOnly:
            def run_started(self, s):
                calls.append("start")

        class FinishOnly:
            def run_finished(self, s):
                calls.append("finish")

        sim.add_hook(StartOnly())
        sim.add_hook(FinishOnly())
        sim.run()
        assert calls == ["start", "finish"]

    def test_run_finished_fires_even_when_a_process_raises(self):
        sim = Simulator()
        calls = []

        class Hook:
            def run_finished(self, s):
                calls.append("finished")

        sim.add_hook(Hook())

        def boom():
            yield sim.timeout(1.0)
            raise RuntimeError("boom")

        sim.process(boom())
        with pytest.raises(RuntimeError):
            sim.run()
        assert calls == ["finished"]

    def test_hooks_fire_per_run_call(self):
        sim = Simulator()
        calls = []

        class Hook:
            def run_started(self, s):
                calls.append("started")

        sim.add_hook(Hook())

        def proc():
            yield sim.timeout(1.0)
            yield sim.timeout(1.0)

        sim.process(proc())
        sim.run(until=0.5)
        sim.run()
        assert calls == ["started", "started"]


class TestConditionOrdering:
    def test_anyof_value_is_first_completion(self):
        sim = Simulator()
        fast = sim.timeout(1.0, value="fast")
        slow = sim.timeout(2.0, value="slow")
        results = []

        def waiter():
            event, value = yield sim.any_of([slow, fast])
            results.append((event is fast, value, sim.now))

        sim.process(waiter())
        sim.run()
        assert results == [(True, "fast", 1.0)]

    def test_anyof_tie_resolved_by_schedule_order(self):
        # Two events at the same instant: the one scheduled first wins,
        # deterministically.
        sim = Simulator()
        first = sim.timeout(1.0, value="first")
        second = sim.timeout(1.0, value="second")
        results = []

        def waiter():
            _, value = yield sim.any_of([second, first])
            results.append(value)

        sim.process(waiter())
        sim.run()
        assert results == ["first"]

    def test_allof_values_in_construction_order(self):
        # Events fire out of order; the AllOf value list preserves
        # construction order (what phase-boundary snapshots rely on).
        sim = Simulator()
        a = sim.timeout(3.0, value="a")
        b = sim.timeout(1.0, value="b")
        c = sim.timeout(2.0, value="c")
        results = []

        def waiter():
            values = yield sim.all_of([a, b, c])
            results.append((values, sim.now))

        sim.process(waiter())
        sim.run()
        assert results == [(["a", "b", "c"], 3.0)]

    def test_allof_fires_only_after_the_last(self):
        sim = Simulator()
        events = [sim.timeout(t) for t in (1.0, 5.0, 3.0)]
        done_at = []

        def waiter():
            yield AllOf(sim, events)
            done_at.append(sim.now)

        sim.process(waiter())
        sim.run()
        assert done_at == [5.0]

    def test_empty_conditions_fire_immediately(self):
        sim = Simulator()
        results = []

        def waiter():
            values = yield AllOf(sim, [])
            results.append(values)

        sim.process(waiter())
        sim.run()
        assert results == [[]]
        assert isinstance(AnyOf(sim, []), AnyOf)


class TestProcessTerminationMidSpan:
    def test_interrupted_process_leaves_open_span_flushable(self):
        sim = Simulator()
        tel = Telemetry(sample_interval=None).install(sim)

        def victim():
            handle = tel.spans.begin("host", "work", "cpu.victim")
            try:
                yield sim.timeout(10.0)
            except Interrupt:
                pass
            finally:
                # The span is deliberately never ended: the process dies
                # mid-activity, as an interrupted disklet would.
                del handle

        def killer(process):
            yield sim.timeout(3.0)
            process.interrupt("preempted")

        process = sim.process(victim())
        sim.process(killer(process))
        sim.run()
        # run_finished flushed the orphan at the end of the run. (The
        # abandoned 10 s timeout stays scheduled, so the run — and hence
        # the flushed duration — extends to t=10.)
        assert not tel.spans.open_spans()
        spans = [s for s in tel.spans.spans if s.name == "work"]
        assert len(spans) == 1
        assert spans[0].ts == 0.0
        assert spans[0].dur == pytest.approx(sim.now)
        assert sim.now == pytest.approx(10.0)

    def test_end_is_idempotent_and_explicit_end_wins(self):
        sim = Simulator()
        tel = Telemetry(sample_interval=None).install(sim)

        def worker():
            handle = tel.spans.begin("host", "step", "cpu.w")
            yield sim.timeout(2.0)
            tel.spans.end(handle)
            tel.spans.end(handle)  # double-end must not duplicate
            yield sim.timeout(4.0)

        sim.process(worker())
        sim.run()
        spans = [s for s in tel.spans.spans if s.name == "step"]
        assert len(spans) == 1
        assert spans[0].dur == pytest.approx(2.0)


class TestTraceLogSatellite:
    def _run(self, capacity, telemetry=None, ticks=20):
        log = TraceLog(capacity=capacity, telemetry=telemetry)
        sim = Simulator(trace=log)

        def worker(count):
            for _ in range(count):
                yield sim.timeout(1.0)

        sim.process(worker(ticks), name="ticker")
        sim.run()
        return log, sim

    def test_window_after_wraparound_drops_oldest(self):
        # 20 timeouts + bootstrap/process events >> capacity 6: the ring
        # wraps and only the newest entries stay queryable.
        log, sim = self._run(capacity=6)
        assert log.total > log.capacity
        assert len(log.entries) == 6
        oldest_kept = min(e.time for e in log.entries)
        assert oldest_kept > 0.0            # early entries evicted
        # A window over evicted history is empty, not an error.
        assert log.window(0.0, oldest_kept) == []
        # A window over the retained suffix returns exactly the ring.
        assert log.window(oldest_kept, sim.now + 1.0) == list(log.entries)

    def test_window_open_end(self):
        log, sim = self._run(capacity=100)
        assert log.window(18.0) == log.window(18.0, float("inf"))
        assert log.window(18.0)

    def test_delegates_named_completions_to_telemetry(self):
        sim_probe = Simulator()  # clock donor for the standalone hub
        tel = Telemetry(sample_interval=None).install(sim_probe)
        log, _ = self._run(capacity=100, telemetry=tel)
        kernel = [i for i in tel.spans.instants if i.cat == "kernel"]
        assert any(i.name == "ticker" for i in kernel)
        # Timestamps carried through from the trace entries themselves.
        ticker = [i for i in kernel if i.name == "ticker"]
        assert ticker[-1].ts == pytest.approx(20.0)

    def test_no_delegation_to_disabled_hub(self):
        from repro.telemetry import NULL_TELEMETRY
        log, _ = self._run(capacity=100, telemetry=NULL_TELEMETRY)
        assert log.total > 0
        assert len(NULL_TELEMETRY.spans) == 0
