"""Unit tests for the fault-injection subsystem (repro.faults)."""

import pytest

from repro.disk import SEAGATE_ST39102, DiskDrive
from repro.faults import (
    DriveFailed,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    NullFaultInjector,
    QueueTimeout,
    RetryPolicy,
    TimeoutPolicy,
)
from repro.host import LINUX_PII_300, AsyncIO, Cpu, RemoteQueue
from repro.interconnect import SerialBus
from repro.net import FatTree, Messaging, Network
from repro.sim import Event, SimStalled, Simulator

KB = 1024
MB = 1_000_000


def run_proc(sim, gen):
    """Run one process to completion and return its value."""
    process = sim.process(gen)
    sim.run()
    assert process.ok
    return process.value


def wait_for(sim, event):
    """Run the sim until ``event`` fires (a one-yield process)."""
    def waiter():
        yield event
    return run_proc(sim, waiter())


# ---------------------------------------------------------------------------
# Specs, plans, policies
# ---------------------------------------------------------------------------

class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="meteor_strike", target="disk.0")

    def test_empty_target_rejected(self):
        with pytest.raises(ValueError, match="target"):
            FaultSpec(kind="drive_failure", target="")

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            FaultSpec(kind="drive_failure", target="disk.0", at=-1.0)

    def test_outage_requires_duration(self):
        with pytest.raises(ValueError, match="duration"):
            FaultSpec(kind="loop_outage", target="bus.*")

    def test_probability_range_enforced(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(kind="packet_loss", target="net", duration=1.0,
                      magnitude=1.5)

    def test_slowdown_must_exceed_one(self):
        with pytest.raises(ValueError, match="factor > 1"):
            FaultSpec(kind="drive_slowdown", target="disk.0",
                      duration=1.0, magnitude=0.5)

    def test_media_retry_count_must_be_whole(self):
        with pytest.raises(ValueError, match="whole retry count"):
            FaultSpec(kind="media_error", target="disk.0", magnitude=2.5)

    def test_windowed_end(self):
        spec = FaultSpec(kind="drive_slowdown", target="disk.0",
                         at=1.0, duration=2.0, magnitude=3.0)
        assert spec.end == pytest.approx(3.0)

    def test_permanent_end_is_inf(self):
        spec = FaultSpec(kind="drive_failure", target="disk.0", at=1.0)
        assert spec.end == float("inf")


class TestFaultPlan:
    def test_json_roundtrip(self):
        plan = FaultPlan.of(
            FaultSpec(kind="drive_failure", target="disk.3", at=1.5),
            FaultSpec(kind="packet_loss", target="net", duration=2.0,
                      magnitude=0.05),
            seed=42)
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_file_roundtrip(self, tmp_path):
        plan = FaultPlan.of(
            FaultSpec(kind="media_error", target="disk.0", lbn=100),
            seed=7)
        path = tmp_path / "plan.json"
        plan.to_file(str(path))
        assert FaultPlan.from_file(str(path)) == plan

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown fault plan fields"):
            FaultPlan.from_dict({"seed": 0, "faults": [], "bogus": 1})
        with pytest.raises(ValueError, match="unknown fault spec fields"):
            FaultPlan.from_dict({"faults": [
                {"kind": "drive_failure", "target": "disk.0", "oops": 2}]})

    def test_non_spec_entries_rejected(self):
        with pytest.raises(TypeError):
            FaultPlan(specs=("not a spec",))

    def test_len_and_iter(self):
        plan = FaultPlan.of(
            FaultSpec(kind="drive_failure", target="disk.0"))
        assert len(plan) == 1
        assert [spec.kind for spec in plan] == ["drive_failure"]


class TestPolicies:
    def test_retry_delay_backs_off_and_caps(self):
        retry = RetryPolicy(max_attempts=5, base_delay=1e-3, factor=2.0,
                            max_delay=3e-3)
        assert retry.delay(0) == pytest.approx(1e-3)
        assert retry.delay(1) == pytest.approx(2e-3)
        assert retry.delay(2) == pytest.approx(3e-3)   # capped
        assert retry.delay(9) == pytest.approx(3e-3)

    def test_timeout_grows_and_caps(self):
        timeout = TimeoutPolicy(timeout=0.5, factor=2.0, max_timeout=1.5)
        assert timeout.timeout_for(0) == pytest.approx(0.5)
        assert timeout.timeout_for(1) == pytest.approx(1.0)
        assert timeout.timeout_for(2) == pytest.approx(1.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            TimeoutPolicy(timeout=0)


# ---------------------------------------------------------------------------
# Injector wiring
# ---------------------------------------------------------------------------

class TestInjector:
    def test_null_injector_refuses_registration(self):
        sim = Simulator()
        assert isinstance(sim.faults, NullFaultInjector)
        assert not sim.faults.enabled
        with pytest.raises(RuntimeError, match="no fault plan armed"):
            sim.faults.register("disk.0")

    def test_install_and_pattern_matching(self):
        sim = Simulator()
        plan = FaultPlan.of(
            FaultSpec(kind="drive_failure", target="disk.*", at=0.5))
        injector = FaultInjector(plan).install(sim)
        assert sim.faults is injector
        ports = [injector.register(f"disk.{i}") for i in range(3)]
        injector.register("bus.fc")
        hit = []
        for port in ports:
            port.on("drive_failure", lambda spec, p=port: hit.append(p))
        sim.run(until=1.0)
        assert set(hit) == set(ports)
        assert injector.counters["faults.injected.drive_failure"] == 1

    def test_unmatched_spec_counted(self):
        sim = Simulator()
        plan = FaultPlan.of(
            FaultSpec(kind="drive_failure", target="disk.99"))
        injector = FaultInjector(plan).install(sim)
        sim.run(until=1.0)
        assert injector.counters["faults.unmatched.drive_failure"] == 1

    def test_window_activates_and_clears(self):
        sim = Simulator()
        plan = FaultPlan.of(
            FaultSpec(kind="drive_slowdown", target="disk.0",
                      at=1.0, duration=2.0, magnitude=4.0))
        injector = FaultInjector(plan).install(sim)
        port = injector.register("disk.0")
        samples = {}

        def probe():
            samples[0.5] = port.factor()
            yield sim.timeout(1.5)   # t = 1.5, inside the window
            samples[1.5] = port.factor()
            yield sim.timeout(2.0)   # t = 3.5, window cleared
            samples[3.5] = port.factor()

        sim.process(probe())
        sim.run()
        assert samples == {0.5: 1.0, 1.5: 4.0, 3.5: 1.0}
        actions = [(action, kind) for _, action, kind, _
                   in injector.timeline]
        assert actions == [("inject", "drive_slowdown"),
                           ("clear", "drive_slowdown")]

    def test_registration_after_arming_rejected(self):
        sim = Simulator()
        injector = FaultInjector(FaultPlan()).install(sim)
        sim.run(until=0.1)
        with pytest.raises(RuntimeError, match="already"):
            injector.register("disk.0")

    def test_seed_override(self):
        plan = FaultPlan(seed=3)
        assert FaultInjector(plan).seed == 3
        assert FaultInjector(plan, seed=9).seed == 9


# ---------------------------------------------------------------------------
# Sim-core satellites: SimStalled + condition defusing
# ---------------------------------------------------------------------------

class TestSimStalled:
    def test_deadlock_names_blocked_processes(self):
        sim = Simulator()

        def stuck():
            yield Event(sim)    # never succeeds

        sim.process(stuck(), name="reader-3")
        with pytest.raises(SimStalled, match="reader-3"):
            sim.run()

    def test_daemons_do_not_trigger_stall(self):
        sim = Simulator()

        def daemon():
            yield Event(sim)

        def worker():
            yield sim.timeout(1.0)

        sim.process(daemon(), name="svc", daemon=True)
        sim.process(worker())
        sim.run()
        assert sim.now == pytest.approx(1.0)

    def test_bounded_run_skips_the_check(self):
        sim = Simulator()

        def stuck():
            yield Event(sim)

        sim.process(stuck())
        sim.run(until=1.0)   # no exception: explicit horizon


class TestConditionDefuse:
    def test_late_failure_after_anyof_triggers_is_defused(self):
        sim = Simulator()
        slow = Event(sim)

        def failer():
            yield sim.timeout(2.0)
            slow.fail(RuntimeError("late loser"))

        def waiter():
            fast = sim.timeout(1.0)
            yield sim.any_of([fast, slow])

        sim.process(failer(), daemon=True)
        sim.process(waiter())
        sim.run()   # must not raise: the losing branch failed after win
        assert sim.now == pytest.approx(2.0)


# ---------------------------------------------------------------------------
# Drive faults
# ---------------------------------------------------------------------------

def make_drive(sim, plan=None, seed=0):
    if plan is not None:
        FaultInjector(plan, seed=seed).install(sim)
    return DiskDrive(sim, SEAGATE_ST39102, name="d0", fault_id="disk.0")


class TestDriveFaults:
    def test_media_error_inflates_read_time(self):
        clean = Simulator()
        drive = make_drive(clean)
        wait_for(clean, drive.read(0, 256 * KB))
        baseline = clean.now

        sim = Simulator()
        plan = FaultPlan.of(
            FaultSpec(kind="media_error", target="disk.0", lbn=8,
                      magnitude=3))
        drive = make_drive(sim, plan)
        wait_for(sim, drive.read(0, 256 * KB))
        assert sim.now > baseline
        assert sim.faults.counters["faults.disk.media_errors"] == 1
        assert sim.faults.counters["faults.disk.read_retries"] == 3

    def test_latent_sector_error_remaps(self):
        sim = Simulator()
        plan = FaultPlan.of(
            FaultSpec(kind="latent_sector_error", target="disk.0", lbn=4))
        drive = make_drive(sim, plan)
        wait_for(sim, drive.read(0, 256 * KB))
        assert sim.faults.counters["faults.disk.remaps"] == 1

    def test_media_error_outside_request_untouched(self):
        sim = Simulator()
        plan = FaultPlan.of(
            FaultSpec(kind="media_error", target="disk.0", lbn=10_000_000))
        drive = make_drive(sim, plan)
        wait_for(sim, drive.read(0, 256 * KB))
        assert "faults.disk.media_errors" not in sim.faults.counters

    def test_slowdown_scales_service_time(self):
        clean = Simulator()
        drive = make_drive(clean)
        wait_for(clean, drive.read(0, 1 * MB))
        baseline = clean.now

        sim = Simulator()
        plan = FaultPlan.of(
            FaultSpec(kind="drive_slowdown", target="disk.0",
                      duration=100.0, magnitude=2.0))
        drive = make_drive(sim, plan)
        wait_for(sim, drive.read(0, 1 * MB))
        assert sim.now > baseline * 1.5

    def test_drive_failure_fails_queued_and_new_requests(self):
        sim = Simulator()
        plan = FaultPlan.of(
            FaultSpec(kind="drive_failure", target="disk.0", at=0.0))
        drive = make_drive(sim, plan)

        def proc():
            yield sim.timeout(0.01)    # failure has fired
            assert drive.failed
            with pytest.raises(DriveFailed):
                yield drive.read(0, 64 * KB)

        run_proc(sim, proc())
        assert sim.faults.counters["faults.disk.failures"] == 1
        assert sim.faults.counters["faults.disk.rejected_requests"] == 1


# ---------------------------------------------------------------------------
# Interconnect and network faults
# ---------------------------------------------------------------------------

class TestBusFaults:
    def test_transients_add_retries_and_time(self):
        clean = Simulator()
        bus = SerialBus(clean, 100 * MB, name="fc")
        run_proc(clean, bus.transfer(10 * MB))
        baseline = clean.now

        sim = Simulator()
        plan = FaultPlan.of(
            FaultSpec(kind="bus_transient", target="bus.fc",
                      duration=1000.0, magnitude=0.5))
        FaultInjector(plan, seed=1).install(sim)
        bus = SerialBus(sim, 100 * MB, name="fc")
        run_proc(sim, bus.transfer(10 * MB))
        assert sim.now > baseline
        assert sim.faults.counters["faults.bus.transients"] >= 1

    def test_loop_outage_blocks_transfer(self):
        sim = Simulator()
        plan = FaultPlan.of(
            FaultSpec(kind="loop_outage", target="bus.fc",
                      at=0.0, duration=0.5))
        FaultInjector(plan).install(sim)
        bus = SerialBus(sim, 100 * MB, name="fc")

        def proc():
            yield sim.timeout(0.01)
            yield from bus.transfer(1 * MB)

        run_proc(sim, proc())
        assert sim.now > 0.5
        assert sim.faults.counters["faults.bus.outage_waits"] == 1


class TestNetworkFaults:
    def test_packet_loss_retransmits(self):
        sim = Simulator()
        plan = FaultPlan.of(
            FaultSpec(kind="packet_loss", target="net",
                      duration=1000.0, magnitude=0.9))
        FaultInjector(plan, seed=1).install(sim)
        tree = FatTree(sim, 4)
        network = Network(tree)
        run_proc(sim, network.transfer(0, 1, 1 * MB))
        assert sim.faults.counters["faults.net.retransmits"] >= 1

    def test_link_flap_delays_endpoint(self):
        sim = Simulator()
        plan = FaultPlan.of(
            FaultSpec(kind="link_flap", target="net.host1",
                      at=0.0, duration=0.25))
        FaultInjector(plan).install(sim)
        tree = FatTree(sim, 4)
        network = Network(tree)

        def proc():
            yield sim.timeout(0.01)
            yield from network.transfer(0, 1, 64 * KB)

        run_proc(sim, proc())
        assert sim.now > 0.25
        assert sim.faults.counters["faults.net.flap_waits"] == 1

    def test_send_reliable_succeeds_clean(self):
        sim = Simulator()
        tree = FatTree(sim, 2)
        messaging = Messaging(Network(tree), 2)

        def receiver():
            yield from messaging.recv(1)

        def sender():
            ok = yield from messaging.send_reliable(0, 1, "tag", 64 * KB)
            assert ok

        sim.process(receiver())
        run_proc(sim, sender())


# ---------------------------------------------------------------------------
# Host-side recovery policies
# ---------------------------------------------------------------------------

class TestHostRecovery:
    def test_remote_queue_bounded_acquire_times_out(self):
        sim = Simulator()
        queue = RemoteQueue(sim, capacity=1, name="rq0")

        def proc():
            yield from queue.acquire_slot()       # fill the single slot
            with pytest.raises(QueueTimeout):
                yield from queue.acquire_slot_with(
                    RetryPolicy(max_attempts=3, base_delay=1e-4))

        run_proc(sim, proc())
        assert queue.timeouts == 1

    def test_aio_retries_failed_device(self):
        sim = Simulator()
        cpu = Cpu(sim, 300)
        failures = {"left": 2}

        def submit(op, offset, nbytes):
            done = Event(sim)
            if failures["left"] > 0:
                failures["left"] -= 1
                done.fail(DriveFailed("flaky"))
                done._defused = True
            else:
                def ok():
                    yield sim.timeout(1e-3)
                    done.succeed()
                sim.process(ok())
            return done

        aio = AsyncIO(sim, cpu, LINUX_PII_300, submit,
                      retry=RetryPolicy(max_attempts=4, base_delay=1e-4))

        def proc():
            done = yield from aio.submit("read", 0, 64 * KB)
            yield done
            yield from aio.drain()

        run_proc(sim, proc())
        assert aio.completed == 1
        assert aio.retried == 2

    def test_aio_timeout_aborts_after_budget(self):
        sim = Simulator()
        cpu = Cpu(sim, 300)

        def submit(op, offset, nbytes):
            return Event(sim)   # never completes

        aio = AsyncIO(sim, cpu, LINUX_PII_300, submit,
                      retry=RetryPolicy(max_attempts=2, base_delay=1e-4),
                      timeout=TimeoutPolicy(timeout=1e-3))

        def proc():
            done = yield from aio.submit("read", 0, 64 * KB)
            try:
                yield done
            except Exception as exc:
                return type(exc).__name__
            return None

        name = run_proc(sim, proc())
        assert name == "RequestAborted"
        assert aio.timeouts == 2
        assert aio.errors == 1
