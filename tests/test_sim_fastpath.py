"""Tests for the optimized kernel hot path and its semantic guarantees.

The fast run loop (``Simulator._run_fast``) recycles pooled events and
hoists per-event checks out of the loop; these tests pin down the
behaviours that optimization must not change:

* non-Event yields route through normal process completion (catchable);
* ``step()`` on an empty queue is a clear error, not an IndexError;
* AllOf/AnyOf composites behave across fired/failed/pending mixes,
  including failures arriving after the condition already triggered;
* interrupts racing a same-tick target fire are deterministic;
* ``pause()`` recycling is invisible to simulation results;
* the fast and checked loops produce identical simulations.
"""

import pytest

from repro.sim import (
    Event,
    Interrupt,
    Server,
    SimulationError,
    Simulator,
    Store,
)


@pytest.fixture
def sim():
    return Simulator()


class TestNonEventYield:
    """A process yielding a non-Event gets SimulationError thrown in."""

    def test_uncaught_bad_yield_fails_the_process(self, sim):
        def bad():
            yield "not an event"

        failures = []

        def waiter():
            try:
                yield sim.process(bad())
            except SimulationError as exc:
                failures.append(str(exc))

        sim.process(waiter())
        sim.run()
        assert len(failures) == 1
        assert "must yield Event" in failures[0]

    def test_bad_yield_without_waiter_aborts_run(self, sim):
        def bad():
            yield 42

        sim.process(bad())
        with pytest.raises(SimulationError, match="must yield Event"):
            sim.run()

    def test_generator_may_catch_and_continue(self, sim):
        log = []

        def resilient():
            try:
                yield object()
            except SimulationError:
                log.append("caught")
            yield sim.timeout(1.0)
            log.append("done")
            return "ok"

        process = sim.process(resilient())
        sim.run()
        assert log == ["caught", "done"]
        assert process.value == "ok"

    def test_generator_may_catch_and_reraise_other(self, sim):
        def stubborn():
            try:
                yield None
            except SimulationError:
                raise ValueError("translated")

        caught = []

        def waiter():
            try:
                yield sim.process(stubborn())
            except ValueError as exc:
                caught.append(str(exc))

        sim.process(waiter())
        sim.run()
        assert caught == ["translated"]

    def test_checked_loop_same_behaviour(self):
        sim = Simulator(debug=True)
        log = []

        def resilient():
            try:
                yield "nope"
            except SimulationError:
                log.append("caught")
            yield sim.timeout(1.0)

        sim.process(resilient())
        sim.run()
        assert log == ["caught"]
        assert sim.now == 1.0


class TestEmptyQueueStep:
    def test_step_on_fresh_simulator(self, sim):
        with pytest.raises(SimulationError, match="empty event queue"):
            sim.step()

    def test_step_after_queue_drained(self, sim):
        def proc():
            yield sim.timeout(1.0)

        sim.process(proc())
        while sim.peek() != float("inf"):
            sim.step()
        with pytest.raises(SimulationError, match="empty event queue"):
            sim.step()
        assert sim.now == 1.0  # the failed step did not move the clock


class TestCompositeMixedStates:
    """AllOf/AnyOf across fired / failed-defused / pending components."""

    def test_allof_with_already_fired_component(self, sim):
        done = sim.event()
        done.succeed("early")
        results = []

        def waiter():
            values = yield sim.all_of([done, sim.timeout(2.0, value="late")])
            results.append((values, sim.now))

        sim.process(waiter())
        sim.run()
        assert results == [(["early", "late"], 2.0)]

    def test_anyof_with_already_fired_component(self, sim):
        done = sim.event()
        done.succeed("instant")
        results = []

        def waiter():
            event, value = yield sim.any_of(
                [sim.timeout(5.0), done, sim.timeout(9.0)])
            results.append((event is done, value, sim.now))

        sim.process(waiter())
        sim.run()
        assert results == [(True, "instant", 0.0)]

    def test_allof_component_failure_fails_condition(self, sim):
        # The condition must attach before the failed event is processed
        # (an undefused failure with no observer aborts the run), so it
        # is built eagerly rather than inside the process.
        bad = sim.event()
        bad.fail(RuntimeError("boom"))
        condition = sim.all_of([sim.timeout(1.0), bad])
        caught = []

        def waiter():
            try:
                yield condition
            except RuntimeError as exc:
                caught.append(str(exc))

        sim.process(waiter())
        sim.run()  # the pending timeout still fires harmlessly afterwards
        assert caught == ["boom"]
        assert sim.now == 1.0

    def test_allof_second_failure_after_condition_failed(self, sim):
        # Two components fail at the same tick. The first failure fails
        # the condition; the second must be defused by the already-
        # triggered condition or it would abort the run.
        first, second = sim.event(), sim.event()
        caught = []

        def waiter():
            try:
                yield sim.all_of([first, second])
            except RuntimeError as exc:
                caught.append(str(exc))

        def failer():
            yield sim.timeout(1.0)
            first.fail(RuntimeError("first"))
            second.fail(RuntimeError("second"))

        sim.process(waiter())
        sim.process(failer())
        sim.run()
        assert caught == ["first"]

    def test_anyof_failure_after_condition_fired(self, sim):
        # AnyOf fires on the fast component; the slow component then
        # fails at a later tick and must be defused, not escape.
        fast, slow = sim.event(), sim.event()
        results = []

        def waiter():
            event, value = yield sim.any_of([fast, slow])
            results.append(value)

        def driver():
            yield sim.timeout(1.0)
            fast.succeed("winner")
            yield sim.timeout(1.0)
            slow.fail(RuntimeError("late failure"))

        sim.process(waiter())
        sim.process(driver())
        sim.run()
        assert results == ["winner"]
        assert sim.now == 2.0

    def test_allof_success_after_condition_failed(self, sim):
        # A component succeeding after the condition already failed is
        # simply ignored (pending -> fired transition, no double fire).
        good, bad = sim.event(), sim.event()
        caught = []

        def waiter():
            try:
                yield sim.all_of([good, bad])
            except RuntimeError:
                caught.append(sim.now)

        def driver():
            yield sim.timeout(1.0)
            bad.fail(RuntimeError("early"))
            yield sim.timeout(1.0)
            good.succeed("too late")

        sim.process(waiter())
        sim.process(driver())
        sim.run()
        assert caught == [1.0]

    def test_nested_composites(self, sim):
        results = []

        def waiter():
            inner = sim.all_of([sim.timeout(1.0, value="a"),
                                sim.timeout(2.0, value="b")])
            event, value = yield sim.any_of([inner, sim.timeout(9.0)])
            results.append((value, sim.now))

        sim.process(waiter())
        sim.run()
        assert results == [(["a", "b"], 2.0)]

    def test_pooled_events_rejected_in_composites(self, sim):
        def proc():
            with pytest.raises(SimulationError, match="pooled"):
                sim.all_of([sim.pause(1.0)])
            yield sim.timeout(0.5)

        sim.process(proc())
        sim.run()


class TestInterruptSameTickRace:
    def test_interrupt_scheduled_before_same_tick_fire_wins(self, sim):
        # The controller interrupts the victim and *then* succeeds its
        # wait target, all at t=1.0. The interrupt relay was scheduled
        # first, so the victim sees the Interrupt; the stale callback is
        # removed so the target's fire does not double-resume it.
        target = sim.event()
        log = []

        def victim():
            try:
                yield target
                log.append("fired")
            except Interrupt as interrupt:
                log.append(("interrupted", interrupt.cause, sim.now))
            yield sim.timeout(1.0)
            log.append("resumed ok")

        def controller(process):
            yield sim.timeout(1.0)
            process.interrupt("race")
            target.succeed("value")

        process = sim.process(victim())
        sim.process(controller(process))
        sim.run()
        assert log == [("interrupted", "race", 1.0), "resumed ok"]

    def test_interrupt_preempts_already_scheduled_fire(self, sim):
        # Reversed order: succeed() first, then interrupt(). The fire is
        # on the heap but not yet delivered, so interrupt() detaches the
        # victim from it — the Interrupt wins even though the fire was
        # scheduled first. Same-tick interrupts therefore preempt
        # deterministically regardless of scheduling order.
        target = sim.event()
        log = []

        def victim():
            try:
                value = yield target
                log.append(("fired", value))
            except Interrupt as interrupt:
                log.append(("interrupted", interrupt.cause, sim.now))

        def controller(process):
            yield sim.timeout(1.0)
            target.succeed("value")
            process.interrupt("late")

        process = sim.process(victim())
        sim.process(controller(process))
        sim.run()
        assert log == [("interrupted", "late", 1.0)]
        assert target.ok and target.value == "value"

    def test_interrupt_while_waiting_on_pause(self, sim):
        # pause() events are pooled; interrupting a pause-waiter must
        # remove its callback before the timeout is recycled.
        log = []

        def victim():
            try:
                yield sim.pause(10.0)
                log.append("slept")
            except Interrupt:
                log.append(("interrupted", sim.now))
            # wait past the original pause deadline: the orphaned pause
            # event fires (and is recycled) with no callback attached.
            yield sim.pause(20.0)
            log.append("done")

        def controller(process):
            yield sim.timeout(1.0)
            process.interrupt()

        process = sim.process(victim())
        sim.process(controller(process))
        sim.run()
        assert log == [("interrupted", 1.0), "done"]
        assert sim.now == 21.0

    def test_interrupt_finished_process_rejected(self, sim):
        def quick():
            yield sim.timeout(1.0)

        process = sim.process(quick())
        sim.run()
        with pytest.raises(SimulationError, match="finished"):
            process.interrupt()


class TestPauseRecycling:
    def test_pause_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError, match="negative"):
            sim.pause(-1.0)

    def test_pause_objects_are_reused(self, sim):
        identities = []

        def proc():
            for _ in range(4):
                event = sim.pause(1.0)
                identities.append(id(event))
                yield event

        sim.process(proc())
        sim.run()
        # The first pause is allocated fresh; later ones are recycled
        # (the nth is created while the (n-1)th is mid-callback, so the
        # steady state alternates between at most two objects).
        assert len(set(identities)) < len(identities)
        assert sim.now == 4.0

    def test_pause_matches_timeout_semantics(self):
        def workload(sim, sleep):
            def stage(n):
                for _ in range(n):
                    yield sleep(0.25)

            def chain():
                yield sim.process(stage(3))
                yield sleep(0.5)

            sim.process(chain())
            sim.run()
            return sim.now, sim.event_count

        plain = Simulator()
        pooled = Simulator()
        assert workload(plain, plain.timeout) == workload(pooled, pooled.pause)

    def test_recycled_pause_state_is_fresh(self, sim):
        seen = []

        def proc():
            for index in range(3):
                event = sim.pause(1.0)
                value = yield event
                seen.append((value, event.value, event.ok))

        sim.process(proc())
        sim.run()
        assert seen == [(None, None, True)] * 3


class TestFastCheckedEquivalence:
    """debug=True routes through step(); results must be identical."""

    @staticmethod
    def _workload(sim):
        server = Server(sim, capacity=2)
        store = Store(sim, capacity=4)
        log = []

        def producer():
            for index in range(8):
                yield store.put(index)
                yield sim.pause(0.1)

        def consumer():
            for _ in range(8):
                item = yield store.get()
                yield from server.serve(0.3)
                log.append(item)

        def sleeper():
            try:
                yield sim.timeout(100.0)
            except Interrupt:
                log.append("woken")

        def waker(process):
            yield sim.timeout(1.0)
            process.interrupt()

        sim.process(producer())
        sim.process(consumer())
        sim.process(waker(sim.process(sleeper())))
        sim.run()
        return sim.now, sim.event_count, log

    def test_identical_results(self):
        fast = self._workload(Simulator())
        checked = self._workload(Simulator(debug=True))
        assert fast == checked

    def test_trace_selects_checked_loop(self):
        events = []
        sim = Simulator(trace=lambda when, event: events.append(when))
        assert sim.debug

        def proc():
            yield sim.timeout(1.0)
            yield sim.pause(1.0)

        sim.process(proc())
        sim.run()
        # bootstrap relay + two timeouts + process completion traced
        assert len(events) == sim.event_count == 4
        assert sim.now == 2.0

    def test_empty_pool_after_checked_run(self):
        # The checked loop never recycles, so pooled events processed by
        # it simply drop out of the cycle — and must not corrupt pools.
        sim = Simulator(debug=True)

        def proc():
            yield sim.pause(1.0)
            yield sim.pause(1.0)

        sim.process(proc())
        sim.run()
        assert sim._timeout_pool == []
        assert sim.now == 2.0
