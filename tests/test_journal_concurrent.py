"""SweepJournal under concurrent appenders.

The journal's crash contract (one fsync'd write per record) also makes
it safe for two cooperating processes — e.g. a coordinator and a
straggler flush — to append to the same file: records may interleave,
but only at line granularity. Torn *tails* are a crash artifact; torn
*middles* must never appear.
"""

import json
import multiprocessing

from repro.experiments.journal import SweepJournal

RECORDS_PER_WRITER = 250


def _appender(path, tag, barrier):
    journal = SweepJournal(path)
    barrier.wait()
    for n in range(RECORDS_PER_WRITER):
        journal.note_cell(f"{tag}-{n:04d}", "done",
                          result={"elapsed": float(n)},
                          worker=tag)
        if n % 50 == 0:
            journal.note_service("heartbeat_loss", worker=tag, n=n)
    journal.close()


class TestConcurrentAppenders:
    def test_two_appenders_no_interleaved_corruption(self, tmp_path):
        path = str(tmp_path / "sweep.journal.jsonl")
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)
        procs = [ctx.Process(target=_appender, args=(path, tag, barrier))
                 for tag in ("p1", "p2")]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(120)
            assert proc.exitcode == 0

        # Every line parses: no record was split or spliced by the
        # concurrent writer.
        with open(path, encoding="utf-8") as handle:
            lines = [line for line in handle.read().split("\n") if line]
        assert len(lines) == 2 * (RECORDS_PER_WRITER + 5)
        for line in lines:
            json.loads(line)

        journal = SweepJournal.load(path)
        assert journal.torn_lines == 0
        assert len(journal.cells) == 2 * RECORDS_PER_WRITER
        counts = journal.counts()
        assert counts["done"] == 2 * RECORDS_PER_WRITER
        # Per-writer attribution survived the interleaving intact.
        assert journal.worker_cells() == {"p1": RECORDS_PER_WRITER,
                                          "p2": RECORDS_PER_WRITER}
        assert journal.service_event_counts() == {"heartbeat_loss": 10}

    def test_appender_joining_mid_stream_sees_prior_records(self, tmp_path):
        """A second opener folds what the first already wrote."""
        path = str(tmp_path / "sweep.journal.jsonl")
        first = SweepJournal(path)
        first.note_cell("a", "pending", spec={}, config_hash="x")
        first.note_cell("a", "done", result={}, worker="w1")
        second = SweepJournal.load(path)
        assert second.cells["a"].status == "done"
        second.note_cell("b", "done", result={}, worker="w2")
        first.note_cell("c", "done", result={}, worker="w1")
        first.close()
        second.close()
        merged = SweepJournal.load(path)
        assert merged.counts()["done"] == 3
        assert merged.worker_cells() == {"w1": 2, "w2": 1}
