"""Tests for the durability seam: plans, the fault-injecting IO layer,
and how the journal/artifact stack reacts to injected filesystem
failures (ENOSPC aborts, one-shot EIO retries, failed renames, lying
fsyncs)."""

import errno
import os

import pytest

from repro.durability import (
    DurabilityPlan,
    DurabilitySpec,
    FaultyIO,
    REAL_IO,
    current_io,
    io_scope,
)
from repro.experiments.artifacts import atomic_write_text
from repro.experiments.journal import JournalWriteError, SweepJournal


# -------------------------------------------------------------------- plans
class TestDurabilityPlan:
    def test_round_trip(self, tmp_path):
        plan = DurabilityPlan.of(
            DurabilitySpec(kind="enospc", target="*.journal.jsonl",
                           after=3),
            DurabilitySpec(kind="eio", probability=0.1, limit=1),
            DurabilitySpec(kind="short_write", magnitude=7.0, limit=1),
            DurabilitySpec(kind="fsync_lie"),
            DurabilitySpec(kind="rename_fail", target="*.txt"),
            seed=7)
        path = str(tmp_path / "plan.json")
        plan.to_file(path)
        loaded = DurabilityPlan.from_file(path)
        assert loaded == plan
        assert loaded.seed == 7

    def test_to_dict_omits_defaults(self):
        spec = DurabilitySpec(kind="fsync_lie")
        assert spec.to_dict() == {"kind": "fsync_lie"}

    @pytest.mark.parametrize("kwargs", [
        {"kind": "nope"},
        {"kind": "eio", "target": ""},
        {"kind": "eio", "probability": 0.0},
        {"kind": "eio", "probability": 1.5},
        {"kind": "eio", "after": -1},
        {"kind": "eio", "limit": -1},
        {"kind": "short_write", "magnitude": 1.5},
        {"kind": "eio", "magnitude": 4.0},   # only short_write takes one
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            DurabilitySpec(**kwargs)

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown durability spec"):
            DurabilitySpec.from_dict({"kind": "eio", "frequency": 2})
        with pytest.raises(ValueError, match="unknown durability plan"):
            DurabilityPlan.from_dict({"seed": 0, "chaos": []})

    def test_matches_ops_and_patterns(self):
        spec = DurabilitySpec(kind="rename_fail", target="*.txt")
        assert spec.matches("replace", "/a/b/report.txt")
        assert not spec.matches("replace", "/a/b/report.csv")
        assert not spec.matches("write", "/a/b/report.txt")


# ------------------------------------------------------------------ the seam
class TestIoScope:
    def test_scope_restores_on_exit_and_error(self):
        layer = FaultyIO(DurabilityPlan.of())
        assert current_io() is REAL_IO
        with io_scope(layer):
            assert current_io() is layer
        assert current_io() is REAL_IO
        with pytest.raises(RuntimeError):
            with io_scope(layer):
                raise RuntimeError("boom")
        assert current_io() is REAL_IO


# ----------------------------------------------------------- fault injection
def _run_journal(path, keys=("a", "b", "c")):
    with SweepJournal.load(path) as journal:
        for key in keys:
            journal.note_cell(key, "pending", spec={}, config_hash="x")


class TestFaultyIO:
    def test_deterministic_across_instances(self, tmp_path):
        plan = DurabilityPlan.of(
            DurabilitySpec(kind="eio", probability=0.5), seed=11)
        stats = []
        for attempt in range(2):
            path = str(tmp_path / f"j{attempt}.journal.jsonl")
            faulty = FaultyIO(plan)
            with io_scope(faulty):
                try:
                    _run_journal(path, keys=tuple("abcdefgh"))
                except JournalWriteError:
                    pass
            stats.append(dict(faulty.stats))
        assert stats[0] == stats[1]

    def test_enospc_aborts_cleanly_no_half_record(self, tmp_path):
        path = str(tmp_path / "sweep.journal.jsonl")
        plan = DurabilityPlan.of(
            DurabilitySpec(kind="enospc", target="*.journal.jsonl",
                           after=2))
        with io_scope(FaultyIO(plan)):
            with pytest.raises(JournalWriteError) as excinfo:
                _run_journal(path)
        assert excinfo.value.__cause__.errno == errno.ENOSPC
        assert "(injected" in str(excinfo.value.__cause__)
        # The journal is left well-formed: complete records only.
        # (The create counts as one eligible op, so the append of "b"
        # is the third eligible op and hits the full disk.)
        loaded = SweepJournal.load(path)
        assert loaded.torn_lines == 0
        assert set(loaded.cells) == {"a"}
        # ... and the disk "recovering" lets the survivors resume.
        _run_journal(path, keys=("b", "c"))
        assert set(SweepJournal.load(path).cells) == {"a", "b", "c"}

    def test_one_shot_eio_is_retried_transparently(self, tmp_path):
        clean = str(tmp_path / "clean.journal.jsonl")
        _run_journal(clean)
        flaky = str(tmp_path / "flaky.journal.jsonl")
        plan = DurabilityPlan.of(
            DurabilitySpec(kind="eio", target="flaky.journal.jsonl",
                           after=1, limit=1))
        faulty = FaultyIO(plan)
        with io_scope(faulty):
            _run_journal(flaky)  # must NOT raise: the retry absorbs it
        assert faulty.stats == {"eio": 1}
        with open(clean, "rb") as handle:
            reference = handle.read()
        with open(flaky, "rb") as handle:
            survived = handle.read()
        # No duplicate record, no torn fragment: byte-identical logs.
        assert survived == reference

    def test_short_write_retry_leaves_no_fragment(self, tmp_path):
        clean = str(tmp_path / "clean.journal.jsonl")
        _run_journal(clean)
        torn = str(tmp_path / "torn.journal.jsonl")
        plan = DurabilityPlan.of(
            DurabilitySpec(kind="short_write",
                           target="torn.journal.jsonl", after=1,
                           limit=1, magnitude=5.0))
        faulty = FaultyIO(plan)
        with io_scope(faulty):
            _run_journal(torn)
        assert faulty.stats == {"short_write": 1}
        with open(clean, "rb") as a, open(torn, "rb") as b:
            assert b.read() == a.read()

    def test_exhausted_retries_surface_journal_write_error(self, tmp_path):
        path = str(tmp_path / "dead.journal.jsonl")
        plan = DurabilityPlan.of(
            DurabilitySpec(kind="eio", target="dead.journal.jsonl"))
        with io_scope(FaultyIO(plan)):
            with pytest.raises(JournalWriteError):
                _run_journal(path)
        assert SweepJournal.load(path).torn_lines == 0

    def test_rename_fail_keeps_old_content_no_litter(self, tmp_path):
        path = str(tmp_path / "report.txt")
        atomic_write_text(path, "v1\n")
        plan = DurabilityPlan.of(
            DurabilitySpec(kind="rename_fail", target="report.txt",
                           limit=1))
        with io_scope(FaultyIO(plan)):
            with pytest.raises(OSError) as excinfo:
                atomic_write_text(path, "v2\n")
        assert excinfo.value.errno == errno.EIO
        with open(path) as handle:
            assert handle.read() == "v1\n"
        assert not [name for name in os.listdir(tmp_path)
                    if name.endswith(".tmp")]
        atomic_write_text(path, "v2\n")  # device recovered
        with open(path) as handle:
            assert handle.read() == "v2\n"

    def test_fsync_lie_then_lose_unsynced(self, tmp_path):
        path = str(tmp_path / "sweep.journal.jsonl")
        plan = DurabilityPlan.of(DurabilitySpec(kind="fsync_lie"))
        faulty = FaultyIO(plan)
        with io_scope(faulty):
            _run_journal(path)
        assert faulty.stats["fsync_lie"] >= 3
        # The file *looks* complete until the power cut reveals the lie.
        assert set(SweepJournal.load(path).cells) == {"a", "b", "c"}
        lost = faulty.lose_unsynced()
        assert list(lost) == [path] and lost[path] > 0
        assert os.path.getsize(path) == 0
        # An honest drive afterwards: the journal rebuilds cleanly.
        _run_journal(path)
        assert set(SweepJournal.load(path).cells) == {"a", "b", "c"}

    def test_limit_and_after_count_eligible_ops(self, tmp_path):
        path = str(tmp_path / "x.journal.jsonl")
        plan = DurabilityPlan.of(
            DurabilitySpec(kind="fsync_lie", after=1, limit=2))
        faulty = FaultyIO(plan)
        with io_scope(faulty):
            _run_journal(path, keys=tuple("abcdef"))
        assert faulty.stats == {"fsync_lie": 2}
