"""Tests for the open-loop traffic engine: overload robustness."""

import tracemalloc

import pytest

from repro.traffic import (
    POLICIES,
    AccountingError,
    AdmissionQueue,
    SaturationDetector,
    TokenBucket,
    TrafficConfig,
    TrafficFigure,
    run_traffic,
    traffic_rows,
)

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def config(**overrides):
    base = dict(arch="active", num_disks=16, sessions=400, seed=0,
                load=1.0, queue_capacity=32)
    base.update(overrides)
    return TrafficConfig(**base)


class TestTrafficConfig:
    def test_round_trip(self):
        tconfig = config(load=1.5, policy="fair-share", tenants=2,
                         tasks=("select", "sort"))
        assert TrafficConfig.from_dict(tconfig.to_dict()) == tconfig

    def test_to_dict_omits_defaults(self):
        assert TrafficConfig().to_dict() == {}

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown traffic fields"):
            TrafficConfig.from_dict({"sessons": 5})

    def test_validation(self):
        with pytest.raises(ValueError):
            config(arch="mainframe")
        with pytest.raises(ValueError):
            config(load=0.0)
        with pytest.raises(ValueError):
            config(policy="coin-flip")
        with pytest.raises(ValueError):
            config(queue_capacity=0)
        with pytest.raises(ValueError):
            config(tasks=("vacuum",))
        with pytest.raises(ValueError):
            config(deadline_factor=-1.0)


class TestAccounting:
    @pytest.mark.parametrize("arch", ("active", "cluster", "smp"))
    @pytest.mark.parametrize("load", (0.5, 1.6))
    def test_every_session_accounted_exactly_once(self, arch, load):
        result = run_traffic(config(arch=arch, load=load))
        assert result.accounted
        assert result.arrivals == 400
        assert (result.completed + result.shed + result.deadline_missed
                == result.arrivals)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_all_policies_account(self, policy):
        result = run_traffic(config(load=1.8, policy=policy,
                                    deadline_factor=0.0))
        assert result.accounted
        assert result.shed > 0

    def test_light_load_sheds_nothing(self):
        result = run_traffic(config(load=0.4))
        assert result.shed == 0
        assert result.deadline_missed == 0
        assert result.completed == result.arrivals

    def test_per_tenant_stats_sum_to_totals(self):
        result = run_traffic(config(load=1.6, tenants=3))
        assert sum(t.arrivals for t in result.tenants) == result.arrivals
        assert sum(t.completed for t in result.tenants) == result.completed
        assert sum(t.shed for t in result.tenants) == result.shed
        assert (sum(t.deadline_missed for t in result.tenants)
                == result.deadline_missed)


class TestBoundedQueues:
    @pytest.mark.parametrize("capacity", (4, 16, 64))
    def test_queue_never_exceeds_capacity(self, capacity):
        result = run_traffic(config(load=2.0, queue_capacity=capacity,
                                    deadline_factor=0.0))
        assert 0 < result.peak_queue_depth <= capacity

    def test_saturation_flips_into_degraded_mode(self):
        result = run_traffic(config(sessions=1500, load=2.0,
                                    deadline_factor=0.0))
        assert result.saturation_flips >= 1
        assert 0.0 < result.saturated_fraction <= 1.0

    def test_latency_percentiles_are_ordered(self):
        result = run_traffic(config(load=1.5))
        sojourn = result.sojourn
        assert (0 < sojourn["p50"] <= sojourn["p95"] <= sojourn["p99"]
                <= sojourn["max"])


class TestDeterminism:
    def test_same_seed_same_extras(self):
        first = run_traffic(config(load=1.6)).to_extras()
        second = run_traffic(config(load=1.6)).to_extras()
        assert first == second

    def test_different_seed_differs(self):
        first = run_traffic(config(load=1.6, seed=0)).to_extras()
        second = run_traffic(config(load=1.6, seed=1)).to_extras()
        assert first != second

    def test_extras_are_flat_floats(self):
        extras = run_traffic(config()).to_extras()
        assert all(isinstance(v, float) for v in extras.values())
        assert all(k.startswith("traffic.") for k in extras)


class TestFlatMemory:
    def test_heap_peak_independent_of_session_count(self):
        """Open-loop streaming: 2x the sessions, same heap peak.

        Both points lie past quantile-reservoir saturation (4096
        samples), so any remaining growth is a genuine per-session
        leak. The 10% tolerance matches the acceptance criterion.
        """
        def peak(sessions):
            tracemalloc.start()
            run_traffic(config(sessions=sessions, load=1.6,
                               deadline_factor=0.0))
            high = tracemalloc.get_traced_memory()[1]
            tracemalloc.stop()
            return high

        peak(500)   # warmup: lazy imports, code objects, caches
        small, large = peak(8000), peak(16000)
        assert large <= small * 1.10


class TestFairShare:
    def test_light_tenant_protected_from_heavy_cotenant(self):
        """Fairness: under fair-share, the cold tenant's shed rate is
        bounded even when a hot co-tenant drives the machine into
        overload (tenant 0 is the Zipf head and sends ~2x the
        traffic of tenant 1)."""
        fair = run_traffic(config(
            sessions=1500, load=2.0, policy="fair-share", tenants=2,
            tenant_theta=1.0, deadline_factor=0.0))
        blind = run_traffic(config(
            sessions=1500, load=2.0, policy="reject-newest", tenants=2,
            tenant_theta=1.0, deadline_factor=0.0))
        assert fair.accounted and blind.accounted
        hot, cold = fair.tenants
        assert hot.arrivals > cold.arrivals
        # Under contention the cold tenant always holds tokens, so it
        # is shed substantially less than the hot one — and less than
        # the same tenant suffers under tenant-blind shedding.
        assert cold.shed_rate < 0.7 * hot.shed_rate
        assert cold.shed_rate < 0.7 * blind.tenants[1].shed_rate

    def test_reject_newest_spreads_shedding_evenly(self):
        blind = run_traffic(config(
            sessions=1500, load=2.0, policy="reject-newest", tenants=2,
            tenant_theta=1.0, deadline_factor=0.0))
        hot, cold = blind.tenants
        # Tenant-blind shedding hits both tenants at a similar rate.
        assert cold.shed_rate == pytest.approx(hot.shed_rate, abs=0.10)


class TestAdmissionPrimitives:
    def test_token_bucket_refills_with_time(self):
        bucket = TokenBucket(rate=1.0, burst=2.0)
        assert bucket.try_take(0.0) and bucket.try_take(0.0)
        assert not bucket.try_take(0.0)
        assert bucket.try_take(1.5)

    def test_detector_needs_sustained_occupancy(self):
        detector = SaturationDetector(10, trip_after=1.0)
        assert not detector.observe(0.0, 10)   # first sight arms it
        assert not detector.observe(0.5, 10)   # not sustained yet
        assert detector.observe(1.5, 10)       # 1.5s pinned: flips
        assert detector.flips_in == 1

    def test_queue_validation(self):
        with pytest.raises(ValueError):
            AdmissionQueue(0)
        with pytest.raises(ValueError):
            AdmissionQueue(4, "coin-flip")


class TestReport:
    def figure(self):
        extras = run_traffic(config(load=1.5)).to_extras()
        return TrafficFigure({("active", 16, 1.5, "reject-newest"): extras})

    def test_render_has_accounting_footer(self):
        text = self.figure().render()
        assert "every session accounted once" in text
        assert "p99" in text

    def test_rows_are_flat_dicts(self):
        rows = traffic_rows(self.figure())
        assert rows[0]["figure"] == "traffic"
        assert rows[0]["arch"] == "active"
        assert "traffic.sojourn.p99" in rows[0]

    def test_render_is_deterministic(self):
        assert self.figure().render() == self.figure().render()


class TestAccountingErrorGuard:
    def test_accounting_error_is_raised_not_swallowed(self):
        # Sanity that the guard exists and is an exception type the
        # harness treats as an ordinary cell error.
        assert issubclass(AccountingError, RuntimeError)
