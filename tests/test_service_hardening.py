"""Coordinator hardening: malformed frames quarantine one channel (not
the serve loop), schema-violating results are line noise, admission
control rejects deterministically, epoch fencing and exactly-once
deduplication hold, and the hardening telemetry behaves with and
without a registry."""

import socket as socketlib
import threading
import time

import pytest

from repro.experiments.journal import SweepJournal
from repro.experiments.workers import CellSpec, run_cell
from repro.experiments.artifacts import result_to_dict
from repro.service import (
    Coordinator,
    InProcTransport,
    SocketTransport,
)
from repro.service import protocol
from repro.service.server import submit_request

REQUEST = {"figure": "fig1", "sizes": [2], "tasks": ["select"],
           "scale": 1 / 1024}


@pytest.fixture
def socket_path(tmp_path):
    # AF_UNIX paths are length-limited (~107 bytes); keep it short.
    path = str(tmp_path / "c.sock")
    if len(path) > 100:
        pytest.skip(f"tmp_path too long for AF_UNIX: {path}")
    return path


def _coordinator(tmp_path, transport=None, **kwargs):
    transport = transport or InProcTransport()
    listener = transport.listen("coord")
    kwargs.setdefault("out_dir", str(tmp_path / "out"))
    return Coordinator(str(tmp_path / "state"), listener, **kwargs), transport


def _step_until(coordinator, predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        coordinator.step()
        assert time.monotonic() < deadline, "coordinator never converged"
        time.sleep(0.002)


def _register(coordinator, transport, worker_id):
    """Hand-register a fake worker; returns (channel, epoch)."""
    channel = transport.connect("coord")
    channel.send(protocol.hello(worker_id, 123))
    box = []

    def welcomed():
        message = channel.recv(0)
        if message is not None and message.get("kind") == "welcome":
            box.append(message)
        return bool(box)

    _step_until(coordinator, welcomed)
    return channel, box[0]["epoch"]


def _await_assign(coordinator, channel):
    box = []

    def drain():
        message = channel.recv(0)
        if message is not None and message.get("kind") == "assign":
            box.append(message)
        return bool(box)

    _step_until(coordinator, drain)
    return box[0]


# -------------------------------------------------------- malformed frames
class TestMalformedFrames:
    def test_socket_garbage_frame_does_not_kill_serve_loop(
            self, tmp_path, socket_path):
        """Regression: a garbage line over a real socket must cost one
        channel and one counter, never the coordinator."""
        listener = SocketTransport().listen(socket_path)
        coordinator = Coordinator(str(tmp_path / "state"), listener,
                                  out_dir=str(tmp_path / "out"))
        try:
            raw = socketlib.socket(socketlib.AF_UNIX,
                                   socketlib.SOCK_STREAM)
            raw.connect(socket_path)
            raw.sendall(b"this is definitely not json\n")
            _step_until(coordinator,
                        lambda: coordinator.counters["malformed"] == 1)
            raw.close()
            # The loop is alive: a well-formed status client still works.
            client = SocketTransport().connect(socket_path, timeout=2.0)
            client.send(protocol.status_request())
            reply = []
            _step_until(coordinator,
                        lambda: (reply.append(client.recv(0.01))
                                 or reply[-1] is not None))
            assert reply[-1]["kind"] == "status"
            client.close()
        finally:
            coordinator.close()

    def test_garbage_from_worker_quarantines_only_that_channel(
            self, tmp_path):
        coordinator, transport = _coordinator(tmp_path)
        noisy, _ = _register(coordinator, transport, "noisy")
        quiet, _ = _register(coordinator, transport, "quiet")
        noisy.send_text("{ not json")
        _step_until(coordinator,
                    lambda: coordinator.counters["malformed"] == 1)
        assert coordinator.workers["noisy"].lost
        assert "malformed" in coordinator.workers["noisy"].lost_reason
        assert not coordinator.workers["quiet"].lost
        coordinator.step()          # and the loop keeps stepping happily
        quiet.close()
        coordinator.close()

    def test_schema_violating_result_is_line_noise(self, tmp_path):
        coordinator, transport = _coordinator(tmp_path)
        channel, epoch = _register(coordinator, transport, "broken")
        channel.send({"kind": "result", "job": "job-0001", "key": 7,
                      "attempt": 0, "status": "done", "epoch": epoch})
        _step_until(coordinator,
                    lambda: coordinator.counters["malformed"] == 1)
        assert coordinator.workers["broken"].lost
        fresh, epoch = _register(coordinator, transport, "bogus")
        fresh.send({"kind": "result", "job": "job-0001", "key": "k",
                    "attempt": 0, "status": "sideways", "epoch": epoch})
        _step_until(coordinator,
                    lambda: coordinator.counters["malformed"] == 2)
        assert coordinator.workers["bogus"].lost
        coordinator.close()


# ------------------------------------------------------- admission control
class TestAdmissionControl:
    def test_queue_full_submits_rejected(self, tmp_path):
        coordinator, transport = _coordinator(tmp_path, max_pending=1)
        first = transport.connect("coord")
        first.send(protocol.submit(REQUEST))
        _step_until(coordinator,
                    lambda: coordinator.counters["jobs_submitted"] == 1)
        assert first.recv(1.0)["kind"] == "submitted"
        second = transport.connect("coord")
        second.send(protocol.submit(REQUEST))
        _step_until(coordinator,
                    lambda: coordinator.counters["rejected"] == 1)
        reply = second.recv(1.0)
        assert reply["kind"] == "rejected"
        assert reply["reason"] == "queue-full"
        assert (reply["depth"], reply["limit"]) == (1, 1)
        assert coordinator.queue.open_count() == 1
        coordinator.close()

    def test_drain_rejects_with_shutting_down(self, tmp_path):
        coordinator, transport = _coordinator(tmp_path)
        assert not coordinator.draining
        coordinator.begin_drain()
        assert coordinator.draining
        assert coordinator.status()["draining"]
        client = transport.connect("coord")
        client.send(protocol.submit(REQUEST))
        _step_until(coordinator,
                    lambda: coordinator.counters["rejected"] == 1)
        reply = client.recv(1.0)
        assert reply["kind"] == "rejected"
        assert reply["reason"] == "shutting-down"
        assert coordinator.counters["jobs_submitted"] == 0
        # Status queries keep working during the drain.
        status_client = transport.connect("coord")
        status_client.send(protocol.status_request())
        got = []
        _step_until(coordinator,
                    lambda: (got.append(status_client.recv(0.01))
                             or got[-1] is not None))
        assert got[-1]["kind"] == "status"
        coordinator.close()

    def test_submit_client_sees_shutting_down(self, tmp_path, socket_path):
        """A `repro submit --wait` racing the exit-linger gets a
        deterministic refusal, not a hang."""
        listener = SocketTransport().listen(socket_path)
        coordinator = Coordinator(str(tmp_path / "state"), listener,
                                  out_dir=str(tmp_path / "out"))
        coordinator.begin_drain()
        stop = threading.Event()

        def pump():
            while not stop.is_set():
                if not coordinator.step():
                    time.sleep(0.005)

        thread = threading.Thread(target=pump, daemon=True)
        thread.start()
        try:
            with pytest.raises(ValueError, match="shutting-down"):
                submit_request(socket_path, REQUEST, wait=True,
                               timeout=5.0)
        finally:
            stop.set()
            thread.join(2.0)
            coordinator.close()


# --------------------------------------------- exactly-once and fencing
class TestExactlyOnceAndFencing:
    def test_duplicate_result_dropped_not_reapplied(self, tmp_path):
        coordinator, transport = _coordinator(tmp_path, retries=0)
        channel, epoch = _register(coordinator, transport, "solo")
        job = coordinator.submit(REQUEST)
        assign = _await_assign(coordinator, channel)
        outcome = run_cell(CellSpec.from_dict(assign["spec"]))
        reply = protocol.result(assign["job"], assign["key"],
                                assign["attempt"], "done",
                                result=result_to_dict(outcome),
                                epoch=epoch)
        channel.send(reply)
        channel.send(reply)               # the duplicated frame
        _step_until(coordinator,
                    lambda: coordinator.counters["duplicate"] == 1)
        assert coordinator.counters["results"] == 1
        coordinator.close()
        journal = SweepJournal.load(coordinator.journal_path_for(job.id))
        assert journal.duplicates_dropped() == 1
        assert journal.cells[assign["key"]].status == "done"

    def test_stale_epoch_frames_fenced(self, tmp_path):
        coordinator, transport = _coordinator(tmp_path)
        stale, first_epoch = _register(coordinator, transport, "twice")
        fresh, second_epoch = _register(coordinator, transport, "twice")
        assert second_epoch == first_epoch + 1
        assert coordinator.counters["reconnects"] == 1
        assert coordinator.workers["twice"].epoch == second_epoch
        fresh.send(protocol.heartbeat("twice", epoch=first_epoch))
        _step_until(coordinator,
                    lambda: coordinator.counters["fenced"] == 1)
        assert coordinator.counters["heartbeats"] == 0
        fresh.send(protocol.heartbeat("twice", epoch=second_epoch))
        _step_until(coordinator,
                    lambda: coordinator.counters["heartbeats"] == 1)
        coordinator.close()

    def test_reregistration_supersedes_previous_channel(self, tmp_path):
        coordinator, transport = _coordinator(tmp_path)
        _register(coordinator, transport, "ph")
        state_one = coordinator.workers["ph"]
        _register(coordinator, transport, "ph")
        state_two = coordinator.workers["ph"]
        assert state_two is not state_one
        assert state_one.lost and "superseded" in state_one.lost_reason
        assert not state_two.lost
        # Supersession is not a worker loss (the id is still serving).
        assert coordinator.counters["workers_lost"] == 0
        coordinator.close()


# --------------------------------------------------------------- telemetry
class TestHardeningTelemetry:
    def test_hardening_counters_registered_eagerly(self, tmp_path):
        from repro.telemetry import Telemetry
        telemetry = Telemetry()
        coordinator, _ = _coordinator(tmp_path, telemetry=telemetry)
        names = set(telemetry.registry.names())
        assert {"service.fenced", "service.duplicate", "service.malformed",
                "service.rejected", "service.reconnects"} <= names
        coordinator.close()

    def test_heartbeat_lag_histogram_and_live_gauge(self, tmp_path):
        from repro.telemetry import Telemetry
        telemetry = Telemetry()
        coordinator, transport = _coordinator(
            tmp_path, telemetry=telemetry, heartbeat_timeout=30.0)
        registry = telemetry.registry
        channel, epoch = _register(coordinator, transport, "slow")
        assert registry.gauge("service.workers.live").value == 1
        time.sleep(0.12)                  # one deliberately laggy beat
        channel.send(protocol.heartbeat("slow", epoch=epoch))
        _step_until(coordinator,
                    lambda: coordinator.counters["heartbeats"] == 1)
        lag = registry.histogram("service.heartbeat.lag")
        assert lag.count >= 1
        assert lag.max >= 0.1             # the slow beat was observed
        channel.close()
        _step_until(coordinator,
                    lambda: coordinator.workers["slow"].lost)
        assert registry.gauge("service.workers.live").value == 0
        coordinator.close()

    def test_counters_plain_dict_without_telemetry(self, tmp_path):
        coordinator, transport = _coordinator(tmp_path)
        assert coordinator.telemetry is None
        for name in ("fenced", "duplicate", "malformed", "rejected",
                     "reconnects"):
            assert coordinator.counters[name] == 0
        coordinator.begin_drain()
        client = transport.connect("coord")
        client.send(protocol.submit(REQUEST))
        _step_until(coordinator,
                    lambda: coordinator.counters["rejected"] == 1)
        assert isinstance(coordinator.counters, dict)
        coordinator.close()
