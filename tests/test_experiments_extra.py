"""Additional coverage for experiment drivers, sweeps and CLI paths."""

import pytest

from repro.cli import main
from repro.experiments import (
    Sweep,
    SweepCell,
    run_fig2,
    run_fig4,
    run_fig5,
    run_task,
    config_for,
)

TINY = 1 / 512


class TestSweep:
    def cell(self, task="select", arch="active", disks=4,
             variant="base"):
        result = run_task(config_for(arch, disks), task, TINY)
        return SweepCell(task=task, arch=arch, num_disks=disks,
                         variant=variant, result=result)

    def test_add_get(self):
        sweep = Sweep()
        cell = self.cell()
        sweep.add(cell)
        assert sweep.get("select", "active", 4) is cell
        assert sweep.elapsed("select", "active", 4) == cell.elapsed

    def test_missing_cell_raises(self):
        with pytest.raises(KeyError):
            Sweep().get("select", "active", 4)

    def test_tasks_in_insertion_order(self):
        sweep = Sweep()
        sweep.add(self.cell(task="sort"))
        sweep.add(self.cell(task="select"))
        sweep.add(self.cell(task="sort", arch="smp"))
        assert sweep.tasks() == ("sort", "select")


class TestFigureObjects:
    def test_fig2_normalization_and_render(self):
        result = run_fig2(sizes=(4,), tasks=("select",), scale=TINY)
        assert result.normalized("select", "active", 4, "200MB") == \
            pytest.approx(1.0)
        text = result.render()
        assert "400MB(S)" in text

    def test_fig4_render_has_one_block_per_memory(self):
        result = run_fig4(sizes=(4,), tasks=("select",),
                          memories_mb=(32, 64, 128), scale=TINY)
        text = result.render()
        assert "64 MB" in text and "128 MB" in text
        assert "32 MB" not in text.split("vs 32 MB")[0].splitlines()[0]

    def test_fig5_modes_recorded(self):
        result = run_fig5(sizes=(4,), tasks=("aggregate",), scale=TINY)
        assert ("aggregate", 4, "direct") in result.elapsed
        assert ("aggregate", 4, "restricted") in result.elapsed


class TestCliPaths:
    def test_all_with_out_file(self, tmp_path, capsys):
        out = tmp_path / "report.txt"
        assert main(["all", "--sizes", "4", "--scale", "1/512",
                     "--out", str(out)]) == 0
        assert "Figure 5" in out.read_text()
        capsys.readouterr()

    def test_fig2_cli(self, capsys):
        assert main(["fig2", "--sizes", "4", "--tasks", "select",
                     "--scale", "1/512"]) == 0
        assert "Figure 2" in capsys.readouterr().out

    def test_fig3_cli(self, capsys):
        assert main(["fig3", "--sizes", "4", "--scale", "1/512"]) == 0
        assert "Figure 3" in capsys.readouterr().out

    def test_fig4_cli(self, capsys):
        assert main(["fig4", "--sizes", "4", "--tasks", "select",
                     "--scale", "1/512"]) == 0
        assert "Figure 4" in capsys.readouterr().out

    def test_table1_custom_disks(self, capsys):
        assert main(["table1", "--disks", "128"]) == 0
        assert "128-node" in capsys.readouterr().out
