"""Unit + property tests for the seek curve and rotational model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk import (
    SEAGATE_ST39102,
    DiskGeometry,
    DiskMechanics,
    SeekCurve,
)

SPEC = SEAGATE_ST39102
GEOMETRY = DiskGeometry(SPEC)
MECHANICS = DiskMechanics(SPEC, GEOMETRY)


class TestSeekCurve:
    def test_zero_distance_is_free(self):
        assert MECHANICS.read_seek(0) == 0.0

    def test_track_to_track_anchor(self):
        assert MECHANICS.read_seek(1) == pytest.approx(
            SPEC.seek_track_to_track)

    def test_average_anchor_at_one_third_stroke(self):
        knee = MECHANICS.read_seek.knee
        assert MECHANICS.read_seek(knee) == pytest.approx(
            SPEC.seek_avg_read)

    def test_maximum_anchor_at_full_stroke(self):
        assert MECHANICS.read_seek(SPEC.cylinders - 1) == pytest.approx(
            SPEC.seek_max_read, rel=0.01)

    def test_write_seeks_slower_than_reads(self):
        for distance in (1, 100, 2000, 6000):
            assert (MECHANICS.write_seek(distance)
                    > MECHANICS.read_seek(distance))

    def test_invalid_anchors_rejected(self):
        with pytest.raises(ValueError):
            SeekCurve(1000, track_to_track=5e-3, average=1e-3, maximum=2e-3)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            MECHANICS.read_seek(-1)

    def test_beyond_stroke_rejected(self):
        with pytest.raises(ValueError):
            MECHANICS.read_seek(SPEC.cylinders)

    @given(st.integers(min_value=1, max_value=SPEC.cylinders - 2))
    @settings(max_examples=200)
    def test_monotonically_nondecreasing(self, distance):
        assert (MECHANICS.read_seek(distance + 1)
                >= MECHANICS.read_seek(distance) - 1e-12)

    @given(st.integers(min_value=1, max_value=SPEC.cylinders - 1))
    @settings(max_examples=200)
    def test_bounded_by_anchors(self, distance):
        value = MECHANICS.read_seek(distance)
        assert SPEC.seek_track_to_track <= value <= SPEC.seek_max_read + 1e-9


class TestRotation:
    def test_delay_bounded_by_one_revolution(self):
        for now in (0.0, 1e-3, 17e-3):
            for lbn in (0, 1000, GEOMETRY.total_sectors - 1):
                delay = MECHANICS.rotational_delay(now, lbn)
                assert 0.0 <= delay < SPEC.revolution_time

    def test_deterministic(self):
        a = MECHANICS.rotational_delay(1.234, 5678)
        b = MECHANICS.rotational_delay(1.234, 5678)
        assert a == b

    def test_waiting_one_revolution_returns_same_sector(self):
        delay = MECHANICS.rotational_delay(1.0, 999)
        later = MECHANICS.rotational_delay(1.0 + SPEC.revolution_time, 999)
        assert delay == pytest.approx(later, abs=1e-12)

    @given(st.floats(min_value=0, max_value=100, allow_nan=False),
           st.integers(min_value=0, max_value=GEOMETRY.total_sectors - 1))
    @settings(max_examples=200)
    def test_delay_always_forward(self, now, lbn):
        assert MECHANICS.rotational_delay(now, lbn) >= 0.0


class TestTransfer:
    def test_zero_bytes_is_free(self):
        assert MECHANICS.transfer_time(0, 0) == 0.0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            MECHANICS.transfer_time(0, -1)

    def test_outer_zone_faster_than_inner(self):
        nbytes = 1 << 20
        outer = MECHANICS.transfer_time(0, nbytes)
        inner = MECHANICS.transfer_time(GEOMETRY.total_sectors - 10, nbytes)
        assert outer < inner

    def test_rate_matches_published_band(self):
        nbytes = 10 * 1000 * 1000
        outer_rate = nbytes / MECHANICS.transfer_time(0, nbytes)
        assert outer_rate == pytest.approx(SPEC.media_rate_max, rel=0.06)


class TestPositioning:
    def test_returns_target_cylinder(self):
        lbn = GEOMETRY.total_sectors // 2
        delay, cylinder = MECHANICS.positioning_time(0.0, 0, lbn, False)
        expected_cyl, _, _ = GEOMETRY.lbn_to_chs(lbn)
        assert cylinder == expected_cyl
        assert delay > 0

    def test_same_position_costs_only_rotation(self):
        delay, _ = MECHANICS.positioning_time(0.0, 0, 0, False)
        assert delay < SPEC.revolution_time
