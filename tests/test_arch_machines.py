"""Machine-level tests: byte accounting, extras, determinism, configs."""

import pytest

from repro.arch import (
    ActiveDiskConfig,
    ClusterConfig,
    CostComponent,
    Phase,
    SMPConfig,
    TaskProgram,
    build_machine,
)
from repro.sim import Simulator

MB = 1_000_000
GB = 1_000_000_000

ALL_CONFIGS = [
    ActiveDiskConfig(num_disks=8),
    ClusterConfig(num_disks=8),
    SMPConfig(num_disks=8),
]
IDS = ["active", "cluster", "smp"]


def scan_program(total=256 * MB, frontend=0.01):
    return TaskProgram(task="scan", phases=(
        Phase(name="scan", read_bytes_total=total,
              cpu=(CostComponent("work", 50.0),),
              frontend_fraction=frontend),
    ))


def shuffle_program(total=128 * MB):
    return TaskProgram(task="shuffle", phases=(
        Phase(name="move", read_bytes_total=total,
              cpu=(CostComponent("split", 20.0),),
              shuffle_fraction=1.0,
              recv=(CostComponent("collect", 20.0),),
              recv_write_fraction=1.0),
    ))


def run(config, program):
    sim = Simulator()
    machine = build_machine(sim, config)
    return machine.run(program)


class TestConfigValidation:
    def test_bad_disk_count(self):
        with pytest.raises(ValueError):
            ActiveDiskConfig(num_disks=0)

    def test_bad_request_size(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_disks=4, io_request_bytes=100)

    def test_bad_queue_depth(self):
        with pytest.raises(ValueError):
            SMPConfig(num_disks=4, queue_depth=0)

    def test_variants(self):
        config = ActiveDiskConfig(num_disks=16)
        assert config.with_interconnect(400 * MB).interconnect_rate == 400 * MB
        assert config.with_memory(64 * MB).disk_memory_bytes == 64 * MB
        assert not config.restricted().direct_disk_to_disk
        assert config.with_frontend_mhz(1000).frontend_cpu_mhz == 1000

    def test_smp_memory_scales_with_processors(self):
        assert SMPConfig(num_disks=64).total_memory == 32 * 128 * MB
        assert SMPConfig(num_disks=128).total_memory == 64 * 128 * MB

    def test_build_machine_dispatch(self):
        sim = Simulator()
        with pytest.raises(TypeError):
            build_machine(sim, object())


@pytest.mark.parametrize("config", ALL_CONFIGS, ids=IDS)
class TestScanExecution:
    def test_reads_full_dataset(self, config):
        result = run(config, scan_program())
        assert result.extras["disk_bytes_read"] == pytest.approx(
            256 * MB, rel=0.01)

    def test_frontend_receives_fraction(self, config):
        result = run(config, scan_program())
        assert result.extras["frontend_bytes"] == pytest.approx(
            0.01 * 256 * MB, rel=0.02)

    def test_elapsed_positive_and_finite(self, config):
        result = run(config, scan_program())
        assert 0 < result.elapsed < 1e4

    def test_phase_results_recorded(self, config):
        result = run(config, scan_program())
        assert [p.name for p in result.phases] == ["scan"]
        phase = result.phase("scan")
        assert phase.elapsed == pytest.approx(result.elapsed)
        assert phase.busy_total > 0

    def test_unknown_phase_lookup_raises(self, config):
        result = run(config, scan_program())
        with pytest.raises(KeyError):
            result.phase("nope")

    def test_deterministic(self, config):
        a = run(config, scan_program())
        b = run(config, scan_program())
        assert a.elapsed == b.elapsed


@pytest.mark.parametrize("config", ALL_CONFIGS, ids=IDS)
class TestShuffleExecution:
    def test_shuffled_bytes_written_at_receivers(self, config):
        result = run(config, shuffle_program())
        assert result.extras["disk_bytes_written"] == pytest.approx(
            128 * MB, rel=0.02)

    def test_recv_cpu_charged(self, config):
        result = run(config, shuffle_program())
        phase = result.phases[0]
        assert phase.busy.get("collect", 0) > 0


class TestActiveDiskSpecifics:
    def test_scan_does_not_touch_fc(self):
        result = run(ActiveDiskConfig(num_disks=8),
                     scan_program(frontend=0.0))
        assert result.extras["fc_bytes"] == 0

    def test_shuffle_crosses_fc_once(self):
        result = run(ActiveDiskConfig(num_disks=8), shuffle_program())
        expected = 128 * MB * 7 / 8  # 1/8 stays local
        assert result.extras["fc_bytes"] == pytest.approx(expected, rel=0.02)

    def test_restricted_mode_relays_via_frontend(self):
        result = run(ActiveDiskConfig(num_disks=8).restricted(),
                     shuffle_program())
        assert result.extras["frontend_relay_bytes"] == pytest.approx(
            128 * MB * 7 / 8, rel=0.02)
        # Every relayed byte crosses the loop twice.
        assert result.extras["fc_bytes"] == pytest.approx(
            2 * 128 * MB * 7 / 8, rel=0.02)

    def test_restricted_mode_slower(self):
        direct = run(ActiveDiskConfig(num_disks=8), shuffle_program())
        relayed = run(ActiveDiskConfig(num_disks=8).restricted(),
                      shuffle_program())
        assert relayed.elapsed > direct.elapsed

    def test_scratch_check_rejects_oversized_program(self):
        program = TaskProgram(task="big", phases=(
            Phase(name="p", read_bytes_total=1 * MB,
                  scratch_bytes=1 * GB),))
        sim = Simulator()
        machine = build_machine(sim, ActiveDiskConfig(num_disks=4))
        with pytest.raises(ValueError):
            machine.run(program)

    def test_faster_interconnect_speeds_fc_bound_shuffle(self):
        # 16 disks produce ~320 MB/s of shuffle traffic — above the
        # 200 MB/s loop, so doubling the interconnect must help. No
        # receiver writes, so the media cannot become the bottleneck.
        program = TaskProgram(task="exchange", phases=(
            Phase(name="move", read_bytes_total=512 * MB,
                  shuffle_fraction=1.0,
                  recv=(CostComponent("collect", 5.0),)),))
        base = run(ActiveDiskConfig(num_disks=16), program)
        fast = run(ActiveDiskConfig(num_disks=16).with_interconnect(400 * MB),
                   program)
        assert fast.elapsed < 0.9 * base.elapsed


class TestSMPSpecifics:
    def test_scan_crosses_fc_fully(self):
        result = run(SMPConfig(num_disks=8), scan_program(frontend=0.0))
        assert result.extras["fc_bytes"] == pytest.approx(256 * MB, rel=0.01)

    def test_shuffle_goes_through_memory_not_fc(self):
        result = run(SMPConfig(num_disks=8), shuffle_program())
        # FC carries read (128 MB) + receiver writes (128 MB), not the
        # shuffle itself; NUMA carries reads + shuffle.
        assert result.extras["fc_bytes"] == pytest.approx(
            256 * MB, rel=0.02)
        assert result.extras["numa_bytes"] > 128 * MB

    def test_split_disk_groups_separate_read_write(self):
        program = TaskProgram(task="split", phases=(
            Phase(name="move", read_bytes_total=64 * MB,
                  shuffle_fraction=1.0, recv_write_fraction=1.0,
                  split_disk_groups=True),))
        sim = Simulator()
        machine = build_machine(sim, SMPConfig(num_disks=8))
        machine.run(program)
        reads = [d.bytes_read for d in machine.drives]
        writes = [d.bytes_written for d in machine.drives]
        assert all(r > 0 for r in reads[:4]) and all(r == 0 for r in reads[4:])
        assert all(w == 0 for w in writes[:4]) and all(w > 0 for w in writes[4:])

    def test_doubling_interconnect_helps_scan(self):
        slow = run(SMPConfig(num_disks=16), scan_program())
        fast = run(SMPConfig(num_disks=16).with_interconnect(400 * MB),
                   scan_program())
        assert fast.elapsed < 0.75 * slow.elapsed


class TestClusterSpecifics:
    def test_frontend_link_is_the_groupby_bottleneck(self):
        heavy = TaskProgram(task="fe", phases=(
            Phase(name="scan", read_bytes_total=64 * MB,
                  frontend_fraction=0.5),))
        result = run(ClusterConfig(num_disks=8), heavy)
        # 32 MB into a 12.5 MB/s access link: at least ~2.5 s.
        assert result.elapsed > 2.0
        assert result.extras["frontend_rx_utilization"] > 0.5

    def test_network_bytes_accounted(self):
        result = run(ClusterConfig(num_disks=8), shuffle_program())
        assert result.extras["net_bytes"] >= 128 * MB * 7 / 8
