"""Tests for the packet-level (MTU) network mode."""

import pytest

from repro.net import FatTree, Network
from repro.sim import Simulator

KB = 1024


def single_stream_goodput(mtu, count=40, size=256 * KB, hosts=16):
    sim = Simulator()
    tree = FatTree(sim, hosts)
    network = Network(tree, mtu=mtu)
    def proc():
        for _ in range(count):
            yield from network.transfer(0, 5, size)
    sim.process(proc())
    sim.run()
    return count * size / sim.now, tree.params.host_link_rate


class TestPacketMode:
    def test_mtu_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Network(FatTree(sim, 4), mtu=100)

    def test_small_messages_unaffected(self):
        sim = Simulator()
        network = Network(FatTree(sim, 4), mtu=9000)
        def proc():
            yield from network.transfer(0, 1, 1024)
        sim.process(proc())
        sim.run()
        message_level = sim.now
        sim2 = Simulator()
        network2 = Network(FatTree(sim2, 4))
        def proc2():
            yield from network2.transfer(0, 1, 1024)
        sim2.process(proc2())
        sim2.run()
        assert message_level == pytest.approx(sim2.now)

    def test_fragmentation_pipelines_single_stream(self):
        """Message-level store-and-forward halves a blocking stream's
        goodput; MTU frames pipeline and recover the wire rate."""
        coarse, wire = single_stream_goodput(mtu=None)
        fine, _ = single_stream_goodput(mtu=9_000)
        assert coarse < 0.6 * wire
        assert fine > 0.85 * wire

    def test_aggregate_throughput_unchanged_with_inflight_messages(self):
        """With several messages in flight per sender (how the engines
        drive the network), the two models deliver the same aggregate
        — the pipelining MTU mode only matters for blocking streams."""
        def all_to_all(mtu):
            sim = Simulator()
            tree = FatTree(sim, 8)
            network = Network(tree, mtu=mtu)
            for src in range(8):
                for j in range(8):
                    sim.process(network.transfer(
                        src, (src + 1 + j % 7) % 8, 128 * KB))
            sim.run()
            return 8 * 8 * 128 * KB / sim.now
        assert all_to_all(9_000) == pytest.approx(
            all_to_all(None), rel=0.15)

    def test_byte_accounting_identical(self):
        sim = Simulator()
        tree = FatTree(sim, 4)
        network = Network(tree, mtu=1_500)
        def proc():
            yield from network.transfer(0, 2, 100 * KB)
        sim.process(proc())
        sim.run()
        assert network.bytes.value == 100 * KB
        assert network.messages.value == 1
        assert tree.port(0).tx.bytes_moved.value == 100 * KB

    def test_cross_leaf_fragmented_delivery(self):
        sim = Simulator()
        tree = FatTree(sim, 32)
        network = Network(tree, mtu=9_000)
        done = []
        def proc():
            yield from network.transfer(0, 20, 256 * KB)
            done.append(sim.now)
        sim.process(proc())
        sim.run()
        wire = 256 * KB / tree.params.host_link_rate
        # Pipelined: a bit over one access-link serialization.
        assert done[0] == pytest.approx(wire, rel=0.25)
