"""Tests for write-back caching and the remote-queue primitive."""

import pytest

from repro.disk import DiskDrive, SEAGATE_ST39102
from repro.host import RemoteQueue
from repro.sim import Simulator

KB = 1024
MB = 1_000_000


def bursty_writes(policy, count=20, size=32 * KB, gap=0.05):
    sim = Simulator()
    drive = DiskDrive(sim, SEAGATE_ST39102, write_policy=policy)
    latencies = []
    def driver():
        lbn = 0
        for _ in range(count):
            began = sim.now
            yield drive.write(lbn, size)
            latencies.append(sim.now - began)
            lbn += 70_000
            yield sim.timeout(gap)
    sim.process(driver())
    sim.run()
    return drive, latencies, sim.now


class TestWriteBack:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            DiskDrive(Simulator(), SEAGATE_ST39102, write_policy="maybe")

    def test_hides_latency_for_bursty_writes(self):
        _, through, _ = bursty_writes("through")
        _, back, _ = bursty_writes("back")
        assert (sum(back) / len(back)) < 0.5 * (sum(through) / len(through))

    def test_media_work_still_happens(self):
        drive, _, _ = bursty_writes("back")
        # Destaging during idle gaps charged real positioning/transfer.
        assert drive.busy.buckets.get("transfer", 0) > 0
        assert drive.busy.buckets.get("seek", 0) > 0

    def test_bytes_accounted_at_completion(self):
        drive, _, _ = bursty_writes("back", count=10)
        assert drive.bytes_written == 10 * 32 * KB

    def test_sustained_throughput_not_inflated(self):
        """Without idle gaps the writer ends up media-bound either way."""
        def sustained(policy):
            sim = Simulator()
            drive = DiskDrive(sim, SEAGATE_ST39102, write_policy=policy)
            def driver():
                lbn = 0
                for _ in range(100):
                    yield drive.write(lbn, 256 * KB)
                    lbn += 512
            sim.process(driver())
            sim.run()
            # Drain any dirty remainder.
            sim.run(until=sim.now + 1.0)
            return 100 * 256 * KB / drive.busy.total()
        through = sustained("through")
        back = sustained("back")
        assert back == pytest.approx(through, rel=0.25)

    def test_dirty_data_bounded_by_buffer(self):
        sim = Simulator()
        drive = DiskDrive(sim, SEAGATE_ST39102, write_policy="back")
        span = drive.geometry.total_sectors - 1024
        events = [drive.write((i * 600_000) % span, 256 * KB)
                  for i in range(40)]
        watermarks = []
        def monitor():
            while not all(e.triggered for e in events):
                watermarks.append(drive._dirty_bytes)
                yield sim.timeout(1e-3)
        sim.process(monitor())
        sim.run()
        assert max(watermarks) <= drive.spec.cache_bytes
        assert drive.bytes_written == 40 * 256 * KB

    def test_reads_unaffected_by_policy(self):
        def read_time(policy):
            sim = Simulator()
            drive = DiskDrive(sim, SEAGATE_ST39102, write_policy=policy)
            def driver():
                yield drive.read(10_000, 256 * KB)
            sim.process(driver())
            sim.run()
            return sim.now
        assert read_time("back") == pytest.approx(read_time("through"))


class TestRemoteQueue:
    def test_validation(self):
        with pytest.raises(ValueError):
            RemoteQueue(Simulator(), capacity=0)

    def test_fifo_delivery(self):
        sim = Simulator()
        queue = RemoteQueue(sim, capacity=4)
        got = []
        def sender():
            for i in range(6):
                yield from queue.enqueue(i)
        def receiver():
            for _ in range(6):
                item = yield from queue.dequeue()
                got.append(item)
                yield sim.timeout(1.0)
        sim.process(sender())
        sim.process(receiver())
        sim.run()
        assert got == [0, 1, 2, 3, 4, 5]

    def test_backpressure_blocks_sender(self):
        sim = Simulator()
        queue = RemoteQueue(sim, capacity=2)
        times = []
        def sender():
            for i in range(3):
                yield from queue.enqueue(i)
                times.append(sim.now)
        def receiver():
            yield sim.timeout(5.0)
            yield from queue.dequeue()
        sim.process(sender())
        sim.process(receiver())
        sim.run()
        assert times[0] == 0.0 and times[1] == 0.0
        assert times[2] == pytest.approx(5.0)

    def test_slot_protocol(self):
        sim = Simulator()
        queue = RemoteQueue(sim, capacity=1)
        def proc():
            yield from queue.acquire_slot()
            assert queue.is_full
            queue.release_slot()
            assert not queue.is_full
        sim.process(proc())
        sim.run()
        assert queue.enqueued == 1 and queue.dequeued == 1

    def test_release_without_acquire_rejected(self):
        queue = RemoteQueue(Simulator(), capacity=1)
        with pytest.raises(RuntimeError):
            queue.release_slot()

    def test_try_enqueue(self):
        sim = Simulator()
        queue = RemoteQueue(sim, capacity=1)
        assert queue.try_enqueue("a")
        assert not queue.try_enqueue("b")

    def test_high_watermark(self):
        sim = Simulator()
        queue = RemoteQueue(sim, capacity=8)
        def proc():
            for i in range(5):
                yield from queue.enqueue(i)
        sim.process(proc())
        sim.run()
        assert queue.high_watermark == 5
