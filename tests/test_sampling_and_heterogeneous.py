"""Tests for the time-series sampler and heterogeneous-farm configs."""

import pytest

from repro.arch import ActiveDiskConfig, build_machine
from repro.disk import HITACHI_DK3E1T91, SEAGATE_ST39102, fast_variant
from repro.sim import Sampler, Simulator, sparkline
from repro.workloads import build_program


class TestSampler:
    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Sampler(sim, interval=0, probes={"x": lambda: 0.0})
        with pytest.raises(ValueError):
            Sampler(sim, interval=1.0, probes={})

    def test_samples_at_fixed_interval(self):
        sim = Simulator()
        sampler = Sampler(sim, interval=1.0,
                          probes={"clock": lambda: sim.now})
        def work():
            yield sim.timeout(5.0)
        sim.process(work())
        sim.run()
        times = [t for t, _ in sampler.series("clock")]
        # One trailing tick may land after the last event (the sampler
        # only notices the queue drained on its next wake-up).
        assert times[:6] == pytest.approx([0.0, 1.0, 2.0, 3.0, 4.0, 5.0])
        assert len(times) <= 7

    def test_sampler_does_not_keep_simulation_alive(self):
        sim = Simulator()
        Sampler(sim, interval=0.1, probes={"x": lambda: 1.0})
        def work():
            yield sim.timeout(0.35)
        sim.process(work())
        sim.run()
        assert sim.now < 0.6

    def test_probe_values_recorded(self):
        sim = Simulator()
        state = {"v": 0.0}
        sampler = Sampler(sim, interval=1.0,
                          probes={"v": lambda: state["v"]})
        def work():
            yield sim.timeout(1.5)
            state["v"] = 7.0
            yield sim.timeout(1.5)
        sim.process(work())
        sim.run()
        values = [v for _, v in sampler.series("v")]
        assert values[0] == 0.0 and values[-1] == 7.0

    def test_render_produces_one_line_per_probe(self):
        sim = Simulator()
        sampler = Sampler(sim, interval=0.5, probes={
            "a": lambda: 1.0, "b": lambda: 2.0})
        def work():
            yield sim.timeout(2.0)
        sim.process(work())
        sim.run()
        lines = sampler.render().splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("a")


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_all_zero_is_blank(self):
        assert sparkline([0.0, 0.0, 0.0]).strip() == ""

    def test_peak_uses_strongest_glyph(self):
        text = sparkline([0.0, 0.5, 1.0], width=3)
        assert text[-1] == "@"

    def test_resamples_to_width(self):
        assert len(sparkline(list(range(1000)), width=40)) == 40

    def test_short_input_keeps_length(self):
        assert len(sparkline([1.0, 2.0], width=40)) == 2


class TestHeterogeneousFarms:
    def test_override_validation(self):
        with pytest.raises(ValueError):
            ActiveDiskConfig(num_disks=4,
                             drive_overrides=((9, HITACHI_DK3E1T91),))

    def test_drive_for(self):
        config = ActiveDiskConfig(num_disks=4).with_degraded_drive(
            2, HITACHI_DK3E1T91)
        assert config.drive_for(2) is HITACHI_DK3E1T91
        assert config.drive_for(0) is SEAGATE_ST39102

    def test_with_degraded_drive_replaces(self):
        config = ActiveDiskConfig(num_disks=4)
        config = config.with_degraded_drive(1, HITACHI_DK3E1T91)
        config = config.with_degraded_drive(1, SEAGATE_ST39102)
        assert config.drive_for(1) is SEAGATE_ST39102
        assert len(config.drive_overrides) == 1

    def test_machine_builds_heterogeneous_farm(self):
        slow = fast_variant(SEAGATE_ST39102, 0.5)
        config = ActiveDiskConfig(num_disks=4).with_degraded_drive(0, slow)
        sim = Simulator()
        machine = build_machine(sim, config)
        assert machine.nodes[0].drive.spec is slow
        assert machine.nodes[1].drive.spec is SEAGATE_ST39102

    def test_one_slow_disk_drags_the_farm(self):
        slow = fast_variant(SEAGATE_ST39102, 0.25)
        def run(config):
            sim = Simulator()
            machine = build_machine(sim, config)
            return machine.run(
                build_program("sort", config, 1 / 128)).elapsed
        healthy = run(ActiveDiskConfig(num_disks=8))
        degraded = run(
            ActiveDiskConfig(num_disks=8).with_degraded_drive(0, slow))
        assert degraded > 1.3 * healthy
