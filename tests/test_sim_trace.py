"""Tests for the simulation trace log."""

import pytest

from repro.sim import Simulator, TraceLog


def run_traced(capacity=100):
    log = TraceLog(capacity=capacity)
    sim = Simulator(trace=log)

    def worker(name, count):
        for _ in range(count):
            yield sim.timeout(1.0)

    sim.process(worker("a", 5), name="worker-a")
    sim.process(worker("b", 3), name="worker-b")
    sim.run()
    return log, sim


class TestTraceLog:
    def test_validation(self):
        with pytest.raises(ValueError):
            TraceLog(capacity=0)

    def test_records_every_event(self):
        log, sim = run_traced()
        assert log.total == sim.event_count

    def test_counts_by_kind(self):
        log, _ = run_traced()
        assert log.counts["Timeout"] == 8

    def test_ring_buffer_bounded(self):
        log, _ = run_traced(capacity=5)
        assert len(log.entries) == 5
        assert log.total > 5

    def test_window(self):
        log, _ = run_traced()
        early = log.window(0.0, 2.5)
        assert early
        assert all(0.0 <= e.time < 2.5 for e in early)
        with pytest.raises(ValueError):
            log.window(3.0, 1.0)

    def test_completed_processes(self):
        log, _ = run_traced()
        completions = log.completed_processes()
        names = [name for _, name in completions]
        assert set(names) == {"worker-a", "worker-b"}
        times = dict((name, time) for time, name in completions)
        assert times["worker-b"] == pytest.approx(3.0)
        assert times["worker-a"] == pytest.approx(5.0)

    def test_summary_renders(self):
        log, _ = run_traced()
        text = log.summary()
        assert "events traced" in text and "Timeout" in text
