"""Tests for the eight task builders: program shapes per architecture."""

import pytest

from repro.arch import ActiveDiskConfig, ClusterConfig, SMPConfig
from repro.workloads import build_program, registered_tasks
from repro.workloads.tasks import TaskContext, task_builder
from repro.workloads.tasks.sort import run_count
from repro.workloads import dataset_for

GB = 1_000_000_000
MB = 1_000_000

ACTIVE = ActiveDiskConfig(num_disks=16)
CLUSTER = ClusterConfig(num_disks=16)
SMP = SMPConfig(num_disks=16)
ALL = [ACTIVE, CLUSTER, SMP]
IDS = ["active", "cluster", "smp"]


class TestRegistry:
    def test_all_eight_registered(self):
        assert len(registered_tasks()) == 8

    def test_unknown_task_rejected(self):
        with pytest.raises(KeyError):
            task_builder("transmogrify")


@pytest.mark.parametrize("config", ALL, ids=IDS)
@pytest.mark.parametrize("task", sorted(
    {"select", "aggregate", "groupby", "sort", "join", "dmine", "dcube",
     "mview"}))
class TestAllPrograms:
    def test_program_builds(self, config, task):
        program = build_program(task, config, scale=1.0)
        assert program.task == task
        assert program.phases

    def test_read_volume_at_least_dataset(self, config, task):
        program = build_program(task, config, scale=1.0)
        dataset = dataset_for(task)
        # Multi-pass tasks read the dataset several times; nothing reads
        # less than once (mview phases partition the dataset).
        assert program.total_read_bytes() >= dataset.total_bytes * 0.9


class TestSelect:
    def test_one_percent_to_frontend(self):
        program = build_program("select", ACTIVE)
        phase = program.phases[0]
        assert phase.frontend_fraction == pytest.approx(0.01)
        assert phase.shuffle_fraction == 0.0
        assert phase.read_bytes_total == 16 * GB


class TestAggregate:
    def test_fixed_tiny_result(self):
        program = build_program("aggregate", ACTIVE)
        phase = program.phases[0]
        assert phase.frontend_fraction == 0.0
        assert phase.frontend_fixed_per_worker == 64


class TestGroupby:
    def test_result_volume_is_group_table(self):
        program = build_program("groupby", ACTIVE)
        phase = program.phases[0]
        expected = 13_500_000 * 32 / (16 * GB)
        assert phase.frontend_fraction == pytest.approx(expected)


class TestSort:
    def test_two_phases_full_repartition(self):
        program = build_program("sort", ACTIVE)
        sort_phase, merge_phase = program.phases
        assert sort_phase.shuffle_fraction == 1.0
        assert sort_phase.recv_write_fraction == 1.0
        assert merge_phase.write_fraction == 1.0
        assert merge_phase.read_streams >= 1

    def test_paper_run_count_16_disks(self):
        """1 GB per disk / ~25 MB runs = the paper's 40 runs."""
        context = TaskContext(config=ACTIVE,
                              dataset=dataset_for("sort"), scale=1.0)
        assert run_count(context) == pytest.approx(40, abs=2)

    def test_more_memory_fewer_runs(self):
        big = ActiveDiskConfig(num_disks=16, disk_memory_bytes=64 * MB)
        small_ctx = TaskContext(ACTIVE, dataset_for("sort"), 1.0)
        big_ctx = TaskContext(big, dataset_for("sort"), 1.0)
        assert run_count(big_ctx) == pytest.approx(
            run_count(small_ctx) / 2, abs=1)

    def test_scaling_preserves_run_count(self):
        full = TaskContext(ACTIVE, dataset_for("sort", 1.0), 1.0)
        scaled = TaskContext(ACTIVE, dataset_for("sort", 1 / 16),
                             1 / 16)
        assert run_count(full) == run_count(scaled)

    def test_smp_splits_disk_groups(self):
        program = build_program("sort", SMP)
        assert all(p.split_disk_groups for p in program.phases)
        assert not any(p.split_disk_groups
                       for p in build_program("sort", ACTIVE).phases)


class TestJoin:
    def test_grace_structure(self):
        program = build_program("join", ACTIVE)
        partition, probe = program.phases
        assert partition.read_bytes_total == 32 * GB
        assert partition.shuffle_fraction == pytest.approx(0.5)
        assert partition.recv_write_fraction == pytest.approx(1.0)
        assert probe.read_bytes_total == 16 * GB
        # 8 GB of output from 16 GB probed.
        assert probe.write_fraction == pytest.approx(0.5)


class TestDmine:
    def test_three_passes(self):
        program = build_program("dmine", ACTIVE)
        assert len(program.phases) == 3

    def test_active_disks_merge_counters_at_frontend(self):
        program = build_program("dmine", ACTIVE)
        for phase in program.phases:
            assert phase.frontend_fixed_per_worker > 0
            assert phase.shuffle_fixed_per_worker == 0

    def test_cluster_reduces_among_nodes(self):
        program = build_program("dmine", CLUSTER)
        for phase in program.phases:
            assert phase.shuffle_fixed_per_worker > 0
            assert phase.frontend_fixed_per_worker == 0


class TestDcube:
    def test_pass_counts_follow_memory(self):
        """64 disks: 32 MB -> 3 passes, 64 MB -> 2 (the Fig. 4 spike)."""
        at_32 = build_program("dcube", ActiveDiskConfig(num_disks=64))
        at_64 = build_program("dcube", ActiveDiskConfig(
            num_disks=64, disk_memory_bytes=64 * MB))
        assert len(at_32.phases) == 3
        assert len(at_64.phases) == 2

    def test_16_disk_spill_to_frontend(self):
        program = build_program("dcube", ActiveDiskConfig(num_disks=16))
        assert program.phases[0].frontend_fraction > 0
        bigger = build_program("dcube", ActiveDiskConfig(
            num_disks=16, disk_memory_bytes=64 * MB))
        assert bigger.phases[0].frontend_fraction == 0

    def test_cluster_repartitions_first_pass(self):
        program = build_program("dcube", CLUSTER)
        assert program.phases[0].shuffle_fraction == pytest.approx(1.0)

    def test_scaling_preserves_pass_count(self):
        full = build_program("dcube", ActiveDiskConfig(num_disks=64), 1.0)
        scaled = build_program("dcube", ActiveDiskConfig(num_disks=64),
                               1 / 16)
        assert len(full.phases) == len(scaled.phases)


class TestMview:
    def test_two_phases(self):
        program = build_program("mview", ACTIVE)
        propagate, refresh = program.phases
        assert propagate.shuffle_fraction > 0.3
        assert refresh.write_fraction > 0.4

    def test_volumes_match_dataset_components(self):
        program = build_program("mview", ACTIVE)
        propagate, refresh = program.phases
        assert propagate.read_bytes_total == 11 * GB  # base + deltas
        assert refresh.read_bytes_total >= 4 * GB     # derived + updates


class TestScaleInvariance:
    @pytest.mark.parametrize("task", sorted(registered_tasks()))
    def test_fractions_stable_under_scaling(self, task):
        full = build_program(task, ACTIVE, 1.0)
        scaled = build_program(task, ACTIVE, 1 / 8)
        assert len(full.phases) == len(scaled.phases)
        for a, b in zip(full.phases, scaled.phases):
            assert a.shuffle_fraction == pytest.approx(
                b.shuffle_fraction, abs=1e-9)
            assert a.frontend_fraction == pytest.approx(
                b.frontend_fraction, rel=1e-6, abs=1e-9)
            assert b.read_bytes_total == pytest.approx(
                a.read_bytes_total / 8, rel=0.01)
