"""Tests for tree collectives and per-machine phase barriers."""

import pytest

from repro.arch import (
    ActiveDiskConfig,
    ClusterConfig,
    CostComponent,
    Phase,
    SMPConfig,
    TaskProgram,
    build_machine,
)
from repro.net import FatTree, Messaging, Network
from repro.sim import Simulator

KB = 1024
MB = 1_000_000


def allreduce_all(hosts, nbytes):
    sim = Simulator()
    tree = FatTree(sim, hosts)
    messaging = Messaging(Network(tree), hosts)
    done = []

    def participant(host):
        yield from messaging.tree_allreduce(host, nbytes, key="k")
        done.append(host)

    for host in range(hosts):
        sim.process(participant(host))
    sim.run()
    return sim, done


class TestTreeAllreduce:
    @pytest.mark.parametrize("hosts", [2, 4, 8, 16, 32])
    def test_all_participants_complete(self, hosts):
        _, done = allreduce_all(hosts, 16 * KB)
        assert sorted(done) == list(range(hosts))

    @pytest.mark.parametrize("hosts", [3, 5, 6, 7, 12])
    def test_non_power_of_two_completes(self, hosts):
        _, done = allreduce_all(hosts, 16 * KB)
        assert sorted(done) == list(range(hosts))

    def test_logarithmic_critical_path(self):
        """Tree time grows ~log2(N), centralized would grow ~N."""
        sim8, _ = allreduce_all(8, 256 * KB)
        sim32, _ = allreduce_all(32, 256 * KB)
        # 32 hosts = 5 rounds vs 3 rounds: ~1.67x, nowhere near 4x.
        assert sim32.now < 2.5 * sim8.now

    def test_faster_than_central_reduce_at_scale(self):
        hosts, nbytes = 32, 256 * KB
        sim_tree, _ = allreduce_all(hosts, nbytes)

        sim = Simulator()
        tree = FatTree(sim, hosts)
        messaging = Messaging(Network(tree), hosts)

        def participant(host):
            yield from messaging.reduce_to_root(host, 0, nbytes, key="c")
        for host in range(hosts):
            sim.process(participant(host))
        sim.run()
        assert sim_tree.now < sim.now


class TestPhaseBarriers:
    def program(self):
        return TaskProgram(task="twophase", phases=(
            Phase(name="a", read_bytes_total=4 * MB,
                  cpu=(CostComponent("w", 10.0),)),
            Phase(name="b", read_bytes_total=4 * MB,
                  cpu=(CostComponent("w", 10.0),)),
        ))

    @pytest.mark.parametrize("config_cls", [ActiveDiskConfig,
                                            ClusterConfig, SMPConfig],
                             ids=["active", "cluster", "smp"])
    def test_barrier_cost_charged_between_phases(self, config_cls):
        config = config_cls(num_disks=4)
        sim = Simulator()
        machine = build_machine(sim, config)
        barrier_time = []

        def measure():
            yield from machine.phase_barrier()
            barrier_time.append(sim.now)
        sim.process(measure())
        sim.run()
        assert barrier_time and barrier_time[0] > 0
        # Barrier costs are sub-millisecond-ish: synchronization never
        # dominates these workloads.
        assert barrier_time[0] < 50e-3

    @pytest.mark.parametrize("config_cls", [ActiveDiskConfig,
                                            ClusterConfig, SMPConfig],
                             ids=["active", "cluster", "smp"])
    def test_phases_still_sum_to_elapsed(self, config_cls):
        config = config_cls(num_disks=4)
        sim = Simulator()
        result = build_machine(sim, config).run(self.program())
        total_phases = sum(p.elapsed for p in result.phases)
        assert total_phases == pytest.approx(result.elapsed, rel=1e-6)

    def test_cluster_barrier_grows_with_nodes(self):
        def barrier_cost(nodes):
            sim = Simulator()
            machine = build_machine(sim, ClusterConfig(num_disks=nodes))
            def measure():
                yield from machine.phase_barrier()
            sim.process(measure())
            sim.run()
            return sim.now
        assert barrier_cost(64) > barrier_cost(4)


class TestRunAll:
    def test_report_contains_every_artifact(self):
        from repro.experiments import run_all
        report = run_all(scale=1 / 512, sizes=(4,))
        for token in ("Table 1", "Table 2", "Figure 1", "Figure 2",
                      "Figure 3", "Figure 4", "Figure 5"):
            assert token in report
