"""Tests for the DiskOS runtime bridge (disklet graphs -> programs)."""

import pytest

from repro.arch import ActiveDiskConfig, build_machine
from repro.diskos import (
    DiskMemory,
    Disklet,
    DiskletStage,
    SinkKind,
    StreamSpec,
    phase_from_disklet,
    program_from_disklets,
    validate_disklet,
)
from repro.sim import Simulator

MB = 1_000_000


def scan_disklet(fraction=0.01):
    return Disklet(
        name="filter",
        cpu_ns_per_byte=50.0,
        outputs=(StreamSpec(SinkKind.FRONTEND, fraction=fraction),),
        scratch_bytes=64 * 1024,
    )


def shuffle_disklet():
    return Disklet(
        name="partitioner",
        cpu_ns_per_byte=30.0,
        outputs=(StreamSpec(SinkKind.PEER, fraction=1.0),),
        recv_cpu_ns_per_byte=40.0,
        recv_write_fraction=1.0,
    )


class TestValidation:
    def test_scratch_within_budget_passes(self):
        layout = DiskMemory(32 * MB).layout()
        validate_disklet(scan_disklet(), layout)

    def test_oversized_scratch_rejected(self):
        layout = DiskMemory(32 * MB).layout()
        greedy = Disklet(name="greedy", scratch_bytes=layout.scratch + 1)
        with pytest.raises(ValueError):
            validate_disklet(greedy, layout)

    def test_peer_streams_need_direct_d2d(self):
        layout = DiskMemory(32 * MB, direct_disk_to_disk=False).layout()
        with pytest.raises(ValueError):
            validate_disklet(shuffle_disklet(), layout,
                             direct_disk_to_disk=False)

    def test_frontend_only_disklet_fine_without_d2d(self):
        layout = DiskMemory(32 * MB, direct_disk_to_disk=False).layout()
        validate_disklet(scan_disklet(), layout,
                         direct_disk_to_disk=False)


class TestLowering:
    def test_phase_carries_costs_and_routing(self):
        stage = DiskletStage(disklet=scan_disklet(0.02),
                             read_bytes_total=64 * MB,
                             frontend_cpu_ns_per_byte=5.0)
        phase = phase_from_disklet(stage)
        assert phase.name == "filter"
        assert phase.read_bytes_total == 64 * MB
        assert phase.cpu[0].ns_per_byte == 50.0
        assert phase.frontend_fraction == pytest.approx(0.02)
        assert phase.frontend_cpu_ns_per_byte == 5.0
        assert phase.scratch_bytes == 64 * 1024

    def test_peer_routing_lowered_to_shuffle(self):
        stage = DiskletStage(disklet=shuffle_disklet(),
                             read_bytes_total=32 * MB)
        phase = phase_from_disklet(stage)
        assert phase.shuffle_fraction == pytest.approx(1.0)
        assert phase.recv[0].ns_per_byte == 40.0
        assert phase.recv_write_fraction == 1.0

    def test_media_output_lowered_to_write(self):
        writer = Disklet(name="writer", cpu_ns_per_byte=10.0, outputs=(
            StreamSpec(SinkKind.MEDIA, fraction=0.5),))
        phase = phase_from_disklet(
            DiskletStage(disklet=writer, read_bytes_total=MB))
        assert phase.write_fraction == pytest.approx(0.5)

    def test_fixed_tails_lowered(self):
        counter = Disklet(name="counter", cpu_ns_per_byte=20.0, outputs=(
            StreamSpec(SinkKind.FRONTEND, fixed_bytes=4096),
            StreamSpec(SinkKind.PEER, fixed_bytes=2048),
        ))
        phase = phase_from_disklet(
            DiskletStage(disklet=counter, read_bytes_total=MB))
        assert phase.frontend_fixed_per_worker == 4096
        assert phase.shuffle_fixed_per_worker == 2048


class TestPrograms:
    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            program_from_disklets("empty", [])

    def test_program_runs_on_machine(self):
        program = program_from_disklets("scan-shuffle", [
            DiskletStage(disklet=shuffle_disklet(),
                         read_bytes_total=32 * MB),
            DiskletStage(disklet=scan_disklet(),
                         read_bytes_total=32 * MB),
        ])
        sim = Simulator()
        machine = build_machine(sim, ActiveDiskConfig(num_disks=8))
        result = machine.run(program)
        assert [p.name for p in result.phases] == ["partitioner", "filter"]
        assert result.elapsed > 0

    def test_layout_validation_at_assembly(self):
        layout = DiskMemory(32 * MB).layout()
        greedy = Disklet(name="greedy", scratch_bytes=layout.scratch + 1)
        with pytest.raises(ValueError):
            program_from_disklets("big", [
                DiskletStage(disklet=greedy, read_bytes_total=MB)],
                layout=layout)

    def test_restricted_machine_still_runs_peer_disklet(self):
        """The sandbox check is about DiskOS capability; the restricted
        *machine* still executes the program by relaying via the
        front-end (the Figure 5 experiment)."""
        program = program_from_disklets("shuffle", [
            DiskletStage(disklet=shuffle_disklet(),
                         read_bytes_total=16 * MB)])
        sim = Simulator()
        machine = build_machine(
            sim, ActiveDiskConfig(num_disks=4).restricted())
        result = machine.run(program)
        assert result.extras["frontend_relay_bytes"] > 0
