"""Chaos injection: spec/plan validation and round-trips, per-kind
channel behaviour over the in-process transport, schedule determinism,
and the full gauntlet (seeded chaos + SIGKILL over sockets) asserting
byte identity and exactly-once application."""

import json

import pytest

from repro.service import (
    CHAOS_KINDS,
    ChaosChannel,
    ChaosPlan,
    ChaosSpec,
    ChaosTransport,
    ChannelClosed,
    InProcTransport,
    MalformedFrame,
)
from repro.service.gauntlet import (
    _done_record_counts,
    default_plan,
    run_gauntlet,
)


# ------------------------------------------------------------ spec / plan
class TestChaosSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown chaos kind"):
            ChaosSpec(kind="gremlin")

    def test_rejects_bad_direction_and_probability(self):
        with pytest.raises(ValueError, match="direction"):
            ChaosSpec(kind="drop", direction="sideways")
        for probability in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError, match="probability"):
                ChaosSpec(kind="drop", probability=probability)

    def test_magnitude_rules_per_kind(self):
        with pytest.raises(ValueError, match="magnitude >= 1"):
            ChaosSpec(kind="delay")            # counted kinds need one
        with pytest.raises(ValueError, match="magnitude >= 1"):
            ChaosSpec(kind="partition")
        with pytest.raises(ValueError, match="no magnitude"):
            ChaosSpec(kind="drop", magnitude=2)
        with pytest.raises(ValueError, match="whole"):
            ChaosSpec(kind="delay", magnitude=1.5)
        ChaosSpec(kind="corrupt")              # 0 -> default mangling

    def test_dict_round_trip_skips_defaults(self):
        spec = ChaosSpec(kind="delay", target="accept#2", probability=0.25,
                         magnitude=3)
        data = spec.to_dict()
        assert data == {"kind": "delay", "target": "accept#2",
                        "probability": 0.25, "magnitude": 3}
        assert ChaosSpec.from_dict(data) == spec
        with pytest.raises(ValueError, match="unknown chaos spec fields"):
            ChaosSpec.from_dict({"kind": "drop", "severity": 9})

    def test_matches_role_and_direction(self):
        spec = ChaosSpec(kind="drop", target="accept*", direction="recv")
        assert spec.matches("accept#3", "recv")
        assert not spec.matches("accept#3", "send")
        assert not spec.matches("connect#1", "recv")
        both = ChaosSpec(kind="drop", target="*", direction="both")
        assert both.matches("connect#1", "send")
        assert both.matches("connect#1", "recv")


class TestChaosPlan:
    def test_json_round_trip(self):
        plan = ChaosPlan.of(
            ChaosSpec(kind="drop", target="accept*", probability=0.1),
            ChaosSpec(kind="partition", direction="recv",
                      probability=0.05, magnitude=4, limit=1),
            seed=42)
        clone = ChaosPlan.from_json(plan.to_json())
        assert clone == plan
        assert clone.seed == 42 and len(clone) == 2

    def test_file_round_trip(self, tmp_path):
        plan = default_plan(seed=7)
        path = str(tmp_path / "plan.json")
        plan.to_file(path)
        assert ChaosPlan.from_file(path) == plan
        with open(path) as handle:        # the documented schema
            data = json.load(handle)
        assert set(data) == {"seed", "chaos"}

    def test_rejects_unknown_fields_and_bad_types(self):
        with pytest.raises(ValueError, match="unknown chaos plan fields"):
            ChaosPlan.from_dict({"seed": 1, "rules": []})
        with pytest.raises(ValueError, match="list of chaos specs"):
            ChaosPlan.from_dict({"chaos": "drop"})
        with pytest.raises(TypeError, match="expected ChaosSpec"):
            ChaosPlan(specs=({"kind": "drop"},))


# ----------------------------------------------------------- channel kinds
def _pair(transport=None):
    """A (client, server) raw in-process channel pair."""
    transport = transport or InProcTransport()
    listener = transport.listen("chaos-test")
    client = transport.connect("chaos-test")
    server = listener.accept(1.0)
    return client, server


def _wrap(server, *specs, seed=0):
    return ChaosChannel(server, ChaosPlan.of(*specs, seed=seed), "accept#1")


class TestChaosChannelKinds:
    def test_drop_on_send_vanishes(self):
        client, server = _pair()
        chaos = _wrap(server, ChaosSpec(kind="drop", limit=1))
        chaos.send({"n": 1})                  # dropped
        chaos.send({"n": 2})                  # limit hit: flows
        assert client.recv(0.5) == {"n": 2}
        assert client.recv(0) is None

    def test_drop_on_recv_consumes_frame(self):
        client, server = _pair()
        chaos = _wrap(server, ChaosSpec(kind="drop", direction="recv",
                                        limit=1))
        client.send({"n": 1})
        client.send({"n": 2})
        assert chaos.recv(0.5) is None        # frame consumed, nothing left
        assert chaos.recv(0.5) == {"n": 2}

    def test_duplicate_delivers_twice_each_direction(self):
        client, server = _pair()
        chaos = _wrap(server,
                      ChaosSpec(kind="duplicate", direction="both", limit=2))
        chaos.send({"n": 1})
        assert client.recv(0.5) == {"n": 1}
        assert client.recv(0.5) == {"n": 1}
        client.send({"n": 2})
        assert chaos.recv(0.5) == {"n": 2}
        assert chaos.recv(0.5) == {"n": 2}    # the queued deep copy

    def test_delay_reorders_past_magnitude_messages(self):
        client, server = _pair()
        chaos = _wrap(server, ChaosSpec(kind="delay", magnitude=2, limit=1))
        chaos.send({"n": 1})                  # held until 2 more pass
        chaos.send({"n": 2})
        chaos.send({"n": 3})                  # releases the held frame first
        got = [client.recv(0.5) for _ in range(3)]
        assert got == [{"n": 2}, {"n": 1}, {"n": 3}]

    def test_corrupt_on_send_is_malformed_at_receiver(self):
        client, server = _pair()
        # Mangle most of a short frame so the garbage cannot still parse.
        chaos = _wrap(server, ChaosSpec(kind="corrupt", magnitude=6,
                                        limit=1))
        chaos.send({"n": 1})
        with pytest.raises(MalformedFrame):
            client.recv(0.5)
        chaos.send({"n": 2})                  # channel survives the frame
        assert client.recv(0.5) == {"n": 2}

    def test_corrupt_on_recv_raises_malformed(self):
        client, server = _pair()
        chaos = _wrap(server, ChaosSpec(kind="corrupt", direction="recv",
                                        magnitude=6, limit=1))
        client.send({"n": 1})
        with pytest.raises(MalformedFrame):
            chaos.recv(0.5)

    def test_disconnect_closes_abruptly(self):
        client, server = _pair()
        chaos = _wrap(server, ChaosSpec(kind="disconnect"))
        with pytest.raises(ChannelClosed, match="chaos disconnect"):
            chaos.send({"n": 1})
        with pytest.raises(ChannelClosed):
            client.recv(0.5)

    def test_partition_mutes_a_window_one_way(self):
        client, server = _pair()
        chaos = _wrap(server, ChaosSpec(kind="partition", magnitude=2,
                                        limit=1))
        for n in range(1, 5):
            chaos.send({"n": n})              # 1 opens the window; 2,3 muted
        assert client.recv(0.5) == {"n": 4}
        assert client.recv(0) is None
        client.send({"back": 1})              # the other direction flows
        assert chaos.recv(0.5) == {"back": 1}

    def test_after_gate_arms_late(self):
        client, server = _pair()
        chaos = _wrap(server, ChaosSpec(kind="drop", after=2))
        chaos.send({"n": 1})
        chaos.send({"n": 2})
        chaos.send({"n": 3})                  # first armed message: dropped
        assert client.recv(0.5) == {"n": 1}
        assert client.recv(0.5) == {"n": 2}
        assert client.recv(0) is None

    def test_close_flushes_held_sends_late(self):
        client, server = _pair()
        chaos = _wrap(server, ChaosSpec(kind="delay", magnitude=50, limit=1))
        chaos.send({"late": True})            # held "in flight"
        chaos.close()                         # the late-result scenario
        assert client.recv(0.5) == {"late": True}


# ------------------------------------------------------------- determinism
def _schedule(seed, messages=40):
    """Which of ``messages`` sends survive a probabilistic drop rule."""
    client, server = _pair()
    chaos = _wrap(server, ChaosSpec(kind="drop", probability=0.5),
                  seed=seed)
    for n in range(messages):
        chaos.send({"n": n})
    survived = []
    while True:
        message = client.recv(0)
        if message is None:
            break
        survived.append(message["n"])
    return tuple(survived)


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        assert _schedule(seed=11) == _schedule(seed=11)

    def test_different_seed_different_schedule(self):
        assert _schedule(seed=11) != _schedule(seed=12)

    def test_roles_get_independent_streams(self):
        plan = ChaosPlan.of(ChaosSpec(kind="drop", probability=0.5), seed=3)
        outcomes = {}
        for role in ("accept#1", "accept#2"):
            client, server = _pair()
            chaos = ChaosChannel(server, plan, role)
            for n in range(40):
                chaos.send({"n": n})
            got = []
            while (message := client.recv(0)) is not None:
                got.append(message["n"])
            outcomes[role] = tuple(got)
        assert outcomes["accept#1"] != outcomes["accept#2"]


class TestChaosTransport:
    def test_wrapper_assigns_roles_and_counts_firings(self):
        inner = InProcTransport()
        chaos = ChaosTransport(inner, ChaosPlan.of(
            ChaosSpec(kind="drop", target="accept#1", limit=1)))
        listener = chaos.listen("svc")
        first_client = chaos.connect("svc")
        first = listener.accept(1.0)
        second_client = chaos.connect("svc")
        second = listener.accept(1.0)
        assert (first.role, second.role) == ("accept#1", "accept#2")
        assert (first_client.role, second_client.role) == ("connect#1",
                                                           "connect#2")
        first.send({"n": 1})                  # dropped; only accept#1 armed
        second.send({"n": 1})
        assert second_client.inner.recv(0.5) == {"n": 1}
        assert chaos.stats == {"drop": 1}

    def test_telemetry_mirrors_chaos_counters(self):
        from repro.telemetry import Telemetry
        telemetry = Telemetry()
        chaos = ChaosTransport(InProcTransport(), ChaosPlan.of(
            ChaosSpec(kind="duplicate", limit=1)), telemetry=telemetry)
        registry = telemetry.registry
        for kind in CHAOS_KINDS + ("partitioned",):
            assert registry.counter(f"service.chaos.{kind}").value == 0
        listener = chaos.listen("svc")
        client = chaos.connect("svc")
        server = listener.accept(1.0)
        server.send({"n": 1})
        assert registry.counter("service.chaos.duplicate").value == 1
        client.close()
        server.close()


# --------------------------------------------------------------- gauntlet
class TestGauntlet:
    def test_quick_gauntlet_is_exactly_once_and_byte_identical(
            self, tmp_path):
        messages = []
        report = run_gauntlet(str(tmp_path / "gauntlet"), quick=True,
                              seed=3, workers=2, log=messages.append)
        assert report["ok"], report
        assert report["status"] == "done"
        assert report["duplicates_applied"] == {}
        assert set(report["done_records"].values()) == {1}
        assert len(report["done_records"]) == report["cells"]
        assert report["artifacts"]["identical"]
        # The raw journal agrees with the report.
        assert _done_record_counts(report["journal"]) \
            == report["done_records"]
        # Chaos and the kill actually happened.
        assert any("SIGKILL" in message for message in messages)

    def test_same_seed_same_plan(self):
        assert default_plan(9).to_dict() == default_plan(9).to_dict()
        assert default_plan(9).to_dict() != default_plan(10).to_dict()

    def test_production_path_never_constructs_the_wrapper(self):
        """With no plan armed the hot path is unchanged, not gated:
        the production modules do not even reference the chaos types."""
        import inspect

        import repro.service.coordinator
        import repro.service.server
        import repro.service.transport
        import repro.service.worker
        for module in (repro.service.server, repro.service.coordinator,
                       repro.service.worker, repro.service.transport):
            assert "Chaos" not in inspect.getsource(module), module
