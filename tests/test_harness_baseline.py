"""Baseline-drift guard exercised through the sweep harness.

Same alarm as ``tests/test_baseline_regression.py`` — fresh simulator
output vs. ``baselines/fig1_small.json`` — but the sweep runs through a
journaled ``SweepRunner``, so the journal write/replay path is covered
by a tier-1 test: the harness must neither perturb results nor lose
precision when cells are reloaded from the journal.
"""

import json
import pathlib

import pytest

from repro.experiments import SweepRunner, fig1_rows, run_fig1
from repro.experiments.regression import compare_rows, render_regressions

BASELINE = (pathlib.Path(__file__).resolve().parent.parent
            / "baselines" / "fig1_small.json")

SWEEP = dict(sizes=(8,), tasks=("select", "sort", "groupby"),
             scale=1 / 256)


@pytest.fixture(scope="module")
def journal_path(tmp_path_factory):
    return str(tmp_path_factory.mktemp("harness") / "fig1.journal.jsonl")


@pytest.fixture(scope="module")
def harness_rows(journal_path):
    runner = SweepRunner(journal_path)
    rows = fig1_rows(run_fig1(runner=runner, **SWEEP))
    assert runner.counters["completed"] == 9
    return rows


class TestHarnessBaseline:
    def test_no_drift_through_the_harness(self, harness_rows):
        baseline = json.loads(BASELINE.read_text())
        regressions = compare_rows(baseline, harness_rows,
                                   metric="elapsed_s", tolerance=0.02)
        assert not regressions, (
            "harness-run sweep drifted from baselines/fig1_small.json:\n"
            + render_regressions(regressions))

    def test_journal_replay_is_bit_identical(self, journal_path,
                                             harness_rows):
        runner = SweepRunner(journal_path)
        replayed = fig1_rows(run_fig1(runner=runner, **SWEEP))
        assert runner.counters["resumed_cells"] == 9
        assert runner.counters["completed"] == 0
        for fresh, cached in zip(harness_rows, replayed):
            assert fresh == cached   # exact, not approx

    def test_harness_matches_inline_run(self, harness_rows):
        inline = fig1_rows(run_fig1(**SWEEP))
        for a, b in zip(inline, harness_rows):
            assert a["elapsed_s"] == b["elapsed_s"]
