"""Tests for the FibreSwitch fabric (the paper's scale-out recommendation)."""

import pytest

from repro.arch import ActiveDiskConfig, build_machine
from repro.experiments import run_task
from repro.interconnect import FibreSwitch
from repro.sim import Simulator

MB = 1_000_000
KB = 1024


@pytest.fixture
def sim():
    return Simulator()


class TestTopology:
    def test_validation(self, sim):
        with pytest.raises(ValueError):
            FibreSwitch(sim, devices=0)
        with pytest.raises(ValueError):
            FibreSwitch(sim, devices=4, segments=0)

    def test_round_robin_segment_assignment(self, sim):
        switch = FibreSwitch(sim, devices=10, segments=4)
        assert switch.segment_of(0) == 0
        assert switch.segment_of(5) == 1
        assert switch.segment_of(9) == 1

    def test_device_out_of_range(self, sim):
        switch = FibreSwitch(sim, devices=4)
        with pytest.raises(ValueError):
            switch.segment_of(4)

    def test_aggregate_rate_scales_with_segments(self, sim):
        four = FibreSwitch(sim, devices=16, segments=4)
        eight = FibreSwitch(Simulator(), devices=16, segments=8)
        assert eight.aggregate_rate == pytest.approx(2 * four.aggregate_rate)


class TestTransfers:
    def test_same_segment_uses_one_loop(self, sim):
        switch = FibreSwitch(sim, devices=8, segments=4)
        def proc():
            yield from switch.transfer(0, 4, 1 * MB)  # both on loop 0
        sim.process(proc())
        sim.run()
        assert switch.crossings.value == 0
        assert switch.loops[0].bytes_moved.value == 1 * MB
        assert switch.loops[1].bytes_moved.value == 0

    def test_cross_segment_uses_both_loops(self, sim):
        switch = FibreSwitch(sim, devices=8, segments=4)
        def proc():
            yield from switch.transfer(0, 1, 1 * MB)
        sim.process(proc())
        sim.run()
        assert switch.crossings.value == 1
        assert switch.loops[0].bytes_moved.value == 1 * MB
        assert switch.loops[1].bytes_moved.value == 1 * MB

    def test_disjoint_segments_run_in_parallel(self, sim):
        switch = FibreSwitch(sim, devices=8, segments=4)
        def proc(src, dst):
            yield from switch.transfer(src, dst, 10 * MB)
        sim.process(proc(0, 4))   # loop 0
        sim.process(proc(1, 5))   # loop 1
        sim.run()
        single = switch.loops[0].hold_time(10 * MB)
        assert sim.now == pytest.approx(single, rel=0.01)

    def test_bisection_scales_with_segments(self):
        """All-to-all throughput grows with segment count."""
        def all_to_all_time(segments):
            local = Simulator()
            switch = FibreSwitch(local, devices=16, segments=segments)
            def proc(src):
                for j in range(4):
                    yield from switch.transfer(
                        src, (src + 1 + j) % 16, 1 * MB)
            for src in range(16):
                local.process(proc(src))
            local.run()
            return local.now
        assert all_to_all_time(8) < 0.6 * all_to_all_time(2)


class TestMachineIntegration:
    def test_config_variant(self):
        config = ActiveDiskConfig(num_disks=16).with_fibreswitch(8)
        assert config.interconnect_kind == "fibreswitch"
        assert config.switch_segments == 8

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            ActiveDiskConfig(num_disks=4, interconnect_kind="token-ring")
        with pytest.raises(ValueError):
            ActiveDiskConfig(num_disks=4, switch_segments=0)

    def test_machine_builds_and_runs(self):
        config = ActiveDiskConfig(num_disks=8).with_fibreswitch(4)
        result = run_task(config, "sort", scale=1 / 256)
        assert result.elapsed > 0
        assert result.extras["fc_bytes"] > 0

    def test_switch_beats_loop_when_loop_saturated(self):
        base = run_task(ActiveDiskConfig(num_disks=64), "sort",
                        scale=1 / 64)
        switched = run_task(
            ActiveDiskConfig(num_disks=64).with_fibreswitch(8), "sort",
            scale=1 / 64)
        assert switched.elapsed < base.elapsed
