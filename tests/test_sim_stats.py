"""Unit tests for measurement helpers."""

import pytest

from repro.sim import BusyTracker, Counter, Simulator, StatSet, Tally, TimeWeighted


class TestCounter:
    def test_add_default(self):
        counter = Counter("c")
        counter.add()
        counter.add(2.5)
        assert counter.value == 3.5


class TestTally:
    def test_empty_mean_is_zero(self):
        assert Tally().mean == 0.0

    def test_statistics(self):
        tally = Tally()
        for v in (1.0, 2.0, 6.0):
            tally.observe(v)
        assert tally.count == 3
        assert tally.mean == pytest.approx(3.0)
        assert tally.min == 1.0 and tally.max == 6.0


class TestTimeWeighted:
    def test_average_over_piecewise_constant(self):
        sim = Simulator()
        tracker = TimeWeighted(sim, initial=0.0)
        def proc():
            yield sim.timeout(2.0)
            tracker.set(10.0)
            yield sim.timeout(2.0)
            tracker.set(0.0)
            yield sim.timeout(6.0)
        sim.process(proc())
        sim.run()
        # 0 for 2s, 10 for 2s, 0 for 6s -> 20/10
        assert tracker.average() == pytest.approx(2.0)

    def test_add_delta(self):
        sim = Simulator()
        tracker = TimeWeighted(sim, initial=1.0)
        tracker.add(2.0)
        assert tracker.value == 3.0

    def test_average_at_time_zero(self):
        sim = Simulator()
        tracker = TimeWeighted(sim, initial=5.0)
        assert tracker.average() == 5.0


class TestBusyTracker:
    def test_charge_and_total(self):
        tracker = BusyTracker("cpu")
        tracker.charge("compute", 3.0)
        tracker.charge("io", 1.0)
        tracker.charge("compute", 2.0)
        assert tracker.total() == pytest.approx(6.0)
        assert tracker.buckets["compute"] == pytest.approx(5.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            BusyTracker().charge("x", -1.0)

    def test_fractions_sum_to_one(self):
        tracker = BusyTracker()
        tracker.charge("a", 1.0)
        tracker.charge("b", 3.0)
        fractions = tracker.fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert fractions["b"] == pytest.approx(0.75)

    def test_fractions_empty(self):
        assert BusyTracker().fractions() == {}

    def test_merged(self):
        a = BusyTracker("a")
        a.charge("x", 1.0)
        b = BusyTracker("b")
        b.charge("x", 2.0)
        b.charge("y", 1.0)
        merged = a.merged(b)
        assert merged.buckets == {"x": 3.0, "y": 1.0}


class TestStatSet:
    def test_lazily_creates_instruments(self):
        stats = StatSet()
        stats.counter("bytes").add(10)
        stats.tally("latency").observe(0.5)
        stats.tracker("cpu").charge("busy", 1.0)
        rows = dict(stats.as_rows())
        assert rows["bytes"] == 10
        assert rows["latency.mean"] == pytest.approx(0.5)
        assert rows["cpu.busy"] == pytest.approx(1.0)

    def test_same_name_returns_same_instrument(self):
        stats = StatSet()
        assert stats.counter("x") is stats.counter("x")
