"""Unit tests for measurement helpers."""

import pytest

from repro.sim import BusyTracker, Counter, Simulator, StatSet, Tally, TimeWeighted


class TestCounter:
    def test_add_default(self):
        counter = Counter("c")
        counter.add()
        counter.add(2.5)
        assert counter.value == 3.5


class TestTally:
    def test_empty_mean_is_zero(self):
        assert Tally().mean == 0.0

    def test_statistics(self):
        tally = Tally()
        for v in (1.0, 2.0, 6.0):
            tally.observe(v)
        assert tally.count == 3
        assert tally.mean == pytest.approx(3.0)
        assert tally.min == 1.0 and tally.max == 6.0


class TestTimeWeighted:
    def test_average_over_piecewise_constant(self):
        sim = Simulator()
        tracker = TimeWeighted(sim, initial=0.0)
        def proc():
            yield sim.timeout(2.0)
            tracker.set(10.0)
            yield sim.timeout(2.0)
            tracker.set(0.0)
            yield sim.timeout(6.0)
        sim.process(proc())
        sim.run()
        # 0 for 2s, 10 for 2s, 0 for 6s -> 20/10
        assert tracker.average() == pytest.approx(2.0)

    def test_add_delta(self):
        sim = Simulator()
        tracker = TimeWeighted(sim, initial=1.0)
        tracker.add(2.0)
        assert tracker.value == 3.0

    def test_average_at_time_zero(self):
        sim = Simulator()
        tracker = TimeWeighted(sim, initial=5.0)
        assert tracker.average() == 5.0

    def test_average_for_tracker_created_mid_run(self):
        # Regression: average() used to divide by `now` measured from
        # t=0 even for trackers created at t>0, deflating utilization
        # for components that start mid-run.
        sim = Simulator()
        trackers = {}

        def proc():
            yield sim.timeout(10.0)
            trackers["late"] = TimeWeighted(sim, initial=4.0)
            yield sim.timeout(5.0)

        sim.process(proc())
        sim.run()
        # Constant 4.0 over its whole 5-second lifetime: the average
        # must be 4.0, not 4.0 * 5/15.
        assert trackers["late"].average() == pytest.approx(4.0)

    def test_average_mid_run_piecewise(self):
        sim = Simulator()
        trackers = {}

        def proc():
            yield sim.timeout(8.0)
            tracker = TimeWeighted(sim, initial=0.0)
            trackers["t"] = tracker
            yield sim.timeout(1.0)
            tracker.set(6.0)
            yield sim.timeout(2.0)
            tracker.set(0.0)
            yield sim.timeout(1.0)

        sim.process(proc())
        sim.run()
        # Lifetime [8, 12]: 0 for 1s, 6 for 2s, 0 for 1s -> 12/4.
        assert trackers["t"].average() == pytest.approx(3.0)


class TestBusyTracker:
    def test_charge_and_total(self):
        tracker = BusyTracker("cpu")
        tracker.charge("compute", 3.0)
        tracker.charge("io", 1.0)
        tracker.charge("compute", 2.0)
        assert tracker.total() == pytest.approx(6.0)
        assert tracker.buckets["compute"] == pytest.approx(5.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            BusyTracker().charge("x", -1.0)

    def test_fractions_sum_to_one(self):
        tracker = BusyTracker()
        tracker.charge("a", 1.0)
        tracker.charge("b", 3.0)
        fractions = tracker.fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert fractions["b"] == pytest.approx(0.75)

    def test_fractions_empty(self):
        assert BusyTracker().fractions() == {}

    def test_merged(self):
        a = BusyTracker("a")
        a.charge("x", 1.0)
        b = BusyTracker("b")
        b.charge("x", 2.0)
        b.charge("y", 1.0)
        merged = a.merged(b)
        assert merged.buckets == {"x": 3.0, "y": 1.0}


class TestStatSet:
    def test_lazily_creates_instruments(self):
        stats = StatSet()
        stats.counter("bytes").add(10)
        stats.tally("latency").observe(0.5)
        stats.tracker("cpu").charge("busy", 1.0)
        rows = dict(stats.as_rows())
        assert rows["bytes"] == 10
        assert rows["latency.mean"] == pytest.approx(0.5)
        assert rows["cpu.busy"] == pytest.approx(1.0)

    def test_same_name_returns_same_instrument(self):
        stats = StatSet()
        assert stats.counter("x") is stats.counter("x")
