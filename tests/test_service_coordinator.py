"""Coordinator scheduling: dispatch, retries, quarantine, heartbeats,
reassignment, resume — all over the in-process transport so every
failure is injected deterministically."""

import os
import threading
import time

import pytest

from repro.experiments.harness import SweepRunner
from repro.experiments.journal import SweepJournal
from repro.experiments.workers import run_cell
from repro.invariants import InvariantViolation
from repro.service import (
    Coordinator,
    InProcTransport,
    ServiceWorker,
    SweepRequest,
)
from repro.service import protocol

REQUEST = {"figure": "fig1", "sizes": [2], "tasks": ["select"],
           "scale": 1 / 1024}


class _Cluster:
    """A coordinator plus threaded in-process workers, stepped to done."""

    def __init__(self, tmp_path, workers=2, cell_fn=run_cell, **kwargs):
        self.transport = InProcTransport()
        listener = self.transport.listen("coord")
        self.state_dir = str(tmp_path / "state")
        kwargs.setdefault("out_dir", str(tmp_path / "out"))
        self.coordinator = Coordinator(self.state_dir, listener, **kwargs)
        self.threads = []
        self.workers = []
        for index in range(workers):
            self.add_worker(f"t{index + 1}", cell_fn=cell_fn)

    def add_worker(self, worker_id, cell_fn=run_cell):
        channel = self.transport.connect("coord")
        worker = ServiceWorker(channel, worker_id,
                               heartbeat_interval=0.05, cell_fn=cell_fn)
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        self.workers.append(worker)
        self.threads.append(thread)
        return worker

    def run_until_terminal(self, jobs=1, timeout=120.0):
        deadline = time.monotonic() + timeout
        queue = self.coordinator.queue
        while (queue.counts()["done"] + queue.counts()["failed"]) < jobs:
            if not self.coordinator.step():
                time.sleep(0.002)
            assert time.monotonic() < deadline, "coordinator stalled"

    def close(self):
        self.coordinator.close()
        for thread in self.threads:
            thread.join(3.0)


def _inline_artifacts(tmp_path, request=REQUEST):
    out_dir = str(tmp_path / "inline-out")
    parsed = SweepRequest.from_dict(dict(request, out_dir=out_dir))
    parsed.run_with(SweepRunner(str(tmp_path / "inline.journal.jsonl")))
    return out_dir


# --------------------------------------------------------------- happy path
class TestEndToEnd:
    def test_service_output_byte_identical_to_inline(self, tmp_path):
        cluster = _Cluster(tmp_path)
        job = cluster.coordinator.submit(REQUEST)
        cluster.run_until_terminal()
        cluster.close()
        assert cluster.coordinator.queue.jobs[job.id].status == "done"
        inline = _inline_artifacts(tmp_path)
        for name in ("fig1.txt", "fig1.csv"):
            with open(os.path.join(str(tmp_path / "out"), name), "rb") as a:
                with open(os.path.join(inline, name), "rb") as b:
                    assert a.read() == b.read()

    def test_journal_attributes_cells_to_workers(self, tmp_path):
        cluster = _Cluster(tmp_path)
        job = cluster.coordinator.submit(REQUEST)
        cluster.run_until_terminal()
        cluster.close()
        journal = SweepJournal.load(
            cluster.coordinator.journal_path_for(job.id))
        worker_cells = journal.worker_cells()
        assert sum(worker_cells.values()) == 3      # 3 architectures
        assert set(worker_cells) <= {"t1", "t2"}

    def test_submit_validates_requests(self, tmp_path):
        cluster = _Cluster(tmp_path, workers=0)
        with pytest.raises(ValueError, match="unknown figure"):
            cluster.coordinator.submit({"figure": "fig9"})
        with pytest.raises(ValueError, match="unknown request fields"):
            cluster.coordinator.submit({"figure": "fig1", "shards": 4})
        assert cluster.coordinator.queue.counts()["queued"] == 0
        cluster.close()

    def test_status_snapshot(self, tmp_path):
        cluster = _Cluster(tmp_path)
        cluster.coordinator.submit(REQUEST)
        cluster.run_until_terminal()
        status = cluster.coordinator.status()
        cluster.close()
        assert status["queue"]["done"] == 1
        assert [job["status"] for job in status["jobs"]] == ["done"]
        assert {worker["id"] for worker in status["workers"]} == {"t1", "t2"}
        assert status["counters"]["dispatched"] >= 3
        assert status["counters"]["results"] >= 3


# ----------------------------------------------------------------- failures
class TestFailureHandling:
    def test_flaky_cell_retried_to_success(self, tmp_path):
        flaked = []

        def flaky(spec):
            if spec.key not in flaked:
                flaked.append(spec.key)
                raise RuntimeError(f"transient wobble in {spec.key}")
            return run_cell(spec)

        cluster = _Cluster(tmp_path, workers=1, cell_fn=flaky,
                           retries=1, backoff=0.01)
        job = cluster.coordinator.submit(REQUEST)
        cluster.run_until_terminal()
        cluster.close()
        assert cluster.coordinator.queue.jobs[job.id].status == "done"
        journal = SweepJournal.load(
            cluster.coordinator.journal_path_for(job.id))
        assert journal.counts()["done"] == 3
        assert len(flaked) == 3           # every cell failed exactly once
        assert all(journal.cells[key].failures for key in flaked)

    def test_persistent_failure_quarantines_and_fails_job(self, tmp_path):
        def broken(spec):
            if spec.arch == "smp":
                raise RuntimeError("this architecture is cursed")
            return run_cell(spec)

        cluster = _Cluster(tmp_path, workers=1, cell_fn=broken,
                           retries=1, backoff=0.01)
        job = cluster.coordinator.submit(REQUEST)
        cluster.run_until_terminal()
        cluster.close()
        record = cluster.coordinator.queue.jobs[job.id]
        assert record.status == "failed"
        assert "quarantined" in record.error
        journal = SweepJournal.load(
            cluster.coordinator.journal_path_for(job.id))
        assert journal.counts()["quarantined"] == 1
        assert journal.counts()["done"] == 2

    def test_violation_quarantines_without_retry(self, tmp_path):
        attempts = []

        def violating(spec):
            if spec.arch == "active":
                attempts.append(spec.key)
                raise InvariantViolation(component="disk.0",
                                         invariant="bytes_conserved",
                                         sim_time=1.0, expected=1,
                                         observed=2)
            return run_cell(spec)

        cluster = _Cluster(tmp_path, workers=1, cell_fn=violating,
                           retries=3, backoff=0.01)
        job = cluster.coordinator.submit(REQUEST)
        cluster.run_until_terminal()
        cluster.close()
        assert cluster.coordinator.queue.jobs[job.id].status == "failed"
        assert len(attempts) == 1          # deterministic: never retried
        journal = SweepJournal.load(
            cluster.coordinator.journal_path_for(job.id))
        [cell] = journal.violated().values()
        assert cell.violation["invariant"] == "bytes_conserved"


# --------------------------------------------------------------- liveness
class _SilentWorker:
    """Says hello, heartbeats until assigned a cell, then plays dead."""

    def __init__(self, transport, worker_id="zombie"):
        self.channel = transport.connect("coord")
        self.worker_id = worker_id
        self.assigned = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()

    def _run(self):
        self.channel.send(protocol.hello(self.worker_id, 0))
        while not self.assigned.is_set():
            message = self.channel.recv(0.02)
            if message is not None and message.get("kind") == "assign":
                self.assigned.set()     # swallow the cell, stop beating
                return
            self.channel.send(protocol.heartbeat(self.worker_id))


class TestHeartbeatReassignment:
    def test_silent_worker_loses_cell_to_survivor(self, tmp_path):
        cluster = _Cluster(tmp_path, workers=0,
                           retries=1, backoff=0.01,
                           heartbeat_timeout=0.3)
        zombie = _SilentWorker(cluster.transport)
        # Let the coordinator register the zombie first so it gets the
        # first assignment, then bring up the survivor.
        deadline = time.monotonic() + 5.0
        while "zombie" not in cluster.coordinator.workers:
            cluster.coordinator.step()
            assert time.monotonic() < deadline
        cluster.add_worker("survivor")
        job = cluster.coordinator.submit(REQUEST)
        cluster.run_until_terminal()
        cluster.close()
        zombie.thread.join(3.0)
        assert zombie.assigned.is_set(), "zombie never got a cell"
        assert cluster.coordinator.queue.jobs[job.id].status == "done"
        state = cluster.coordinator.workers["zombie"]
        assert state.lost and "heartbeat" in state.lost_reason
        journal = SweepJournal.load(
            cluster.coordinator.journal_path_for(job.id))
        assert journal.heartbeat_losses() == 1
        assert journal.reassignments() == 1
        assert journal.counts()["done"] == 3
        assert set(journal.worker_cells()) == {"survivor"}
        assert cluster.coordinator.counters["workers_lost"] == 1
        assert cluster.coordinator.counters["reassigned"] == 1

    def test_results_byte_identical_despite_reassignment(self, tmp_path):
        cluster = _Cluster(tmp_path, workers=0,
                           retries=1, backoff=0.01, heartbeat_timeout=0.3)
        _SilentWorker(cluster.transport)
        deadline = time.monotonic() + 5.0
        while "zombie" not in cluster.coordinator.workers:
            cluster.coordinator.step()
            assert time.monotonic() < deadline
        cluster.add_worker("survivor")
        cluster.coordinator.submit(REQUEST)
        cluster.run_until_terminal()
        cluster.close()
        inline = _inline_artifacts(tmp_path)
        for name in ("fig1.txt", "fig1.csv"):
            with open(os.path.join(str(tmp_path / "out"), name), "rb") as a:
                with open(os.path.join(inline, name), "rb") as b:
                    assert a.read() == b.read()


# ------------------------------------------------------------------ resume
class TestCoordinatorResume:
    def test_killed_coordinator_resumes_bit_identically(self, tmp_path):
        cluster = _Cluster(tmp_path)
        job = cluster.coordinator.submit(REQUEST)
        # Run until the first result lands, then "crash" the coordinator
        # (close releases files; the abandoned state is all on disk).
        deadline = time.monotonic() + 60.0
        while cluster.coordinator.counters["results"] < 1:
            cluster.coordinator.step()
            time.sleep(0.002)
            assert time.monotonic() < deadline
        cluster.close()
        done_before = SweepJournal.load(
            cluster.coordinator.journal_path_for(job.id)).counts()["done"]
        assert 1 <= done_before < 3

        second = _Cluster(tmp_path, workers=1)
        assert [j.id for j in second.coordinator.queue.pending()] == [job.id]
        second.run_until_terminal()
        second.close()
        assert second.coordinator.queue.jobs[job.id].status == "done"
        assert second.coordinator.counters["resumed_cells"] == done_before
        journal = SweepJournal.load(
            second.coordinator.journal_path_for(job.id))
        assert journal.counts()["done"] == 3
        inline = _inline_artifacts(tmp_path)
        for name in ("fig1.txt", "fig1.csv"):
            with open(os.path.join(str(tmp_path / "out"), name), "rb") as a:
                with open(os.path.join(inline, name), "rb") as b:
                    assert a.read() == b.read()


# --------------------------------------------------------------- telemetry
class TestTelemetry:
    def test_counters_mirrored_into_registry(self, tmp_path):
        from repro.telemetry import Telemetry
        telemetry = Telemetry()
        cluster = _Cluster(tmp_path, telemetry=telemetry)
        # The whole service.* subtree exists (at zero) before any work.
        names = set(telemetry.registry.names())
        assert {"service.jobs.submitted", "service.dispatched",
                "service.results", "service.reassigned",
                "service.workers.lost", "service.heartbeats",
                "service.queue.depth", "service.workers.live",
                "service.heartbeat.lag"} <= names
        cluster.coordinator.submit(REQUEST)
        cluster.run_until_terminal()
        # Step a little longer so idle-worker heartbeats get pumped too.
        deadline = time.monotonic() + 5.0
        while (cluster.coordinator.counters["heartbeats"] < 1
               and time.monotonic() < deadline):
            cluster.coordinator.step()
            time.sleep(0.01)
        cluster.close()
        registry = telemetry.registry
        assert registry.counter("service.jobs.submitted").value == 1
        assert registry.counter("service.jobs.completed").value == 1
        assert (registry.counter("service.dispatched").value
                == cluster.coordinator.counters["dispatched"])
        assert registry.counter("service.heartbeats").value >= 1

    def test_no_telemetry_means_plain_dict_counters(self, tmp_path):
        cluster = _Cluster(tmp_path, workers=0)
        assert cluster.coordinator.telemetry is None
        assert cluster.coordinator.counters["jobs_submitted"] == 0
        cluster.close()
