"""Unit tests for Server, Store, Mutex and ProcessPool."""

import pytest

from repro.sim import Mutex, ProcessPool, Server, SimulationError, Simulator, Store


@pytest.fixture
def sim():
    return Simulator()


class TestServer:
    def test_capacity_validation(self, sim):
        with pytest.raises(SimulationError):
            Server(sim, capacity=0)

    def test_serial_service(self, sim):
        server = Server(sim, capacity=1)
        done = []
        def job(i):
            yield from server.serve(1.0)
            done.append((sim.now, i))
        for i in range(3):
            sim.process(job(i))
        sim.run()
        assert done == [(1.0, 0), (2.0, 1), (3.0, 2)]

    def test_parallel_capacity(self, sim):
        server = Server(sim, capacity=2)
        done = []
        def job(i):
            yield from server.serve(1.0)
            done.append((sim.now, i))
        for i in range(4):
            sim.process(job(i))
        sim.run()
        assert done == [(1.0, 0), (1.0, 1), (2.0, 2), (2.0, 3)]

    def test_fifo_admission(self, sim):
        server = Server(sim, capacity=1)
        order = []
        def job(i, arrival):
            yield sim.timeout(arrival)
            yield from server.serve(10.0)
            order.append(i)
        for i in range(4):
            sim.process(job(i, 0.1 * i))
        sim.run()
        assert order == [0, 1, 2, 3]

    def test_release_without_request_rejected(self, sim):
        with pytest.raises(SimulationError):
            Server(sim).release()

    def test_utilization_full(self, sim):
        server = Server(sim, capacity=1)
        def job():
            yield from server.serve(5.0)
        sim.process(job())
        sim.run()
        assert server.utilization() == pytest.approx(1.0)

    def test_utilization_half(self, sim):
        server = Server(sim, capacity=1)
        def job():
            yield sim.timeout(5.0)
            yield from server.serve(5.0)
        sim.process(job())
        sim.run()
        assert server.utilization() == pytest.approx(0.5)

    def test_busy_time_with_open_interval(self, sim):
        server = Server(sim, capacity=1)
        def job():
            yield server.request()
            yield sim.timeout(3.0)
            # hold without releasing
        sim.process(job())
        sim.run()
        assert server.busy_time() == pytest.approx(3.0)

    def test_queue_length(self, sim):
        server = Server(sim, capacity=1)
        lengths = []
        def holder():
            yield server.request()
            yield sim.timeout(2.0)
            lengths.append(server.queue_length)
            server.release()
        def waiter():
            yield server.request()
            server.release()
        sim.process(holder())
        sim.process(waiter())
        sim.run()
        assert lengths == [1]

    def test_slot_transfers_to_waiter_without_gap(self, sim):
        server = Server(sim, capacity=1)
        times = []
        def a():
            yield from server.serve(1.0)
        def b():
            yield server.request()
            times.append(sim.now)
            server.release()
        sim.process(a())
        sim.process(b())
        sim.run()
        assert times == [1.0]

    def test_total_requests_counted(self, sim):
        server = Server(sim, capacity=2)
        def job():
            yield from server.serve(0.5)
        for _ in range(5):
            sim.process(job())
        sim.run()
        assert server.total_requests == 5


class TestStore:
    def test_capacity_validation(self, sim):
        with pytest.raises(SimulationError):
            Store(sim, capacity=0)

    def test_fifo_order(self, sim):
        store = Store(sim)
        got = []
        def producer():
            for i in range(5):
                yield store.put(i)
        def consumer():
            for _ in range(5):
                got.append((yield store.get()))
        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert got == [0, 1, 2, 3, 4]

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        got = []
        def consumer():
            got.append(((yield store.get()), sim.now))
        def producer():
            yield sim.timeout(3.0)
            yield store.put("x")
        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == [("x", 3.0)]

    def test_put_blocks_when_full(self, sim):
        store = Store(sim, capacity=1)
        times = []
        def producer():
            yield store.put(1)
            begin = sim.now
            yield store.put(2)
            times.append((begin, sim.now))
        def consumer():
            yield sim.timeout(4.0)
            yield store.get()
            yield store.get()
        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert times == [(0.0, 4.0)]

    def test_try_put_when_full(self, sim):
        store = Store(sim, capacity=1)
        store.put("a")
        assert not store.try_put("b")
        assert store.try_put is not None and len(store) == 1

    def test_try_get_empty(self, sim):
        ok, item = Store(sim).try_get()
        assert not ok and item is None

    def test_try_get_nonempty(self, sim):
        store = Store(sim)
        store.put("a")
        ok, item = store.try_get()
        assert ok and item == "a"

    def test_handoff_to_waiting_consumer(self, sim):
        store = Store(sim, capacity=1)
        got = []
        def consumer():
            got.append((yield store.get()))
            got.append((yield store.get()))
        def producer():
            yield sim.timeout(1.0)
            yield store.put("a")
            yield store.put("b")
        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == ["a", "b"]

    def test_counters(self, sim):
        store = Store(sim)
        def producer():
            for i in range(3):
                yield store.put(i)
        def consumer():
            for _ in range(3):
                yield store.get()
        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert store.total_put == 3 and store.total_got == 3

    def test_blocked_putters_admitted_in_order(self, sim):
        store = Store(sim, capacity=1)
        got = []
        def producer(v):
            yield store.put(v)
        def consumer():
            yield sim.timeout(1.0)
            for _ in range(3):
                got.append((yield store.get()))
        for v in "abc":
            sim.process(producer(v))
        sim.process(consumer())
        sim.run()
        assert got == ["a", "b", "c"]


class TestMutexAndPool:
    def test_mutex_is_single_slot(self, sim):
        mutex = Mutex(sim)
        assert mutex.capacity == 1

    def test_pool_all_done(self, sim):
        pool = ProcessPool(sim)
        finished = []
        def worker(delay):
            yield sim.timeout(delay)
            finished.append(sim.now)
        for delay in (1.0, 3.0, 2.0):
            pool.spawn(worker(delay))
        waited = []
        def waiter():
            yield pool.all_done()
            waited.append(sim.now)
        sim.process(waiter())
        sim.run()
        assert waited == [3.0] and len(finished) == 3
