"""Calibration-drift alarm: fresh results vs. the checked-in baseline.

``baselines/fig1_small.json`` stores the simulator's output for a small
deterministic workload. Simulations are seed-free and deterministic, so
any drift here is a *code change* touching the models — this test makes
such changes visible and deliberate (regenerate with the snippet in
``baselines/README.md`` when a drift is intended).
"""

import json
import pathlib

import pytest

from repro.experiments import fig1_rows, run_fig1
from repro.experiments.regression import compare_rows, render_regressions

BASELINE = (pathlib.Path(__file__).resolve().parent.parent
            / "baselines" / "fig1_small.json")


@pytest.fixture(scope="module")
def fresh_rows():
    result = run_fig1(sizes=(8,), tasks=("select", "sort", "groupby"),
                      scale=1 / 256)
    return fig1_rows(result)


class TestBaseline:
    def test_baseline_exists_and_parses(self):
        rows = json.loads(BASELINE.read_text())
        assert len(rows) == 9
        assert {"task", "arch", "elapsed_s"} <= set(rows[0])

    def test_no_unintended_drift(self, fresh_rows):
        baseline = json.loads(BASELINE.read_text())
        regressions = compare_rows(baseline, fresh_rows,
                                   metric="elapsed_s", tolerance=0.02)
        assert not regressions, (
            "simulator output drifted from baselines/fig1_small.json "
            "— if intentional, regenerate the baseline:\n"
            + render_regressions(regressions))

    def test_cell_count_stable(self, fresh_rows):
        baseline = json.loads(BASELINE.read_text())
        assert len(fresh_rows) == len(baseline)

    def test_determinism_of_fresh_run(self, fresh_rows):
        again = fig1_rows(run_fig1(sizes=(8,),
                                   tasks=("select", "sort", "groupby"),
                                   scale=1 / 256))
        for a, b in zip(fresh_rows, again):
            assert a["elapsed_s"] == b["elapsed_s"]
