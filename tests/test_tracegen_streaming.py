"""Streaming tracegen: parity with materialization, byte-level guards.

The tracegen refactor made per-worker traces lazy generators and added
session-level interleaving and O(1)-memory folds. These tests pin the
contract: streaming changes *how* records are produced, never *what*
is produced — per-record, per-total, and all the way out to the
checked-in Figure 1 artifact bytes.
"""

import pytest

from repro.experiments import ARCHITECTURES, config_for
from repro.tracegen import (
    fold_totals,
    interleave_records,
    session_totals,
    session_trace,
    stream_worker_trace,
    trace_totals,
    worker_trace,
)
from repro.workloads import build_program, registered_tasks

SCALE = 1 / 256
WORKERS = 4


def programs_for(arch):
    machine = config_for(arch, WORKERS)
    return {task: build_program(task, machine, SCALE)
            for task in registered_tasks()}


class TestStreamParity:
    @pytest.mark.parametrize("arch", ARCHITECTURES)
    def test_streamed_records_match_materialized(self, arch):
        """Every task x worker: the lazy stream yields the exact record
        sequence the eager path yields."""
        for task, program in programs_for(arch).items():
            for worker in range(WORKERS):
                eager = list(worker_trace(program, worker, WORKERS))
                lazy = list(stream_worker_trace(program, worker, WORKERS))
                assert lazy == eager, (task, worker)

    def test_worker_trace_is_lazy(self):
        program = programs_for("active")["select"]
        stream = worker_trace(program, 0, WORKERS)
        assert iter(stream) is stream   # a generator, not a list
        next(stream)

    @pytest.mark.parametrize("arch", ARCHITECTURES)
    def test_trace_totals_equal_fold_of_stream(self, arch):
        for task, program in programs_for(arch).items():
            folded = fold_totals(stream_worker_trace(program, 0, WORKERS))
            assert folded == trace_totals(program, 0, WORKERS), task


class TestSessionStreams:
    def test_session_totals_sum_per_worker_totals(self):
        program = programs_for("active")["sort"]
        summed = None
        for worker in range(WORKERS):
            summed = fold_totals(worker_trace(program, worker, WORKERS),
                                 summed)
        session = session_totals(program, WORKERS)
        # Byte and record counters are integers and must match exactly;
        # compute seconds are summed in interleaved order, so only
        # float associativity separates the two.
        for key in ("records", "read_bytes", "write_bytes", "peer_bytes",
                    "frontend_bytes"):
            assert session[key] == summed[key], key
        assert session["compute_seconds"] == pytest.approx(
            summed["compute_seconds"], rel=1e-12)

    def test_interleave_is_fair_round_robin(self):
        streams = [iter([1, 2]), iter([10]), iter([100, 200, 300])]
        assert list(interleave_records(streams)) == [1, 10, 100, 2, 200,
                                                     300]

    def test_interleave_empty(self):
        assert list(interleave_records([])) == []

    def test_session_trace_interleaves_all_workers(self):
        program = programs_for("active")["select"]
        records = list(session_trace(program, WORKERS))
        per_worker = sum(
            trace_totals(program, worker, WORKERS)["records"]
            for worker in range(WORKERS))
        assert len(records) == per_worker
        total = fold_totals(records)
        assert total["records"] == len(records)


class TestFig1ByteIdentity:
    def test_fig1_artifact_bytes_unchanged_by_streaming(self):
        """The streaming refactor must not move a single byte of the
        checked-in Figure 1 baseline."""
        from repro.perfbench.e2e import fig1_identity_check
        report = fig1_identity_check(quick=True)
        assert report["identical"] is True
        assert report["cells"] > 0
