"""Determinism and degraded-mode completion guarantees.

Two contracts from the fault subsystem's design:

* **Replay**: identical (plan, seed) pairs produce identical event
  timelines — byte-identical telemetry metric dumps, entry-for-entry
  identical injector timelines.
* **Zero-cost when unarmed**: installing an injector with an *empty*
  plan must not perturb the simulation at all relative to no injector.

Plus the acceptance criterion for degraded mode: with a whole-drive
failure mid-run, all three architectures complete (no hang) with
recovery work visible in the counters.
"""

import json

import pytest

from repro.arch import build_machine
from repro.experiments import config_for, run_degraded_sweep, run_task
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.sim import Simulator
from repro.telemetry import Telemetry
from repro.workloads import build_program

SCALE = 1 / 256


def plan_under_test():
    return FaultPlan.of(
        FaultSpec(kind="drive_slowdown", target="disk.*", at=0.02,
                  duration=0.2, magnitude=2.0),
        FaultSpec(kind="media_error", target="disk.1", lbn=64),
        FaultSpec(kind="drive_failure", target="disk.2", at=0.1),
        seed=11)


def run_with_plan(arch, plan, seed=None):
    """One telemetry-recorded run; returns (metrics json, timeline)."""
    sim = Simulator()
    telemetry = Telemetry(sample_interval=None)
    telemetry.install(sim)
    injector = None
    if plan is not None:
        injector = FaultInjector(plan, seed=seed).install(sim)
    config = config_for(arch, 4)
    machine = build_machine(sim, config)
    program = build_program("select", config, SCALE)
    machine.run(program)
    metrics = json.dumps(telemetry.registry.snapshot(), sort_keys=True,
                         default=str)
    timeline = list(injector.timeline) if injector is not None else []
    return metrics, timeline


class TestReplayDeterminism:
    @pytest.mark.parametrize("arch", ["active", "cluster", "smp"])
    def test_same_plan_same_seed_is_byte_identical(self, arch):
        first = run_with_plan(arch, plan_under_test())
        second = run_with_plan(arch, plan_under_test())
        assert first[0] == second[0]
        assert first[1] == second[1]

    def test_seed_override_changes_nothing_deterministic(self):
        # The override only reseeds the RNG; scheduled (non-random)
        # faults still land at identical times.
        _, t1 = run_with_plan("active", plan_under_test(), seed=1)
        _, t2 = run_with_plan("active", plan_under_test(), seed=2)
        assert t1 == t2


class TestEmptyPlanIsFree:
    @pytest.mark.parametrize("arch", ["active", "cluster", "smp"])
    def test_empty_plan_matches_no_plan(self, arch):
        unarmed = run_with_plan(arch, None)
        empty = run_with_plan(arch, FaultPlan())
        assert empty[0] == unarmed[0]
        assert empty[1] == []


class TestDegradedCompletion:
    def test_all_architectures_survive_a_drive_failure(self):
        result = run_degraded_sweep(task="select", num_disks=4,
                                    failed_disk=1, fail_fraction=0.3,
                                    scale=SCALE)
        for cell in result.cells:
            assert cell.degraded.elapsed > 0
            assert cell.counters.get("faults.disk.failures") == 1
            if cell.arch in ("active", "cluster"):
                # Survivors re-scan the lost partition after the barrier.
                assert cell.inflation > 1.0
                assert cell.counters.get(
                    "faults.arch.recovery_rounds", 0) >= 1
                assert cell.counters.get(
                    "faults.arch.recovered_bytes", 0) > 0
            else:
                # The SMP reroutes chunks; spindle loss may hide behind
                # the shared FC bottleneck, but rerouting must happen.
                assert cell.counters.get(
                    "faults.arch.rerouted_read_chunks", 0) > 0

    def test_failure_at_time_zero_still_completes(self):
        config = config_for("cluster", 4)
        plan = FaultPlan.of(
            FaultSpec(kind="drive_failure", target="disk.0", at=0.0))
        result = run_task(config, "select", SCALE, fault_plan=plan)
        assert result.extras.get("faults.arch.recovery_rounds", 0) >= 1

    def test_counters_merged_into_extras(self):
        config = config_for("active", 4)
        plan = FaultPlan.of(
            FaultSpec(kind="drive_failure", target="disk.1", at=0.05))
        result = run_task(config, "select", SCALE, fault_plan=plan)
        assert result.extras["faults.disk.failures"] == 1.0
