"""Tests for the price/performance analysis."""

import pytest

from repro.analysis import (
    PricePerformance,
    configuration_price,
    price_performance_table,
)
from repro.arch import ActiveDiskConfig, ClusterConfig, SMPConfig, MB
from repro.arch.costs import active_disk_cost, cluster_cost, smp_cost_estimate


class TestConfigurationPrice:
    def test_active_matches_cost_model(self):
        config = ActiveDiskConfig(num_disks=64)
        assert configuration_price(config) == pytest.approx(
            active_disk_cost(64, "7/99"))

    def test_active_memory_upgrade_priced(self):
        base = configuration_price(ActiveDiskConfig(num_disks=64))
        upgraded = configuration_price(
            ActiveDiskConfig(num_disks=64, disk_memory_bytes=64 * MB))
        assert upgraded > base

    def test_cluster_matches_cost_model(self):
        assert configuration_price(ClusterConfig(num_disks=32)) == \
            pytest.approx(cluster_cost(32, "7/99"))

    def test_smp_matches_estimate(self):
        assert configuration_price(SMPConfig(num_disks=128)) == \
            pytest.approx(smp_cost_estimate(128))

    def test_unknown_config_rejected(self):
        with pytest.raises(TypeError):
            configuration_price(object())

    def test_ordering_matches_paper(self):
        """AD < cluster < SMP at every size."""
        for disks in (16, 64, 128):
            active = configuration_price(ActiveDiskConfig(num_disks=disks))
            cluster = configuration_price(ClusterConfig(num_disks=disks))
            smp = configuration_price(SMPConfig(num_disks=disks))
            assert active < cluster < smp
            assert smp > 10 * active


class TestPricePerformanceTable:
    def cells(self):
        return [
            PricePerformance("select", "active", 64, 10.0, 50_000),
            PricePerformance("select", "cluster", 64, 8.0, 127_000),
            PricePerformance("select", "smp", 64, 40.0, 1_500_000),
        ]

    def test_cost_seconds(self):
        cell = PricePerformance("t", "active", 64, 2.0, 1000.0)
        assert cell.cost_seconds == pytest.approx(2000.0)

    def test_table_normalizes_to_active(self):
        text = price_performance_table(self.cells())
        assert "select@64" in text
        # cluster: 8 * 127k / (10 * 50k) = 2.032 -> "2.0x"
        assert "2.0x" in text
        # smp: 40 * 1.5M / 0.5M = 120x
        assert "120" in text

    def test_table_skips_groups_without_active(self):
        cells = [PricePerformance("x", "smp", 64, 1.0, 1.0)]
        text = price_performance_table(cells)
        assert "x@64" not in text
