"""JobQueue: crash-safe persistence and lifecycle of submitted sweeps."""

import json

import pytest

from repro.service.jobs import JobQueue


class TestJobQueue:
    def test_submit_and_reload(self, tmp_path):
        path = str(tmp_path / "queue.jsonl")
        with JobQueue.load(path) as queue:
            job = queue.submit({"figure": "fig1", "scale": 0.25})
            assert job.id == "job-0001"
            assert job.status == "queued"
            queue.submit({"figure": "fig3"})
        loaded = JobQueue.load(path)
        assert [job.id for job in loaded.pending()] == ["job-0001",
                                                        "job-0002"]
        assert loaded.jobs["job-0001"].request == {"figure": "fig1",
                                                   "scale": 0.25}

    def test_status_transitions_survive_reload(self, tmp_path):
        path = str(tmp_path / "queue.jsonl")
        with JobQueue.load(path) as queue:
            queue.submit({"figure": "fig1"})
            queue.update("job-0001", "running")
            queue.update("job-0001", "failed", error="3 cells quarantined")
        loaded = JobQueue.load(path)
        assert loaded.jobs["job-0001"].status == "failed"
        assert loaded.jobs["job-0001"].error == "3 cells quarantined"
        assert loaded.counts() == {"queued": 0, "running": 0, "done": 0,
                                   "failed": 1}
        assert loaded.pending() == []

    def test_running_jobs_resume_before_queued(self, tmp_path):
        """Jobs orphaned by a dead coordinator jump the queue on restart."""
        path = str(tmp_path / "queue.jsonl")
        with JobQueue.load(path) as queue:
            queue.submit({"figure": "fig1"})
            queue.submit({"figure": "fig2"})
            queue.submit({"figure": "fig3"})
            queue.update("job-0002", "running")   # ...then the kill -9
        loaded = JobQueue.load(path)
        assert [job.id for job in loaded.pending()] == [
            "job-0002", "job-0001", "job-0003"]

    def test_ids_stay_monotonic_across_reloads(self, tmp_path):
        path = str(tmp_path / "queue.jsonl")
        with JobQueue.load(path) as queue:
            queue.submit({"figure": "fig1"})
        with JobQueue.load(path) as queue:
            assert queue.submit({"figure": "fig2"}).id == "job-0002"

    def test_unknown_job_update_rejected(self, tmp_path):
        with JobQueue.load(str(tmp_path / "queue.jsonl")) as queue:
            with pytest.raises(KeyError):
                queue.update("job-9999", "done")

    def test_torn_tail_tolerated(self, tmp_path):
        path = tmp_path / "queue.jsonl"
        with JobQueue.load(str(path)) as queue:
            queue.submit({"figure": "fig1"})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "job", "id": "job-0002", "stat')
        loaded = JobQueue.load(str(path))
        assert loaded.torn_lines == 1
        assert list(loaded.jobs) == ["job-0001"]

    def test_bad_status_in_log_rejected(self, tmp_path):
        path = tmp_path / "queue.jsonl"
        record = {"kind": "job", "id": "job-0001", "status": "exploded"}
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(ValueError, match="bad job status"):
            JobQueue.load(str(path))
