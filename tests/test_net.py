"""Unit tests for the fat-tree topology, transport and messaging."""

import pytest

from repro.net import ANY_TAG, EthernetParams, FatTree, Messaging, Network
from repro.sim import Simulator

KB = 1024
MB = 1_000_000


def make_net(hosts, params=None):
    sim = Simulator()
    tree = FatTree(sim, hosts, params)
    return sim, tree, Network(tree)


class TestTopology:
    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            FatTree(sim, 0)

    def test_sixteen_hosts_single_switch(self):
        _, tree, _ = make_net(16)
        assert tree.single_switch
        assert len(tree.leaves) == 1

    def test_128_hosts_use_eight_leaves(self):
        _, tree, _ = make_net(128)
        assert len(tree.leaves) == 8
        assert not tree.single_switch

    def test_every_host_has_a_port(self):
        _, tree, _ = make_net(37)
        assert len(tree.ports) == 37
        for host in range(37):
            assert tree.port(host).host == host

    def test_port_out_of_range(self):
        _, tree, _ = make_net(8)
        with pytest.raises(ValueError):
            tree.port(8)

    def test_same_leaf_detection(self):
        _, tree, _ = make_net(32)
        assert tree.same_leaf(0, 15)
        assert not tree.same_leaf(0, 16)

    def test_hop_counts(self):
        _, tree, _ = make_net(32)
        assert tree.hop_count(0, 1) == 1
        assert tree.hop_count(0, 31) == 3

    def test_uplinks_per_leaf(self):
        _, tree, _ = make_net(32)
        for leaf in tree.leaves:
            assert len(leaf.up.buses) == 2
            assert len(leaf.down.buses) == 2


class TestTransport:
    def test_local_delivery_free(self):
        sim, _, net = make_net(4)
        def proc():
            yield from net.transfer(2, 2, 1 * MB)
        sim.process(proc())
        sim.run()
        assert sim.now == 0.0

    def test_single_message_latency_dominated_by_access_links(self):
        sim, tree, net = make_net(16)
        size = 256 * KB
        def proc():
            yield from net.transfer(0, 5, size)
        sim.process(proc())
        sim.run()
        wire = size / tree.params.host_link_rate
        # store-and-forward: tx + rx serialization.
        assert wire < sim.now < 2.5 * wire

    def test_cross_leaf_adds_uplink_time(self):
        sim1, _, net1 = make_net(32)
        def proc1():
            yield from net1.transfer(0, 1, 1 * MB)
        sim1.process(proc1())
        sim1.run()
        sim2, _, net2 = make_net(32)
        def proc2():
            yield from net2.transfer(0, 20, 1 * MB)
        sim2.process(proc2())
        sim2.run()
        assert sim2.now > sim1.now

    def test_negative_size_rejected(self):
        sim, _, net = make_net(4)
        with pytest.raises(ValueError):
            next(net.transfer(0, 1, -5))

    def test_endpoint_congestion(self):
        """Many senders into one receiver serialize at its access link —
        the group-by front-end bottleneck."""
        sim, tree, net = make_net(16)
        size = 1 * MB
        senders = 10
        def proc(src):
            yield from net.transfer(src, 15, size)
        for src in range(senders):
            sim.process(proc(src))
        sim.run()
        floor = senders * size / tree.params.host_link_rate
        assert sim.now >= floor * 0.95

    def test_bisection_scales_with_leaves(self):
        """All-to-all on 32 hosts moves more bytes/s than the single
        400 Mb/s a lone pair could."""
        sim, tree, net = make_net(32)
        size = 256 * KB
        def proc(src):
            for j in range(4):
                yield from net.transfer(src, (src + 7 + j) % 32, size)
        for src in range(32):
            sim.process(proc(src))
        sim.run()
        aggregate = 32 * 4 * size / sim.now
        assert aggregate > 10 * tree.params.host_link_rate


class TestMessaging:
    def test_send_recv_roundtrip(self):
        sim, _, net = make_net(8)
        messaging = Messaging(net, 8)
        got = []
        def sender():
            yield from messaging.send(0, 3, "tag", 64 * KB, payload="hi")
        def receiver():
            message = yield from messaging.recv(3, "tag")
            got.append((message.src, message.payload))
        sim.process(receiver())
        sim.process(sender())
        sim.run()
        assert got == [(0, "hi")]

    def test_tag_matching_skips_other_tags(self):
        sim, _, net = make_net(8)
        messaging = Messaging(net, 8)
        got = []
        def sender():
            yield from messaging.send(0, 1, "a", 1024)
            yield from messaging.send(0, 1, "b", 1024)
        def receiver():
            message = yield from messaging.recv(1, "b")
            got.append(message.tag)
        sim.process(sender())
        sim.process(receiver())
        sim.run()
        assert got == ["b"]

    def test_any_tag_receives_first(self):
        sim, _, net = make_net(8)
        messaging = Messaging(net, 8)
        got = []
        def sender():
            yield from messaging.send(0, 1, "whatever", 1024)
        def receiver():
            message = yield from messaging.recv(1, ANY_TAG)
            got.append(message.tag)
        sim.process(sender())
        sim.process(receiver())
        sim.run()
        assert got == ["whatever"]

    def test_isend_returns_event(self):
        sim, _, net = make_net(8)
        messaging = Messaging(net, 8)
        def proc():
            events = [messaging.isend(0, 1, "t", 64 * KB) for _ in range(4)]
            yield sim.all_of(events)
        sim.process(proc())
        sim.run()
        assert messaging.mailboxes[1].pending() == 4

    def test_barrier_releases_all_at_once(self):
        sim, _, net = make_net(8)
        messaging = Messaging(net, 8)
        times = []
        def proc(host):
            yield sim.timeout(host * 0.01)
            yield from messaging.barrier(host, "b", 8)
            times.append(sim.now)
        for host in range(8):
            sim.process(proc(host))
        sim.run()
        assert len(set(times)) == 1
        assert times[0] > 0.07

    def test_reduce_to_root(self):
        sim, _, net = make_net(8)
        messaging = Messaging(net, 8)
        done = []
        def proc(host):
            yield from messaging.reduce_to_root(host, 0, 4 * KB, key="r1")
            done.append(host)
        for host in range(8):
            sim.process(proc(host))
        sim.run()
        assert sorted(done) == list(range(8))

    def test_cpu_overheads_charged(self):
        from repro.sim import Server
        sim, _, net = make_net(4)
        cpus = [Server(sim, name=f"cpu{i}") for i in range(4)]
        messaging = Messaging(net, 4, send_overhead=1e-3,
                              recv_overhead=1e-3, cpus=cpus)
        def sender():
            yield from messaging.send(0, 1, "t", 1024)
        def receiver():
            yield from messaging.recv(1, "t")
        sim.process(sender())
        sim.process(receiver())
        sim.run()
        assert cpus[0].busy_time() == pytest.approx(1e-3)
        assert cpus[1].busy_time() == pytest.approx(1e-3)
