"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    SimulationError,
    Simulator,
)


@pytest.fixture
def sim():
    return Simulator()


class TestClock:
    def test_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_timeout_advances_clock(self, sim):
        def proc():
            yield sim.timeout(2.5)
        sim.process(proc())
        sim.run()
        assert sim.now == 2.5

    def test_run_until_stops_early(self, sim):
        def proc():
            yield sim.timeout(10.0)
        sim.process(proc())
        sim.run(until=4.0)
        assert sim.now == 4.0

    def test_run_until_in_past_rejected(self, sim):
        def proc():
            yield sim.timeout(10.0)
        sim.process(proc())
        sim.run()
        with pytest.raises(SimulationError):
            sim.run(until=5.0)

    def test_run_until_with_empty_queue_sets_clock(self, sim):
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_peek_empty_queue(self, sim):
        assert sim.peek() == float("inf")

    def test_event_count_increments(self, sim):
        def proc():
            yield sim.timeout(1.0)
            yield sim.timeout(1.0)
        sim.process(proc())
        sim.run()
        assert sim.event_count >= 2


class TestTimeout:
    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)

    def test_zero_delay_fires_immediately(self, sim):
        fired = []
        def proc():
            yield sim.timeout(0.0)
            fired.append(sim.now)
        sim.process(proc())
        sim.run()
        assert fired == [0.0]

    def test_timeout_value_delivered(self, sim):
        got = []
        def proc():
            value = yield sim.timeout(1.0, value="payload")
            got.append(value)
        sim.process(proc())
        sim.run()
        assert got == ["payload"]

    def test_simultaneous_timeouts_fifo(self, sim):
        order = []
        def proc(name):
            yield sim.timeout(1.0)
            order.append(name)
        for name in "abc":
            sim.process(proc(name))
        sim.run()
        assert order == ["a", "b", "c"]


class TestEvent:
    def test_succeed_delivers_value(self, sim):
        event = sim.event()
        got = []
        def waiter():
            got.append((yield event))
        def trigger():
            yield sim.timeout(1.0)
            event.succeed(42)
        sim.process(waiter())
        sim.process(trigger())
        sim.run()
        assert got == [42]

    def test_double_succeed_rejected(self, sim):
        event = sim.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_raises_in_waiter(self, sim):
        event = sim.event()
        caught = []
        def waiter():
            try:
                yield event
            except RuntimeError as exc:
                caught.append(str(exc))
        def trigger():
            yield sim.timeout(1.0)
            event.fail(RuntimeError("boom"))
        sim.process(waiter())
        sim.process(trigger())
        sim.run()
        assert caught == ["boom"]

    def test_fail_requires_exception(self, sim):
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")

    def test_unhandled_failure_aborts_run(self, sim):
        def bad():
            yield sim.timeout(1.0)
            raise ValueError("unhandled")
        sim.process(bad())
        with pytest.raises(ValueError):
            sim.run()

    def test_callback_after_processed_runs_immediately(self, sim):
        event = sim.event()
        event.succeed(7)
        sim.run()
        got = []
        event.add_callback(lambda e: got.append(e.value))
        assert got == [7]

    def test_triggered_and_processed_flags(self, sim):
        event = sim.event()
        assert not event.triggered and not event.processed
        event.succeed()
        assert event.triggered and not event.processed
        sim.run()
        assert event.processed


class TestProcess:
    def test_return_value_via_join(self, sim):
        def child():
            yield sim.timeout(1.0)
            return "done"
        got = []
        def parent():
            got.append((yield sim.process(child())))
        sim.process(parent())
        sim.run()
        assert got == ["done"]

    def test_is_alive(self, sim):
        def child():
            yield sim.timeout(5.0)
        proc = sim.process(child())
        assert proc.is_alive
        sim.run()
        assert not proc.is_alive

    def test_non_generator_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.process(lambda: None)

    def test_yield_non_event_raises(self, sim):
        def bad():
            yield 42
        sim.process(bad())
        with pytest.raises(SimulationError):
            sim.run()

    def test_exception_propagates_to_joiner(self, sim):
        def child():
            yield sim.timeout(1.0)
            raise KeyError("inner")
        caught = []
        def parent():
            try:
                yield sim.process(child())
            except KeyError:
                caught.append(True)
        sim.process(parent())
        sim.run()
        assert caught == [True]

    def test_yield_already_processed_event(self, sim):
        event = sim.event()
        event.succeed("early")
        got = []
        def late():
            yield sim.timeout(3.0)
            got.append((yield event))
        sim.process(late())
        sim.run()
        assert got == ["early"] and sim.now == 3.0

    def test_interrupt_raises_in_process(self, sim):
        caught = []
        def worker():
            try:
                yield sim.timeout(100.0)
            except Interrupt as interrupt:
                caught.append((sim.now, interrupt.cause))
        proc = sim.process(worker())
        def interrupter():
            yield sim.timeout(2.0)
            proc.interrupt("stop")
        sim.process(interrupter())
        sim.run()
        assert caught == [(2.0, "stop")]

    def test_interrupt_finished_process_rejected(self, sim):
        def worker():
            yield sim.timeout(1.0)
        proc = sim.process(worker())
        sim.run()
        with pytest.raises(SimulationError):
            proc.interrupt()


class TestConditions:
    def test_all_of_waits_for_all(self, sim):
        times = []
        def proc():
            yield sim.all_of([sim.timeout(1.0), sim.timeout(3.0),
                              sim.timeout(2.0)])
            times.append(sim.now)
        sim.process(proc())
        sim.run()
        assert times == [3.0]

    def test_all_of_values_in_order(self, sim):
        got = []
        def proc():
            values = yield sim.all_of([
                sim.timeout(2.0, value="a"), sim.timeout(1.0, value="b")])
            got.append(values)
        sim.process(proc())
        sim.run()
        assert got == [["a", "b"]]

    def test_all_of_empty_fires_immediately(self, sim):
        got = []
        def proc():
            got.append((yield sim.all_of([])))
        sim.process(proc())
        sim.run()
        assert got == [[]]

    def test_any_of_fires_on_first(self, sim):
        times = []
        def proc():
            yield sim.any_of([sim.timeout(5.0), sim.timeout(1.0)])
            times.append(sim.now)
        sim.process(proc())
        sim.run()
        assert times == [1.0]

    def test_any_of_value_identifies_event(self, sim):
        got = []
        def proc():
            event, value = yield sim.any_of(
                [sim.timeout(5.0, value="slow"),
                 sim.timeout(1.0, value="fast")])
            got.append(value)
        sim.process(proc())
        sim.run()
        assert got == ["fast"]

    def test_mixed_simulators_rejected(self, sim):
        other = Simulator()
        with pytest.raises(SimulationError):
            sim.all_of([sim.timeout(1.0), other.timeout(1.0)])


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def run_once():
            sim = Simulator()
            log = []
            def worker(name, delay, repeats):
                for _ in range(repeats):
                    yield sim.timeout(delay)
                    log.append((sim.now, name))
            for i in range(5):
                sim.process(worker(f"w{i}", 0.1 * (i + 1), 10))
            sim.run()
            return log
        assert run_once() == run_once()
