"""Tests for the analytic trace generator."""

import pytest

from repro.arch import ActiveDiskConfig
from repro.tracegen import (
    SORT_RUN_BASE_NS,
    TraceRecord,
    sort_cpu_ns,
    trace_totals,
    worker_trace,
)
from repro.workloads import build_program

GB = 1_000_000_000


class TestSortCostCurve:
    def test_single_run_is_base_cost(self):
        assert sort_cpu_ns(1) == pytest.approx(SORT_RUN_BASE_NS)

    def test_paper_seven_percent_at_40_vs_20_runs(self):
        """Section 4.3: halving runs from 40 to 20 cut CPU by ~7 %."""
        ratio = sort_cpu_ns(40) / sort_cpu_ns(20)
        assert ratio == pytest.approx(1.07, abs=0.01)

    def test_monotone_in_run_count(self):
        costs = [sort_cpu_ns(n) for n in (1, 2, 8, 40, 200)]
        assert costs == sorted(costs)

    def test_validation(self):
        with pytest.raises(ValueError):
            sort_cpu_ns(0)


class TestWorkerTrace:
    def config(self):
        return ActiveDiskConfig(num_disks=16)

    def test_read_volume_matches_share(self):
        program = build_program("select", self.config(), scale=1 / 64)
        totals = trace_totals(program, worker=0, workers=16)
        expected = program.phases[0].read_bytes_total // 16
        assert totals["read_bytes"] == pytest.approx(expected, rel=0.01)

    def test_frontend_volume_matches_selectivity(self):
        program = build_program("select", self.config(), scale=1 / 64)
        totals = trace_totals(program, worker=0, workers=16)
        assert totals["frontend_bytes"] == pytest.approx(
            0.01 * totals["read_bytes"], rel=0.02)

    def test_sort_trace_moves_everything_to_peers(self):
        program = build_program("sort", self.config(), scale=1 / 64)
        totals = trace_totals(program, worker=3, workers=16)
        share = program.phases[0].read_bytes_total // 16
        assert totals["peer_bytes"] == pytest.approx(share, rel=0.01)
        # Runs written in P1 (receiver side) + output written in P2.
        assert totals["write_bytes"] == pytest.approx(2 * share, rel=0.02)

    def test_compute_time_positive_and_scales_with_volume(self):
        program_small = build_program("groupby", self.config(), scale=1 / 128)
        program_big = build_program("groupby", self.config(), scale=1 / 32)
        small = trace_totals(program_small, 0, 16)["compute_seconds"]
        big = trace_totals(program_big, 0, 16)["compute_seconds"]
        assert big == pytest.approx(4 * small, rel=0.05)

    def test_trace_records_are_typed(self):
        program = build_program("aggregate", self.config(), scale=1 / 128)
        kinds = {record.op for record in worker_trace(program, 0, 16)}
        assert kinds == {"read", "compute", "send_frontend"}

    def test_worker_out_of_range(self):
        program = build_program("select", self.config(), scale=1 / 128)
        with pytest.raises(ValueError):
            list(worker_trace(program, 16, 16))

    def test_uneven_shares_cover_dataset(self):
        program = build_program("select", self.config(), scale=1 / 128)
        workers = 7
        total = sum(trace_totals(program, w, workers)["read_bytes"]
                    for w in range(workers))
        assert total == program.phases[0].read_bytes_total
