"""Service end-to-end over real sockets and real worker processes.

The acceptance path for the service: a quick fig1 submitted to a
coordinator with two socket workers, one of which is SIGKILLed mid-run,
must finish with the dead worker's cells reassigned and artifacts
byte-identical to the inline single-process sweep — and the whole thing
must drive through the installed CLI too.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.experiments.harness import SweepRunner
from repro.experiments.journal import SweepJournal
from repro.service import Coordinator, SocketTransport, SweepRequest
from repro.service.server import spawn_local_workers

REQUEST = {"figure": "fig1", "sizes": [2], "tasks": ["select"],
           "scale": 1 / 64}


def _inline_artifacts(tmp_path):
    out_dir = str(tmp_path / "inline-out")
    request = SweepRequest.from_dict(dict(REQUEST, out_dir=out_dir))
    request.run_with(SweepRunner(str(tmp_path / "inline.journal.jsonl")))
    return out_dir


def _assert_byte_identical(out_dir, inline_dir):
    for name in ("fig1.txt", "fig1.csv"):
        with open(os.path.join(out_dir, name), "rb") as service_file:
            with open(os.path.join(inline_dir, name), "rb") as inline_file:
                assert service_file.read() == inline_file.read(), name


@pytest.fixture
def socket_path(tmp_path):
    # AF_UNIX paths are length-limited (~107 bytes); keep it short.
    path = str(tmp_path / "c.sock")
    if len(path) > 100:
        pytest.skip(f"tmp_path too long for AF_UNIX: {path}")
    return path


class TestKillWorkerMidCell:
    def test_sigkilled_worker_cells_reassigned_bit_identically(
            self, tmp_path, socket_path):
        listener = SocketTransport().listen(socket_path)
        coordinator = Coordinator(str(tmp_path / "state"), listener,
                                  out_dir=str(tmp_path / "out"),
                                  retries=1, backoff=0.01,
                                  heartbeat_timeout=5.0)
        procs = spawn_local_workers(socket_path, 2,
                                    heartbeat_interval=0.1)
        try:
            job = coordinator.submit(REQUEST)
            # Step until some worker is mid-cell, then SIGKILL it. The
            # socket EOF (not the heartbeat timer) reports the death.
            victim = None
            deadline = time.monotonic() + 60.0
            while victim is None:
                coordinator.step()
                for state in coordinator.workers.values():
                    if state.inflight is not None:
                        victim = state
                        break
                assert time.monotonic() < deadline, "nothing dispatched"
            os.kill(victim.pid, signal.SIGKILL)

            queue = coordinator.queue
            deadline = time.monotonic() + 120.0
            while not (queue.counts()["done"] + queue.counts()["failed"]):
                if not coordinator.step():
                    time.sleep(0.002)
                assert time.monotonic() < deadline, "job never finished"
        finally:
            coordinator.close()
            for proc in procs:
                proc.join(2.0)
                if proc.is_alive():
                    proc.kill()

        assert queue.jobs[job.id].status == "done"
        assert coordinator.workers[victim.id].lost
        assert coordinator.counters["workers_lost"] == 1
        journal = SweepJournal.load(coordinator.journal_path_for(job.id))
        assert journal.counts()["done"] == 3
        # The victim was provably mid-cell, so its cell was reassigned
        # and the loss consumed one attempt.
        assert journal.reassignments() >= 1
        assert journal.service_event_counts().get("worker_lost", 0) >= 1
        survivors = set(journal.worker_cells())
        assert victim.id not in survivors or len(survivors) > 1
        _assert_byte_identical(str(tmp_path / "out"),
                               _inline_artifacts(tmp_path))


class TestCliRoundTrip:
    def test_serve_submit_status_through_cli(self, tmp_path, socket_path):
        env = dict(os.environ,
                   PYTHONPATH=os.pathsep.join(
                       [os.path.join(os.path.dirname(__file__), os.pardir,
                                     "src")]
                       + ([os.environ["PYTHONPATH"]]
                          if os.environ.get("PYTHONPATH") else [])),
                   PYTHONHASHSEED="0")
        out_dir = str(tmp_path / "out")
        serve = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--socket", socket_path,
             "--state-dir", str(tmp_path / "state"),
             "--out-dir", out_dir,
             "--workers", "2", "--exit-after-jobs", "1"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True)
        try:
            submit = subprocess.run(
                [sys.executable, "-m", "repro", "submit", "fig1",
                 "--sizes", "2", "--tasks", "select", "--scale", "1/64",
                 "--socket", socket_path,
                 "--wait", "--wait-timeout", "120"],
                env=env, capture_output=True, text=True, timeout=180)
            assert submit.returncode == 0, submit.stdout + submit.stderr
            assert "job-0001: done" in submit.stdout

            status = subprocess.run(
                [sys.executable, "-m", "repro", "status",
                 "--socket", socket_path],
                env=env, capture_output=True, text=True, timeout=30)
            assert status.returncode == 0, status.stdout + status.stderr
            assert "job-0001" in status.stdout
            assert "1 done" in status.stdout

            serve_output, _ = serve.communicate(timeout=60)
            assert serve.returncode == 0, serve_output
            assert "job-0001: done" in serve_output
        finally:
            if serve.poll() is None:
                serve.kill()
                serve.communicate()

        _assert_byte_identical(out_dir, _inline_artifacts(tmp_path))
        doctor = subprocess.run(
            [sys.executable, "-m", "repro", "doctor", "--journal",
             str(tmp_path / "state" / "jobs" / "job-0001.journal.jsonl")],
            env=env, capture_output=True, text=True, timeout=120)
        assert doctor.returncode == 0, doctor.stdout + doctor.stderr
        assert "service run" in doctor.stdout
        assert "worker w1" in doctor.stdout or "worker w2" in doctor.stdout
