"""Pool drain on the interrupt path.

``drain_pool`` is what SIGINT/SIGTERM on ``run_cells`` and service
worker shutdown both funnel through: it must cancel in-flight cell
deadlines before touching the processes (so no timeout fires for a
cell being torn down), share one grace window across the whole pool,
and escalate to SIGKILL only for workers that ignore SIGTERM.
"""

import multiprocessing
import signal
import time

from repro.experiments.workers import CellSpec, _Running, drain_pool

SPEC = CellSpec(task="select", arch="active", num_disks=2, scale=1 / 1024)


def _sleep_politely(seconds):
    time.sleep(seconds)


def _ignore_sigterm_and_sleep(seconds):
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    time.sleep(seconds)


def _entry(ctx, target, deadline=None):
    parent, child = ctx.Pipe()
    proc = ctx.Process(target=target, args=(60.0,), daemon=True)
    proc.start()
    child.close()
    return _Running(proc=proc, conn=parent, spec=SPEC, attempt=0,
                    deadline=deadline)


class TestDrainPool:
    def test_pool_shares_one_grace_window(self):
        """Three polite sleepers drain in ~one grace, not three."""
        ctx = multiprocessing.get_context("fork")
        entries = [_entry(ctx, _sleep_politely,
                          deadline=time.monotonic() + 999.0)
                   for _ in range(3)]
        start = time.monotonic()
        drain_pool(entries, grace=1.0)
        elapsed = time.monotonic() - start
        assert elapsed < 2.5, f"drain serialized the grace: {elapsed:.2f}s"
        for entry in entries:
            assert entry.deadline is None, "in-flight deadline left armed"
            assert not entry.proc.is_alive()
            assert entry.conn.closed

    def test_sigterm_ignoring_worker_is_killed(self):
        ctx = multiprocessing.get_context("fork")
        entry = _entry(ctx, _ignore_sigterm_and_sleep)
        # Let the child install its SIG_IGN handler before we TERM it.
        time.sleep(0.3)
        start = time.monotonic()
        drain_pool([entry], grace=0.5)
        elapsed = time.monotonic() - start
        assert not entry.proc.is_alive()
        assert elapsed < 5.0, f"stubborn worker stalled drain: {elapsed:.2f}s"
        assert entry.deadline is None

    def test_drain_tolerates_already_dead_worker(self):
        ctx = multiprocessing.get_context("fork")
        entry = _entry(ctx, _sleep_politely)
        entry.proc.terminate()
        entry.proc.join(5.0)
        entry.conn.close()
        drain_pool([entry], grace=0.2)   # must not raise
        assert not entry.proc.is_alive()
