"""Tests for the repro.telemetry observability subsystem."""

import json

import pytest

from repro.sim import Simulator
from repro.telemetry import (
    NULL_TELEMETRY,
    CounterMetric,
    MetricRegistry,
    NullTelemetry,
    SpanRecorder,
    Telemetry,
    chrome_trace,
    metrics_json,
    utilization_summary,
    write_artifacts,
)


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


class TestMetricRegistry:
    def test_factories_are_get_or_create(self):
        reg = MetricRegistry()
        assert reg.counter("net.bytes") is reg.counter("net.bytes")
        assert reg.gauge("q") is reg.gauge("q")
        assert reg.histogram("h") is reg.histogram("h")
        assert reg.series("s") is reg.series("s")
        assert len(reg) == 4

    def test_kind_conflict_raises(self):
        reg = MetricRegistry()
        reg.counter("disk.0.bytes")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("disk.0.bytes")

    def test_counter_is_monotone(self):
        counter = CounterMetric("c")
        counter.add(3.0)
        counter.add()
        assert counter.value == 4.0
        with pytest.raises(ValueError):
            counter.add(-1.0)

    def test_histogram_quantiles_and_snapshot(self):
        reg = MetricRegistry()
        hist = reg.histogram("lat", bounds=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            hist.observe(v)
        snap = hist.snapshot()
        assert snap["count"] == 4.0
        assert snap["mean"] == pytest.approx(1.5125)
        assert snap["min"] == 0.05 and snap["max"] == 5.0
        # Exact streaming quantiles: nearest-rank over the reservoir,
        # not a bucket upper bound.
        assert hist.quantile(0.5) == pytest.approx(0.5)
        assert snap["p99"] == pytest.approx(5.0)
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_histogram_bucket_fallback_without_reservoir(self):
        reg = MetricRegistry()
        hist = reg.histogram("lat0", bounds=(0.1, 1.0, 10.0), reservoir=0)
        for v in (0.05, 0.5, 0.5, 5.0):
            hist.observe(v)
        # reservoir=0 keeps the historical bucket-upper-bound estimate.
        assert hist.quantile(0.5) == pytest.approx(1.0)
        assert not hist.exact

    def test_histogram_exact_until_reservoir_overflows(self):
        import random
        hist = MetricRegistry().histogram("h", reservoir=64)
        values = [random.Random(3).random() for _ in range(50)]
        for v in values:
            hist.observe(v)
        assert hist.exact
        ordered = sorted(values)
        assert hist.quantile(0.5) == ordered[24]   # ceil(0.5*50)-1
        assert hist.quantile(0.95) == ordered[47]  # ceil(0.95*50)-1
        assert hist.quantile(0.0) == ordered[0]
        assert hist.quantile(1.0) == ordered[-1]

    def test_histogram_reservoir_quantiles_are_deterministic(self):
        import random

        def fill(registry):
            hist = registry.histogram("sojourn", reservoir=128)
            source = random.Random(11)
            for _ in range(5000):
                hist.observe(source.expovariate(1.0))
            return hist

        first, second = fill(MetricRegistry()), fill(MetricRegistry())
        assert not first.exact
        for q in (0.5, 0.95, 0.99):
            assert first.quantile(q) == second.quantile(q)

    def test_series_time_weighted_average_and_peak(self):
        clock = FakeClock()
        reg = MetricRegistry(clock=clock)
        series = reg.series("q")
        clock.t = 1.0
        series.set(4.0)
        clock.t = 3.0
        series.set(0.0)
        clock.t = 4.0
        # 0 for 1s, 4 for 2s, 0 for 1s -> 8/4
        assert series.average() == pytest.approx(2.0)
        assert series.peak == 4.0

    def test_series_created_mid_run_averages_over_lifetime(self):
        clock = FakeClock(t=10.0)
        reg = MetricRegistry(clock=clock)
        series = reg.series("late", initial=6.0)
        clock.t = 15.0
        assert series.average() == pytest.approx(6.0)

    def test_bound_metric_reads_through(self):
        reg = MetricRegistry()
        state = {"v": 1.0}
        bound = reg.bind("util", lambda: state["v"])
        assert bound.value == 1.0
        state["v"] = 0.25
        assert reg.snapshot()["util"]["value"] == 0.25

    def test_match_glob(self):
        reg = MetricRegistry()
        for i in range(3):
            reg.counter(f"disk.{i}.busy.seek")
        reg.counter("bus.fc.bytes")
        names = [m.name for m in reg.match("disk.*.busy.seek")]
        assert names == ["disk.0.busy.seek", "disk.1.busy.seek",
                         "disk.2.busy.seek"]
        assert reg.match("nothing.*") == []

    def test_get_and_names(self):
        reg = MetricRegistry()
        reg.counter("b")
        reg.counter("a")
        assert reg.names() == ["a", "b"]
        assert reg.get("a").name == "a"
        assert "a" in reg
        with pytest.raises(KeyError):
            reg.get("missing")

    def test_as_rows_flat_view(self):
        reg = MetricRegistry()
        reg.counter("bytes").add(10)
        reg.histogram("lat").observe(0.5)
        rows = dict(reg.as_rows())
        assert rows["bytes"] == 10.0
        assert rows["lat.count"] == 1.0
        assert "lat.p95" in rows


class TestSpanRecorder:
    def test_complete_and_busy_by_track(self):
        rec = SpanRecorder(clock=FakeClock())
        rec.complete("disk", "seek", "disk.0", ts=1.0, dur=0.5)
        rec.complete("disk", "xfer", "disk.0", ts=1.5, dur=1.0)
        rec.complete("bus", "xfer", "bus.fc", ts=0.0, dur=0.25)
        assert rec.busy_by_track() == {"disk.0": 1.5, "bus.fc": 0.25}
        assert rec.tracks() == ["disk.0", "bus.fc"]
        with pytest.raises(ValueError):
            rec.complete("disk", "bad", "disk.0", ts=0.0, dur=-1.0)

    def test_begin_end_uses_clock(self):
        clock = FakeClock()
        rec = SpanRecorder(clock=clock)
        handle = rec.begin("host", "work", "cpu.0", args={"n": 1})
        clock.t = 2.5
        rec.end(handle)
        assert len(rec.spans) == 1
        span = rec.spans[0]
        assert span.ts == 0.0 and span.dur == 2.5
        assert span.args == {"n": 1}
        assert not rec.open_spans()

    def test_flush_open_closes_orphans(self):
        clock = FakeClock()
        rec = SpanRecorder(clock=clock)
        rec.begin("host", "a", "cpu.0")
        clock.t = 1.0
        rec.begin("host", "b", "cpu.1")
        assert len(rec.open_spans()) == 2
        assert rec.flush_open(4.0) == 2
        assert not rec.open_spans()
        durs = {s.name: s.dur for s in rec.spans}
        assert durs == {"a": 4.0, "b": 3.0}

    def test_window_overlap_semantics(self):
        rec = SpanRecorder(clock=FakeClock())
        rec.complete("d", "early", "t", ts=0.0, dur=1.0)
        rec.complete("d", "mid", "t", ts=2.0, dur=2.0)
        rec.complete("d", "late", "t", ts=10.0, dur=1.0)
        names = [s.name for s in rec.window(1.0, 5.0)]
        assert names == ["early", "mid"]  # 'early' touches t=1.0
        assert [s.name for s in rec.window(5.0, 9.0)] == []
        with pytest.raises(ValueError):
            rec.window(5.0, 1.0)

    def test_max_events_drops_instead_of_growing(self):
        rec = SpanRecorder(clock=FakeClock(), max_events=2)
        rec.complete("d", "a", "t", ts=0.0, dur=1.0)
        rec.instant("d", "hit", "t")
        rec.complete("d", "b", "t", ts=1.0, dur=1.0)
        rec.counter("q", {"value": 1.0})
        assert len(rec) == 2
        assert rec.dropped == 2

    def test_counter_and_instant_explicit_ts(self):
        rec = SpanRecorder(clock=FakeClock(t=9.0))
        rec.instant("d", "hit", "t", ts=3.0)
        rec.counter("q", {"value": 2.0}, ts=4.0)
        rec.instant("d", "hit2", "t")
        assert rec.instants[0].ts == 3.0
        assert rec.counters[0].ts == 4.0
        assert rec.instants[1].ts == 9.0


class TestTelemetryHub:
    def _sim_with_hub(self, **kwargs):
        sim = Simulator()
        tel = Telemetry(**kwargs).install(sim)
        return sim, tel

    def test_install_sets_sim_attribute_and_clock(self):
        sim, tel = self._sim_with_hub(sample_interval=None)
        assert sim.telemetry is tel
        assert tel.enabled

        def proc():
            yield sim.timeout(2.0)
            assert tel.now() == 2.0

        sim.process(proc())
        sim.run()
        assert tel.run_ended_at == 2.0

    def test_install_twice_on_other_sim_rejected(self):
        sim, tel = self._sim_with_hub()
        with pytest.raises(RuntimeError):
            tel.install(Simulator())
        # Re-installing on the same sim is fine (idempotent).
        assert tel.install(sim) is tel

    def test_probe_sampling_records_series_and_counters(self):
        sim, tel = self._sim_with_hub(sample_interval=1.0)
        depth = {"v": 0.0}
        tel.add_probe("disk.queue.depth", lambda: depth["v"])

        def proc():
            yield sim.timeout(2.5)
            depth["v"] = 3.0
            yield sim.timeout(2.5)

        sim.process(proc())
        sim.run()
        series = tel.registry.get("disk.queue.depth")
        assert series.peak == 3.0
        assert 0.0 < series.average() < 3.0
        # Periodic samples at 0,1,2,... plus the final sample; the
        # sampler may trail the last real event by at most one interval.
        sample_ts = [c.ts for c in tel.spans.counters]
        assert sample_ts[0] == 0.0
        assert 5.0 <= sample_ts[-1] <= 6.0
        assert len(sample_ts) >= 5
        assert tel.probe_names() == ["disk.queue.depth"]

    def test_sampler_does_not_extend_the_run(self):
        sim, tel = self._sim_with_hub(sample_interval=10.0)
        tel.add_probe("p", lambda: 1.0)

        def proc():
            yield sim.timeout(3.0)

        sim.process(proc())
        sim.run()
        # The sampler must never keep an otherwise-finished run alive
        # for a full extra interval.
        assert sim.now <= 3.0 + 10.0
        assert tel.run_ended_at is not None

    def test_probe_zero_division_clamped(self):
        sim, tel = self._sim_with_hub(sample_interval=None)
        tel.add_probe("bad", lambda: 1.0 / 0.0)
        sim.run()
        assert tel.registry.get("bad").value == 0.0

    def test_utilization_from_spans(self):
        sim, tel = self._sim_with_hub(sample_interval=None)

        def proc():
            start = sim.now
            yield sim.timeout(1.0)
            tel.spans.complete("disk", "xfer", "disk.0", start, 1.0)
            yield sim.timeout(3.0)

        sim.process(proc())
        sim.run()
        assert tel.utilization("disk.0") == pytest.approx(0.25)
        assert tel.utilization("missing") == 0.0

    def test_invalid_sample_interval(self):
        with pytest.raises(ValueError):
            Telemetry(sample_interval=0.0)


class TestNullTelemetry:
    def test_null_is_disabled_and_inert(self):
        tel = NullTelemetry()
        assert not tel.enabled
        tel.add_probe("x", lambda: 1.0)
        handle = tel.spans.begin("d", "a", "t")
        tel.spans.end(handle)
        tel.spans.complete("d", "a", "t", 0.0, 1.0)
        tel.spans.instant("d", "a", "t")
        assert len(tel.spans) == 0
        assert tel.probe_names() == []
        assert tel.utilization("t") == 0.0

    def test_simulator_defaults_to_null(self):
        sim = Simulator()
        assert sim.telemetry is NULL_TELEMETRY
        assert not sim.telemetry.enabled


class TestExporters:
    def _traced_hub(self):
        sim = Simulator()
        tel = Telemetry(sample_interval=None).install(sim)
        tel.meta["task"] = "sort"

        def proc():
            start = sim.now
            yield sim.timeout(0.5)
            tel.spans.complete("disk", "seek", "disk.0", start, 0.5)
            tel.spans.instant("disk", "cache hit", "disk.0")
            tel.registry.counter("disk.0.bytes").add(4096)
            yield sim.timeout(0.5)
            tel.spans.complete("bus", "xfer", "bus.fc", 0.5, 0.5,
                              args={"nbytes": 4096})
            tel.spans.counter("disk.queue", {"value": 2.0})

        sim.process(proc())
        sim.run()
        return tel

    def test_chrome_trace_structure(self):
        tel = self._traced_hub()
        doc = chrome_trace(tel)
        events = doc["traceEvents"]
        assert events, "trace must be non-empty"
        json.dumps(doc)  # must be serializable as-is
        phases = {e["ph"] for e in events}
        assert {"M", "X", "i", "C"} <= phases
        # Timestamps are microseconds.
        seek = next(e for e in events
                    if e["ph"] == "X" and e["name"] == "seek")
        assert seek["ts"] == 0.0 and seek["dur"] == 0.5e6
        xfer = next(e for e in events
                    if e["ph"] == "X" and e["name"] == "xfer")
        assert xfer["args"] == {"nbytes": 4096}
        # Tracks get thread_name metadata; different cats, different pids.
        meta = {e["args"]["name"]: e["pid"] for e in events
                if e["ph"] == "M"}
        assert set(meta) == {"disk.0", "bus.fc"}
        assert meta["disk.0"] != meta["bus.fc"]
        assert doc["otherData"]["task"] == "sort"

    def test_metrics_json_structure(self):
        tel = self._traced_hub()
        doc = metrics_json(tel)
        json.dumps(doc)
        assert doc["elapsed"] == 1.0
        assert doc["metrics"]["disk.0.bytes"]["value"] == 4096.0
        assert doc["tracks"]["disk.0"]["utilization"] == pytest.approx(0.5)
        assert doc["span_counts"]["spans"] == 2
        assert doc["span_counts"]["dropped"] == 0

    def test_utilization_summary_text(self):
        tel = self._traced_hub()
        text = utilization_summary(tel)
        assert "disk.0" in text
        assert "50.0%" in text

    def test_write_artifacts(self, tmp_path):
        tel = self._traced_hub()
        paths = write_artifacts(tel, str(tmp_path), prefix="test")
        with open(paths["trace"]) as handle:
            doc = json.load(handle)
        assert doc["traceEvents"]
        with open(paths["metrics"]) as handle:
            assert json.load(handle)["elapsed"] == 1.0
        with open(paths["summary"]) as handle:
            assert "disk.0" in handle.read()

    def test_chrome_trace_flushes_open_spans(self):
        sim = Simulator()
        tel = Telemetry(sample_interval=None).install(sim)
        tel.spans.begin("host", "stuck", "cpu.0")
        doc = chrome_trace(tel)
        names = [e["name"] for e in doc["traceEvents"] if e["ph"] == "X"]
        assert "stuck" in names
        assert not tel.spans.open_spans()


class TestInstrumentedRun:
    """End-to-end: a tiny instrumented simulation of each architecture."""

    @pytest.mark.parametrize("arch", ["active", "cluster", "smp"])
    def test_sort_run_produces_spans(self, arch):
        from repro.experiments.runner import config_for, run_task

        tel = Telemetry(sample_interval=0.5)
        result = run_task(config_for(arch, num_disks=2), "sort",
                          scale=1 / 1024, telemetry=tel)
        assert result.elapsed > 0
        assert len(tel.spans.spans) > 0
        cats = {s.cat for s in tel.spans.spans}
        assert "disk" in cats
        assert "host" in cats
        assert "phase" in cats
        doc = chrome_trace(tel)
        json.dumps(doc)
        assert doc["traceEvents"]

    def test_disabled_run_records_nothing(self):
        from repro.experiments.runner import config_for, run_task

        result = run_task(config_for("active", num_disks=2), "sort",
                          scale=1 / 1024)
        assert result.elapsed > 0
        assert len(NULL_TELEMETRY.spans) == 0
        assert len(NULL_TELEMETRY.registry) == 0
