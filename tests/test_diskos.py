"""Unit tests for DiskOS: memory budget, streams, disklets."""

import pytest

from repro.diskos import (
    BASE_COMM_BUFFERS,
    BASE_MEMORY,
    DiskMemory,
    Disklet,
    SinkKind,
    StreamSpec,
)

MB = 1_000_000


class TestDiskMemory:
    def test_minimum_memory_enforced(self):
        with pytest.raises(ValueError):
            DiskMemory(total_bytes=4 * MB)

    def test_comm_buffers_scale_with_memory(self):
        """The paper doubles/quadruples comm buffers at 64/128 MB."""
        base = DiskMemory(32 * MB).layout()
        double = DiskMemory(64 * MB).layout()
        quad = DiskMemory(128 * MB).layout()
        assert base.comm_buffers == BASE_COMM_BUFFERS
        assert double.comm_buffers == 2 * BASE_COMM_BUFFERS
        assert quad.comm_buffers == 4 * BASE_COMM_BUFFERS

    def test_direct_d2d_increases_footprint(self):
        with_d2d = DiskMemory(32 * MB, direct_disk_to_disk=True).layout()
        without = DiskMemory(32 * MB, direct_disk_to_disk=False).layout()
        assert with_d2d.os_footprint > without.os_footprint

    def test_scratch_is_the_remainder(self):
        layout = DiskMemory(32 * MB).layout()
        used = (layout.os_footprint
                + layout.stream_buffers * layout.stream_buffer_bytes
                + layout.comm_buffers * layout.comm_buffer_bytes)
        assert layout.scratch == 32 * MB - used
        assert layout.scratch > 20 * MB

    def test_more_memory_more_scratch(self):
        assert (DiskMemory(64 * MB).scratch_bytes()
                > DiskMemory(32 * MB).scratch_bytes())

    def test_base_memory_constant(self):
        assert BASE_MEMORY == 32 * MB


class TestStreamSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            StreamSpec(SinkKind.FRONTEND, fraction=-0.1)
        with pytest.raises(ValueError):
            StreamSpec(SinkKind.FRONTEND, fixed_bytes=-1)
        with pytest.raises(ValueError):
            StreamSpec(SinkKind.DISCARD, fraction=0.5)

    def test_fractional_bytes(self):
        spec = StreamSpec(SinkKind.FRONTEND, fraction=0.01)
        assert spec.bytes_for(1000, 100_000, emitted_fixed=False) == 10

    def test_fixed_tail_emitted_at_end(self):
        spec = StreamSpec(SinkKind.FRONTEND, fixed_bytes=640)
        assert spec.bytes_for(500, 1000, emitted_fixed=False) == 0
        assert spec.bytes_for(1000, 1000, emitted_fixed=False) == 640
        assert spec.bytes_for(1000, 1000, emitted_fixed=True) == 0


class TestDisklet:
    def test_validation(self):
        with pytest.raises(ValueError):
            Disklet("bad", cpu_ns_per_byte=-1)
        with pytest.raises(ValueError):
            Disklet("bad", recv_write_fraction=1.5)
        with pytest.raises(ValueError):
            Disklet("bad", scratch_bytes=-1)

    def test_uses_peers(self):
        shuffler = Disklet("partitioner", outputs=(
            StreamSpec(SinkKind.PEER, fraction=1.0),))
        scanner = Disklet("filter", outputs=(
            StreamSpec(SinkKind.FRONTEND, fraction=0.01),))
        assert shuffler.uses_peers
        assert not scanner.uses_peers

    def test_output_accounting(self):
        disklet = Disklet("multi", outputs=(
            StreamSpec(SinkKind.PEER, fraction=0.5),
            StreamSpec(SinkKind.PEER, fraction=0.25),
            StreamSpec(SinkKind.FRONTEND, fixed_bytes=1024),
        ))
        assert disklet.output_to(SinkKind.PEER) == pytest.approx(0.75)
        assert disklet.fixed_to(SinkKind.FRONTEND) == 1024
        assert disklet.output_to(SinkKind.MEDIA) == 0.0
