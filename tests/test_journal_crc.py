"""Tests for per-record journal CRCs and torn-tail recovery: every
appended line is checksummed, mid-file corruption is a hard error that
names the file and line, legacy CRC-less journals still load, and a
concurrent appender trims a crash-torn tail before writing."""

import json

import pytest

from repro.experiments.journal import (
    AppendLog,
    SweepJournal,
    record_crc,
)
from repro.service.jobs import JobQueue


def _write_journal(path, keys=("a", "b", "c")):
    with SweepJournal.load(path) as journal:
        for key in keys:
            journal.note_cell(key, "pending", spec={}, config_hash="x")
            journal.note_cell(key, "done", result={"elapsed": 1.5})


class TestRecordCrc:
    def test_every_line_carries_a_matching_crc(self, tmp_path):
        path = str(tmp_path / "sweep.journal.jsonl")
        _write_journal(path)
        with open(path, encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
        assert lines
        for line in lines:
            record = json.loads(line)
            crc = record.pop("crc")
            assert crc == record_crc(record)

    def test_crc_survives_float_round_trip(self):
        record = {"kind": "cell", "key": "a", "status": "done",
                  "result": {"elapsed": 0.1 + 0.2, "x": 1 / 3}}
        reloaded = json.loads(json.dumps(record, sort_keys=True))
        assert record_crc(reloaded) == record_crc(record)

    def test_legacy_crc_less_records_are_accepted(self, tmp_path):
        path = str(tmp_path / "legacy.journal.jsonl")
        records = [
            {"kind": "cell", "key": "a", "status": "pending",
             "spec": {}, "config_hash": "x"},
            {"kind": "cell", "key": "a", "status": "done",
             "result": {"elapsed": 2.0}},
        ]
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:  # the pre-CRC on-disk format
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        loaded = SweepJournal.load(path)
        assert loaded.cells["a"].status == "done"

    def test_midfile_bitflip_is_a_hard_error_naming_the_line(self,
                                                             tmp_path):
        path = str(tmp_path / "sweep.journal.jsonl")
        _write_journal(path)
        with open(path, encoding="utf-8") as handle:
            lines = handle.readlines()
        # Flip a value inside line 2: still valid JSON, wrong CRC.
        assert '"done"' in lines[1]
        lines[1] = lines[1].replace('"done"', '"dome"')
        with open(path, "w", encoding="utf-8") as handle:
            handle.writelines(lines)
        with pytest.raises(ValueError, match=rf"{path}:2: .*CRC"):
            SweepJournal.load(path)

    def test_final_line_bitflip_is_still_a_hard_error(self, tmp_path):
        # A torn write can never yield parseable JSON with a wrong CRC,
        # so even the last line gets no torn-tail leniency.
        path = str(tmp_path / "sweep.journal.jsonl")
        _write_journal(path, keys=("a",))
        with open(path, encoding="utf-8") as handle:
            lines = handle.readlines()
        lines[-1] = lines[-1].replace('"done"', '"dome"')
        with open(path, "w", encoding="utf-8") as handle:
            handle.writelines(lines)
        with pytest.raises(ValueError, match="CRC"):
            SweepJournal.load(path)

    def test_midfile_garbage_still_raises(self, tmp_path):
        path = str(tmp_path / "sweep.journal.jsonl")
        _write_journal(path)
        with open(path, encoding="utf-8") as handle:
            lines = handle.readlines()
        lines[1] = "}}} not json {{{\n"
        with open(path, "w", encoding="utf-8") as handle:
            handle.writelines(lines)
        with pytest.raises(ValueError, match="corrupt journal record"):
            SweepJournal.load(path)

    def test_jobqueue_records_are_checksummed_too(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        queue = JobQueue.load(path)
        queue.submit({"figure": "fig1"})
        queue.update("job-0001", "running")
        queue.close()
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                record = json.loads(line)
                assert record.pop("crc") == record_crc(record)
        with open(path, encoding="utf-8") as handle:
            lines = handle.readlines()
        lines[0] = lines[0].replace('"queued"', '"Queued"')
        with open(path, "w", encoding="utf-8") as handle:
            handle.writelines(lines)
        with pytest.raises(ValueError, match="CRC"):
            JobQueue.load(path)


class TestTornTailRecovery:
    def test_torn_tail_plus_concurrent_appender(self, tmp_path):
        path = str(tmp_path / "sweep.journal.jsonl")
        _write_journal(path, keys=("a",))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "cell", "key": "b", "sta')  # crash
        # A fresh appender (the "other process") must trim the fragment
        # before writing, so its record never concatenates onto it.
        with SweepJournal.load(path) as other:
            assert other.torn_lines == 1
            other.note_cell("c", "pending", spec={}, config_hash="x")
        loaded = SweepJournal.load(path)
        assert loaded.torn_lines == 0  # fragment gone for good
        assert set(loaded.cells) == {"a", "c"}
        with open(path, "rb") as handle:
            data = handle.read()
        assert data.endswith(b"\n")
        for line in data.decode("utf-8").splitlines():
            record = json.loads(line)  # every surviving line parses
            assert record.pop("crc") == record_crc(record)

    def test_torn_tail_under_the_fragment_size_of_a_crc(self, tmp_path):
        # Even a fragment that tears inside the crc field itself is
        # unparseable JSON, hence treated as torn, not corrupt.
        path = str(tmp_path / "sweep.journal.jsonl")
        _write_journal(path, keys=("a",))
        with open(path, "rb+") as handle:
            data = handle.read()
            handle.truncate(len(data) - 4)  # tear inside the last line
        loaded = SweepJournal.load(path)
        assert loaded.torn_lines == 1

    def test_append_log_requires_fold_override(self, tmp_path):
        with pytest.raises(NotImplementedError):
            AppendLog.load(str(tmp_path / "x.jsonl"))._fold({})
