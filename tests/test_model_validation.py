"""Model-validation tests: simulated components vs. analytic expectations.

The paper's simulator components were validated against hardware
(DiskSim vs. SCSI logic analyzers, Netsim vs. SP2/ATM microbenchmarks at
2-6 % accuracy). We validate our re-implementations against the closed
forms the specifications imply — the same discipline, one level down.
"""

import pytest

from repro.disk import DiskDrive, HITACHI_DK3E1T91, SEAGATE_ST39102
from repro.disk.validation import (
    expected_random_read_time,
    expected_sequential_rate,
    validation_points,
)
from repro.net import EthernetParams, FatTree, Network
from repro.sim import Simulator

KB = 1024


def measured_sequential_rate(spec, requests=100, size=256 * KB):
    sim = Simulator()
    drive = DiskDrive(sim, spec)
    def driver():
        lbn = 0
        for _ in range(requests):
            yield drive.read(lbn, size)
            lbn += size // 512
    sim.process(driver())
    sim.run()
    # Ignore the first request's positioning by subtracting its share.
    return requests * size / sim.now


def measured_random_read_time(spec, size, requests=200):
    import random
    sim = Simulator()
    drive = DiskDrive(sim, spec)
    span = drive.geometry.total_sectors - 2 * size // 512
    rng = random.Random(1234)
    lbns = [rng.randrange(span) for _ in range(requests)]
    def driver():
        for lbn in lbns:
            yield drive.read(lbn, size)
    sim.process(driver())
    sim.run()
    return drive.response_times.mean


@pytest.mark.parametrize("spec", [SEAGATE_ST39102, HITACHI_DK3E1T91],
                         ids=["seagate", "hitachi"])
class TestDriveValidation:
    def test_sequential_rate(self, spec):
        expected = expected_sequential_rate(spec)
        measured = measured_sequential_rate(spec)
        assert measured == pytest.approx(expected, rel=0.10)

    def test_random_8k(self, spec):
        expected = expected_random_read_time(spec, 8 * KB)
        measured = measured_random_read_time(spec, 8 * KB)
        assert measured == pytest.approx(expected, rel=0.20)

    def test_random_256k(self, spec):
        expected = expected_random_read_time(spec, 256 * KB)
        measured = measured_random_read_time(spec, 256 * KB)
        assert measured == pytest.approx(expected, rel=0.20)

    def test_validation_battery_passes(self, spec):
        measured = {
            "sequential-256K-rate": measured_sequential_rate(spec),
            "random-8K-read": measured_random_read_time(spec, 8 * KB),
            "random-256K-read": measured_random_read_time(spec, 256 * KB),
        }
        for point in validation_points(spec):
            assert measured[point.name] == pytest.approx(
                point.expected, rel=point.tolerance), point.name


class TestNetworkValidation:
    """Microbenchmark-style checks against closed-form wire math."""

    def _one_transfer_time(self, hosts, src, dst, nbytes):
        sim = Simulator()
        tree = FatTree(sim, hosts)
        network = Network(tree)
        def proc():
            yield from network.transfer(src, dst, nbytes)
        sim.process(proc())
        sim.run()
        return sim.now, tree.params

    @pytest.mark.parametrize("nbytes", [64 * KB, 256 * KB, 1024 * KB])
    def test_same_leaf_message_time(self, nbytes):
        measured, params = self._one_transfer_time(16, 0, 5, nbytes)
        wire = nbytes / params.host_link_rate
        expected = (2 * wire + params.switch_latency
                    + 2 * params.wire_startup)
        assert measured == pytest.approx(expected, rel=0.02)

    @pytest.mark.parametrize("nbytes", [64 * KB, 1024 * KB])
    def test_cross_leaf_message_time(self, nbytes):
        measured, params = self._one_transfer_time(32, 0, 20, nbytes)
        access = nbytes / params.host_link_rate
        uplink = nbytes / params.uplink_rate
        expected = (2 * access + 2 * uplink + 3 * params.switch_latency
                    + 4 * params.wire_startup)
        assert measured == pytest.approx(expected, rel=0.02)

    def test_saturated_link_throughput_exact(self):
        """A saturated access link must deliver exactly its wire rate."""
        sim = Simulator()
        tree = FatTree(sim, 16)
        network = Network(tree)
        size = 256 * KB
        count = 50
        def proc():
            for _ in range(count):
                yield from network.transfer(0, 1, size)
        sim.process(proc())
        sim.run()
        goodput = count * size / sim.now
        # Message-level store-and-forward: tx then rx per message,
        # so a single blocking stream sees half the wire rate.
        assert goodput == pytest.approx(
            tree.params.host_link_rate / 2, rel=0.03)

    def test_pipelined_streams_reach_wire_rate(self):
        """Concurrent streams through one rx link saturate it fully."""
        sim = Simulator()
        tree = FatTree(sim, 16)
        network = Network(tree)
        size = 256 * KB
        count = 25
        def proc(src):
            for _ in range(count):
                yield from network.transfer(src, 15, size)
        for src in range(4):
            sim.process(proc(src))
        sim.run()
        goodput = 4 * count * size / sim.now
        assert goodput == pytest.approx(
            tree.params.host_link_rate, rel=0.05)
