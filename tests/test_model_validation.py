"""Model-validation tests: simulated components vs. analytic expectations.

The paper's simulator components were validated against hardware
(DiskSim vs. SCSI logic analyzers, Netsim vs. SP2/ATM microbenchmarks at
2-6 % accuracy). We validate our re-implementations against the closed
forms the specifications imply — the same discipline, one level down.
"""

import copy

import pytest

from repro.arch import ActiveDiskConfig, ClusterConfig, SMPConfig
from repro.disk import DiskDrive, HITACHI_DK3E1T91, SEAGATE_ST39102
from repro.disk.geometry import DiskGeometry
from repro.disk.validation import (
    expected_random_read_time,
    expected_sequential_rate,
    validation_points,
)
from repro.net import EthernetParams, FatTree, Network
from repro.sim import Simulator

KB = 1024


def measured_sequential_rate(spec, requests=100, size=256 * KB):
    sim = Simulator()
    drive = DiskDrive(sim, spec)
    def driver():
        lbn = 0
        for _ in range(requests):
            yield drive.read(lbn, size)
            lbn += size // 512
    sim.process(driver())
    sim.run()
    # Ignore the first request's positioning by subtracting its share.
    return requests * size / sim.now


def measured_random_read_time(spec, size, requests=200):
    import random
    sim = Simulator()
    drive = DiskDrive(sim, spec)
    span = drive.geometry.total_sectors - 2 * size // 512
    rng = random.Random(1234)
    lbns = [rng.randrange(span) for _ in range(requests)]
    def driver():
        for lbn in lbns:
            yield drive.read(lbn, size)
    sim.process(driver())
    sim.run()
    return drive.response_times.mean


@pytest.mark.parametrize("spec", [SEAGATE_ST39102, HITACHI_DK3E1T91],
                         ids=["seagate", "hitachi"])
class TestDriveValidation:
    def test_sequential_rate(self, spec):
        expected = expected_sequential_rate(spec)
        measured = measured_sequential_rate(spec)
        assert measured == pytest.approx(expected, rel=0.10)

    def test_random_8k(self, spec):
        expected = expected_random_read_time(spec, 8 * KB)
        measured = measured_random_read_time(spec, 8 * KB)
        assert measured == pytest.approx(expected, rel=0.20)

    def test_random_256k(self, spec):
        expected = expected_random_read_time(spec, 256 * KB)
        measured = measured_random_read_time(spec, 256 * KB)
        assert measured == pytest.approx(expected, rel=0.20)

    def test_validation_battery_passes(self, spec):
        measured = {
            "sequential-256K-rate": measured_sequential_rate(spec),
            "random-8K-read": measured_random_read_time(spec, 8 * KB),
            "random-256K-read": measured_random_read_time(spec, 256 * KB),
        }
        for point in validation_points(spec):
            assert measured[point.name] == pytest.approx(
                point.expected, rel=point.tolerance), point.name


class TestNetworkValidation:
    """Microbenchmark-style checks against closed-form wire math."""

    def _one_transfer_time(self, hosts, src, dst, nbytes):
        sim = Simulator()
        tree = FatTree(sim, hosts)
        network = Network(tree)
        def proc():
            yield from network.transfer(src, dst, nbytes)
        sim.process(proc())
        sim.run()
        return sim.now, tree.params

    @pytest.mark.parametrize("nbytes", [64 * KB, 256 * KB, 1024 * KB])
    def test_same_leaf_message_time(self, nbytes):
        measured, params = self._one_transfer_time(16, 0, 5, nbytes)
        wire = nbytes / params.host_link_rate
        expected = (2 * wire + params.switch_latency
                    + 2 * params.wire_startup)
        assert measured == pytest.approx(expected, rel=0.02)

    @pytest.mark.parametrize("nbytes", [64 * KB, 1024 * KB])
    def test_cross_leaf_message_time(self, nbytes):
        measured, params = self._one_transfer_time(32, 0, 20, nbytes)
        access = nbytes / params.host_link_rate
        uplink = nbytes / params.uplink_rate
        expected = (2 * access + 2 * uplink + 3 * params.switch_latency
                    + 4 * params.wire_startup)
        assert measured == pytest.approx(expected, rel=0.02)

    def test_saturated_link_throughput_exact(self):
        """A saturated access link must deliver exactly its wire rate."""
        sim = Simulator()
        tree = FatTree(sim, 16)
        network = Network(tree)
        size = 256 * KB
        count = 50
        def proc():
            for _ in range(count):
                yield from network.transfer(0, 1, size)
        sim.process(proc())
        sim.run()
        goodput = count * size / sim.now
        # Message-level store-and-forward: tx then rx per message,
        # so a single blocking stream sees half the wire rate.
        assert goodput == pytest.approx(
            tree.params.host_link_rate / 2, rel=0.03)

    def test_pipelined_streams_reach_wire_rate(self):
        """Concurrent streams through one rx link saturate it fully."""
        sim = Simulator()
        tree = FatTree(sim, 16)
        network = Network(tree)
        size = 256 * KB
        count = 25
        def proc(src):
            for _ in range(count):
                yield from network.transfer(src, 15, size)
        for src in range(4):
            sim.process(proc(src))
        sim.run()
        goodput = 4 * count * size / sim.now
        assert goodput == pytest.approx(
            tree.params.host_link_rate, rel=0.05)


class TestConfigValidation:
    """Bad architecture parameters must fail loudly at construction."""

    @pytest.mark.parametrize("kwargs,needle", [
        (dict(num_disks=0), "at least one disk"),
        (dict(io_request_bytes=100), "one sector"),
        (dict(queue_depth=0), "queue depth"),
        (dict(drive_overrides=((7, SEAGATE_ST39102),), num_disks=4),
         "out of range"),
        (dict(disk_cpu_mhz=0), "disk_cpu_mhz"),
        (dict(disk_memory_bytes=-1), "disk_memory_bytes"),
        (dict(interconnect_rate=0.0), "interconnect_rate"),
        (dict(interconnect_loops=0), "interconnect_loops"),
        (dict(interconnect_kind="token-ring"), "interconnect kind"),
        (dict(switch_segments=0), "switch_segments"),
        (dict(frontend_cpu_mhz=-450.0), "frontend_cpu_mhz"),
        (dict(frontend_pci_rate=0), "frontend_pci_rate"),
    ])
    def test_active_disk_rejects(self, kwargs, needle):
        with pytest.raises(ValueError, match=needle):
            ActiveDiskConfig(**kwargs)

    @pytest.mark.parametrize("kwargs,needle", [
        (dict(node_cpu_mhz=0), "node_cpu_mhz"),
        (dict(node_memory_bytes=0), "node_memory_bytes"),
        (dict(node_usable_memory=0), "node_usable_memory"),
        (dict(node_usable_memory=256_000_000), "exceeds"),
        (dict(pci_rate=-1), "pci_rate"),
        (dict(scsi_rate=0), "scsi_rate"),
        (dict(async_receives=0), "async_receives"),
    ])
    def test_cluster_rejects(self, kwargs, needle):
        with pytest.raises(ValueError, match=needle):
            ClusterConfig(**kwargs)

    @pytest.mark.parametrize("kwargs,needle", [
        (dict(cpu_mhz=0), "cpu_mhz"),
        (dict(cpus_per_board=0), "cpus_per_board"),
        (dict(memory_per_board=0), "memory_per_board"),
        (dict(numa_latency=-1e-6), "numa_latency"),
        (dict(numa_link_rate=0), "numa_link_rate"),
        (dict(bte_rate=0), "bte_rate"),
        (dict(xio_nodes=0), "xio_nodes"),
        (dict(xio_total_rate=0), "xio_total_rate"),
        (dict(io_interconnect_rate=0), "io_interconnect_rate"),
        (dict(io_interconnect_loops=0), "io_interconnect_loops"),
        (dict(stripe_chunk_bytes=256), "stripe_chunk_bytes"),
        (dict(spinlock_cost=-1.0), "spinlock_cost"),
    ])
    def test_smp_rejects(self, kwargs, needle):
        with pytest.raises(ValueError, match=needle):
            SMPConfig(**kwargs)

    def test_defaults_are_valid(self):
        ActiveDiskConfig()
        ClusterConfig()
        SMPConfig()


class TestGeometryValidation:
    def test_rejects_non_drivespec(self):
        with pytest.raises(ValueError, match="DriveSpec"):
            DiskGeometry(object())

    def test_rejects_fewer_cylinders_than_zones(self):
        # DriveSpec validates zones <= cylinders itself, so sneak a
        # corrupt copy past it to prove the geometry double-checks.
        bad = copy.copy(SEAGATE_ST39102)
        object.__setattr__(bad, "cylinders", bad.zones - 1)
        with pytest.raises(ValueError, match="fewer cylinders"):
            DiskGeometry(bad)
