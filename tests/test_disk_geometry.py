"""Unit + property tests for zoned disk geometry."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk import (
    HITACHI_DK3E1T91,
    SEAGATE_ST39102,
    DiskGeometry,
    DriveSpec,
)

GEOMETRY = DiskGeometry(SEAGATE_ST39102)


class TestZoneTable:
    def test_zone_count_matches_spec(self):
        assert len(GEOMETRY.zones) == SEAGATE_ST39102.zones

    def test_zones_cover_all_cylinders(self):
        cylinders = 0
        for zone in GEOMETRY.zones:
            cylinders += zone.cylinder_count
        assert cylinders == SEAGATE_ST39102.cylinders

    def test_zones_are_contiguous(self):
        for prev, cur in zip(GEOMETRY.zones, GEOMETRY.zones[1:]):
            assert cur.first_cylinder == prev.last_cylinder + 1
            assert cur.first_lbn > prev.first_lbn

    def test_outer_zones_have_more_sectors(self):
        spts = [z.sectors_per_track for z in GEOMETRY.zones]
        assert spts == sorted(spts, reverse=True)
        assert spts[0] > spts[-1]

    def test_capacity_close_to_9gb(self):
        # The ST39102 is a 9.1 GB drive.
        assert 8.0e9 < GEOMETRY.capacity_bytes < 9.5e9

    def test_media_rate_bounds(self):
        outer = GEOMETRY.media_rate_at_lbn(0)
        inner = GEOMETRY.media_rate_at_lbn(GEOMETRY.total_sectors - 1)
        assert outer > inner
        assert inner >= SEAGATE_ST39102.media_rate_min * 0.95
        assert outer <= SEAGATE_ST39102.media_rate_max * 1.05


class TestTranslation:
    def test_lbn_zero_is_outer_cylinder_zero(self):
        assert GEOMETRY.lbn_to_chs(0) == (0, 0, 0)

    def test_out_of_range_lbn_rejected(self):
        with pytest.raises(ValueError):
            GEOMETRY.zone_of_lbn(GEOMETRY.total_sectors)
        with pytest.raises(ValueError):
            GEOMETRY.zone_of_lbn(-1)

    def test_bad_head_rejected(self):
        with pytest.raises(ValueError):
            GEOMETRY.chs_to_lbn(0, SEAGATE_ST39102.heads, 0)

    def test_bad_sector_rejected(self):
        spt = GEOMETRY.zones[0].sectors_per_track
        with pytest.raises(ValueError):
            GEOMETRY.chs_to_lbn(0, 0, spt)

    @given(st.integers(min_value=0, max_value=GEOMETRY.total_sectors - 1))
    @settings(max_examples=200)
    def test_roundtrip_lbn_chs_lbn(self, lbn):
        cylinder, head, sector = GEOMETRY.lbn_to_chs(lbn)
        assert GEOMETRY.chs_to_lbn(cylinder, head, sector) == lbn

    @given(st.integers(min_value=0, max_value=GEOMETRY.total_sectors - 1))
    @settings(max_examples=200)
    def test_chs_within_bounds(self, lbn):
        cylinder, head, sector = GEOMETRY.lbn_to_chs(lbn)
        zone = GEOMETRY.zone_of_lbn(lbn)
        assert zone.first_cylinder <= cylinder <= zone.last_cylinder
        assert 0 <= head < SEAGATE_ST39102.heads
        assert 0 <= sector < zone.sectors_per_track

    @given(st.integers(min_value=0, max_value=GEOMETRY.total_sectors - 2))
    @settings(max_examples=100)
    def test_lbn_order_follows_physical_order(self, lbn):
        c1, h1, s1 = GEOMETRY.lbn_to_chs(lbn)
        c2, h2, s2 = GEOMETRY.lbn_to_chs(lbn + 1)
        assert (c2, h2, s2) > (c1, h1, s1) or c2 > c1

    @given(st.integers(min_value=0, max_value=GEOMETRY.total_sectors - 1))
    @settings(max_examples=100)
    def test_angle_in_unit_interval(self, lbn):
        assert 0.0 <= GEOMETRY.angle_of(lbn) < 1.0


class TestBothDrives:
    @pytest.mark.parametrize("spec", [SEAGATE_ST39102, HITACHI_DK3E1T91],
                             ids=["seagate", "hitachi"])
    def test_geometry_builds(self, spec):
        geometry = DiskGeometry(spec)
        assert geometry.total_sectors > 0
        assert geometry.capacity_bytes == pytest.approx(
            spec.capacity_bytes, rel=0.01)

    def test_hitachi_is_faster(self):
        fast = DiskGeometry(HITACHI_DK3E1T91)
        slow = DiskGeometry(SEAGATE_ST39102)
        assert (fast.media_rate_at_lbn(0)
                > slow.media_rate_at_lbn(0))
