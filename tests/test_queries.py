"""Tests for the query-plan compiler."""

import pytest

from repro.arch import ActiveDiskConfig, SMPConfig, build_machine
from repro.sim import Simulator
from repro.workloads.queries import (
    Filter,
    GroupBy,
    OrderBy,
    Project,
    QueryPlan,
    Scan,
    compile_plan,
)

GB = 1_000_000_000
CONFIG = ActiveDiskConfig(num_disks=8)
TINY = 1 / 256


def fact_scan():
    return Scan(rows=250_000_000, row_bytes=64)


class TestOperatorValidation:
    def test_scan(self):
        with pytest.raises(ValueError):
            Scan(rows=-1, row_bytes=64)
        with pytest.raises(ValueError):
            Scan(rows=10, row_bytes=0)

    def test_filter(self):
        with pytest.raises(ValueError):
            Filter(selectivity=1.5)

    def test_project(self):
        with pytest.raises(ValueError):
            Project(row_bytes=0)

    def test_groupby(self):
        with pytest.raises(ValueError):
            GroupBy(groups=0)

    def test_double_orderby_rejected(self):
        with pytest.raises(ValueError):
            QueryPlan("q", fact_scan(), (OrderBy(), OrderBy()))

    def test_bad_scale(self):
        plan = QueryPlan("q", fact_scan())
        with pytest.raises(ValueError):
            compile_plan(plan, CONFIG, scale=0)


class TestVolumePropagation:
    def test_pure_scan_streams_everything(self):
        plan = QueryPlan("q", fact_scan())
        program = compile_plan(plan, CONFIG, TINY)
        phase = program.phases[0]
        assert phase.read_bytes_total == int(16 * GB * TINY)
        assert phase.frontend_fraction == pytest.approx(1.0)

    def test_filter_cuts_result(self):
        plan = QueryPlan("q", fact_scan(), (Filter(0.01),))
        program = compile_plan(plan, CONFIG, TINY)
        assert program.phases[0].frontend_fraction == pytest.approx(
            0.01, rel=0.01)

    def test_projection_narrows_rows(self):
        plan = QueryPlan("q", fact_scan(),
                         (Filter(0.1), Project(row_bytes=16)))
        program = compile_plan(plan, CONFIG, TINY)
        assert program.phases[0].frontend_fraction == pytest.approx(
            0.1 * 16 / 64, rel=0.01)

    def test_groupby_caps_cardinality(self):
        plan = QueryPlan("q", fact_scan(),
                         (GroupBy(groups=1000, entry_bytes=32),))
        program = compile_plan(plan, CONFIG, TINY)
        expected = 1000 * TINY * 32 / (16 * GB * TINY)
        assert program.phases[0].frontend_fraction == pytest.approx(
            expected, rel=0.01)

    def test_operators_stack_cpu(self):
        plan = QueryPlan("q", fact_scan(),
                         (Filter(0.5), GroupBy(groups=100)))
        program = compile_plan(plan, CONFIG, TINY)
        labels = [c.label for c in program.phases[0].cpu]
        assert labels == ["filter", "hash"]


class TestOrderBy:
    def plan(self):
        return QueryPlan(
            "top-groups", fact_scan(),
            (Filter(0.1), GroupBy(groups=13_500_000), OrderBy()))

    def test_emits_sort_phases(self):
        program = compile_plan(self.plan(), CONFIG, TINY)
        assert [p.name for p in program.phases] == \
            ["scan", "order", "merge"]
        order = program.phases[1]
        assert order.shuffle_fraction == 1.0

    def test_sort_runs_over_intermediate_not_input(self):
        program = compile_plan(self.plan(), CONFIG, TINY)
        scan, order, merge = program.phases
        assert order.read_bytes_total < 0.2 * scan.read_bytes_total
        assert merge.read_bytes_total == order.read_bytes_total

    def test_smp_splits_groups(self):
        program = compile_plan(self.plan(), SMPConfig(num_disks=8), TINY)
        assert program.phases[1].split_disk_groups

    def test_merge_streams_result_to_frontend(self):
        program = compile_plan(self.plan(), CONFIG, TINY)
        assert program.phases[2].frontend_fraction == pytest.approx(1.0)


class TestExecution:
    def test_compiled_query_runs_on_all_machines(self):
        from repro.arch import ClusterConfig
        plan = QueryPlan(
            "q1", fact_scan(),
            (Filter(0.05), GroupBy(groups=100_000), OrderBy()))
        for config in (ActiveDiskConfig(num_disks=8),
                       ClusterConfig(num_disks=8),
                       SMPConfig(num_disks=8)):
            program = compile_plan(plan, config, TINY)
            sim = Simulator()
            result = build_machine(sim, config).run(program)
            assert result.elapsed > 0
            assert len(result.phases) == 3

    def test_filtering_before_sort_pays_off(self):
        """Classic optimizer lesson, reproduced by the simulator: the
        selective filter makes the sort nearly free."""
        config = ActiveDiskConfig(num_disks=8)
        selective = compile_plan(QueryPlan(
            "sel", fact_scan(), (Filter(0.01), OrderBy())), config, TINY)
        full = compile_plan(QueryPlan(
            "full", fact_scan(), (OrderBy(),)), config, TINY)
        sim1 = Simulator()
        t_selective = build_machine(sim1, config).run(selective).elapsed
        sim2 = Simulator()
        t_full = build_machine(sim2, config).run(full).elapsed
        assert t_selective < 0.5 * t_full
