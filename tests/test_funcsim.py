"""Tests for functional co-simulation: outputs must equal the reference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.funcsim import FunctionalCluster
from repro.workloads.algorithms import (
    aggregate_sum,
    grace_hash_join,
    groupby_sum,
    make_relation,
    make_sort_records,
    select,
)


class TestSelect:
    def test_matches_reference(self):
        records = make_relation(2_000, 50, seed=1)
        cluster = FunctionalCluster(workers=4)
        output, stats = cluster.select(records, lambda r: r.value < 100)
        reference = select(records, lambda r: r.value < 100)
        assert sorted(output.value.tolist()) == \
            sorted(reference.value.tolist())
        assert stats.elapsed > 0
        assert stats.messages >= 3

    def test_empty_result(self):
        records = make_relation(500, 10, seed=2)
        cluster = FunctionalCluster(workers=4)
        output, _ = cluster.select(records, lambda r: r.value < 0)
        assert len(output) == 0

    def test_single_worker(self):
        records = make_relation(300, 10, seed=3)
        cluster = FunctionalCluster(workers=1)
        output, stats = cluster.select(records, lambda r: r.value < 500)
        assert len(output) == int((records.value < 500).sum())
        assert stats.bytes_exchanged == 0  # nothing leaves the node

    def test_network_carries_only_matches(self):
        records = make_relation(4_000, 50, seed=4, payload=1_000)
        cluster = FunctionalCluster(workers=4)
        output, stats = cluster.select(records, lambda r: r.value < 10)
        # ~1 % selectivity: traffic is a tiny fraction of the dataset.
        assert stats.bytes_exchanged < 0.1 * records.nbytes


class TestGroupBy:
    def test_matches_reference(self):
        records = make_relation(3_000, 40, seed=5)
        cluster = FunctionalCluster(workers=4)
        groups, _ = cluster.groupby_sum(records)
        assert groups == groupby_sum(records)

    def test_total_is_aggregate(self):
        records = make_relation(1_000, 20, seed=6)
        cluster = FunctionalCluster(workers=3)
        groups, _ = cluster.groupby_sum(records)
        assert sum(groups.values()) == aggregate_sum(records)

    @given(st.integers(min_value=0, max_value=2_000),
           st.integers(min_value=1, max_value=64),
           st.integers(min_value=1, max_value=6),
           st.integers(min_value=0, max_value=20))
    @settings(max_examples=15, deadline=None)
    def test_groupby_property(self, count, distinct, workers, seed):
        records = make_relation(count, distinct, seed=seed)
        cluster = FunctionalCluster(workers=workers)
        groups, _ = cluster.groupby_sum(records)
        assert groups == groupby_sum(records)


class TestSort:
    def test_globally_sorted_permutation(self):
        records = make_sort_records(5_000, seed=7)
        cluster = FunctionalCluster(workers=4)
        outputs, stats = cluster.sort(records)
        keys = np.concatenate([o.key for o in outputs if len(o)])
        assert len(keys) == 5_000
        assert (np.diff(keys) >= 0).all()
        assert sorted(np.concatenate(
            [o.payload for o in outputs if len(o)]).tolist()) == \
            list(range(5_000))

    def test_shuffle_moves_most_records(self):
        records = make_sort_records(4_000, seed=8)
        cluster = FunctionalCluster(workers=8)
        _, stats = cluster.sort(records)
        # Uniform keys: ~(W-1)/W of the volume crosses the network —
        # the exact assumption the cost model makes.
        expected = records.nbytes * 7 / 8
        assert stats.bytes_exchanged == pytest.approx(expected, rel=0.15)

    @given(st.integers(min_value=0, max_value=3_000),
           st.integers(min_value=1, max_value=6),
           st.integers(min_value=0, max_value=20))
    @settings(max_examples=10, deadline=None)
    def test_sort_property(self, count, workers, seed):
        records = make_sort_records(count, seed=seed)
        cluster = FunctionalCluster(workers=workers)
        outputs, _ = cluster.sort(records)
        keys = (np.concatenate([o.key for o in outputs if len(o)])
                if any(len(o) for o in outputs) else np.array([]))
        assert len(keys) == count
        if count > 1:
            assert (np.diff(keys) >= 0).all()


class TestJoin:
    def test_matches_reference(self):
        left = make_relation(400, 30, seed=9)
        right = make_relation(500, 30, seed=10)
        cluster = FunctionalCluster(workers=4)
        matches, _ = cluster.hash_join(left, right)
        assert sorted(matches) == sorted(grace_hash_join(left, right))

    def test_empty_side(self):
        left = make_relation(0, 10)
        right = make_relation(100, 10, seed=11)
        cluster = FunctionalCluster(workers=3)
        matches, _ = cluster.hash_join(left, right)
        assert matches == []


class TestScaling:
    def test_more_workers_faster_when_compute_bound(self):
        records = make_relation(20_000, 50, seed=12)
        def elapsed(workers):
            cluster = FunctionalCluster(workers=workers)
            _, stats = cluster.select(records, lambda r: r.value < 5)
            return stats.elapsed
        assert elapsed(8) < 0.6 * elapsed(2)

    def test_validation(self):
        with pytest.raises(ValueError):
            FunctionalCluster(workers=0)
