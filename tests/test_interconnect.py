"""Unit tests for the queue-based serial interconnect models."""

import pytest

from repro.interconnect import FC_STARTUP_LATENCY, BusGroup, SerialBus, dual_fc_al
from repro.sim import Simulator

MB = 1_000_000


@pytest.fixture
def sim():
    return Simulator()


class TestSerialBus:
    def test_validation(self, sim):
        with pytest.raises(ValueError):
            SerialBus(sim, rate=0)
        with pytest.raises(ValueError):
            SerialBus(sim, rate=100, startup=-1)

    def test_hold_time(self, sim):
        bus = SerialBus(sim, rate=100 * MB, startup=1e-3)
        assert bus.hold_time(100 * MB) == pytest.approx(1.001)

    def test_negative_size_rejected(self, sim):
        bus = SerialBus(sim, rate=100 * MB)
        with pytest.raises(ValueError):
            bus.hold_time(-1)

    def test_single_transfer_timing(self, sim):
        bus = SerialBus(sim, rate=10 * MB, startup=0.0)
        def proc():
            yield from bus.transfer(10 * MB)
        sim.process(proc())
        sim.run()
        assert sim.now == pytest.approx(1.0)

    def test_transfers_serialize(self, sim):
        bus = SerialBus(sim, rate=10 * MB)
        def proc():
            yield from bus.transfer(10 * MB)
        for _ in range(3):
            sim.process(proc())
        sim.run()
        assert sim.now == pytest.approx(3 * bus.hold_time(10 * MB))

    def test_byte_and_latency_accounting(self, sim):
        bus = SerialBus(sim, rate=10 * MB)
        def proc():
            yield from bus.transfer(5 * MB)
        sim.process(proc())
        sim.process(proc())
        sim.run()
        assert bus.bytes_moved.value == 10 * MB
        assert bus.transfer_times.count == 2
        # The second transfer queued behind the first.
        assert bus.transfer_times.max > bus.transfer_times.min

    def test_utilization_saturated(self, sim):
        bus = SerialBus(sim, rate=10 * MB, startup=0.0)
        def proc():
            yield from bus.transfer(10 * MB)
        sim.process(proc())
        sim.process(proc())
        sim.run()
        assert bus.utilization() == pytest.approx(1.0)

    def test_capacity_allows_concurrency(self, sim):
        bus = SerialBus(sim, rate=10 * MB, capacity=2)
        def proc():
            yield from bus.transfer(10 * MB)
        sim.process(proc())
        sim.process(proc())
        sim.run()
        assert sim.now == pytest.approx(bus.hold_time(10 * MB))


class TestBusGroup:
    def test_needs_members(self):
        with pytest.raises(ValueError):
            BusGroup([])

    def test_balances_across_members(self, sim):
        group = BusGroup([SerialBus(sim, 10 * MB, name="a"),
                          SerialBus(sim, 10 * MB, name="b")])
        def proc():
            yield from group.transfer(10 * MB)
        sim.process(proc())
        sim.process(proc())
        sim.run()
        # Two loops run the two transfers in parallel.
        assert sim.now == pytest.approx(1.0)
        assert all(b.bytes_moved.value == 10 * MB for b in group.buses)

    def test_aggregate_rate(self, sim):
        group = dual_fc_al(sim, aggregate_rate=200 * MB)
        assert group.aggregate_rate == pytest.approx(200 * MB)
        assert len(group.buses) == 2

    def test_aggregate_throughput_under_load(self, sim):
        group = dual_fc_al(sim, aggregate_rate=200 * MB)
        size = 256 * 1024
        count = 200
        def proc():
            for _ in range(count // 4):
                yield from group.transfer(size)
        for _ in range(4):
            sim.process(proc())
        sim.run()
        throughput = count * size / sim.now
        # Within protocol overhead of the 200 MB/s wire rate.
        assert 0.85 * 200 * MB < throughput <= 200 * MB

    def test_loop_validation(self, sim):
        with pytest.raises(ValueError):
            dual_fc_al(sim, loops=0)

    def test_small_transfers_pay_proportionally_more(self, sim):
        """The FCP protocol overhead penalizes 64 KB chunks more than
        256 KB transfers — the SMP's striping penalty."""
        def efficiency(size):
            local = Simulator()
            group = dual_fc_al(local)
            def proc():
                for _ in range(50):
                    yield from group.transfer(size)
            local.process(proc())
            local.run()
            return (50 * size) / (local.now * 100 * MB)
        assert efficiency(64 * 1024) < efficiency(256 * 1024)

    def test_utilization_mean(self, sim):
        group = dual_fc_al(sim)
        def proc():
            yield from group.transfer(1 * MB)
        sim.process(proc())
        sim.run()
        assert 0 < group.utilization() <= 1.0
