"""Interruption and resumption of journaled sweeps.

The harness's core promise: a sweep killed at any point — KeyboardInterrupt,
SIGTERM, a crashing or hanging worker — leaves a loadable journal, and a
subsequent resume re-runs only the incomplete cells yet produces results
bit-identical to a sweep that was never interrupted.
"""

import os
import signal
import time

import pytest

from repro.experiments import (
    CellSpec,
    SweepInterrupted,
    SweepRunner,
    resume_sweep,
    run_cells,
)
from repro.experiments.journal import SweepJournal

SPECS = [
    CellSpec(task=task, arch=arch, num_disks=2, scale=1 / 1024)
    for arch in ("active", "cluster", "smp")
    for task in ("select", "groupby")
]


def _uninterrupted_results():
    return SweepRunner(None).run(SPECS)


# ------------------------------------------------------------ interruption
class TestInterruption:
    def _interrupt_after(self, count, raiser):
        state = {"seen": 0}

        def after_cell(outcome):
            state["seen"] += 1
            if state["seen"] == count:
                raiser()
        return after_cell

    def _check_resume(self, journal_path, interrupted_count):
        journal = SweepJournal.load(journal_path)
        assert len(journal.done()) == interrupted_count
        # Every journaled record survived the interruption intact.
        assert journal.torn_lines == 0
        runner = SweepRunner(journal_path)
        resumed = runner.run(SPECS)
        assert runner.counters["resumed_cells"] == interrupted_count
        assert runner.counters["completed"] == len(SPECS) - interrupted_count
        baseline = _uninterrupted_results()
        assert set(resumed) == set(baseline)
        for key in baseline:
            assert resumed[key] == baseline[key]   # bit-identical

    def test_keyboard_interrupt_leaves_valid_journal(self, tmp_path):
        path = str(tmp_path / "sweep.journal.jsonl")

        def raise_interrupt():
            raise KeyboardInterrupt

        runner = SweepRunner(path)
        with pytest.raises(SweepInterrupted) as excinfo:
            runner.run(SPECS,
                       after_cell=self._interrupt_after(3, raise_interrupt))
        assert excinfo.value.journal_path == path
        self._check_resume(path, 3)

    def test_sigterm_mid_sweep_then_resume(self, tmp_path):
        path = str(tmp_path / "sweep.journal.jsonl")

        def send_sigterm():
            os.kill(os.getpid(), signal.SIGTERM)

        runner = SweepRunner(path)
        with pytest.raises(SweepInterrupted):
            runner.run(SPECS,
                       after_cell=self._interrupt_after(2, send_sigterm))
        self._check_resume(path, 2)

    def test_sigterm_handler_restored(self, tmp_path):
        previous = signal.getsignal(signal.SIGTERM)
        runner = SweepRunner(str(tmp_path / "j.jsonl"))
        runner.run(SPECS[:1])
        assert signal.getsignal(signal.SIGTERM) is previous

    def test_resume_sweep_from_journal_alone(self, tmp_path):
        path = str(tmp_path / "sweep.journal.jsonl")
        runner = SweepRunner(path, meta={"purpose": "test"})
        with pytest.raises(SweepInterrupted):
            runner.run(SPECS, after_cell=self._interrupt_after(
                1, lambda: (_ for _ in ()).throw(KeyboardInterrupt())))
        # No spec list this time: everything comes from the journal.
        meta, results = resume_sweep(path)
        assert meta == {"purpose": "test"}
        baseline = _uninterrupted_results()
        assert results == baseline

    def test_resume_empty_journal_rejected(self, tmp_path):
        path = tmp_path / "empty.journal.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="no journaled cells"):
            resume_sweep(str(path))


# ------------------------------------------------------- staleness handling
class TestConfigHashStaleness:
    def test_changed_cell_config_reruns(self, tmp_path):
        path = str(tmp_path / "sweep.journal.jsonl")
        spec = SPECS[0]
        SweepRunner(path).run([spec])
        changed = CellSpec(task=spec.task, arch=spec.arch,
                           num_disks=spec.num_disks, scale=spec.scale,
                           memory_mb=64)   # same key, different config
        assert changed.key == spec.key
        runner = SweepRunner(path)
        runner.run([changed])
        assert runner.counters["resumed_cells"] == 0
        assert runner.counters["completed"] == 1

    def test_duplicate_keys_rejected(self, tmp_path):
        runner = SweepRunner(str(tmp_path / "j.jsonl"))
        with pytest.raises(ValueError, match="duplicate"):
            runner.run([SPECS[0], SPECS[0]])


# --------------------------------------------------------- worker failures
def _boom_cell(spec):
    raise RuntimeError(f"boom on {spec.key}")


def _hang_cell(spec):
    time.sleep(60)


def _patch_cell_fn(monkeypatch, cell_fn):
    """Make SweepRunner use ``cell_fn`` instead of the real simulation."""
    import repro.experiments.harness as harness_mod
    original = harness_mod.run_cells

    def patched(specs, **kwargs):
        kwargs["cell_fn"] = cell_fn
        return original(specs, **kwargs)

    monkeypatch.setattr(harness_mod, "run_cells", patched)


class TestFailureContainment:
    def test_failing_cell_is_quarantined_not_fatal(self):
        outcomes = run_cells(SPECS[:2], retries=1, backoff=0.0,
                             cell_fn=_boom_cell)
        assert [o.status for o in outcomes] == ["quarantined"] * 2
        assert all(o.attempts == 2 for o in outcomes)
        assert "boom" in outcomes[0].error

    def test_runner_counts_and_journals_quarantine(self, tmp_path,
                                                   monkeypatch):
        path = str(tmp_path / "j.jsonl")
        runner = SweepRunner(path, retries=2, backoff=0.0, strict=False)
        _patch_cell_fn(monkeypatch, _boom_cell)
        results = runner.run(SPECS[:1])
        assert results == {}
        assert runner.counters["quarantined"] == 1
        assert runner.counters["retries"] == 2
        journal = SweepJournal.load(path)
        cell = journal.cells[SPECS[0].key]
        assert cell.status == "quarantined"
        assert "boom" in cell.error
        assert len(cell.failures) == 4   # 3 failed attempts + quarantine

    def test_strict_mode_raises_after_completing_sweep(self, monkeypatch):
        runner = SweepRunner(None, retries=0, strict=True)
        _patch_cell_fn(monkeypatch, _boom_cell)
        with pytest.raises(RuntimeError, match="quarantined"):
            runner.run(SPECS[:2])
        # both cells were attempted before the sweep-level failure
        assert runner.counters["quarantined"] == 2

    def test_telemetry_mirrors_harness_counters(self, monkeypatch):
        from repro.telemetry import Telemetry
        telemetry = Telemetry(sample_interval=None)
        runner = SweepRunner(None, retries=1, backoff=0.0, strict=False,
                             telemetry=telemetry)
        _patch_cell_fn(monkeypatch, _boom_cell)
        runner.run(SPECS[:1])
        registry = telemetry.registry
        assert registry.counter("harness.quarantined").value == 1
        assert registry.counter("harness.retries").value == 1


@pytest.mark.skipif("fork" not in __import__("multiprocessing")
                    .get_all_start_methods(),
                    reason="fork start method required")
class TestProcessIsolation:
    def test_parallel_pool_matches_inline(self):
        inline = _uninterrupted_results()
        outcomes = run_cells(SPECS, jobs=3, mp_context="fork")
        assert all(o.status == "done" for o in outcomes)
        pooled = {o.key: o.result for o in outcomes}
        assert pooled == inline   # across-process bit-identical

    def test_timeout_kills_hung_worker(self):
        began = time.monotonic()
        outcomes = run_cells(SPECS[:1], jobs=1, timeout=0.3, retries=1,
                             backoff=0.0, cell_fn=_hang_cell,
                             mp_context="fork")
        wall = time.monotonic() - began
        assert wall < 30   # nowhere near the 60 s hang
        assert [o.status for o in outcomes] == ["quarantined"]
        assert "timeout" in outcomes[0].error

    def test_worker_crash_is_contained(self):
        def kill_self(spec):
            # SIGKILL bypasses the worker's error channel entirely.
            os.kill(os.getpid(), signal.SIGKILL)

        outcomes = run_cells(SPECS[:1], jobs=1, timeout=10.0, retries=0,
                             cell_fn=kill_self, mp_context="fork")
        assert [o.status for o in outcomes] == ["quarantined"]
        assert "without a result" in outcomes[0].error

    def test_one_poison_cell_does_not_sink_the_sweep(self):
        def poison_first(spec):
            if spec.key == SPECS[0].key:
                raise RuntimeError("poison")
            from repro.experiments import run_cell
            return run_cell(spec)

        outcomes = run_cells(SPECS, jobs=2, retries=0, backoff=0.0,
                             cell_fn=poison_first, mp_context="fork")
        by_key = {o.key: o for o in outcomes}
        assert by_key[SPECS[0].key].status == "quarantined"
        done = [o for o in outcomes if o.status == "done"]
        assert len(done) == len(SPECS) - 1
