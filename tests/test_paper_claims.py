"""Integration tests pinning the paper's headline results.

These run the actual experiment simulations (at 1/64 scale — every
bandwidth/compute ratio is scale-invariant by construction) and assert
the qualitative and quantitative shapes the paper reports. They are the
reproduction's acceptance tests.
"""

import pytest

from repro.arch import ActiveDiskConfig
from repro.disk import HITACHI_DK3E1T91
from repro.experiments import config_for, run_task

SCALE = 1 / 64
MB = 1_000_000


@pytest.fixture(scope="module")
def sweep():
    """elapsed[(task, arch, disks)] for the combinations under test."""
    elapsed = {}
    combos = [
        ("select", 16), ("select", 128),
        ("aggregate", 128),
        ("groupby", 128),
        ("sort", 16), ("sort", 128),
        ("join", 128),
        ("mview", 128),
        ("dmine", 128),
        ("dcube", 128),
    ]
    for task, disks in combos:
        for arch in ("active", "cluster", "smp"):
            elapsed[(task, arch, disks)] = run_task(
                config_for(arch, disks), task, SCALE).elapsed
    return elapsed


class TestFigure1Claims:
    def test_16_disk_configurations_comparable(self, sweep):
        """"for the 16-disk configurations, the performance of all three
        architectures is comparable" (within Fig. 1a's 1.6x range)."""
        for task in ("select", "sort"):
            base = sweep[(task, "active", 16)]
            for arch in ("cluster", "smp"):
                assert 0.5 < sweep[(task, arch, 16)] / base < 1.7

    def test_smp_slowdown_grows_with_size(self, sweep):
        ratio_16 = sweep[("select", "smp", 16)] / sweep[("select", "active", 16)]
        ratio_128 = sweep[("select", "smp", 128)] / sweep[("select", "active", 128)]
        assert ratio_128 > 2.5 * ratio_16

    def test_largest_gains_for_data_reduction_tasks_at_128(self, sweep):
        """"8.5-9.5 fold on 128-disk configurations ... for
        aggregate/select" (we accept 6-13x)."""
        for task in ("select", "aggregate"):
            ratio = sweep[(task, "smp", 128)] / sweep[(task, "active", 128)]
            assert 6.0 < ratio < 13.0

    def test_repartition_tasks_3_to_6_fold_at_128(self, sweep):
        """"even tasks that repartition ... are significantly faster
        (4-6 fold on 128-disk configurations)" (we accept 3-7x)."""
        for task in ("sort", "join", "mview", "dmine"):
            ratio = sweep[(task, "smp", 128)] / sweep[(task, "active", 128)]
            assert 3.0 < ratio < 7.0

    def test_groupby_cluster_frontend_bottleneck(self, sweep):
        """"The performance of group-by on cluster configurations is
        limited by end-point congestion at the frontend"."""
        ratio = sweep[("groupby", "cluster", 128)] / \
            sweep[("groupby", "active", 128)]
        assert ratio > 1.5

    def test_cluster_competitive_on_other_tasks(self, sweep):
        """Clusters and Active Disks stay within a small factor."""
        for task in ("select", "aggregate", "sort", "join"):
            ratio = sweep[(task, "cluster", 128)] / \
                sweep[(task, "active", 128)]
            assert 0.3 < ratio < 1.7

    def test_active_disks_never_worst_at_scale(self, sweep):
        for task in ("select", "sort", "join", "mview", "dmine",
                     "groupby", "dcube", "aggregate"):
            active = sweep[(task, "active", 128)]
            assert active <= sweep[(task, "smp", 128)]


class TestFigure2Claims:
    def test_doubling_interconnect_helps_smp_a_lot(self):
        slow = run_task(config_for("smp", 64), "select", SCALE).elapsed
        fast = run_task(
            config_for("smp", 64).with_interconnect(400 * MB),
            "select", SCALE).elapsed
        assert fast < 0.7 * slow

    def test_ad_at_200_beats_smp_at_400(self):
        """"Active Disk configurations with a 200 MB/s I/O interconnect
        outperform SMP configurations with a 400 MB/s interconnect"."""
        for task in ("select", "sort"):
            active = run_task(config_for("active", 128), task, SCALE).elapsed
            smp400 = run_task(
                config_for("smp", 128).with_interconnect(400 * MB),
                task, SCALE).elapsed
            assert smp400 > 1.4 * active

    def test_ad_scan_tasks_insensitive_to_interconnect(self):
        base = run_task(config_for("active", 128), "select", SCALE).elapsed
        fast = run_task(
            config_for("active", 128).with_interconnect(400 * MB),
            "select", SCALE).elapsed
        assert fast == pytest.approx(base, rel=0.05)

    def test_ad_sort_gains_from_interconnect_at_128(self):
        base = run_task(config_for("active", 128), "sort", SCALE).elapsed
        fast = run_task(
            config_for("active", 128).with_interconnect(400 * MB),
            "sort", SCALE).elapsed
        assert fast < 0.85 * base


class TestFigure3Claims:
    def run_sort(self, disks, **overrides):
        config = ActiveDiskConfig(num_disks=disks, **overrides)
        return run_task(config, "sort", SCALE)

    def test_sort_phase_dominates(self):
        result = self.run_sort(64)
        p1, p2 = result.phases
        assert p1.elapsed > p2.elapsed

    def test_idle_small_up_to_64_disks(self):
        for disks in (16, 64):
            fractions = self.run_sort(disks).phases[0].fractions()
            assert fractions["idle"] < 0.30

    def test_idle_dominates_at_128_disks(self):
        fractions = self.run_sort(128).phases[0].fractions()
        assert fractions["idle"] > 0.45

    def test_fast_disk_makes_little_difference_at_128(self):
        base = self.run_sort(128).elapsed
        fast_disk = self.run_sort(128, drive=HITACHI_DK3E1T91).elapsed
        assert fast_disk > 0.9 * base

    def test_fast_io_has_major_impact_at_128(self):
        base = self.run_sort(128).elapsed
        fast_io = run_task(
            ActiveDiskConfig(num_disks=128).with_interconnect(400 * MB),
            "sort", SCALE).elapsed
        assert fast_io < 0.8 * base


class TestFigure4Claims:
    def improvement(self, task, disks):
        base = run_task(ActiveDiskConfig(num_disks=disks), task, SCALE)
        more = run_task(
            ActiveDiskConfig(num_disks=disks).with_memory(64 * MB),
            task, SCALE)
        return 100.0 * (base.elapsed - more.elapsed) / base.elapsed

    def test_most_tasks_insensitive_to_memory(self):
        """"increasing the memory makes a negligible (~2%) difference"."""
        for task in ("select", "join", "mview", "groupby", "aggregate",
                     "dmine"):
            assert abs(self.improvement(task, 64)) < 5.0

    def test_sort_gains_slightly(self):
        assert -1.0 < self.improvement("sort", 16) < 8.0

    def test_dcube_large_gain_at_16_disks(self):
        """"the largest performance improvement is only about 35 %
        which occurs for 16-disk configurations"."""
        assert 25.0 < self.improvement("dcube", 16) < 45.0

    def test_dcube_smaller_gain_on_larger_configs(self):
        assert self.improvement("dcube", 64) < 15.0
        assert self.improvement("dcube", 64) > 3.0  # the Fig. 4 spike
        assert abs(self.improvement("dcube", 128)) < 5.0


class TestFigure5Claims:
    def slowdown(self, task, disks=128):
        direct = run_task(ActiveDiskConfig(num_disks=disks), task, SCALE)
        restricted = run_task(
            ActiveDiskConfig(num_disks=disks).restricted(), task, SCALE)
        return restricted.elapsed / direct.elapsed

    def test_repartition_tasks_hit_hard(self):
        """"up to a five-fold slowdown for the three communication-
        intensive tasks" (sort, join, mview)."""
        for task in ("sort", "join", "mview"):
            assert self.slowdown(task) > 3.0

    def test_remaining_tasks_unaffected(self):
        for task in ("select", "aggregate", "groupby", "dmine", "dcube"):
            assert self.slowdown(task, disks=64) == pytest.approx(
                1.0, abs=0.05)
