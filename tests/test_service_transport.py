"""Transport contract tests: in-process and socket channels.

Both transports must behave identically at the message level — the
suite runs the shared contract against each, then covers the quirks a
byte stream adds (framing, torn tails, address parsing).
"""

import json
import socket
import threading

import pytest

from repro.service.transport import (
    ChannelClosed,
    InProcTransport,
    SocketTransport,
    is_path_address,
)


def _inproc_pair():
    transport = InProcTransport()
    listener = transport.listen("addr")
    near = transport.connect("addr")
    far = listener.accept(1.0)
    return near, far, listener


def _socket_pair(tmp_path):
    transport = SocketTransport()
    listener = transport.listen(str(tmp_path / "s.sock"))
    near = transport.connect(listener.address, timeout=5.0)
    far = listener.accept(5.0)
    return near, far, listener


@pytest.fixture(params=["inproc", "socket"])
def pair(request, tmp_path):
    if request.param == "inproc":
        near, far, listener = _inproc_pair()
    else:
        near, far, listener = _socket_pair(tmp_path)
    yield near, far
    near.close()
    far.close()
    listener.close()


# ----------------------------------------------------------- shared contract
class TestChannelContract:
    def test_round_trip_both_directions(self, pair):
        near, far = pair
        near.send({"kind": "hello", "n": 1})
        assert far.recv(1.0) == {"kind": "hello", "n": 1}
        far.send({"kind": "reply", "ok": True})
        assert near.recv(1.0) == {"kind": "reply", "ok": True}

    def test_messages_stay_ordered(self, pair):
        near, far = pair
        for n in range(50):
            near.send({"n": n})
        assert [far.recv(1.0)["n"] for _ in range(50)] == list(range(50))

    def test_recv_timeout_returns_none(self, pair):
        near, _ = pair
        assert near.recv(0.05) is None

    def test_poll(self, pair):
        import time
        near, far = pair
        assert far.poll() is False
        near.send({"x": 1})
        deadline = time.monotonic() + 2.0
        while not far.poll() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert far.poll() is True
        assert far.recv(1.0) == {"x": 1}

    def test_json_normalization(self, pair):
        # Tuples and int keys must not survive transit: whatever works
        # in-process must work over a byte stream.
        near, far = pair
        near.send({"sizes": (16, 32)})
        assert far.recv(1.0) == {"sizes": [16, 32]}

    def test_close_raises_channel_closed_on_peer(self, pair):
        near, far = pair
        near.send({"last": True})
        near.close()
        # Buffered messages drain first; then the EOF surfaces.
        assert far.recv(1.0) == {"last": True}
        with pytest.raises(ChannelClosed):
            while True:
                if far.recv(1.0) is None:
                    break

    def test_send_after_peer_close_raises(self, pair):
        near, far = pair
        far.close()
        with pytest.raises(ChannelClosed):
            for _ in range(100):   # a socket needs a round trip to notice
                near.send({"x": 1})


# ------------------------------------------------------------------- inproc
class TestInProc:
    def test_double_bind_rejected(self):
        transport = InProcTransport()
        transport.listen("addr")
        with pytest.raises(OSError, match="already bound"):
            transport.listen("addr")

    def test_connect_without_listener_refused(self):
        transport = InProcTransport()
        with pytest.raises(ConnectionRefusedError):
            transport.connect("nowhere", timeout=0)

    def test_accept_timeout_returns_none(self):
        transport = InProcTransport()
        listener = transport.listen("addr")
        assert listener.accept(0.05) is None


# ------------------------------------------------------------------- socket
class TestSocketTransport:
    def test_address_classification(self):
        assert is_path_address("/tmp/x.sock")
        assert is_path_address("./x.sock")
        assert is_path_address("state/coordinator.sock")
        assert not is_path_address("127.0.0.1:8000")
        assert not is_path_address("localhost:9999")
        assert is_path_address("just-a-name")      # no port -> unix path

    def test_tcp_listen_resolves_port_zero(self):
        transport = SocketTransport()
        listener = transport.listen("127.0.0.1:0")
        try:
            host, _, port = listener.address.rpartition(":")
            assert host == "127.0.0.1" and int(port) > 0
            near = transport.connect(listener.address, timeout=5.0)
            far = listener.accept(5.0)
            near.send({"over": "tcp"})
            assert far.recv(1.0) == {"over": "tcp"}
            near.close()
            far.close()
        finally:
            listener.close()

    def test_stale_unix_socket_is_replaced(self, tmp_path):
        path = str(tmp_path / "s.sock")
        SocketTransport().listen(path).close()
        # A dead server leaves no file (close unlinks); simulate a crash
        # that didn't clean up, then rebind.
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.bind(path)
        sock.close()
        listener = SocketTransport().listen(path)
        listener.close()

    def test_listener_close_unlinks_socket(self, tmp_path):
        path = tmp_path / "s.sock"
        listener = SocketTransport().listen(str(path))
        assert path.exists()
        listener.close()
        assert not path.exists()

    def test_torn_trailing_line_discarded(self, tmp_path):
        """A peer killed mid-write must not poison the stream."""
        transport = SocketTransport()
        listener = transport.listen(str(tmp_path / "s.sock"))
        raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        raw.connect(str(tmp_path / "s.sock"))
        far = listener.accept(5.0)
        whole = json.dumps({"kind": "result", "n": 1}) + "\n"
        raw.sendall(whole.encode() + b'{"kind": "result", "n": 2, "tr')
        raw.close()   # SIGKILL mid-write: torn final line, then EOF
        assert far.recv(1.0) == {"kind": "result", "n": 1}
        with pytest.raises(ChannelClosed):
            while far.recv(1.0) is not None:
                pass
        far.close()
        listener.close()

    def test_concurrent_senders_do_not_interleave(self, tmp_path):
        near, far, listener = _socket_pair(tmp_path)
        try:
            def blast(tag):
                for n in range(100):
                    near.send({"tag": tag, "n": n, "pad": "x" * 512})
            threads = [threading.Thread(target=blast, args=(t,))
                       for t in range(4)]
            for thread in threads:
                thread.start()
            # Drain while the senders run: the socket buffer is smaller
            # than the 400 messages, so joining first would deadlock.
            seen = [far.recv(5.0) for _ in range(400)]
            for thread in threads:
                thread.join(5.0)
            assert all(message is not None for message in seen)
            per_tag = {}
            for message in seen:
                per_tag.setdefault(message["tag"], []).append(message["n"])
            assert all(sorted(ns) == list(range(100))
                       for ns in per_tag.values())
        finally:
            near.close()
            far.close()
            listener.close()
