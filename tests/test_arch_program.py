"""Unit + property tests for the task-program model and engine helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import CostComponent, Dribble, Phase, TaskProgram, WorkLatch
from repro.sim import Simulator


class TestCostComponent:
    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CostComponent("x", -1.0)


class TestPhase:
    def test_minimal_phase(self):
        phase = Phase(name="scan", read_bytes_total=1000)
        assert phase.cpu_total_ns_per_byte == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Phase(name="p", read_bytes_total=-1)
        with pytest.raises(ValueError):
            Phase(name="p", read_bytes_total=1, shuffle_fraction=-0.5)
        with pytest.raises(ValueError):
            Phase(name="p", read_bytes_total=1, read_streams=0)

    def test_cost_totals(self):
        phase = Phase(
            name="p", read_bytes_total=1,
            cpu=(CostComponent("a", 10.0), CostComponent("b", 5.0)),
            recv=(CostComponent("c", 3.0),))
        assert phase.cpu_total_ns_per_byte == pytest.approx(15.0)
        assert phase.recv_total_ns_per_byte == pytest.approx(3.0)


class TestTaskProgram:
    def test_needs_phases(self):
        with pytest.raises(ValueError):
            TaskProgram(task="t", phases=())

    def test_volume_totals(self):
        program = TaskProgram(task="t", phases=(
            Phase(name="a", read_bytes_total=100, shuffle_fraction=0.5),
            Phase(name="b", read_bytes_total=200),
        ))
        assert program.total_read_bytes() == 300
        assert program.total_shuffle_bytes() == 50


class TestDribble:
    def test_negative_fraction_rejected(self):
        with pytest.raises(ValueError):
            Dribble(-0.1)

    def test_exact_total_for_unit_fraction(self):
        dribble = Dribble(1.0)
        total = sum(dribble.take(7) for _ in range(100))
        assert total == 700

    def test_zero_fraction_never_emits(self):
        dribble = Dribble(0.0)
        assert sum(dribble.take(13) for _ in range(50)) == 0

    @given(st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
           st.lists(st.integers(min_value=1, max_value=10_000),
                    min_size=1, max_size=100))
    @settings(max_examples=200)
    def test_never_drifts_more_than_one_byte(self, fraction, chunks):
        dribble = Dribble(fraction)
        taken = 0
        given_out = 0
        for chunk in chunks:
            given_out += dribble.take(chunk)
            taken += chunk
            assert abs(given_out - fraction * taken) <= 1.0

    @given(st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
           st.lists(st.integers(min_value=1, max_value=10_000),
                    min_size=1, max_size=50))
    @settings(max_examples=100)
    def test_outputs_are_nonnegative(self, fraction, chunks):
        dribble = Dribble(fraction)
        for chunk in chunks:
            assert dribble.take(chunk) >= 0


class TestWorkLatch:
    def test_done_without_begin_rejected(self):
        latch = WorkLatch(Simulator())
        with pytest.raises(RuntimeError):
            latch.done()

    def test_drained_waits_for_open_work(self):
        sim = Simulator()
        latch = WorkLatch(sim)
        finished = []
        def work():
            latch.begin()
            yield sim.timeout(5.0)
            latch.done()
        def waiter():
            yield sim.timeout(1.0)  # ensure work began
            yield from latch.drained()
            finished.append(sim.now)
        sim.process(work())
        sim.process(waiter())
        sim.run()
        assert finished == [5.0]

    def test_drained_with_no_work_returns_immediately(self):
        sim = Simulator()
        latch = WorkLatch(sim)
        finished = []
        def waiter():
            yield from latch.drained()
            finished.append(sim.now)
        sim.process(waiter())
        sim.run()
        assert finished == [0.0]

    def test_multiple_workers(self):
        sim = Simulator()
        latch = WorkLatch(sim)
        finished = []
        def work(delay):
            latch.begin()
            yield sim.timeout(delay)
            latch.done()
        def waiter():
            yield sim.timeout(0.5)
            yield from latch.drained()
            finished.append(sim.now)
        for delay in (1.0, 4.0, 2.0):
            sim.process(work(delay))
        sim.process(waiter())
        sim.run()
        assert finished == [4.0]
