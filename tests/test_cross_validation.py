"""Cross-validation: trace generator vs. machine engines vs. invariants.

Three independent layers of this codebase account for the same bytes:
the task builders (phase fractions), the trace generator (per-worker
records), and the machine engines (per-resource counters). These tests
pin them against each other — and use hypothesis to hammer the engines
with random programs, asserting conservation invariants hold for any
dataflow, not just the eight tasks.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import (
    ActiveDiskConfig,
    ClusterConfig,
    CostComponent,
    Phase,
    SMPConfig,
    TaskProgram,
    build_machine,
)
from repro.experiments import run_task
from repro.sim import Simulator
from repro.tracegen import trace_totals
from repro.workloads import build_program, registered_tasks

MB = 1_000_000
TINY = 1 / 256

ARCHS = {
    "active": ActiveDiskConfig,
    "cluster": ClusterConfig,
    "smp": SMPConfig,
}


@pytest.mark.parametrize("arch", sorted(ARCHS))
@pytest.mark.parametrize("task", sorted(registered_tasks()))
class TestTraceVsMachine:
    def test_disk_reads_match_trace(self, arch, task):
        config = ARCHS[arch](num_disks=8)
        program = build_program(task, config, TINY)
        result = run_task(config, task, TINY)
        expected = sum(
            trace_totals(program, w, 8)["read_bytes"] for w in range(8))
        assert result.extras["disk_bytes_read"] == pytest.approx(
            expected, rel=0.02)

    def test_frontend_bytes_match_trace(self, arch, task):
        config = ARCHS[arch](num_disks=8)
        program = build_program(task, config, TINY)
        result = run_task(config, task, TINY)
        expected = sum(
            trace_totals(program, w, 8)["frontend_bytes"]
            for w in range(8))
        assert result.extras["frontend_bytes"] == pytest.approx(
            expected, rel=0.02, abs=1024)


# -- hypothesis: random programs must conserve bytes everywhere ------------
phase_strategy = st.builds(
    Phase,
    name=st.just("p"),
    read_bytes_total=st.integers(min_value=1 * MB, max_value=32 * MB),
    cpu=st.just((CostComponent("work", 10.0),)),
    shuffle_fraction=st.floats(min_value=0.0, max_value=1.0,
                               allow_nan=False),
    recv=st.just((CostComponent("collect", 10.0),)),
    recv_write_fraction=st.floats(min_value=0.0, max_value=1.0,
                                  allow_nan=False),
    frontend_fraction=st.floats(min_value=0.0, max_value=0.2,
                                allow_nan=False),
    write_fraction=st.floats(min_value=0.0, max_value=1.0,
                             allow_nan=False),
    read_streams=st.integers(min_value=1, max_value=4),
)


class TestConservationProperties:
    @given(phase=phase_strategy,
           arch=st.sampled_from(sorted(ARCHS)),
           disks=st.sampled_from([2, 4, 8]))
    @settings(max_examples=30, deadline=None)
    def test_bytes_conserved_for_any_program(self, phase, arch, disks):
        config = ARCHS[arch](num_disks=disks)
        program = TaskProgram(task="random", phases=(phase,))
        sim = Simulator()
        machine = build_machine(sim, config)
        result = machine.run(program)

        total = phase.read_bytes_total
        block = config.io_request_bytes

        # Everything declared is read (within block rounding).
        assert result.extras["disk_bytes_read"] == pytest.approx(
            total, rel=0.02)

        # Writes = local write fraction + shuffled recv writes, within
        # per-worker rounding of one block each.
        expected_writes = (total * phase.write_fraction
                           + total * phase.shuffle_fraction
                           * phase.recv_write_fraction)
        workers = machine.worker_count
        assert abs(result.extras["disk_bytes_written"] - expected_writes) \
            <= 3 * workers * block * 0.01 + 2 * workers * 512 + \
            0.02 * expected_writes + workers

        # Front-end receives its fraction.
        assert result.extras["frontend_bytes"] == pytest.approx(
            total * phase.frontend_fraction, rel=0.02,
            abs=workers * 2)

        # The run terminated with a positive, finite clock.
        assert 0 < result.elapsed < 1e5

    @given(phase=phase_strategy)
    @settings(max_examples=15, deadline=None)
    def test_active_fc_bytes_bounded_by_traffic(self, phase):
        """FC traffic = shuffle (minus local share) + front-end bytes."""
        config = ActiveDiskConfig(num_disks=4)
        program = TaskProgram(task="random", phases=(phase,))
        sim = Simulator()
        machine = build_machine(sim, config)
        result = machine.run(program)
        total = phase.read_bytes_total
        block = config.io_request_bytes
        workers = 4
        # With a uniform destination cycle, (W-1)/W of the shuffle crosses
        # the loop; workers sending fewer batches than peers may route
        # everything off-node, so allow one block of slack per worker.
        uniform = (total * phase.shuffle_fraction * (workers - 1) / workers
                   + total * phase.frontend_fraction)
        upper = (total * phase.shuffle_fraction
                 + total * phase.frontend_fraction)
        slack = workers * block
        assert uniform - slack <= result.extras["fc_bytes"] <= upper + slack

    @given(phase=phase_strategy,
           arch=st.sampled_from(sorted(ARCHS)))
    @settings(max_examples=10, deadline=None)
    def test_determinism_for_any_program(self, phase, arch):
        config = ARCHS[arch](num_disks=4)
        program = TaskProgram(task="random", phases=(phase,))
        def once():
            sim = Simulator()
            return build_machine(sim, config).run(program).elapsed
        assert once() == once()

    @given(phases=st.lists(phase_strategy, min_size=2, max_size=4),
           arch=st.sampled_from(sorted(ARCHS)))
    @settings(max_examples=15, deadline=None)
    def test_multi_phase_programs_conserve_and_sequence(self, phases,
                                                        arch):
        """Random multi-phase programs: phases run in order, times sum,
        reads conserve per phase."""
        named = tuple(
            Phase(**{**phase.__dict__, "name": f"p{i}"})
            for i, phase in enumerate(phases))
        config = ARCHS[arch](num_disks=4)
        program = TaskProgram(task="multi", phases=named)
        sim = Simulator()
        result = build_machine(sim, config).run(program)
        assert [p.name for p in result.phases] == \
            [p.name for p in named]
        assert sum(p.elapsed for p in result.phases) == pytest.approx(
            result.elapsed, rel=1e-9)
        expected_reads = sum(p.read_bytes_total for p in named)
        assert result.extras["disk_bytes_read"] == pytest.approx(
            expected_reads, rel=0.02)
