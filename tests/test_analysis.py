"""Tests for the analytic bottleneck model and workload validation."""

import pytest

from repro.analysis import AnalyticEstimate, analyze, analyze_program
from repro.arch import (
    ActiveDiskConfig,
    ClusterConfig,
    CostComponent,
    Phase,
    SMPConfig,
    TaskProgram,
)
from repro.experiments import config_for, run_task
from repro.workloads import registered_tasks
from repro.workloads.validation import (
    measure_groupby_result,
    measure_join_volumes,
    measure_select_fraction,
    measure_sort_runs,
    measure_sort_shuffle,
)

SCALE = 1 / 64


class TestAnalyticModel:
    def test_rejects_unknown_config(self):
        program = TaskProgram(task="t", phases=(
            Phase(name="p", read_bytes_total=1),))
        with pytest.raises(TypeError):
            analyze_program(object(), program)

    @pytest.mark.parametrize("arch", ["active", "cluster", "smp"])
    @pytest.mark.parametrize("task", sorted(registered_tasks()))
    def test_agrees_with_simulator(self, arch, task):
        """The closed form stays within ~2x of the DES — the two built
        independently from the same physics."""
        config = config_for(arch, 64)
        analytic = analyze(config, task, SCALE).seconds
        simulated = run_task(config, task, SCALE).elapsed
        assert 0.45 < analytic / simulated < 1.35

    def test_smp_scans_are_interconnect_bound(self):
        estimate = analyze(config_for("smp", 128), "select", SCALE)
        assert estimate.bottlenecks == ("io_interconnect",)

    def test_active_scans_are_cpu_bound(self):
        estimate = analyze(config_for("active", 64), "select", SCALE)
        assert estimate.bottlenecks == ("disk_cpu",)

    def test_cluster_groupby_is_frontend_bound_at_scale(self):
        estimate = analyze(config_for("cluster", 128), "groupby", SCALE)
        assert estimate.bottlenecks == ("frontend_link",)

    def test_active_sort_becomes_interconnect_bound_at_128(self):
        at_64 = analyze(config_for("active", 64), "sort", SCALE)
        at_128 = analyze(config_for("active", 128), "sort", SCALE)
        assert at_128.phases[0].bottleneck == "interconnect"
        # Larger farm, same loop: the loop term is unchanged while the
        # CPU term halves, so the interconnect's dominance margin grows.
        def margin(estimate):
            demands = dict(estimate.phases[0].demands)
            return demands["interconnect"] / demands["disk_cpu"]
        assert margin(at_128) > 1.5 * margin(at_64)

    def test_restricted_mode_adds_relay_bottleneck(self):
        config = config_for("active", 64).restricted()
        estimate = analyze(config, "sort", SCALE)
        names = dict(estimate.phases[0].demands)
        assert "frontend_relay" in names
        assert estimate.phases[0].bottleneck == "frontend_relay"

    def test_render_mentions_bottleneck(self):
        estimate = analyze(config_for("smp", 64), "select", SCALE)
        assert "io_interconnect" in estimate.render()

    def test_estimates_scale_linearly(self):
        small = analyze(config_for("active", 64), "select", 1 / 128)
        big = analyze(config_for("active", 64), "select", 1 / 32)
        assert big.seconds == pytest.approx(4 * small.seconds, rel=0.02)


class TestWorkloadValidation:
    def test_select_measured_selectivity_near_one_percent(self):
        fraction = measure_select_fraction(count=100_000, payload=1_000,
                                           cut=10)
        assert fraction == pytest.approx(0.01, abs=0.003)

    def test_sort_crossing_fraction_matches_simulator_assumption(self):
        workers = 8
        measured = measure_sort_shuffle(count=20_000, workers=workers)
        expected = (workers - 1) / workers
        assert measured.crossing_fraction == pytest.approx(
            expected, abs=0.02)

    def test_sort_run_count_matches_memory_arithmetic(self):
        assert measure_sort_runs(count=10_000, run_records=256) == \
            (10_000 + 255) // 256

    def test_join_projection_ratio(self):
        volumes = measure_join_volumes()
        assert volumes["projected"] == pytest.approx(0.5)

    def test_join_output_order_of_magnitude(self):
        """With sparse 4-byte keys (the Table 2 shape) the measured
        output lands in the same order as the modelled 25 % of input."""
        volumes = measure_join_volumes(count=20_000, distinct=80_000)
        assert 0.005 < volumes["output"] < 0.8

    def test_groupby_result_fraction_shrinks_with_distinct(self):
        small = measure_groupby_result(distinct=100)
        large = measure_groupby_result(distinct=2_000)
        assert small < large
        # entry/tuple ratio bounds the fraction above.
        assert large <= 32 / 64 + 1e-9
