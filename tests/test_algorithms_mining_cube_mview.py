"""Tests for Apriori, the datacube and materialized-view maintenance."""

from itertools import combinations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.algorithms import (
    apply_deltas,
    association_rules,
    build_view,
    compute_cube,
    cube_group_by,
    frequent_itemsets,
    maintain_view,
    make_cube_tuples,
    make_relation,
    make_transactions,
    partition_deltas,
    support_counts,
)


def brute_force_support(transactions, itemset):
    itemset = set(itemset)
    return sum(1 for t in transactions if itemset.issubset(t))


class TestApriori:
    def test_minsup_validation(self):
        with pytest.raises(ValueError):
            frequent_itemsets([(1, 2)], minsup=0.0)

    def test_singleton_supports_exact(self):
        transactions = make_transactions(500, 50, seed=1)
        itemsets = frequent_itemsets(transactions, minsup=0.05, max_size=1)
        for itemset, count in itemsets.items():
            assert count == brute_force_support(transactions, itemset)

    def test_all_frequent_itemsets_meet_threshold(self):
        transactions = make_transactions(400, 40, seed=2)
        minsup = 0.05
        itemsets = frequent_itemsets(transactions, minsup)
        threshold = minsup * len(transactions)
        assert itemsets, "hot set should produce frequent itemsets"
        for count in itemsets.values():
            assert count >= threshold

    def test_apriori_property_subsets_frequent(self):
        transactions = make_transactions(400, 40, seed=3)
        itemsets = frequent_itemsets(transactions, minsup=0.04)
        for itemset in itemsets:
            for size in range(1, len(itemset)):
                for subset in combinations(itemset, size):
                    assert subset in itemsets

    def test_counts_match_bruteforce(self):
        transactions = make_transactions(300, 30, seed=4)
        itemsets = frequent_itemsets(transactions, minsup=0.05)
        for itemset, count in itemsets.items():
            assert count == brute_force_support(transactions, itemset)

    def test_support_counts_helper(self):
        transactions = [(1, 2, 3), (1, 2), (2, 3), (1, 3)]
        counts = support_counts(transactions, [(1, 2), (2, 3)])
        assert counts[(1, 2)] == 2
        assert counts[(2, 3)] == 2

    def test_rules_confidence(self):
        transactions = make_transactions(500, 20, seed=5)
        itemsets = frequent_itemsets(transactions, minsup=0.05)
        rules = association_rules(itemsets, min_confidence=0.6)
        for antecedent, consequent, confidence in rules:
            whole = tuple(sorted(antecedent + consequent))
            assert confidence == pytest.approx(
                itemsets[whole] / itemsets[antecedent])
            assert confidence >= 0.6

    @given(st.integers(min_value=10, max_value=200),
           st.integers(min_value=3, max_value=30),
           st.integers(min_value=0, max_value=20))
    @settings(max_examples=25, deadline=None)
    def test_frequency_property(self, count, items, seed):
        transactions = make_transactions(count, items, seed=seed)
        itemsets = frequent_itemsets(transactions, minsup=0.1)
        threshold = 0.1 * count
        for itemset, support in itemsets.items():
            assert support >= threshold
            assert support == brute_force_support(transactions, itemset)


class TestDatacube:
    def test_fifteen_group_bys(self):
        tuples = make_cube_tuples(500, [8, 6, 4, 3], seed=6)
        cube = compute_cube(tuples)
        assert len(cube) == 15

    def test_every_group_by_preserves_total(self):
        tuples = make_cube_tuples(800, [8, 6, 4, 3], seed=7)
        total = int(tuples.measure.sum())
        for group_by in compute_cube(tuples).values():
            assert sum(group_by.values()) == total

    def test_group_by_matches_direct_computation(self):
        tuples = make_cube_tuples(600, [5, 4, 3, 2], seed=8)
        cube = compute_cube(tuples)
        direct = cube_group_by(tuples, [1, 3])
        assert cube[(1, 3)] == direct

    def test_rollup_consistency(self):
        """A child's groups must aggregate its parent's groups."""
        tuples = make_cube_tuples(400, [6, 5, 4, 3], seed=9)
        cube = compute_cube(tuples)
        parent = cube[(0, 1)]
        child = cube[(0,)]
        recomputed = {}
        for (d0, _), value in parent.items():
            recomputed[(d0,)] = recomputed.get((d0,), 0) + value
        assert recomputed == child

    def test_cardinality_bounds(self):
        cards = [5, 4, 3, 2]
        tuples = make_cube_tuples(1000, cards, seed=10)
        cube = compute_cube(tuples)
        for attrs, group_by in cube.items():
            bound = 1
            for a in attrs:
                bound *= cards[a]
            assert len(group_by) <= bound

    def test_empty_attribute_set_rejected(self):
        tuples = make_cube_tuples(10, [2, 2, 2, 2])
        with pytest.raises(ValueError):
            cube_group_by(tuples, [])


class TestMaterializedView:
    def test_view_matches_groupby(self):
        base = make_relation(1000, 30, seed=11)
        view = build_view(base)
        assert sum(view.values()) == int(base.value.sum())

    def test_partition_routing(self):
        deltas = [(k, 1) for k in range(20)]
        parts = partition_deltas(deltas, owners=4)
        for owner, batch in enumerate(parts):
            assert all(k % 4 == owner for k, _ in batch)
        assert sum(len(b) for b in parts) == 20

    def test_partition_validation(self):
        with pytest.raises(ValueError):
            partition_deltas([], owners=0)

    def test_apply_deltas(self):
        view = {1: 10, 2: 20}
        refreshed = apply_deltas(view, [(1, 5), (3, 7)])
        assert refreshed == {1: 15, 2: 20, 3: 7}
        assert view == {1: 10, 2: 20}  # input untouched

    def test_maintenance_equals_rebuild(self):
        """Incremental maintenance must equal recomputing from scratch."""
        base = make_relation(800, 25, seed=12)
        deltas = [(int(k), int(v)) for k, v in
                  zip(base.key[:50], base.value[:50])]
        maintained = maintain_view(base, deltas, owners=4)
        # Rebuild: base plus a relation holding the deltas again.
        combined = {}
        for key, value in build_view(base).items():
            combined[key] = combined.get(key, 0) + value
        for key, change in deltas:
            combined[key] = combined.get(key, 0) + change
        assert maintained == combined

    @given(st.integers(min_value=0, max_value=500),
           st.integers(min_value=1, max_value=40),
           st.integers(min_value=1, max_value=8),
           st.integers(min_value=0, max_value=30))
    @settings(max_examples=30, deadline=None)
    def test_maintenance_property(self, count, distinct, owners, seed):
        base = make_relation(count, distinct, seed=seed)
        deltas = [(k, k * 3 + 1) for k in range(distinct)]
        maintained = maintain_view(base, deltas, owners=owners)
        view = build_view(base)
        for key, change in deltas:
            assert maintained[key] == view.get(key, 0) + change
