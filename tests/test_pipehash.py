"""Tests for the PipeHash planner (the paper's Section 4.3 arithmetic)."""

import pytest

from repro.workloads import child_table_sizes, plan_pipehash

MB = 1_000_000
GB = 1_000_000_000

ROOT = 695 * MB
INPUT = 16 * GB


class TestChildSizes:
    def test_fourteen_children(self):
        children = child_table_sizes(ROOT)
        assert len(children) == 14

    def test_children_sum_matches_published_total(self):
        """The 14 non-root group-bys need ~2.3 GB (paper Section 4.3)."""
        total = sum(g.table_bytes for g in child_table_sizes(ROOT))
        assert total == pytest.approx(2.3 * GB, rel=0.05)

    def test_arity_structure(self):
        children = child_table_sizes(ROOT)
        by_arity = {}
        for child in children:
            by_arity.setdefault(child.arity, []).append(child)
        assert len(by_arity[3]) == 4
        assert len(by_arity[2]) == 6
        assert len(by_arity[1]) == 4

    def test_smaller_arity_smaller_tables(self):
        children = child_table_sizes(ROOT)
        sizes_by_arity = {c.arity: c.table_bytes for c in children}
        assert sizes_by_arity[1] < sizes_by_arity[2] < sizes_by_arity[3]
        assert sizes_by_arity[3] < ROOT


class TestPassPlanning:
    def test_invalid_memory_rejected(self):
        with pytest.raises(ValueError):
            plan_pipehash(INPUT, ROOT, aggregate_memory=0)

    def test_root_pass_scans_raw_input(self):
        plan = plan_pipehash(INPUT, ROOT, aggregate_memory=4 * GB)
        assert plan.passes[0].scans_raw_input
        assert plan.passes[0].read_bytes == INPUT
        assert not any(p.scans_raw_input for p in plan.passes[1:])

    def test_paper_64_disk_thresholds(self):
        """64 disks x 32 MB = 2 GB -> 3 passes; x 64 MB = 4 GB -> 2."""
        at_2gb = plan_pipehash(INPUT, ROOT, aggregate_memory=2 * GB)
        at_4gb = plan_pipehash(INPUT, ROOT, aggregate_memory=4 * GB)
        assert at_2gb.num_passes == 3
        assert at_4gb.num_passes == 2

    def test_paper_16_disk_spill(self):
        """16 disks x 32 MB = 512 MB < 695 MB root -> front-end spill;
        x 64 MB = 1 GB -> no spill."""
        spilled = plan_pipehash(INPUT, ROOT, aggregate_memory=512 * MB)
        fits = plan_pipehash(INPUT, ROOT, aggregate_memory=1 * GB)
        assert spilled.total_spill_bytes > 0
        assert fits.total_spill_bytes == 0

    def test_spill_volume_is_amplified(self):
        plan = plan_pipehash(INPUT, ROOT, aggregate_memory=512 * MB)
        assert plan.passes[0].spill_bytes > 5 * ROOT

    def test_all_group_bys_scheduled_exactly_once(self):
        plan = plan_pipehash(INPUT, ROOT, aggregate_memory=1 * GB)
        scheduled = [g.attributes for p in plan.passes for g in p.group_bys]
        assert len(scheduled) == 15
        assert len(set(scheduled)) == 15

    def test_each_child_pass_fits_memory(self):
        for memory in (512 * MB, 1 * GB, 2 * GB, 4 * GB):
            plan = plan_pipehash(INPUT, ROOT, aggregate_memory=memory)
            for pass_plan in plan.passes[1:]:
                total = sum(g.table_bytes for g in pass_plan.group_bys)
                assert total <= memory

    def test_more_memory_never_more_passes(self):
        passes = [plan_pipehash(INPUT, ROOT, m).num_passes
                  for m in (512 * MB, 1 * GB, 2 * GB, 4 * GB, 8 * GB)]
        assert passes == sorted(passes, reverse=True)

    def test_write_volume_equals_table_sizes(self):
        plan = plan_pipehash(INPUT, ROOT, aggregate_memory=4 * GB)
        written = sum(p.write_bytes for p in plan.passes)
        tables = ROOT + sum(g.table_bytes for g in child_table_sizes(ROOT))
        assert written == tables
