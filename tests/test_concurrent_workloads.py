"""Tests for concurrent (mixed-workload) execution on one machine."""

import pytest

from repro.arch import (
    ActiveDiskConfig,
    ClusterConfig,
    SMPConfig,
    build_machine,
)
from repro.sim import Simulator
from repro.workloads import build_program

TINY = 1 / 256

CONFIGS = [ActiveDiskConfig(num_disks=8), ClusterConfig(num_disks=8),
           SMPConfig(num_disks=8)]
IDS = ["active", "cluster", "smp"]


def run_concurrent(config, tasks, scale=TINY):
    sim = Simulator()
    machine = build_machine(sim, config)
    programs = [build_program(task, config, scale) for task in tasks]
    return machine.run_concurrent(programs)


def run_single(config, task, scale=TINY):
    sim = Simulator()
    machine = build_machine(sim, config)
    return machine.run(build_program(task, config, scale))


@pytest.mark.parametrize("config", CONFIGS, ids=IDS)
class TestConcurrent:
    def test_empty_rejected(self, config):
        sim = Simulator()
        machine = build_machine(sim, config)
        with pytest.raises(ValueError):
            machine.run_concurrent([])

    def test_single_program_equivalent_to_run(self, config):
        alone = run_single(config, "select")
        concurrent = run_concurrent(config, ["select"])[0]
        assert concurrent.elapsed == pytest.approx(alone.elapsed, rel=0.01)

    def test_two_programs_both_complete(self, config):
        results = run_concurrent(config, ["select", "aggregate"])
        assert len(results) == 2
        assert {r.task for r in results} == {"select", "aggregate"}
        assert all(r.elapsed > 0 for r in results)

    def test_contention_slows_both(self, config):
        alone = run_single(config, "select").elapsed
        shared = run_concurrent(config, ["select", "select"])
        # Two identical scans over the same media: each takes notably
        # longer than running alone (media/CPU contention), but less
        # than strictly double (some overlap in non-bottleneck stages).
        for result in shared:
            assert result.elapsed > 1.2 * alone
            assert result.elapsed < 3.0 * alone

    def test_phase_results_kept_separate(self, config):
        results = run_concurrent(config, ["select", "sort"])
        select = next(r for r in results if r.task == "select")
        sort = next(r for r in results if r.task == "sort")
        assert len(select.phases) == 1
        assert len(sort.phases) == 2
        assert select.phases[0].busy  # buckets attributed, not empty

    def test_byte_accounting_sums(self, config):
        results = run_concurrent(config, ["select", "aggregate"])
        total_read = results[0].extras["disk_bytes_read"]
        # extras come from the shared machine: both programs' reads.
        select_bytes = build_program(
            "select", config, TINY).total_read_bytes()
        aggregate_bytes = build_program(
            "aggregate", config, TINY).total_read_bytes()
        assert total_read == pytest.approx(
            select_bytes + aggregate_bytes, rel=0.02)


class TestMixedWorkloadShape:
    def test_short_query_finishes_before_long_one(self):
        config = ActiveDiskConfig(num_disks=8)
        results = run_concurrent(config, ["aggregate", "sort"])
        aggregate = next(r for r in results if r.task == "aggregate")
        sort = next(r for r in results if r.task == "sort")
        assert aggregate.elapsed < sort.elapsed

    def test_scan_interference_on_smp_interconnect(self):
        """On the SMP both scans share one loop: running two roughly
        doubles each scan's time (bandwidth is the binding resource)."""
        config = SMPConfig(num_disks=16)
        alone = run_single(config, "select", scale=1 / 64).elapsed
        both = run_concurrent(config, ["select", "select"], scale=1 / 64)
        for result in both:
            assert result.elapsed > 1.6 * alone
