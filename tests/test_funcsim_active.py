"""Tests for the Active Disk functional co-simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.funcsim import FunctionalActiveDisks
from repro.workloads.algorithms import groupby_sum, make_relation, select

MB = 1_000_000


class TestSelect:
    def test_matches_reference(self):
        records = make_relation(5_000, 100, seed=1, payload=1_000)
        farm = FunctionalActiveDisks(disks=8)
        output, _ = farm.select(records, lambda r: r.value < 50)
        reference = select(records, lambda r: r.value < 50)
        assert sorted(output.value.tolist()) == \
            sorted(reference.value.tolist())

    def test_only_matches_cross_the_loop(self):
        records = make_relation(20_000, 100, seed=2, payload=1_000)
        farm = FunctionalActiveDisks(disks=8)
        output, stats = farm.select(records, lambda r: r.value < 10)
        assert stats.bytes_exchanged <= output.nbytes + 1024
        assert stats.bytes_exchanged < 0.05 * records.nbytes

    def test_media_time_charged(self):
        records = make_relation(10_000, 50, seed=3)
        farm = FunctionalActiveDisks(disks=4)
        farm.select(records, lambda r: r.value < 100)
        assert all(d.bytes_read > 0 for d in farm.drives)
        assert all(d.busy.total() > 0 for d in farm.drives)

    def test_empty_input(self):
        records = make_relation(0, 10)
        farm = FunctionalActiveDisks(disks=4)
        output, stats = farm.select(records, lambda r: r.value < 5)
        assert len(output) == 0
        assert stats.bytes_exchanged == 0

    def test_more_disks_faster(self):
        records = make_relation(40_000, 100, seed=4)
        def elapsed(disks):
            farm = FunctionalActiveDisks(disks=disks)
            _, stats = farm.select(records, lambda r: r.value < 5)
            return stats.elapsed
        assert elapsed(8) < 0.6 * elapsed(2)

    def test_validation(self):
        with pytest.raises(ValueError):
            FunctionalActiveDisks(disks=0)


class TestGroupBy:
    def test_matches_reference(self):
        records = make_relation(6_000, 64, seed=5)
        farm = FunctionalActiveDisks(disks=8)
        groups, _ = farm.groupby_sum(records)
        assert groups == groupby_sum(records)

    def test_loop_carries_partial_tables_not_data(self):
        records = make_relation(30_000, 32, seed=6)
        farm = FunctionalActiveDisks(disks=8)
        _, stats = farm.groupby_sum(records)
        # 8 partial tables of <= 32 groups x 16 B each.
        assert stats.bytes_exchanged <= 8 * 32 * 16
        assert stats.bytes_exchanged < 0.05 * records.nbytes

    @given(st.integers(min_value=0, max_value=3_000),
           st.integers(min_value=1, max_value=80),
           st.integers(min_value=1, max_value=8),
           st.integers(min_value=0, max_value=20))
    @settings(max_examples=15, deadline=None)
    def test_groupby_property(self, count, distinct, disks, seed):
        records = make_relation(count, distinct, seed=seed)
        farm = FunctionalActiveDisks(disks=disks)
        groups, _ = farm.groupby_sum(records)
        assert groups == groupby_sum(records)


class TestInterconnectSensitivity:
    def test_slow_loop_only_hurts_when_results_are_big(self):
        records = make_relation(30_000, 100, seed=7, payload=1_000)
        def run(rate, cut):
            farm = FunctionalActiveDisks(disks=8,
                                         interconnect_rate=rate)
            _, stats = farm.select(records, lambda r: r.value < cut)
            return stats.elapsed
        # 1% selectivity: a 100x slower loop costs a few percent.
        assert run(2 * MB, 10) == pytest.approx(run(200 * MB, 10),
                                                rel=0.3)
        # 100% selectivity: a 100x slower loop is felt.
        assert run(2 * MB, 10_000) > 1.5 * run(200 * MB, 10_000)
