"""Benchmark: the composite query suite across architectures.

Beyond the paper: composite scan/filter/aggregate/sort pipelines (TPC-D
flavoured shapes) compiled by the query planner and run on all three
machines. The Active Disk advantage should track each query's data
reduction: the earlier and harder a query cuts its volume, the bigger
the win over the interconnect-starved SMP.
"""

import pytest

from repro.arch import build_machine
from repro.experiments import config_for, render_table
from repro.sim import Simulator
from repro.workloads.queries import compile_plan
from repro.workloads.query_suite import QUERY_SUITE
from conftest import BENCH_SCALE

DISKS = 64


def run_query(name, arch):
    config = config_for(arch, DISKS)
    program = compile_plan(QUERY_SUITE[name], config, BENCH_SCALE)
    sim = Simulator()
    return build_machine(sim, config).run(program).elapsed


@pytest.fixture(scope="module")
def results():
    return {name: {arch: run_query(name, arch)
                   for arch in ("active", "cluster", "smp")}
            for name in QUERY_SUITE}


def test_query_suite(benchmark, save_report, results):
    rows = [
        (name,
         f"{r['active']:.2f}s",
         f"{r['cluster'] / r['active']:.2f}",
         f"{r['smp'] / r['active']:.2f}")
        for name, r in results.items()
    ]
    save_report("query_suite", render_table(
        f"Composite query suite, {DISKS} disks "
        f"(normalized to Active Disks; scale={BENCH_SCALE:g})",
        ("query", "active", "cluster", "smp"), rows))

    benchmark.pedantic(lambda: run_query("revenue-band", "active"),
                       rounds=1, iterations=1)

    for name, r in results.items():
        # Every query scans the fact table, so the SMP's starved loop
        # loses on all of them at 64 disks.
        assert r["smp"] > 2.0 * r["active"], name
        # And the cluster stays in the same league as Active Disks.
        assert 0.5 < r["cluster"] / r["active"] < 2.0, name
