"""Ablation: key skew in the repartitioning tasks.

The paper's sort and join use uniformly distributed keys, so every
shuffle is perfectly balanced. This bench skews the shuffle's
destination distribution (Zipf) and measures how the three architectures
degrade — partitioned parallelism's classic weakness, hidden by the
uniform datasets.
"""

import pytest

from repro.experiments import config_for, run_task
from repro.sim import Simulator
from repro.arch import build_machine
from repro.workloads import build_program
from repro.workloads.skew import imbalance_factor, skewed_variant
from conftest import BENCH_SCALE

DISKS = 64
THETAS = (0.0, 0.5, 1.0)


def skewed_elapsed(arch, task, theta):
    config = config_for(arch, DISKS)
    program = build_program(task, config, BENCH_SCALE)
    if theta > 0:
        program = skewed_variant(program, theta)
    sim = Simulator()
    return build_machine(sim, config).run(program).elapsed


def test_skew_sensitivity(benchmark, save_report):
    table = {}
    for arch in ("active", "cluster", "smp"):
        table[arch] = [skewed_elapsed(arch, "sort", theta)
                       for theta in THETAS]
    lines = [f"Ablation: Zipf key skew, sort, {DISKS} disks "
             f"(hot-partition bound: "
             + ", ".join(f"theta={t:g} -> {imbalance_factor(DISKS, t):.1f}x"
                         for t in THETAS) + ")"]
    for arch, values in table.items():
        cells = "  ".join(
            f"theta={theta:g}: {value:6.2f}s ({value / values[0]:4.2f}x)"
            for theta, value in zip(THETAS, values))
        lines.append(f"  {arch:8s} {cells}")
    save_report("ablation_skew", "\n".join(lines))

    benchmark.pedantic(
        lambda: skewed_elapsed("active", "sort", 0.5),
        rounds=1, iterations=1)

    for arch, values in table.items():
        # Monotone degradation with skew...
        assert values[0] <= values[1] * 1.02 <= values[2] * 1.04
        # ...but far below the hot-partition bound: pipelining hides
        # part of the imbalance while other resources still bind.
        assert values[2] / values[0] < imbalance_factor(DISKS, 1.0)
    # theta=1 must hurt someone measurably.
    assert any(values[2] > 1.15 * values[0] for values in table.values())
