"""Benchmark: regenerate Table 1 (configuration cost evolution)."""

from repro.arch import cost_table, smp_cost_estimate
from repro.experiments import run_table1


def test_table1_costs(benchmark, save_report):
    text = benchmark.pedantic(run_table1, args=(64,), rounds=3,
                              iterations=1)
    save_report("table1_costs", text)

    rows = cost_table(64)
    # The paper's claim: Active Disks consistently about half the
    # cluster's price, and the SMP an order of magnitude above both.
    for _, active, cluster, ratio in rows:
        assert 0.35 < ratio < 0.55
    assert smp_cost_estimate(64) > 10 * rows[-1][1]
