"""Ablation: technology evolution of the disk + embedded processor.

The paper's introduction argues Active Disks are attractive because "the
processing power will evolve as the disk drives evolve". This bench
sweeps drive generations (uniform mechanical/media speedups) against
embedded-CPU speeds on the compute-bound select scan, showing the two
must evolve together: faster media without a faster disk CPU buys
nothing once the scan is compute-bound, and vice versa.
"""

import pytest

from repro.arch import ActiveDiskConfig
from repro.disk import SEAGATE_ST39102, fast_variant
from repro.experiments import run_task
from conftest import BENCH_SCALE

DISKS = 32


def elapsed(drive_speedup=1.0, cpu_mhz=200.0):
    drive = (SEAGATE_ST39102 if drive_speedup == 1.0
             else fast_variant(SEAGATE_ST39102, drive_speedup))
    config = ActiveDiskConfig(num_disks=DISKS, drive=drive,
                              disk_cpu_mhz=cpu_mhz)
    return run_task(config, "select", BENCH_SCALE).elapsed


def test_technology_evolution(benchmark, save_report):
    cpu_points = (200.0, 400.0, 800.0)
    drive_points = (1.0, 2.0, 4.0)
    grid = {(d, c): elapsed(d, c) for d in drive_points
            for c in cpu_points}

    lines = [f"Ablation: drive-generation x embedded-CPU sweep "
             f"(select, {DISKS} disks)",
             "rows = drive speedup, cols = disk CPU MHz"]
    header = "        " + "  ".join(f"{int(c):>7d}" for c in cpu_points)
    lines.append(header)
    for d in drive_points:
        cells = "  ".join(f"{grid[(d, c)]:6.2f}s" for c in cpu_points)
        lines.append(f"  x{d:<4.1f} {cells}")
    save_report("ablation_evolution", "\n".join(lines))

    benchmark.pedantic(lambda: elapsed(2.0, 400.0), rounds=1, iterations=1)

    # Compute-bound baseline: doubling the CPU alone helps a lot...
    assert grid[(1.0, 400.0)] < 0.65 * grid[(1.0, 200.0)]
    # ...doubling the media alone helps little...
    assert grid[(2.0, 200.0)] > 0.85 * grid[(1.0, 200.0)]
    # ...and the balanced upgrade beats either lopsided one.
    assert grid[(2.0, 400.0)] <= min(grid[(4.0, 200.0)],
                                     grid[(1.0, 400.0)]) * 1.01
