"""Benchmark: regenerate Figure 3 (sort breakdown on Active Disks)."""

import pytest

from repro.experiments import run_fig3
from conftest import BENCH_SCALE


@pytest.fixture(scope="module")
def fig3():
    return run_fig3(sizes=(16, 32, 64, 128), scale=BENCH_SCALE)


def test_fig3_sweep(benchmark, save_report, save_rows, fig3):
    benchmark.pedantic(
        lambda: run_fig3(sizes=(16,), scale=BENCH_SCALE),
        rounds=1, iterations=1)
    save_report("fig3_sort_breakdown", fig3.render())
    from repro.experiments import fig3_rows
    save_rows("fig3_sort_breakdown", fig3_rows(fig3))


class TestFig3Shape:
    def test_sort_phase_dominates_all_configs(self, fig3):
        """Figure 3(a): the sort (repartitioning) phase dominates."""
        for size in fig3.sizes:
            p1, p2 = fig3.phase_elapsed(size, "base")
            assert p1 > p2

    def test_balanced_through_64_disks(self, fig3):
        """Figure 3(b): idle time small up to 64 disks."""
        for size in (16, 32, 64):
            assert fig3.breakdown(size)["idle"] < 0.30

    def test_idle_dominates_at_128(self, fig3):
        assert fig3.breakdown(128)["idle"] > 0.45

    def test_fast_disk_small_difference(self, fig3):
        """"upgrading the disks makes little difference"."""
        for size in fig3.sizes:
            base = sum(fig3.phase_elapsed(size, "base"))
            fast = sum(fig3.phase_elapsed(size, "fastdisk"))
            assert fast > 0.85 * base

    def test_fast_io_major_impact_only_at_128(self, fig3):
        """"upgrading the I/O interconnect has a major impact" at 128,
        "only a small difference" up to 64."""
        base_64 = sum(fig3.phase_elapsed(64, "base"))
        fast_64 = sum(fig3.phase_elapsed(64, "fastio"))
        assert fast_64 > 0.85 * base_64
        base_128 = sum(fig3.phase_elapsed(128, "base"))
        fast_128 = sum(fig3.phase_elapsed(128, "fastio"))
        assert fast_128 < 0.8 * base_128

    def test_fast_io_removes_idle_at_128(self, fig3):
        assert (fig3.breakdown(128, "fastio")["idle"]
                < fig3.breakdown(128, "base")["idle"] - 0.15)
