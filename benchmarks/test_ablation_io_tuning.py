"""Ablation: the paper's software tuning choices (Section 3).

Verifies that the tuning the paper applies — large (256 KB) requests and
deep (4) request queues — actually pays off in the model, and that the
SMP's split read/write disk groups for sort beat interleaved groups.
"""

import pytest

from repro.arch import ActiveDiskConfig, Phase, SMPConfig, TaskProgram, build_machine
from repro.arch.program import CostComponent
from repro.experiments import run_task
from repro.sim import Simulator
from conftest import BENCH_SCALE

KB = 1024


def select_elapsed(request_bytes, queue_depth):
    config = ActiveDiskConfig(num_disks=16,
                              io_request_bytes=request_bytes,
                              queue_depth=queue_depth)
    return run_task(config, "select", BENCH_SCALE).elapsed


def smp_sort_elapsed(split):
    """SMP shuffle+write phase with or without split disk groups."""
    config = SMPConfig(num_disks=16)
    program = TaskProgram(task="sortish", phases=(
        Phase(name="move", read_bytes_total=512 * 1_000_000,
              cpu=(CostComponent("partition", 10.0),),
              shuffle_fraction=1.0,
              recv=(CostComponent("append", 10.0),),
              recv_write_fraction=1.0,
              split_disk_groups=split),))
    sim = Simulator()
    return build_machine(sim, config).run(program).elapsed


def test_io_tuning(benchmark, save_report):
    small_requests = select_elapsed(32 * KB, 4)
    shallow_queue = select_elapsed(256 * KB, 1)
    tuned = select_elapsed(256 * KB, 4)
    interleaved = smp_sort_elapsed(split=False)
    split = smp_sort_elapsed(split=True)

    lines = [
        "Ablation: I/O software tuning (16 disks)",
        f"select, 32 KB requests, depth 4 : {small_requests:7.2f}s",
        f"select, 256 KB requests, depth 1: {shallow_queue:7.2f}s",
        f"select, 256 KB requests, depth 4: {tuned:7.2f}s  (paper tuning)",
        f"SMP shuffle, interleaved groups : {interleaved:7.2f}s",
        f"SMP shuffle, split r/w groups   : {split:7.2f}s  (paper tuning)",
    ]
    save_report("ablation_io_tuning", "\n".join(lines))

    benchmark.pedantic(lambda: select_elapsed(256 * KB, 4),
                       rounds=1, iterations=1)

    # The paper's tuning must never lose to the untuned settings.
    assert tuned <= shallow_queue * 1.02
    assert tuned <= small_requests * 1.02
    assert split <= interleaved * 1.05
