"""Ablation: the FibreSwitch fabric the paper's conclusions recommend.

"To scale to configurations larger than the ones examined in this paper,
we recommend a more aggressive interconnect (e.g., multiple Fibre
Channel loops connected by a FibreSwitch)." — Section 4.2 / 6.

This bench runs the interconnect-bound case (sort at 128 disks) on the
dual loop and on FibreSwitch fabrics of growing segment counts, showing
the recommendation pays off exactly where the dual loop saturates.
"""

import pytest

from repro.arch import ActiveDiskConfig
from repro.experiments import run_task
from conftest import BENCH_SCALE


def sort_elapsed(disks, segments=None):
    config = ActiveDiskConfig(num_disks=disks)
    if segments is not None:
        config = config.with_fibreswitch(segments)
    return run_task(config, "sort", BENCH_SCALE).elapsed


def test_fibreswitch_scaling(benchmark, save_report):
    rows = {}
    for disks in (64, 128):
        base = sort_elapsed(disks)
        rows[disks] = [("dual loop (200 MB/s)", base)]
        for segments in (4, 8):
            rows[disks].append(
                (f"fibreswitch x{segments} (~{segments * 100} MB/s)",
                 sort_elapsed(disks, segments)))
    lines = ["Ablation: FibreSwitch vs dual FC-AL (external sort)"]
    for disks, entries in rows.items():
        lines.append(f"{disks} disks:")
        base = entries[0][1]
        for label, value in entries:
            lines.append(f"  {label:28s} {value:7.2f}s "
                         f"({base / value:4.2f}x vs dual loop)")
    save_report("ablation_fibreswitch", "\n".join(lines))

    benchmark.pedantic(lambda: sort_elapsed(64, 4), rounds=1, iterations=1)

    # At 128 disks (loop saturated) an 8-segment switch must win big;
    # at 64 disks (loop sufficient, per the paper) gains stay modest.
    at_128 = dict(rows[128])
    at_64 = dict(rows[64])
    assert at_128["fibreswitch x8 (~800 MB/s)"] < \
        0.8 * at_128["dual loop (200 MB/s)"]
    gain_64 = (at_64["dual loop (200 MB/s)"]
               / at_64["fibreswitch x8 (~800 MB/s)"])
    gain_128 = (at_128["dual loop (200 MB/s)"]
                / at_128["fibreswitch x8 (~800 MB/s)"])
    assert gain_128 > gain_64
