"""Ablation: NASD-style Ethernet fabric vs. the FC loop for Active Disks.

The paper's related work contrasts Active Disks with network-attached
secure disks (Gibson et al.). This bench swaps the Active Disk fabric:
dual FC-AL (fat per-link, fixed bisection) against a switched-Ethernet
fat-tree (thin per-link, scaling bisection) — and shows the trade-off
flip at 128 disks: shuffles prefer the fat-tree, front-end-heavy results
prefer the loop.
"""

import pytest

from repro.arch import ActiveDiskConfig
from repro.experiments import run_task, render_table
from conftest import BENCH_SCALE

TASKS = ("sort", "groupby", "select", "aggregate")


def elapsed(disks, task, ethernet):
    config = ActiveDiskConfig(num_disks=disks)
    if ethernet:
        config = config.with_ethernet()
    return run_task(config, task, BENCH_SCALE).elapsed


def test_nasd_fabric(benchmark, save_report):
    rows = []
    ratios = {}
    for disks in (16, 128):
        for task in TASKS:
            fc = elapsed(disks, task, ethernet=False)
            eth = elapsed(disks, task, ethernet=True)
            ratios[(disks, task)] = eth / fc
            rows.append((f"{task}@{disks}", f"{fc:.2f}s", f"{eth:.2f}s",
                         f"{eth / fc:.2f}x"))
    save_report("ablation_nasd_fabric", render_table(
        "Ablation: dual FC-AL vs switched-Ethernet (NASD-style) fabric",
        ("task@disks", "FC loop", "ethernet", "eth/FC"), rows))

    benchmark.pedantic(lambda: elapsed(16, "select", True),
                       rounds=1, iterations=1)

    # The trade-off flips with scale and task shape:
    assert ratios[(128, "sort")] < 0.85      # scaling bisection wins
    assert ratios[(128, "groupby")] > 1.5    # thin front-end pipe loses
    assert ratios[(16, "sort")] == pytest.approx(1.0, abs=0.2)
    assert ratios[(128, "aggregate")] == pytest.approx(1.0, abs=0.1)
