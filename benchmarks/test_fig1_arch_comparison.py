"""Benchmark: regenerate Figure 1 (eight tasks x three architectures x
16/32/64/128 disks, normalized to Active Disks)."""

import pytest

from repro.experiments import run_fig1
from conftest import BENCH_SCALE

SIZES = (16, 32, 64, 128)


@pytest.fixture(scope="module")
def fig1():
    return run_fig1(sizes=SIZES, scale=BENCH_SCALE)


def test_fig1_full_sweep(benchmark, save_report, save_rows, fig1):
    # Timed at a smaller scope (one 16-disk select triple) so the
    # benchmark number is meaningful; the full sweep is computed once.
    benchmark.pedantic(
        lambda: run_fig1(sizes=(16,), tasks=("select",),
                         scale=BENCH_SCALE),
        rounds=1, iterations=1)
    save_report("fig1_arch_comparison", fig1.render())
    from repro.experiments import fig1_rows
    save_rows("fig1_arch_comparison", fig1_rows(fig1))


class TestFig1Shape:
    def test_16_disk_configs_comparable(self, fig1):
        for task in fig1.tasks:
            for arch in ("cluster", "smp"):
                assert 0.4 < fig1.normalized(task, arch, 16) < 1.8

    def test_smp_ratio_grows_with_configuration_size(self, fig1):
        for task in fig1.tasks:
            r32 = fig1.normalized(task, "smp", 32)
            r128 = fig1.normalized(task, "smp", 128)
            assert r128 > r32

    def test_smp_3_to_10_fold_at_128(self, fig1):
        ratios = [fig1.normalized(task, "smp", 128) for task in fig1.tasks]
        assert all(r > 2.8 for r in ratios)
        assert max(r for r in ratios) < 13

    def test_select_aggregate_largest_smp_gap(self, fig1):
        scan_ratio = min(fig1.normalized("select", "smp", 128),
                         fig1.normalized("aggregate", "smp", 128))
        repart_ratio = max(fig1.normalized("sort", "smp", 128),
                           fig1.normalized("join", "smp", 128))
        assert scan_ratio > repart_ratio

    def test_groupby_is_the_cluster_outlier(self, fig1):
        groupby = fig1.normalized("groupby", "cluster", 128)
        others = [fig1.normalized(task, "cluster", 128)
                  for task in fig1.tasks if task != "groupby"]
        assert groupby > 1.5
        assert groupby > max(others)
