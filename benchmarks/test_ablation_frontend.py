"""Ablation: front-end processor speed (paper Section 2.1 variant).

The paper configures a 1 GHz front-end alternative. Tasks that funnel
volume through the front-end (group-by, restricted-mode shuffles) should
benefit; media-side tasks should not care.
"""

import pytest

from repro.arch import ActiveDiskConfig
from repro.experiments import run_task
from conftest import BENCH_SCALE


def elapsed(task, disks=64, frontend_mhz=450.0, restricted=False):
    config = ActiveDiskConfig(num_disks=disks).with_frontend_mhz(
        frontend_mhz)
    if restricted:
        config = config.restricted()
    return run_task(config, task, BENCH_SCALE).elapsed


def test_frontend_scaling(benchmark, save_report):
    rows = []
    for task, restricted in (("select", False), ("groupby", False),
                             ("sort", True)):
        base = elapsed(task, restricted=restricted)
        fast = elapsed(task, frontend_mhz=1000.0, restricted=restricted)
        rows.append((task, "restricted" if restricted else "direct",
                     base, fast, base / fast))
    lines = ["Ablation: 450 MHz vs 1 GHz front-end (64 disks)",
             "task      mode        450MHz    1GHz    speedup"]
    for task, mode, base, fast, speedup in rows:
        lines.append(f"{task:9s} {mode:10s} {base:7.2f}s {fast:6.2f}s "
                     f"{speedup:5.2f}x")
    save_report("ablation_frontend", "\n".join(lines))

    benchmark.pedantic(lambda: elapsed("select"), rounds=1, iterations=1)

    by_task = {(task, mode): speedup
               for task, mode, _, _, speedup in rows}
    # Media-side scans are front-end-insensitive.
    assert by_task[("select", "direct")] == pytest.approx(1.0, abs=0.03)
    # The restricted-mode relay is front-end CPU heavy.
    assert by_task[("sort", "restricted")] > 1.1
