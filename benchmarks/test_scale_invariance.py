"""Meta-benchmark: the scaling methodology itself.

DESIGN.md claims normalized results are invariant under the dataset
scale because memory-dependent algorithm parameters scale alongside the
data. This bench measures the same Figure-1 cells at two scales a factor
of 4 apart and asserts the normalized ratios agree — the empirical
license for running every other benchmark at 1/32 scale.
"""

import pytest

from repro.experiments import run_fig1
from conftest import BENCH_SCALE

TASKS = ("select", "sort", "groupby")
SIZES = (16, 64)


def test_scale_invariance(benchmark, save_report):
    coarse = run_fig1(sizes=SIZES, tasks=TASKS, scale=BENCH_SCALE / 4)
    fine = run_fig1(sizes=SIZES, tasks=TASKS, scale=BENCH_SCALE)

    lines = ["Meta: normalized ratios at two scales "
             f"({BENCH_SCALE / 4:g} vs {BENCH_SCALE:g})"]
    drifts = []
    for size in SIZES:
        for task in TASKS:
            for arch in ("cluster", "smp"):
                a = coarse.normalized(task, arch, size)
                b = fine.normalized(task, arch, size)
                drift = abs(a - b) / b
                drifts.append(drift)
                lines.append(f"  {task:8s}@{size:<3d} {arch:8s} "
                             f"{a:5.2f} vs {b:5.2f}  "
                             f"(drift {drift:5.1%})")
    save_report("scale_invariance", "\n".join(lines))

    benchmark.pedantic(
        lambda: run_fig1(sizes=(16,), tasks=("select",),
                         scale=BENCH_SCALE / 4),
        rounds=1, iterations=1)

    # Ratios drift only through fixed per-request/per-message overheads,
    # which loom larger at tiny scales (the worst cell is the cluster's
    # front-end-bound group-by at 1/128). Average drift stays in single
    # digits, which is why the benchmark default is 1/32, not smaller.
    assert max(drifts) < 0.30
    assert sum(drifts) / len(drifts) < 0.10
