"""Benchmark: regenerate Figure 2 (I/O interconnect bandwidth study)."""

import pytest

from repro.experiments import run_fig2
from conftest import BENCH_SCALE


@pytest.fixture(scope="module")
def fig2():
    return run_fig2(sizes=(64, 128), scale=BENCH_SCALE)


def test_fig2_sweep(benchmark, save_report, save_rows, fig2):
    benchmark.pedantic(
        lambda: run_fig2(sizes=(64,), tasks=("sort",), scale=BENCH_SCALE),
        rounds=1, iterations=1)
    save_report("fig2_interconnect", fig2.render())
    from repro.experiments import fig2_rows
    save_rows("fig2_interconnect", fig2_rows(fig2))


class TestFig2Shape:
    def test_doubling_helps_smp_on_every_task(self, fig2):
        """"doubling the I/O interconnect bandwidth has a large impact
        on the performance of SMP configurations for all tasks"."""
        for size in (64, 128):
            for task in fig2.tasks:
                smp200 = fig2.normalized(task, "smp", size, "200MB")
                smp400 = fig2.normalized(task, "smp", size, "400MB")
                assert smp400 < 0.8 * smp200

    def test_ad_gains_only_on_repartition_tasks(self, fig2):
        for task in ("select", "aggregate", "groupby", "dmine"):
            ad400 = fig2.normalized(task, "active", 128, "400MB")
            assert ad400 == pytest.approx(1.0, abs=0.06)
        for task in ("sort", "join", "mview"):
            ad400 = fig2.normalized(task, "active", 128, "400MB")
            assert ad400 < 0.9

    def test_ad_200_outperforms_smp_400_at_128(self, fig2):
        """"1.5-4.8 times faster for these tasks on 128-disk configs"
        (we accept 1.4-7x across the suite)."""
        for task in fig2.tasks:
            smp400 = fig2.normalized(task, "smp", 128, "400MB")
            assert 1.4 < smp400 < 7.0
