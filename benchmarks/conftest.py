"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables/figures, prints the
rows/series (visible with ``pytest -s``), and persists them under
``results/`` so a benchmark run leaves the full reproduction report
behind.

Benchmarks default to ``BENCH_SCALE`` (1/32 of the paper's dataset
sizes); set the ``REPRO_SCALE`` environment variable to run larger, e.g.
``REPRO_SCALE=1.0`` for the paper-sized datasets.
"""

import os
import pathlib

import pytest

#: Simulation scale for benchmarks (fraction of the paper's data sizes).
BENCH_SCALE = float(os.environ.get("REPRO_SCALE", 1 / 32))

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_report(results_dir):
    """Persist a text report crash-safely (tmp file + atomic rename)."""
    from repro.experiments import atomic_write_text

    def _save(name: str, text: str) -> None:
        atomic_write_text(str(results_dir / f"{name}.txt"), text + "\n")
        print(f"\n{text}\n")
    return _save


@pytest.fixture(scope="session")
def save_rows(results_dir):
    """Persist structured rows as CSV next to the text reports."""
    from repro.experiments import atomic_write_text, rows_to_csv

    def _save(name: str, rows) -> None:
        atomic_write_text(str(results_dir / f"{name}.csv"),
                          rows_to_csv(rows))
    return _save


@pytest.fixture(scope="session", autouse=True)
def refresh_manifest(results_dir):
    """Re-checksum results/ after the benchmark session's writes."""
    yield
    from repro.experiments import write_manifest
    write_manifest(str(results_dir))
