"""Benchmark: regenerate Figure 4 (impact of Active Disk memory).

Includes the 128 MB series the paper discusses in prose (Section 4.3):
comm buffers quadruple, and for dcube nothing changes beyond the 64 MB
thresholds.
"""

import pytest

from repro.experiments import run_fig4
from conftest import BENCH_SCALE

MEMORY_TASKS = ("select", "sort", "join", "dcube", "mview")
FLAT_TASKS = ("aggregate", "groupby", "dmine")


@pytest.fixture(scope="module")
def fig4():
    return run_fig4(sizes=(16, 32, 64, 128),
                    tasks=MEMORY_TASKS + FLAT_TASKS,
                    memories_mb=(32, 64, 128),
                    scale=BENCH_SCALE)


def test_fig4_sweep(benchmark, save_report, save_rows, fig4):
    benchmark.pedantic(
        lambda: run_fig4(sizes=(16,), tasks=("sort",),
                         memories_mb=(32, 64), scale=BENCH_SCALE),
        rounds=1, iterations=1)
    save_report("fig4_memory", fig4.render())
    from repro.experiments import fig4_rows
    save_rows("fig4_memory", fig4_rows(fig4))


class TestFig4Shape:
    def test_aggregate_groupby_dmine_flat(self, fig4):
        """"the performance of aggregate, groupby and dmine ... did not
        improve with additional memory"."""
        for task in FLAT_TASKS:
            for size in fig4.sizes:
                assert abs(fig4.improvement(task, size, 64)) < 3.0

    def test_non_dcube_tasks_within_a_few_percent(self, fig4):
        """"for tasks other than dcube, increasing the memory makes a
        negligible (~2 %) difference"."""
        for task in ("select", "join", "mview"):
            for size in fig4.sizes:
                assert abs(fig4.improvement(task, size, 64)) < 5.0

    def test_sort_small_gain(self, fig4):
        assert -1.0 < fig4.improvement("sort", 16, 64) < 8.0

    def test_dcube_35_percent_at_16_disks(self, fig4):
        """"the largest performance improvement is only about 35 %
        which occurs for 16-disk configurations"."""
        assert 25.0 < fig4.improvement("dcube", 16, 64) < 45.0

    def test_dcube_under_12_percent_beyond_16(self, fig4):
        for size in (32, 64, 128):
            assert fig4.improvement("dcube", size, 64) < 15.0

    def test_dcube_spike_at_64_disks(self, fig4):
        """The 3->2 pass transition at 64 disks (Section 4.3)."""
        spike = fig4.improvement("dcube", 64, 64)
        assert spike > 3.0
        assert spike > fig4.improvement("dcube", 128, 64) + 2.0

    def test_dcube_no_gain_beyond_64mb_at_16_disks(self, fig4):
        """"no performance improvement beyond 64 MB"."""
        at_64 = fig4.improvement("dcube", 16, 64)
        at_128 = fig4.improvement("dcube", 16, 128)
        assert at_128 - at_64 < 10.0
