"""Benchmark: the paper's price/performance bottom line.

"Active Disks provide better price/performance than both SMP-based
conventional disk farms and commodity clusters" (abstract). This bench
combines simulated execution times with the Table 1 cost model and
asserts the claim holds for every task at every configuration size.
"""

import pytest

from repro.analysis import PricePerformance, configuration_price, \
    price_performance_table
from repro.experiments import config_for, run_task
from conftest import BENCH_SCALE

TASKS = ("select", "groupby", "sort", "join")
SIZES = (16, 64, 128)


@pytest.fixture(scope="module")
def cells():
    out = []
    for task in TASKS:
        for disks in SIZES:
            for arch in ("active", "cluster", "smp"):
                config = config_for(arch, disks)
                result = run_task(config, task, BENCH_SCALE)
                out.append(PricePerformance(
                    task=task, arch=arch, num_disks=disks,
                    elapsed=result.elapsed,
                    price=configuration_price(config)))
    return out


def test_price_performance(benchmark, save_report, cells):
    benchmark.pedantic(
        lambda: run_task(config_for("active", 16), "select", BENCH_SCALE),
        rounds=1, iterations=1)
    save_report("price_performance", price_performance_table(cells))

    by_key = {}
    for cell in cells:
        by_key.setdefault((cell.task, cell.num_disks), {})[cell.arch] = cell
    for (task, disks), per_arch in by_key.items():
        active = per_arch["active"].cost_seconds
        # The paper's claim: Active Disks win price/performance against
        # both rivals on every task at every size. The margin is thin
        # only where the cluster's bisection shines (sort/join at 128).
        assert per_arch["cluster"].cost_seconds > 1.05 * active, \
            (task, disks)
        assert per_arch["smp"].cost_seconds > 10 * active, (task, disks)
