"""Ablation: concurrent (mixed) decision-support workloads.

The paper runs one query at a time. Real decision-support servers run
mixes; this bench executes a scan query (select) concurrently with the
interconnect-heavy sort on every architecture and measures the
interference each query suffers — where the architecture's bottleneck
resource is shared, the mix hurts.
"""

import pytest

from repro.experiments import config_for
from repro.sim import Simulator
from repro.arch import build_machine
from repro.workloads import build_program
from conftest import BENCH_SCALE

DISKS = 32


def solo(arch, task):
    config = config_for(arch, DISKS)
    sim = Simulator()
    return build_machine(sim, config).run(
        build_program(task, config, BENCH_SCALE)).elapsed


def mixed(arch, tasks):
    config = config_for(arch, DISKS)
    sim = Simulator()
    machine = build_machine(sim, config)
    programs = [build_program(task, config, BENCH_SCALE)
                for task in tasks]
    results = machine.run_concurrent(programs)
    return {result.task: result.elapsed for result in results}


def test_mixed_workload(benchmark, save_report):
    lines = [f"Ablation: select + sort running concurrently "
             f"({DISKS} disks)"]
    slowdowns = {}
    for arch in ("active", "cluster", "smp"):
        select_solo = solo(arch, "select")
        sort_solo = solo(arch, "sort")
        together = mixed(arch, ["select", "sort"])
        select_slow = together["select"] / select_solo
        sort_slow = together["sort"] / sort_solo
        slowdowns[arch] = (select_slow, sort_slow)
        lines.append(
            f"  {arch:8s} select {select_solo:6.2f}s -> "
            f"{together['select']:6.2f}s ({select_slow:4.2f}x)   "
            f"sort {sort_solo:6.2f}s -> {together['sort']:6.2f}s "
            f"({sort_slow:4.2f}x)")
    save_report("ablation_mixed_workload", "\n".join(lines))

    benchmark.pedantic(lambda: mixed("active", ["select", "aggregate"]),
                       rounds=1, iterations=1)

    for arch, (select_slow, sort_slow) in slowdowns.items():
        # The short scan absorbs most of the interference (it shares
        # CPUs/loops with a much longer job) but never starves...
        assert 1.0 <= select_slow < 6.0, arch
        # ...while the long sort barely notices the scan.
        assert 1.0 <= sort_slow < 1.6, arch
