"""Benchmark: regenerate Figure 5 (direct disk-to-disk communication)."""

import pytest

from repro.experiments import run_fig5
from conftest import BENCH_SCALE

REPARTITION = ("sort", "join", "mview")
LOCAL = ("select", "aggregate", "groupby", "dmine", "dcube")


@pytest.fixture(scope="module")
def fig5():
    return run_fig5(sizes=(32, 64, 128), scale=BENCH_SCALE)


def test_fig5_sweep(benchmark, save_report, save_rows, fig5):
    benchmark.pedantic(
        lambda: run_fig5(sizes=(32,), tasks=("sort",), scale=BENCH_SCALE),
        rounds=1, iterations=1)
    save_report("fig5_disk_to_disk", fig5.render())
    from repro.experiments import fig5_rows
    save_rows("fig5_disk_to_disk", fig5_rows(fig5))


class TestFig5Shape:
    def test_repartition_tasks_slow_down_heavily(self, fig5):
        """"up to a five-fold slowdown for the three communication-
        intensive tasks"."""
        for task in REPARTITION:
            assert fig5.slowdown(task, 128) > 3.0
        assert max(fig5.slowdown(t, 128) for t in REPARTITION) > 3.8

    def test_slowdown_grows_with_configuration(self, fig5):
        for task in REPARTITION:
            assert (fig5.slowdown(task, 32)
                    < fig5.slowdown(task, 64)
                    < fig5.slowdown(task, 128))

    def test_other_tasks_virtually_unaffected(self, fig5):
        """"virtually no impact on the remaining five tasks"."""
        for task in LOCAL:
            for size in (32, 64, 128):
                assert fig5.slowdown(task, size) == pytest.approx(
                    1.0, abs=0.05)
