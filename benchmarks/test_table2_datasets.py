"""Benchmark: regenerate Table 2 (datasets for the task workload)."""

from repro.experiments import run_table2
from repro.workloads import TABLE2

GB = 1_000_000_000


def test_table2_datasets(benchmark, save_report):
    text = benchmark.pedantic(run_table2, rounds=3, iterations=1)
    save_report("table2_datasets", text)

    assert len(TABLE2) == 8
    assert TABLE2["join"].total_bytes == 32 * GB
    assert TABLE2["mview"].total_bytes == 15 * GB
    assert all(spec.total_bytes == 16 * GB
               for name, spec in TABLE2.items()
               if name not in ("join", "mview"))
