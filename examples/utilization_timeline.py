"""Watch the bottleneck move: resource timelines for a sort run.

Uses the :mod:`repro.telemetry` hub to sample the FC loop, disk media
and disk CPUs every 200 simulated milliseconds while an Active Disk farm
sorts, and renders the sampled timelines as terminal sparklines — the
Figure 3 story as a time series: the repartitioning phase saturates CPUs
and the loop, then the merge phase leaves only the platters busy.

The same hub records every seek/transfer/arbitration span, so the run
also drops a Chrome trace you can open in https://ui.perfetto.dev to
zoom into any individual request.

Run:  python examples/utilization_timeline.py [disks]
"""

import sys

from repro.arch import ActiveDiskConfig, build_machine
from repro.sim import Simulator, sparkline
from repro.telemetry import Telemetry, write_artifacts
from repro.workloads import build_program

SCALE = 1 / 32
INTERVAL = 0.2


def rate_probe(read_total, capacity_per_second, sim):
    """Instantaneous utilization from a cumulative byte counter."""
    state = {"time": 0.0, "bytes": 0.0}

    def probe():
        now, total = sim.now, read_total()
        dt = now - state["time"]
        db = total - state["bytes"]
        state["time"], state["bytes"] = now, total
        return min(1.0, db / dt / capacity_per_second) if dt > 0 else 0.0

    return probe


def main(argv):
    disks = int(argv[0]) if argv else 64
    config = ActiveDiskConfig(num_disks=disks)
    sim = Simulator()
    # Install telemetry *before* building the machine so every component
    # wires up its probes; the machine adds its own standard set.
    tel = Telemetry(sample_interval=INTERVAL).install(sim)
    machine = build_machine(sim, config)

    media_rate = 18e6 * disks   # ~mean streaming rate x farm size
    tel.add_probe("fc loop ", rate_probe(machine.fabric.bytes_moved,
                                         config.interconnect_rate, sim))
    tel.add_probe("media   ", rate_probe(
        lambda: sum(n.drive.bytes_read + n.drive.bytes_written
                    for n in machine.nodes),
        media_rate, sim))
    tel.add_probe("disk cpu", lambda: sum(
        n.cpu.utilization() for n in machine.nodes) / disks)

    result = machine.run(build_program("sort", config, SCALE))

    # Every probe sample landed in the span recorder's counter track;
    # pull the three custom timelines back out and render them.
    timelines = {}
    for sample in tel.spans.counters:
        if sample.name in ("fc loop ", "media   ", "disk cpu"):
            timelines.setdefault(sample.name, []).append(
                sample.values["value"])
    p1, p2 = result.phases
    width = min(64, max(len(v) for v in timelines.values()))
    boundary = int(width * p1.elapsed / result.elapsed)

    print(f"sort on {disks} Active Disks (scale {SCALE:g}): "
          f"{result.elapsed:.1f}s total "
          f"(P1 {p1.elapsed:.1f}s, P2 {p2.elapsed:.1f}s)\n")
    for name, values in timelines.items():
        print(f"{name}  |{sparkline(values, width)}|")
    print(" " * 10 + "^" * boundary + "|" + "-" * (width - boundary - 1))
    print(" " * 10 + "P1: partition+shuffle+runs".ljust(boundary) + " P2: merge")
    print()
    print("Read the strips: during P1 the loop and CPUs burn (at 128 "
          "disks the loop pins at '@' while CPUs idle — Figure 3's "
          "story); P2 drops to a media-only workload.")
    print()
    paths = write_artifacts(tel, "reports", prefix=f"timeline-{disks}")
    print(f"Full span trace: {paths['trace']} "
          f"({len(tel.spans.spans)} spans — open in ui.perfetto.dev)")


if __name__ == "__main__":
    main(sys.argv[1:])
