"""Inspect the Howsim-style workload trace behind a simulated task.

The paper drove Howsim with traces of processing times and I/O requests
captured on a DEC Alpha. This repository generates those traces
analytically; this example prints the first records of the trace one
disk executes for the external sort, plus the per-worker totals the
simulator charges — a direct view into the reproduction's workload
format.

Run:  python examples/trace_replay.py
"""

from itertools import islice

from repro import config_for
from repro.tracegen import trace_totals, worker_trace
from repro.workloads import build_program

SCALE = 1 / 256
WORKERS = 16


def main():
    config = config_for("active", WORKERS)
    program = build_program("sort", config, SCALE)

    print(f"sort on {WORKERS} Active Disks at scale {SCALE:g} — trace of "
          f"worker 0:\n")
    print(f"{'op':14s} {'phase':7s} {'label':12s} {'amount'}")
    print("-" * 52)
    for record in islice(worker_trace(program, 0, WORKERS), 18):
        amount = (f"{record.seconds * 1e3:8.3f} ms"
                  if record.op == "compute"
                  else f"{record.nbytes / 1024:8.1f} KB")
        print(f"{record.op:14s} {record.phase:7s} {record.label:12s} {amount}")
    print("... (trace continues)\n")

    totals = trace_totals(program, 0, WORKERS)
    print("worker-0 totals:")
    print(f"  records          : {totals['records']}")
    print(f"  compute (ref CPU): {totals['compute_seconds']:.2f} s")
    print(f"  read             : {totals['read_bytes'] / 1e6:.1f} MB")
    print(f"  written          : {totals['write_bytes'] / 1e6:.1f} MB")
    print(f"  to peers         : {totals['peer_bytes'] / 1e6:.1f} MB")
    print(f"  to front-end     : {totals['frontend_bytes'] / 1e6:.1f} MB")
    print()
    print("Every byte above is charged to a simulated resource: the "
          "disk media, the 200 MHz on-disk CPU (scaled from the "
          "reference clock), the FC loops, or the front-end.")


if __name__ == "__main__":
    main()
