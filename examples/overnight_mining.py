"""Overnight mining: can the warehouse be mined before the morning?

The paper's motivation quotes Greg Papadopolous: customers double their
data every nine-to-twelve months "and would like to mine this data
overnight". This example does both halves of that story:

1. mines actual association rules from a synthetic retail basket
   dataset with the reference Apriori implementation (small scale,
   real results);
2. simulates the dmine task on the paper's full 16 GB / 300 M
   transaction dataset across the three architectures and reports
   which of them finishes a realistic overnight batch.

Run:  python examples/overnight_mining.py
"""

from repro import config_for, run_task
from repro.arch import active_disk_cost, cluster_cost, smp_cost_estimate
from repro.workloads.algorithms import (
    association_rules,
    frequent_itemsets,
    make_transactions,
)

SCALE = 1 / 64
DISKS = 64
#: Number of mining batches in the "overnight" window (re-mining per
#: department, say), used to stretch one simulated run to a full night.
BATCHES = 280


def mine_small_sample():
    print("1) Mining a 5,000-transaction sample (reference Apriori)...")
    transactions = make_transactions(5_000, items=200, avg_items=5,
                                     seed=7, hot_fraction=0.03)
    itemsets = frequent_itemsets(transactions, minsup=0.01)
    rules = association_rules(itemsets, min_confidence=0.3)
    print(f"   {len(itemsets)} frequent itemsets, "
          f"{len(rules)} rules at 1% support / 30% confidence")
    for antecedent, consequent, confidence in sorted(
            rules, key=lambda r: -r[2])[:5]:
        print(f"   {antecedent} -> {consequent}  ({confidence:.0%})")
    print()


def simulate_full_dataset():
    print(f"2) Simulating dmine (300 M transactions, 3 Apriori passes) "
          f"on {DISKS}-disk configurations...")
    print(f"   (simulated at scale {SCALE:g}; times below are scaled "
          f"back to the full dataset)\n")
    night_hours = 10.0
    prices = {
        "active": active_disk_cost(DISKS, "7/99"),
        "cluster": cluster_cost(DISKS, "7/99"),
        "smp": smp_cost_estimate(DISKS),
    }
    for arch in ("active", "cluster", "smp"):
        result = run_task(config_for(arch, DISKS), "dmine", SCALE)
        full_run = result.elapsed / SCALE
        batch_hours = BATCHES * full_run / 3600.0
        verdict = "fits overnight" if batch_hours <= night_hours \
            else "DOES NOT fit overnight"
        print(f"   {arch:8s} (${prices[arch]:>9,.0f}): "
              f"one pass set = {full_run:6.1f}s; {BATCHES} batches = "
              f"{batch_hours:5.1f}h -> {verdict}")
    print()
    print("   Active Disks and the cluster both finish the night's "
          "mining — the Active Disk farm at well under half the "
          "cluster's price — while the million-dollar SMP, dragging "
          "every transaction across its shared FC loop three times, "
          "does not.")


if __name__ == "__main__":
    mine_small_sample()
    simulate_full_dataset()
