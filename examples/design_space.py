"""Design-space exploration for an Active Disk product.

Sweeps the three design axes the paper studies — interconnect bandwidth,
per-disk memory, and direct disk-to-disk communication — on the most
demanding task (external sort) and prints a table a storage architect
could act on. Reproduces, in one screen, the paper's three design
conclusions.

Run:  python examples/design_space.py
"""

from repro import ActiveDiskConfig, run_task
from repro.experiments import render_table

SCALE = 1 / 64
MB = 1_000_000


def sort_time(disks, rate=200 * MB, memory=32 * MB, direct=True):
    config = ActiveDiskConfig(num_disks=disks,
                              disk_memory_bytes=memory,
                              interconnect_rate=rate,
                              direct_disk_to_disk=direct)
    return run_task(config, "sort", SCALE).elapsed


def main():
    rows = []
    for disks in (16, 64, 128):
        base = sort_time(disks)
        rows.append((
            disks,
            f"{base:.1f}s",
            f"{sort_time(disks, rate=400 * MB) / base:.2f}",
            f"{sort_time(disks, memory=64 * MB) / base:.2f}",
            f"{sort_time(disks, direct=False) / base:.2f}",
        ))
    print(render_table(
        f"External sort on Active Disks (scale {SCALE:g}); "
        "columns are relative to the base configuration",
        ("disks", "base (200MB/s, 32MB, direct)",
         "2x interconnect", "2x memory", "no disk-to-disk"),
        rows))
    print()
    print("Design conclusions (paper Section 6):")
    print(" * dual FC-AL suffices to 64 disks; only the 128-disk farm")
    print("   wants a faster interconnect (2x interconnect column).")
    print(" * extra disk memory buys ~nothing for sort (2x memory column).")
    print(" * removing direct disk-to-disk communication is catastrophic")
    print("   for repartitioning tasks (last column).")

    # And the cross-architecture view, from the analytic model (instant):
    from repro.analysis import design_space as analytic_space
    from repro.analysis import render_design_space
    print()
    print(render_design_space(
        analytic_space(["select", "sort"], sizes=(16, 64, 128)),
        budget_seconds=600))
    print("\nNo SMP configuration ever reaches the time/price frontier —")
    print("the paper's price/performance conclusion as a Pareto statement.")


if __name__ == "__main__":
    main()
