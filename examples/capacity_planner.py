"""Capacity planning with the analytic model (no simulation required).

Given a dataset size and a batch window, the closed-form bottleneck
model (`repro.analysis`) answers "how many disks do I need, on which
architecture, and what does it cost?" in microseconds per configuration
— then a single discrete-event simulation verifies the chosen design
point. This is the workflow the paper's Section 2 guidelines imply,
automated.

Run:  python examples/capacity_planner.py
"""

from repro.analysis import analyze, configuration_price
from repro.experiments import config_for, run_task

TASK = "sort"            # the hardest task in the suite
WINDOW_SECONDS = 600.0   # finish a full-dataset sort within 10 minutes
SIZES = (16, 32, 48, 64, 96, 128)
#: The closed form assumes perfect pipeline overlap, so it is
#: optimistic; plan with headroom and let the simulator confirm.
SAFETY_MARGIN = 0.70


def plan(arch):
    """Smallest configuration meeting the window, per the closed form."""
    for disks in SIZES:
        estimate = analyze(config_for(arch, disks), TASK, scale=1.0)
        if estimate.seconds <= WINDOW_SECONDS * SAFETY_MARGIN:
            return disks, estimate
    return None, None


def main():
    print(f"goal: full-scale {TASK} (16 GB) within {WINDOW_SECONDS:.0f}s\n")
    print(f"{'arch':8s} {'disks':>5s} {'est. time':>10s} "
          f"{'bottleneck':>14s} {'price':>12s}")
    chosen = {}
    for arch in ("active", "cluster", "smp"):
        disks, estimate = plan(arch)
        if disks is None:
            print(f"{arch:8s}  does not meet the window at any size")
            continue
        config = config_for(arch, disks)
        price = configuration_price(config)
        chosen[arch] = (disks, estimate)
        print(f"{arch:8s} {disks:5d} {estimate.seconds:9.1f}s "
              f"{estimate.phases[0].bottleneck:>14s} ${price:>11,.0f}")

    arch, (disks, estimate) = min(
        chosen.items(),
        key=lambda kv: configuration_price(config_for(kv[0], kv[1][0])))
    print(f"\ncheapest plan: {arch} with {disks} disks — verifying by "
          f"simulation at 1/16 scale...")
    result = run_task(config_for(arch, disks), TASK, scale=1 / 16)
    simulated_full = result.elapsed * 16
    print(f"simulated: {simulated_full:.1f}s full-scale-equivalent "
          f"(analytic said {estimate.seconds:.1f}s)")
    verdict = "fits" if simulated_full <= WINDOW_SECONDS else "misses"
    print(f"the plan {verdict} the {WINDOW_SECONDS:.0f}s window.")


if __name__ == "__main__":
    main()
