"""Compose and run a real decision-support query on all three machines.

The benchmark tasks are single operators; warehouses run *queries*. This
example builds the classic report query —

    SELECT region, SUM(sales) FROM facts
    WHERE discount > threshold        (10% of rows)
    GROUP BY region                   (50,000 regions x 32 B)
    ORDER BY SUM(sales)

— as a logical plan, compiles it per architecture with proper volume
propagation (the sort runs over the 1.6 MB of groups, not the 16 GB fact
table), and simulates it.

Run:  python examples/query_planner.py
"""

from repro.arch import build_machine
from repro.experiments import config_for
from repro.sim import Simulator
from repro.workloads.queries import (
    Filter,
    GroupBy,
    OrderBy,
    QueryPlan,
    Scan,
    compile_plan,
)

SCALE = 1 / 32
DISKS = 64

REPORT_QUERY = QueryPlan(
    name="regional-sales-report",
    scan=Scan(rows=250_000_000, row_bytes=64),     # the 16 GB fact table
    operators=(
        Filter(selectivity=0.10),
        GroupBy(groups=50_000, entry_bytes=32),
        OrderBy(),
    ),
)


def main():
    print(f"query: {REPORT_QUERY.name} on {DISKS} disks "
          f"(scale {SCALE:g})\n")
    for arch in ("active", "cluster", "smp"):
        config = config_for(arch, DISKS)
        program = compile_plan(REPORT_QUERY, config, SCALE)
        sim = Simulator()
        result = build_machine(sim, config).run(program)
        stages = "  ".join(f"{p.name}={p.elapsed:.2f}s"
                           for p in result.phases)
        print(f"{arch:8s} total {result.elapsed:6.2f}s   ({stages})")
    print()
    print("The scan dominates everywhere — the group-by collapsed the "
          "sort's input to a few MB, so the ORDER BY is all but free. "
          "An optimizer that sorted before aggregating would pay the "
          "full 16 GB repartition; try moving OrderBy before GroupBy "
          "in the plan to watch it happen.")


if __name__ == "__main__":
    main()
