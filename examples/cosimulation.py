"""Functional co-simulation: watch real records move through the models.

Most of this repository simulates *costs*; `repro.funcsim` executes the
actual distributed algorithms on the simulated substrate — real numpy
records crossing the simulated fat-tree. This example sorts and filters
a real dataset that way, verifies the answers, and shows that the
traffic the records generate matches the assumption the cost models
make (a uniform shuffle moves (W-1)/W of the data).

Run:  python examples/cosimulation.py
"""

import numpy as np

from repro.funcsim import FunctionalCluster
from repro.workloads.algorithms import make_relation, make_sort_records

WORKERS = 8


def main():
    print(f"functional cluster: {WORKERS} simulated nodes, 100BaseT "
          f"fat-tree, 300 MHz CPUs\n")

    records = make_sort_records(20_000, seed=42)
    cluster = FunctionalCluster(workers=WORKERS)
    outputs, stats = cluster.sort(records)
    keys = np.concatenate([o.key for o in outputs if len(o)])
    assert (np.diff(keys) >= 0).all(), "output must be sorted"
    crossing = stats.bytes_exchanged / records.nbytes
    print(f"sort: {len(records):,} records "
          f"({records.nbytes / 1e6:.1f} MB) globally sorted [verified]")
    print(f"  simulated time : {stats.elapsed * 1e3:8.1f} ms")
    print(f"  network traffic: {stats.bytes_exchanged / 1e6:8.2f} MB "
          f"= {crossing:.1%} of the dataset "
          f"(cost model assumes {(WORKERS - 1) / WORKERS:.1%})")

    table = make_relation(50_000, 500, seed=7, payload=1_000)
    cluster = FunctionalCluster(workers=WORKERS)
    matches, stats = cluster.select(table, lambda r: r.value < 10)
    print(f"\nselect: {len(matches):,} of {len(table):,} rows matched "
          f"(~1% selectivity) [verified]")
    print(f"  simulated time : {stats.elapsed * 1e3:8.1f} ms")
    print(f"  network traffic: {stats.bytes_exchanged / 1e3:8.1f} KB — "
          f"only the matches travel, the Active Disk idea in miniature")


if __name__ == "__main__":
    main()
