"""What does losing a drive mid-scan cost each architecture?

Runs a scan twice per architecture — clean, then with one drive failing
partway through — and prints the completion-time inflation plus the
recovery work the fault subsystem recorded. The run always completes:
Active Disks and the cluster re-scan the dead partition on the
survivors in post-barrier recovery rounds; the SMP reroutes striping
chunks around the dead spindle on the fly.

Run:  python examples/degraded_scan.py [task]
      python examples/degraded_scan.py groupby
"""

import sys

from repro import registered_tasks
from repro.experiments import run_degraded_sweep

SCALE = 1 / 64
DISKS = 8
FAIL_AT = 0.3      # failure at 30% of the clean run's elapsed time


def main(argv):
    task = argv[0] if argv else "select"
    if task not in registered_tasks():
        raise SystemExit(f"unknown task {task!r}; choose from "
                         f"{', '.join(registered_tasks())}")
    print(f"Killing disk.1 at {FAIL_AT:.0%} of a clean {task} "
          f"({DISKS} disks, scale {SCALE:g})...\n")
    result = run_degraded_sweep(task=task, num_disks=DISKS,
                                failed_disk=1, fail_fraction=FAIL_AT,
                                scale=SCALE)
    print(f"{'arch':8s} {'clean':>9s} {'degraded':>9s} {'inflation':>10s}")
    for cell in result.cells:
        print(f"{cell.arch:8s} {cell.baseline.elapsed:8.3f}s "
              f"{cell.degraded.elapsed:8.3f}s {cell.inflation:9.2f}x")
    print()
    for cell in result.cells:
        recovered = cell.counters.get("faults.arch.recovered_bytes", 0)
        rerouted = cell.counters.get("faults.arch.rerouted_read_chunks", 0)
        if recovered:
            detail = (f"survivors re-scanned {recovered / 1e6:.1f} MB in "
                      f"{cell.counters.get('faults.arch.recovery_rounds', 0):.0f} "
                      f"recovery round(s)")
        elif rerouted:
            detail = (f"processors rerouted {rerouted:.0f} striping chunks "
                      f"around the dead spindle")
        else:
            detail = "no recovery work recorded"
        print(f"{cell.arch}: {detail}")


if __name__ == "__main__":
    main(sys.argv[1:])
