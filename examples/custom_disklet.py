"""Writing your own disklet-style task against the public API.

The eight built-in tasks are all expressed as
:class:`~repro.arch.program.TaskProgram` dataflows; this example builds a
*new* one — a top-k "heavy hitters" query that scans the fact table,
keeps a tiny candidate heap on each disk, and ships only the candidates
— declares its Active Disk form as a sandboxed
:class:`~repro.diskos.Disklet`, and runs it on all three architectures.

Run:  python examples/custom_disklet.py
"""

from repro import build_machine, config_for
from repro.diskos import (
    DiskMemory,
    Disklet,
    DiskletStage,
    SinkKind,
    StreamSpec,
    program_from_disklets,
)
from repro.sim import Simulator

GB = 1_000_000_000
MB = 1_000_000
SCALE = 1 / 64

#: per-tuple heap maintenance at the 275 MHz reference machine.
HEAVY_HITTER_NS_PER_BYTE = 45.0
CANDIDATES_PER_WORKER = 4 * 1024          # top-k candidates, 32 B each


def as_disklet() -> Disklet:
    """The task in the Active Disk programming model's own terms."""
    return Disklet(
        name="heavy-hitters",
        cpu_ns_per_byte=HEAVY_HITTER_NS_PER_BYTE,
        outputs=(
            StreamSpec(SinkKind.FRONTEND,
                       fixed_bytes=CANDIDATES_PER_WORKER * 32),
        ),
        scratch_bytes=CANDIDATES_PER_WORKER * 64,  # heap + hash index
    )


def main():
    disklet = as_disklet()
    print(f"disklet {disklet.name!r}: {disklet.cpu_ns_per_byte:.0f} ns/B, "
          f"scratch {disklet.scratch_bytes // 1024} KB, "
          f"peers={'yes' if disklet.uses_peers else 'no'}\n")

    # DiskOS validates the sandbox (scratch fits, stream routing legal)
    # and lowers the disklet pipeline to an architecture-neutral program.
    layout = DiskMemory(32 * MB).layout()
    program = program_from_disklets(
        "heavy_hitters",
        [DiskletStage(disklet=disklet,
                      read_bytes_total=int(16 * GB * SCALE),
                      frontend_cpu_ns_per_byte=8.0)],
        layout=layout)
    print(f"top-k heavy hitters over 16 GB (scale {SCALE:g}), 64 disks:")
    for arch in ("active", "cluster", "smp"):
        sim = Simulator()
        machine = build_machine(sim, config_for(arch, 64))
        result = machine.run(program)
        print(f"  {arch:8s}: {result.elapsed:7.2f}s "
              f"(front-end received "
              f"{result.extras['frontend_bytes'] / 1e6:.1f} MB)")
    print("\nA pure data-reduction query: the Active Disk farm wins by "
          "the full disk-count factor, exactly like select/aggregate.")


if __name__ == "__main__":
    main()
