"""Architecture face-off: the paper's Figure 1 on your terminal.

Runs a chosen set of decision-support tasks across Active Disks, the
commodity cluster and the SMP at several farm sizes, and prints
execution times normalized to Active Disks — the paper's headline
comparison.

Run:  python examples/architecture_faceoff.py [task ...]
      python examples/architecture_faceoff.py sort groupby
"""

import sys

from repro import registered_tasks
from repro.experiments import run_fig1

SCALE = 1 / 64
SIZES = (16, 64, 128)


def main(argv):
    tasks = tuple(argv) or ("select", "groupby", "sort")
    unknown = set(tasks) - set(registered_tasks())
    if unknown:
        raise SystemExit(f"unknown tasks: {', '.join(sorted(unknown))}; "
                         f"choose from {', '.join(registered_tasks())}")
    print(f"Running {', '.join(tasks)} on {SIZES} disks "
          f"(scale {SCALE:g})...\n")
    figure = run_fig1(sizes=SIZES, tasks=tasks, scale=SCALE)
    print(figure.render())
    print()
    for task in tasks:
        trend = " -> ".join(
            f"{figure.normalized(task, 'smp', size):.1f}x"
            for size in SIZES)
        print(f"{task}: SMP falls behind as the farm grows: {trend}")


if __name__ == "__main__":
    main(sys.argv[1:])
