"""Architecture face-off: the paper's Figure 1 on your terminal.

Runs a chosen set of decision-support tasks across Active Disks, the
commodity cluster and the SMP at several farm sizes, and prints
execution times normalized to Active Disks — the paper's headline
comparison.

The sweep goes through the resilient harness: pass ``--jobs`` to run
cells in parallel worker processes, and ``--journal`` to make the sweep
resumable — kill it mid-run and the same command (or
``python -m repro resume <journal>``) picks up where it left off.

Run:  python examples/architecture_faceoff.py [task ...]
      python examples/architecture_faceoff.py sort groupby
      python examples/architecture_faceoff.py --jobs 4 \\
          --journal results/faceoff.journal.jsonl
"""

import argparse

from repro import registered_tasks
from repro.experiments import SweepRunner, run_fig1

SCALE = 1 / 64
SIZES = (16, 64, 128)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("tasks", nargs="*",
                        default=["select", "groupby", "sort"])
    parser.add_argument("--jobs", type=int, default=1,
                        help="parallel worker processes (default 1)")
    parser.add_argument("--journal", default=None,
                        help="journal path; makes the sweep resumable")
    args = parser.parse_args(argv)

    tasks = tuple(args.tasks)
    unknown = set(tasks) - set(registered_tasks())
    if unknown:
        raise SystemExit(f"unknown tasks: {', '.join(sorted(unknown))}; "
                         f"choose from {', '.join(registered_tasks())}")
    runner = None
    if args.jobs > 1 or args.journal:
        runner = SweepRunner(args.journal, jobs=args.jobs, retries=1)
    print(f"Running {', '.join(tasks)} on {SIZES} disks "
          f"(scale {SCALE:g})...\n")
    figure = run_fig1(sizes=SIZES, tasks=tasks, scale=SCALE, runner=runner)
    print(figure.render())
    print()
    for task in tasks:
        trend = " -> ".join(
            f"{figure.normalized(task, 'smp', size):.1f}x"
            for size in SIZES)
        print(f"{task}: SMP falls behind as the farm grows: {trend}")
    if runner is not None:
        resumed = runner.counters["resumed_cells"]
        print(f"\nharness: {runner.counters['completed']} cells run, "
              f"{resumed} reloaded from the journal")


if __name__ == "__main__":
    main()
