"""Quickstart: simulate one decision-support task on an Active Disk farm.

Builds the paper's 16-disk Active Disk configuration, runs the SQL
select task (268 M tuples, 1 % selectivity, scaled down 64x for speed),
and prints where the time went — then reruns the same task on the SMP
with the identical disks to show why offloading the scan matters.

Run:  python examples/quickstart.py
"""

from repro import config_for, run_task

SCALE = 1 / 64  # fraction of the paper's 16 GB dataset


def describe(result):
    print(f"  architecture : {result.arch}")
    print(f"  elapsed      : {result.elapsed:8.2f} simulated seconds")
    print(f"  disk reads   : {result.extras['disk_bytes_read'] / 1e9:6.2f} GB")
    fc = result.extras.get("fc_bytes")
    if fc is not None:
        print(f"  FC-loop bytes: {fc / 1e9:6.2f} GB "
              f"(utilization {result.extras['fc_utilization']:.0%})")
    for phase in result.phases:
        budget = ", ".join(f"{name}={frac:.0%}"
                           for name, frac in sorted(phase.fractions().items()))
        print(f"  phase {phase.name!r}: {phase.elapsed:.2f}s ({budget})")
    print()


def main():
    print(f"select on 16 disks at scale {SCALE:g} "
          f"({16 * SCALE:.2f} GB of 64-byte tuples, 1% selectivity)\n")

    print("Active Disks (200 MHz CPU per disk, dual FC-AL):")
    active = run_task(config_for("active", 16), "select", SCALE)
    describe(active)

    print("SMP (16 x 250 MHz CPUs, all disk data over one 200 MB/s FC):")
    smp = run_task(config_for("smp", 16), "select", SCALE)
    describe(smp)

    ratio = smp.elapsed / active.elapsed
    print(f"SMP / Active Disks = {ratio:.2f}x — the scan runs at the "
          f"disks, so only 1% of the data crosses the Active Disk "
          f"interconnect, while the SMP pulls all of it through its FC "
          f"loop. Try 128 disks to watch the gap grow to ~8-9x.")


if __name__ == "__main__":
    main()
