"""Queue-based serial I/O interconnect model.

Howsim models I/O interconnects with "a simple queue-based model that has
parameters for startup latency, transfer speed and the capacity of the
interconnect" (paper, Section 2.3). :class:`SerialBus` is exactly that: a
FIFO-arbitrated medium that carries one transfer at a time (capacity 1 for
an arbitrated loop), each costing ``startup + nbytes / rate``.

:class:`BusGroup` aggregates several buses (the dual Fibre Channel
arbitrated loop of the paper is two 100 MB/s loops = 200 MB/s aggregate)
and routes each transfer to the least-loaded member loop.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from ..faults.policies import RetryPolicy
from ..sim import Counter, Event, Server, Simulator, Tally

__all__ = ["SerialBus", "BusGroup", "dual_fc_al"]

#: Backoff for FCP-style retries after a transient bus error.
BUS_RETRY = RetryPolicy(max_attempts=4, base_delay=50e-6, factor=2.0,
                        max_delay=1e-3)

MB = 1_000_000

#: FC-AL arbitration + SCSI command/status protocol cost per transfer,
#: seconds. Dominated by the command and status phases of the FCP
#: exchange; 64 KB striping chunks pay it ~40 % of their wire time while
#: 256 KB transfers amortize it to ~10 %.
FC_STARTUP_LATENCY = 250e-6


class SerialBus:
    """One serial medium: FIFO arbitration, fixed rate, per-transfer startup.

    Parameters
    ----------
    rate:
        Transfer bandwidth in bytes/s.
    startup:
        Fixed arbitration/setup latency per transfer, seconds.
    capacity:
        Number of concurrent transfers the medium admits (1 for an
        arbitrated loop; >1 models a switched fabric coarsely).
    """

    def __init__(self, sim: Simulator, rate: float, startup: float = 0.0,
                 capacity: int = 1, name: str = "bus"):
        if rate <= 0:
            raise ValueError(f"bus rate must be positive, got {rate}")
        if startup < 0:
            raise ValueError(f"negative startup latency: {startup}")
        self.sim = sim
        self.rate = rate
        self.startup = startup
        self.name = name
        self.server = Server(sim, capacity=capacity, name=name)
        self.bytes_moved = Counter(f"{name}.bytes")
        self.transfer_times = Tally(f"{name}.latency")
        self.faults = None
        if sim.faults.enabled:
            self.faults = sim.faults.register(f"bus.{name}")
        self._audit = None
        if sim.invariants.enabled:
            self._audit = sim.invariants.bus_auditor(
                f"bus.{name}", moved=lambda: self.bytes_moved.value)

    def occupancy(self) -> int:
        """Transfers in service plus waiting."""
        return self.server.in_use + self.server.queue_length

    def utilization(self) -> float:
        return self.server.utilization()

    def hold_time(self, nbytes: int) -> float:
        """Bus occupancy for a transfer of ``nbytes``."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        return self.startup + nbytes / self.rate

    def transfer(self, nbytes: int) -> Generator[Event, Any, None]:
        """Move ``nbytes`` across the bus (blocking generator).

        With a fault plan armed, a ``loop_outage`` window blocks the
        sender until the segment comes back, and ``bus_transient``
        errors are recovered in place: each hit costs an FCP-style
        backoff plus a full re-transfer (see :data:`BUS_RETRY`).
        """
        began = self.sim.now
        fp = self.faults
        if fp is not None and fp.active:
            yield from fp.wait_out(self.sim, kinds=("loop_outage",),
                                   counter="faults.bus.outage_waits")
        audit = self._audit
        if audit is not None:
            audit.begin(nbytes)
        tel = self.sim.telemetry
        if tel.enabled:
            yield from self._traced_transfer(tel, nbytes, began)
        else:
            yield from self.server.serve(self.hold_time(nbytes))
        if fp is not None and fp.active:
            yield from self._transient_retries(fp, nbytes)
        self.bytes_moved.add(nbytes)
        if audit is not None:
            audit.end(nbytes)
        self.transfer_times.observe(self.sim.now - began)

    def _transient_retries(self, fp, nbytes: int):
        """Re-arbitrate and re-send while transient errors hit the wire."""
        probability = fp.probability("bus_transient")
        if probability <= 0:
            return
        for attempt in range(BUS_RETRY.max_attempts):
            if fp.rng.random() >= probability:
                return
            fp.note("faults.bus.transients")
            fp.note("faults.bus.retries")
            yield self.sim.timeout(BUS_RETRY.delay(attempt))
            yield from self.server.serve(self.hold_time(nbytes))
        # Persistent corruption: stop modelling individual retries and
        # let the (already charged) transfers stand as the recovery cost.
        fp.note("faults.bus.retry_exhausted")

    def _traced_transfer(self, tel, nbytes: int,
                         began: float) -> Generator[Event, Any, None]:
        """serve() split into arbitration + occupancy spans for the trace."""
        track = f"bus.{self.name}"
        queue = tel.registry.series(f"bus.{self.name}.queue")
        queue.set(float(self.occupancy() + 1))
        yield self.server.request()
        granted = self.sim.now
        if granted > began:
            tel.spans.complete("bus", "arb", f"{track}.wait", began,
                               granted - began)
        try:
            yield self.sim.pause(self.hold_time(nbytes))
        finally:
            self.server.release()
            queue.set(float(self.occupancy()))
        tel.spans.complete("bus", "xfer", track, granted,
                           self.sim.now - granted, args={"nbytes": nbytes})


class BusGroup:
    """Several parallel buses treated as one aggregate interconnect.

    Each transfer is routed to the member with the fewest queued
    transfers (ties broken by index), which is how dual-loop FC host
    adaptors balance traffic.
    """

    def __init__(self, buses: List[SerialBus], name: str = "busgroup"):
        if not buses:
            raise ValueError("BusGroup needs at least one bus")
        self.buses = buses
        self.name = name

    @property
    def sim(self) -> Simulator:
        return self.buses[0].sim

    @property
    def aggregate_rate(self) -> float:
        return sum(bus.rate for bus in self.buses)

    def pick(self) -> SerialBus:
        """Least-occupied member bus.

        The dominant configuration is the paper's dual loop; picking
        between two members directly keeps min()'s first-minimal
        semantics (names share a prefix and order by index, so the
        name tie-break equals "first wins") without building a key
        tuple per member per transfer.
        """
        buses = self.buses
        if len(buses) == 2:
            first, second = buses
            return first if first.occupancy() <= second.occupancy() else second
        return min(buses, key=lambda b: (b.occupancy(), b.name))

    def transfer(self, nbytes: int) -> Generator[Event, Any, None]:
        """Move ``nbytes`` over the least-loaded member."""
        bus = self.pick()
        yield from bus.transfer(nbytes)

    def bytes_moved(self) -> float:
        return sum(bus.bytes_moved.value for bus in self.buses)

    def utilization(self) -> float:
        return sum(b.utilization() for b in self.buses) / len(self.buses)


def dual_fc_al(sim: Simulator, aggregate_rate: float = 200 * MB,
               loops: int = 2, name: str = "fc") -> BusGroup:
    """The paper's dual Fibre Channel arbitrated loop (2 x 100 MB/s).

    ``aggregate_rate`` lets experiments scale the interconnect (Figure 2
    uses 400 MB/s); the per-loop rate is the aggregate divided evenly.
    """
    if loops < 1:
        raise ValueError(f"need at least one loop, got {loops}")
    per_loop = aggregate_rate / loops
    buses = [
        SerialBus(sim, rate=per_loop, startup=FC_STARTUP_LATENCY,
                  capacity=1, name=f"{name}.loop{i}")
        for i in range(loops)
    ]
    return BusGroup(buses, name=name)
