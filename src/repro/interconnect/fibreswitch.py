"""FibreSwitch: the paper's recommended interconnect beyond 64 disks.

The conclusions of the paper state that to scale past 64 disks "a more
aggressive interconnect (e.g., multiple fibre channel loops connected by
a FibreSwitch) would be needed". This module implements exactly that
topology:

* devices are divided into *segments*, each segment a private arbitrated
  loop (100 MB/s, FCP protocol cost per exchange);
* the segment loops hang off a non-blocking crossbar switch;
* a transfer between devices on the same segment occupies only that
  loop; a transfer across segments occupies the source loop, a switch
  port pair (cut-through latency), and the destination loop.

Aggregate bisection therefore grows with the number of segments — the
property the single dual-loop FC-AL lacks — while each individual device
still sees a plain FC loop.
"""

from __future__ import annotations

from typing import Any, Generator, List, Sequence

from ..sim import Counter, Event, Simulator, Tally
from .bus import FC_STARTUP_LATENCY, SerialBus

__all__ = ["FibreSwitch"]

MB = 1_000_000


class FibreSwitch:
    """Multiple FC loops behind a non-blocking crossbar.

    Parameters
    ----------
    devices:
        Total number of attached devices (disks + front-end adaptors).
    segments:
        Number of loops. Devices are assigned round-robin
        (device ``i`` lives on loop ``i % segments``).
    loop_rate:
        Wire rate of each loop, bytes/s (100 MB/s FC).
    switch_latency:
        Cut-through latency of the crossbar per crossing.
    """

    def __init__(self, sim: Simulator, devices: int, segments: int = 4,
                 loop_rate: float = 100 * MB,
                 switch_latency: float = 5e-6,
                 name: str = "fsw"):
        if devices < 1:
            raise ValueError(f"need at least one device, got {devices}")
        if segments < 1:
            raise ValueError(f"need at least one segment, got {segments}")
        self.sim = sim
        self.devices = devices
        self.segments = segments
        self.switch_latency = switch_latency
        self.name = name
        self.loops: List[SerialBus] = [
            SerialBus(sim, loop_rate, startup=FC_STARTUP_LATENCY,
                      name=f"{name}.loop{i}")
            for i in range(segments)
        ]
        self.crossings = Counter(f"{name}.crossings")
        self.transfer_times = Tally(f"{name}.latency")
        # Loops self-register as `bus.<name>.loop<i>`; this port covers
        # the crossbar itself (a loop_outage here stalls crossings only).
        self.faults = None
        if sim.faults.enabled:
            self.faults = sim.faults.register(f"bus.{name}")

    def segment_of(self, device: int) -> int:
        """Loop index a device is attached to."""
        if not 0 <= device < self.devices:
            raise ValueError(
                f"device {device} out of range [0, {self.devices})")
        return device % self.segments

    @property
    def aggregate_rate(self) -> float:
        """Total wire bandwidth across all loops."""
        return sum(loop.rate for loop in self.loops)

    def transfer(self, src: int, dst: int,
                 nbytes: int) -> Generator[Event, Any, None]:
        """Move ``nbytes`` from device ``src`` to device ``dst``."""
        began = self.sim.now
        tel = self.sim.telemetry
        src_loop = self.loops[self.segment_of(src)]
        dst_loop = self.loops[self.segment_of(dst)]
        if src_loop is dst_loop:
            yield from src_loop.transfer(nbytes)
        else:
            yield from src_loop.transfer(nbytes)
            if self.faults is not None and self.faults.active:
                yield from self.faults.wait_out(
                    self.sim, kinds=("loop_outage",),
                    counter="faults.bus.outage_waits")
            self.crossings.add()
            if tel.enabled:
                tel.spans.instant(
                    "bus", "crossing", f"bus.{self.name}",
                    args={"src": src, "dst": dst, "nbytes": nbytes})
                tel.registry.counter(f"bus.{self.name}.crossings").add()
            if self.switch_latency > 0:
                yield self.sim.pause(self.switch_latency)
            yield from dst_loop.transfer(nbytes)
        self.transfer_times.observe(self.sim.now - began)
        if tel.enabled:
            tel.spans.complete(
                "bus", f"route {src}->{dst}", f"bus.{self.name}",
                began, self.sim.now - began, args={"nbytes": nbytes})

    def bytes_moved(self) -> float:
        return sum(loop.bytes_moved.value for loop in self.loops)

    def utilization(self) -> float:
        return sum(loop.utilization() for loop in self.loops) / self.segments
