"""Queue-based serial I/O interconnect models (FC-AL, SCSI, PCI)."""

from .bus import FC_STARTUP_LATENCY, BusGroup, SerialBus, dual_fc_al
from .fibreswitch import FibreSwitch

__all__ = ["SerialBus", "BusGroup", "dual_fc_al", "FC_STARTUP_LATENCY",
           "FibreSwitch"]
