"""Command-line interface: run tasks and regenerate the paper's results.

Examples::

    python -m repro list
    python -m repro run --arch active --disks 64 --task sort --scale 1/32
    python -m repro run --arch active --disks 64 --task sort --restricted
    python -m repro fig1 --sizes 16,64 --tasks select,sort --scale 1/64
    python -m repro fig3
    python -m repro table1
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .arch import ActiveDiskConfig, MB
from .experiments import (
    config_for,
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig4,
    run_fig5,
    run_table1,
    run_table2,
    run_task,
)
from .workloads import registered_tasks

__all__ = ["main", "parse_scale"]

DEFAULT_SCALE = "1/32"


def parse_scale(text: str) -> float:
    """Parse '1/32', '0.25' or '1' into a scale fraction."""
    text = text.strip()
    if "/" in text:
        numerator, _, denominator = text.partition("/")
        value = float(numerator) / float(denominator)
    else:
        value = float(text)
    if not 0 < value <= 1:
        raise argparse.ArgumentTypeError(
            f"scale must be in (0, 1], got {text!r}")
    return value


def _parse_sizes(text: str) -> List[int]:
    try:
        return [int(token) for token in text.split(",") if token]
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad size list: {text!r}")


def _parse_interval(text: str) -> Optional[float]:
    """Parse a sampling interval; 0 disables periodic sampling."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad interval: {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"sample interval must be >= 0, got {text!r}")
    return value or None


def _parse_tasks(text: str) -> List[str]:
    tasks = [token for token in text.split(",") if token]
    unknown = set(tasks) - set(registered_tasks())
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown tasks: {', '.join(sorted(unknown))}")
    return tasks


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=("Active Disks for Decision Support (HPCA 2000) — "
                     "simulator and experiment harness"))
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list tasks and architectures")

    everything = sub.add_parser(
        "all", help="regenerate every table and figure in one report")
    everything.add_argument("--scale", type=parse_scale,
                            default=DEFAULT_SCALE)
    everything.add_argument("--sizes", type=_parse_sizes, default=None)
    everything.add_argument("--out", default=None,
                            help="also write the report to this file")

    scorecard = sub.add_parser(
        "scorecard", help="check every paper claim, print pass/fail")
    scorecard.add_argument("--scale", type=parse_scale, default="1/64")

    run = sub.add_parser("run", help="simulate one task on one machine")
    run.add_argument("--arch", choices=("active", "cluster", "smp"),
                     required=True)
    run.add_argument("--disks", type=int, default=64)
    run.add_argument("--task", choices=registered_tasks(), required=True)
    run.add_argument("--scale", type=parse_scale, default=DEFAULT_SCALE)
    run.add_argument("--memory-mb", type=int, default=None,
                     help="Active Disk memory per disk (default 32)")
    run.add_argument("--interconnect-mb", type=float, default=None,
                     help="I/O interconnect aggregate MB/s (default 200)")
    run.add_argument("--restricted", action="store_true",
                     help="route all Active Disk communication via the "
                          "front-end (Section 4.4)")
    run.add_argument("--fibreswitch", type=int, metavar="SEGMENTS",
                     default=None,
                     help="use a FibreSwitch fabric with this many loops")
    run.add_argument("--trace-out", metavar="FILE", default=None,
                     help="record telemetry and write a Chrome trace-event "
                          "JSON file (open in Perfetto or chrome://tracing)")
    run.add_argument("--metrics-out", metavar="FILE", default=None,
                     help="record telemetry and write a flat metrics JSON "
                          "file")
    run.add_argument("--sample-interval", type=_parse_interval,
                     metavar="SECONDS", default=0.25,
                     help="simulated seconds between telemetry probe "
                          "samples (default 0.25; 0 disables sampling)")
    run.add_argument("--fault-plan", metavar="FILE", default=None,
                     help="run in degraded mode: inject the faults "
                          "described in this JSON plan (see docs/FAULTS.md)")
    run.add_argument("--fault-seed", type=int, metavar="N", default=None,
                     help="override the fault plan's RNG seed")

    degraded = sub.add_parser(
        "degraded", help="clean vs. drive-failure run on every architecture")
    degraded.add_argument("--task", choices=registered_tasks(),
                          default="select")
    degraded.add_argument("--disks", type=int, default=8)
    degraded.add_argument("--failed-disk", type=int, default=1)
    degraded.add_argument("--fail-at", type=float, default=0.3,
                          metavar="FRACTION",
                          help="failure time as a fraction of the clean "
                               "run's elapsed time (default 0.3)")
    degraded.add_argument("--scale", type=parse_scale, default=DEFAULT_SCALE)
    degraded.add_argument("--seed", type=int, default=0)

    for name, helptext, extras in (
            ("fig1", "architecture comparison (Figure 1)", "sizes tasks"),
            ("fig2", "interconnect bandwidth (Figure 2)", "sizes tasks"),
            ("fig3", "sort breakdown (Figure 3)", "sizes"),
            ("fig4", "disk memory (Figure 4)", "sizes tasks"),
            ("fig5", "disk-to-disk communication (Figure 5)",
             "sizes tasks"),
            ("table1", "configuration costs (Table 1)", ""),
            ("table2", "task datasets (Table 2)", "")):
        cmd = sub.add_parser(name, help=helptext)
        if name.startswith("fig"):
            cmd.add_argument("--scale", type=parse_scale,
                             default=DEFAULT_SCALE)
        if "sizes" in extras:
            cmd.add_argument("--sizes", type=_parse_sizes, default=None)
        if "tasks" in extras:
            cmd.add_argument("--tasks", type=_parse_tasks, default=None)
        if name == "table1":
            cmd.add_argument("--disks", type=int, default=64)
    return parser


def _scale_value(args) -> float:
    scale = getattr(args, "scale", DEFAULT_SCALE)
    return parse_scale(scale) if isinstance(scale, str) else scale


def _command_list(_args) -> str:
    lines = ["tasks:"]
    lines.extend(f"  {task}" for task in registered_tasks())
    lines.append("architectures:")
    lines.extend(f"  {arch}" for arch in ("active", "cluster", "smp"))
    return "\n".join(lines)


def _command_run(args) -> str:
    config = config_for(args.arch, args.disks)
    if isinstance(config, ActiveDiskConfig):
        if args.memory_mb:
            config = config.with_memory(args.memory_mb * MB)
        if args.restricted:
            config = config.restricted()
        if args.fibreswitch:
            config = config.with_fibreswitch(args.fibreswitch)
    if args.interconnect_mb:
        config = config.with_interconnect(args.interconnect_mb * MB)
    scale = _scale_value(args)
    telemetry = None
    if args.trace_out or args.metrics_out:
        from .telemetry import Telemetry
        telemetry = Telemetry(sample_interval=args.sample_interval)
    fault_plan = None
    if args.fault_plan:
        from .faults import FaultPlan
        fault_plan = FaultPlan.from_file(args.fault_plan)
    result = run_task(config, args.task, scale, telemetry=telemetry,
                      fault_plan=fault_plan, fault_seed=args.fault_seed)
    lines = [
        f"{args.task} on {args.arch} / {args.disks} disks "
        f"(scale {scale:g})",
        f"elapsed: {result.elapsed:.3f} simulated seconds",
    ]
    for phase in result.phases:
        parts = ", ".join(f"{k}={v:.0%}"
                          for k, v in sorted(phase.fractions().items()))
        lines.append(f"  phase {phase.name}: {phase.elapsed:.3f}s ({parts})")
    for key, value in sorted(result.extras.items()):
        lines.append(f"  {key}: {value:,.0f}"
                     if value >= 100 else f"  {key}: {value:.3f}")
    if telemetry is not None:
        from .telemetry import write_chrome_trace, write_metrics_json
        events = len(telemetry.spans)
        if args.trace_out:
            write_chrome_trace(telemetry, args.trace_out)
            lines.append(f"trace: {args.trace_out} ({events} events; "
                         f"open in https://ui.perfetto.dev)")
        if args.metrics_out:
            write_metrics_json(telemetry, args.metrics_out)
            lines.append(f"metrics: {args.metrics_out} "
                         f"({len(telemetry.registry)} metrics)")
    return "\n".join(lines)


def _command_degraded(args) -> str:
    from .experiments import run_degraded_sweep
    result = run_degraded_sweep(
        task=args.task, num_disks=args.disks,
        failed_disk=args.failed_disk, fail_fraction=args.fail_at,
        scale=_scale_value(args), seed=args.seed)
    lines = [
        f"{args.task} with disk.{args.failed_disk} failing at "
        f"{args.fail_at:.0%} of the clean run ({args.disks} disks)",
    ]
    for cell in result.cells:
        lines.append(
            f"  {cell.arch:8s} clean={cell.baseline.elapsed:8.3f}s  "
            f"degraded={cell.degraded.elapsed:8.3f}s  "
            f"inflation={cell.inflation:.3f}x")
        for key, value in sorted(cell.counters.items()):
            lines.append(f"           {key}: {value:,.0f}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        print(_command_list(args))
        return 0
    if args.command == "run":
        print(_command_run(args))
        return 0
    if args.command == "degraded":
        print(_command_degraded(args))
        return 0
    if args.command == "scorecard":
        from .experiments import run_scorecard
        results, table = run_scorecard(scale=_scale_value(args))
        print(table)
        return 0 if all(r.passed for r in results) else 1
    if args.command == "all":
        from .experiments import run_all
        report = run_all(scale=_scale_value(args), sizes=args.sizes)
        print(report)
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(report + "\n")
        return 0
    if args.command == "table1":
        print(run_table1(args.disks))
        return 0
    if args.command == "table2":
        print(run_table2())
        return 0
    scale = _scale_value(args)
    if args.command == "fig1":
        print(run_fig1(sizes=args.sizes or (16, 32, 64, 128),
                       tasks=args.tasks, scale=scale).render())
    elif args.command == "fig2":
        print(run_fig2(sizes=args.sizes or (64, 128),
                       tasks=args.tasks, scale=scale).render())
    elif args.command == "fig3":
        print(run_fig3(sizes=args.sizes or (16, 32, 64, 128),
                       scale=scale).render())
    elif args.command == "fig4":
        print(run_fig4(sizes=args.sizes or (16, 32, 64, 128),
                       tasks=args.tasks, scale=scale).render())
    elif args.command == "fig5":
        print(run_fig5(sizes=args.sizes or (32, 64, 128),
                       tasks=args.tasks, scale=scale).render())
    else:  # pragma: no cover - argparse enforces choices
        raise AssertionError(args.command)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
