"""Command-line interface: run tasks and regenerate the paper's results.

Examples::

    python -m repro list
    python -m repro run --arch active --disks 64 --task sort --scale 1/32
    python -m repro run --arch active --disks 64 --task sort --restricted
    python -m repro fig1 --sizes 16,64 --tasks select,sort --scale 1/64
    python -m repro fig3
    python -m repro table1
    python -m repro doctor
    python -m repro doctor --journal results/fig1.journal.jsonl
    python -m repro sweep fig1 --jobs 4 --retries 1 --scale 1/64
    python -m repro resume results/fig1.journal.jsonl
    python -m repro traffic --arch active --sessions 20000
    python -m repro traffic --arch all --policy fair-share --loads 0.5,2
    python -m repro traffic --smoke
    python -m repro audit --quick
    python -m repro serve --workers 2
    python -m repro submit fig1 --scale 1/64 --wait
    python -m repro status
    python -m repro chaos --quick --seed 7

``audit`` arms the runtime conservation-law auditors
(``docs/INVARIANTS.md``): a seeded batch of differential fuzz cells runs
each small simulation through the audited fast kernel loop and the
checked loop and requires bit-identical results, then Figure 1 is
regenerated with every auditor armed and byte-compared to ``results/``.

``sweep`` runs a figure grid through the resilient harness: progress is
journaled, workers are process-isolated (``--jobs``), hung cells time
out (``--timeout``), failing cells retry then quarantine (``--retries``),
and a killed sweep picks up where it left off via ``resume`` (see
``docs/HARNESS.md``).

``serve`` / ``submit`` / ``status`` / ``worker`` are the distributed
sweep service: a coordinator with a persistent job queue dispatches
cells to heartbeating workers over a socket, reassigning the cells of
any worker that dies mid-run (see ``docs/SERVICE.md``).

``traffic`` drives an open-loop multi-tenant session stream (seeded
Poisson arrivals, Zipf tenant/task mix) at each architecture through a
bounded admission queue with a configurable shedding policy, and
renders latency (exact p50/p95/p99) against offered load — the
saturation curve. ``--smoke`` is the CI overload gate
(see ``docs/TRAFFIC.md``).

``chaos`` is the service's adversary: it replays a seeded schedule of
message drops, duplicates, delays, partitions and kills against a live
coordinator + workers and asserts the artifacts stay byte-identical to
an inline sweep with every cell applied exactly once
(see ``docs/CHAOS.md``).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from .arch import ActiveDiskConfig, MB
from .experiments import (
    config_for,
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig4,
    run_fig5,
    run_table1,
    run_table2,
    run_task,
)
from .service.requests import FIGURES
from .workloads import registered_tasks

__all__ = ["main", "parse_scale"]

DEFAULT_SCALE = "1/32"

#: Figure sweeps the harness commands know how to run and resume:
#: name -> default farm sizes (one source of truth with the service).
FIG_SWEEPS = {name: driver.default_sizes
              for name, driver in FIGURES.items()}


def parse_scale(text: str) -> float:
    """Parse '1/32', '0.25' or '1' into a scale fraction."""
    text = text.strip()
    if "/" in text:
        numerator, _, denominator = text.partition("/")
        value = float(numerator) / float(denominator)
    else:
        value = float(text)
    if not 0 < value <= 1:
        raise argparse.ArgumentTypeError(
            f"scale must be in (0, 1], got {text!r}")
    return value


def _parse_sizes(text: str) -> List[int]:
    try:
        return [int(token) for token in text.split(",") if token]
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad size list: {text!r}")


def _parse_interval(text: str) -> Optional[float]:
    """Parse a sampling interval; 0 disables periodic sampling."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad interval: {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"sample interval must be >= 0, got {text!r}")
    return value or None


def _parse_loads(text: str) -> List[float]:
    try:
        loads = [float(token) for token in text.split(",") if token]
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad load list: {text!r}")
    if not loads or any(load <= 0 for load in loads):
        raise argparse.ArgumentTypeError(
            f"offered loads must be positive: {text!r}")
    return loads


def _parse_tasks(text: str) -> List[str]:
    tasks = [token for token in text.split(",") if token]
    unknown = set(tasks) - set(registered_tasks())
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown tasks: {', '.join(sorted(unknown))}")
    return tasks


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=("Active Disks for Decision Support (HPCA 2000) — "
                     "simulator and experiment harness"))
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list tasks and architectures")

    everything = sub.add_parser(
        "all", help="regenerate every table and figure in one report")
    everything.add_argument("--scale", type=parse_scale,
                            default=DEFAULT_SCALE)
    everything.add_argument("--sizes", type=_parse_sizes, default=None)
    everything.add_argument("--out", default=None,
                            help="also write the report to this file")

    scorecard = sub.add_parser(
        "scorecard", help="check every paper claim, print pass/fail")
    scorecard.add_argument("--scale", type=parse_scale, default="1/64")

    run = sub.add_parser("run", help="simulate one task on one machine")
    run.add_argument("--arch", choices=("active", "cluster", "smp"),
                     required=True)
    run.add_argument("--disks", type=int, default=64)
    run.add_argument("--task", choices=registered_tasks(), required=True)
    run.add_argument("--scale", type=parse_scale, default=DEFAULT_SCALE)
    run.add_argument("--memory-mb", type=int, default=None,
                     help="Active Disk memory per disk (default 32)")
    run.add_argument("--interconnect-mb", type=float, default=None,
                     help="I/O interconnect aggregate MB/s (default 200)")
    run.add_argument("--restricted", action="store_true",
                     help="route all Active Disk communication via the "
                          "front-end (Section 4.4)")
    run.add_argument("--fibreswitch", type=int, metavar="SEGMENTS",
                     default=None,
                     help="use a FibreSwitch fabric with this many loops")
    run.add_argument("--trace-out", metavar="FILE", default=None,
                     help="record telemetry and write a Chrome trace-event "
                          "JSON file (open in Perfetto or chrome://tracing)")
    run.add_argument("--metrics-out", metavar="FILE", default=None,
                     help="record telemetry and write a flat metrics JSON "
                          "file")
    run.add_argument("--sample-interval", type=_parse_interval,
                     metavar="SECONDS", default=0.25,
                     help="simulated seconds between telemetry probe "
                          "samples (default 0.25; 0 disables sampling)")
    run.add_argument("--fault-plan", metavar="FILE", default=None,
                     help="run in degraded mode: inject the faults "
                          "described in this JSON plan (see docs/FAULTS.md)")
    run.add_argument("--fault-seed", type=int, metavar="N", default=None,
                     help="override the fault plan's RNG seed")
    _add_queue_flag(run)

    degraded = sub.add_parser(
        "degraded", help="clean vs. drive-failure run on every architecture")
    degraded.add_argument("--task", choices=registered_tasks(),
                          default="select")
    degraded.add_argument("--disks", type=int, default=8)
    degraded.add_argument("--failed-disk", type=int, default=1)
    degraded.add_argument("--fail-at", type=float, default=0.3,
                          metavar="FRACTION",
                          help="failure time as a fraction of the clean "
                               "run's elapsed time (default 0.3)")
    degraded.add_argument("--scale", type=parse_scale, default=DEFAULT_SCALE)
    degraded.add_argument("--seed", type=int, default=0)

    traffic = sub.add_parser(
        "traffic", help="open-loop multi-tenant traffic: offered-load "
                        "sweep with admission control, load shedding and "
                        "a saturation-curve report (see docs/TRAFFIC.md)")
    traffic.add_argument("--arch", choices=("active", "cluster", "smp",
                                            "all"),
                         default="active",
                         help="architecture to drive (default active)")
    traffic.add_argument("--disks", type=int, default=16,
                         help="farm size: disks / nodes / CPUs "
                              "(default 16)")
    traffic.add_argument("--sessions", type=int, default=2000, metavar="N",
                         help="open-loop sessions per load point "
                              "(default 2000); memory stays flat no "
                              "matter how large")
    traffic.add_argument("--seed", type=int, default=0,
                         help="arrival-stream seed (default 0); the same "
                              "seed replays the same byte-identical run")
    traffic.add_argument("--loads", type=_parse_loads, default=None,
                         metavar="X,Y,...",
                         help="offered loads as multiples of capacity "
                              "(default 0.5,0.9,1.5)")
    traffic.add_argument("--policy", choices=("reject-newest",
                                              "deadline-drop",
                                              "fair-share"),
                         default="reject-newest",
                         help="shedding policy at the admission queue "
                              "(default reject-newest)")
    traffic.add_argument("--queue-capacity", type=int, default=64,
                         metavar="N",
                         help="bounded admission queue depth (default 64)")
    traffic.add_argument("--tenants", type=int, default=4, metavar="N",
                         help="tenants sharing the machine (default 4)")
    traffic.add_argument("--tenant-theta", type=float, default=1.0,
                         metavar="T",
                         help="Zipf skew across tenants (default 1.0)")
    traffic.add_argument("--task-theta", type=float, default=0.5,
                         metavar="T",
                         help="Zipf skew across tasks (default 0.5)")
    traffic.add_argument("--tasks", type=_parse_tasks, default=None,
                         help="task subset for the session mix "
                              "(default: all eight)")
    traffic.add_argument("--scale", type=parse_scale, default="1/128",
                         help="dataset scale per session (default 1/128)")
    traffic.add_argument("--deadline-factor", type=float, default=8.0,
                         metavar="F",
                         help="deadline = arrival + F x service demand; "
                              "0 disables deadlines so overload sheds "
                              "instead of missing (default 8)")
    traffic.add_argument("--journal", metavar="FILE", default=None,
                         help="journal the grid through the resilient "
                              "harness (resumable with 'repro resume')")
    traffic.add_argument("--out-dir", default="results",
                         help="directory for traffic.txt/traffic.csv and "
                              "MANIFEST.json (default results)")
    traffic.add_argument("--smoke", action="store_true",
                         help="CI gate: light + saturating load on every "
                              "architecture with deadlines off; asserts "
                              "zero sheds when light, nonzero sheds with "
                              "bounded queues and flat memory when "
                              "saturated")
    _add_harness_flags(traffic)

    sweep = sub.add_parser(
        "sweep", help="run a figure grid through the resilient harness "
                      "(journaled, resumable, process-isolated)")
    sweep.add_argument("figure", choices=sorted(FIG_SWEEPS))
    sweep.add_argument("--sizes", type=_parse_sizes, default=None)
    sweep.add_argument("--tasks", type=_parse_tasks, default=None,
                       help="task subset (ignored by fig3)")
    sweep.add_argument("--scale", type=parse_scale, default=DEFAULT_SCALE)
    sweep.add_argument("--journal", metavar="FILE", default=None,
                       help="journal path (default "
                            "<out-dir>/<figure>.journal.jsonl)")
    sweep.add_argument("--out-dir", default="results",
                       help="directory for .txt/.csv artifacts and "
                            "MANIFEST.json (default results)")
    _add_queue_flag(sweep)
    _add_harness_flags(sweep)

    resume = sub.add_parser(
        "resume", help="resume an interrupted sweep from its journal")
    resume.add_argument("journal", help="the sweep's .journal.jsonl file")
    resume.add_argument("--out-dir", default=None,
                        help="rewrite figure artifacts here on completion "
                             "(default: the journal's directory)")
    _add_harness_flags(resume)

    serve = sub.add_parser(
        "serve", help="run the sweep service: coordinator plus N local "
                      "workers (see docs/SERVICE.md)")
    serve.add_argument("--socket", metavar="ADDR", default=None,
                       help="unix socket path or host:port to listen on "
                            "(default <state-dir>/coordinator.sock)")
    serve.add_argument("--state-dir", default=None, metavar="DIR",
                       help="queue + job journals directory "
                            "(default results/service)")
    serve.add_argument("--out-dir", default="results",
                       help="artifact directory for finished jobs "
                            "(default results)")
    serve.add_argument("--workers", type=int, default=2, metavar="N",
                       help="local worker processes to spawn (default 2; "
                            "0 = coordinator only, attach with "
                            "'repro worker')")
    serve.add_argument("--retries", type=int, default=1, metavar="K",
                       help="attempts before a cell is quarantined "
                            "(default 1); lost workers consume attempts")
    serve.add_argument("--cell-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-cell timeout on each worker (implies "
                            "subprocess isolation; default none)")
    serve.add_argument("--heartbeat", type=float, default=0.5,
                       metavar="SECONDS",
                       help="worker heartbeat interval (default 0.5; "
                            "missing ~6 in a row loses the worker)")
    serve.add_argument("--exit-after-jobs", type=int, default=None,
                       metavar="N",
                       help="exit once N jobs reach done/failed "
                            "(for scripts and CI; default: serve forever)")
    serve.add_argument("--max-pending", type=int, default=None,
                       metavar="N",
                       help="admission control: reject submits once N "
                            "jobs are open (default: unbounded)")
    serve.add_argument("--assign-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="reassign a cell stuck in flight this long "
                            "(default: wait forever; set it on lossy "
                            "links)")

    submit = sub.add_parser(
        "submit", help="enqueue a figure sweep on a running service")
    submit.add_argument("figure", choices=sorted(FIG_SWEEPS))
    submit.add_argument("--sizes", type=_parse_sizes, default=None)
    submit.add_argument("--tasks", type=_parse_tasks, default=None,
                        help="task subset (ignored by fig3)")
    submit.add_argument("--scale", type=parse_scale, default=DEFAULT_SCALE)
    submit.add_argument("--socket", metavar="ADDR", default=None,
                        help="coordinator address (default "
                             "results/service/coordinator.sock)")
    submit.add_argument("--wait", action="store_true",
                        help="poll until the job is done/failed and exit "
                             "nonzero on failure")
    submit.add_argument("--wait-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="give up waiting after this long")
    _add_queue_flag(submit)

    status = sub.add_parser(
        "status", help="show a running service's queue, workers and "
                       "counters")
    status.add_argument("--socket", metavar="ADDR", default=None,
                        help="coordinator address (default "
                             "results/service/coordinator.sock)")

    worker = sub.add_parser(
        "worker", help="attach one extra worker to a running service")
    worker.add_argument("--socket", metavar="ADDR", default=None,
                        help="coordinator address (default "
                             "results/service/coordinator.sock)")
    worker.add_argument("--id", dest="worker_id", default=None,
                        help="worker name in journals and status output "
                             "(default pid<N>)")
    worker.add_argument("--heartbeat", type=float, default=0.5,
                        metavar="SECONDS")
    worker.add_argument("--cell-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-cell timeout (implies subprocess "
                             "isolation; default none)")

    chaos = sub.add_parser(
        "chaos", help="run the service chaos gauntlet: seeded message "
                      "drops/duplicates/delays/partitions against a live "
                      "coordinator + workers, asserting artifacts stay "
                      "byte-identical to an inline sweep "
                      "(see docs/CHAOS.md)")
    chaos.add_argument("--quick", action="store_true",
                       help="CI smoke setting: 3-cell fig1 subset")
    chaos.add_argument("--seed", type=int, default=0, metavar="S",
                       help="chaos schedule seed (default 0); the same "
                            "seed replays the same schedule")
    chaos.add_argument("--plan", metavar="FILE", default=None,
                       help="JSON chaos plan file (default: the stock "
                            "drop+duplicate+delay+partition plan)")
    chaos.add_argument("--workers", type=int, default=2, metavar="N",
                       help="socket worker processes (default 2)")
    chaos.add_argument("--state-dir", default=None, metavar="DIR",
                       help="scratch dir for socket, journals and "
                            "artifacts (default results/chaos)")
    chaos.add_argument("--no-kill", action="store_true",
                       help="skip the seeded mid-job worker SIGKILL")

    doctor = sub.add_parser(
        "doctor", help="check the environment and smoke-simulate one "
                       "second on each architecture")
    doctor.add_argument("--journal", metavar="FILE", default=None,
                        help="also summarize this sweep journal: cell "
                             "counts plus any quarantined invariant "
                             "violations with their ledgers")
    doctor.add_argument("--verify-artifacts", nargs="?", const="results",
                        default=None, metavar="DIR",
                        help="re-hash every artifact in DIR (default "
                             "results/) against its MANIFEST.json and "
                             "report per-file drift")

    crashtest = sub.add_parser(
        "crashtest", help="run the durability gauntlet: crash the "
                          "persistence stack at every write/fsync/"
                          "rename boundary and assert recovery "
                          "(see docs/DURABILITY.md)")
    crashtest.add_argument("--points", type=int, default=None,
                           metavar="N",
                           help="test at most N evenly-sampled crash "
                                "points per workload (default: every "
                                "enumerated boundary)")
    crashtest.add_argument("--seed", type=int, default=0, metavar="S",
                           help="fault-plan seed (default 0)")
    crashtest.add_argument("--quick", action="store_true",
                           help="CI smoke setting: smaller workloads, "
                                "fewer boundaries")
    crashtest.add_argument("--out-dir", default="results", metavar="DIR",
                           help="where crashtest-report.json and any "
                                "failing crash sandboxes land "
                                "(default results/)")

    audit = sub.add_parser(
        "audit", help="arm the conservation-law auditors: differential "
                      "fuzz of the kernel loops plus an armed Figure 1 "
                      "identity check (see docs/INVARIANTS.md)")
    audit.add_argument("--cells", type=int, default=None, metavar="N",
                       help="differential fuzz cells (default 25; "
                            "10 with --quick)")
    audit.add_argument("--seed", type=int, default=0, metavar="S",
                       help="fuzz batch seed (default 0)")
    audit.add_argument("--quick", action="store_true",
                       help="CI smoke setting: fewer cells, 16-disk "
                            "identity column")
    audit.add_argument("--journal", metavar="FILE", default=None,
                       help="journal every fuzz cell (and any violation "
                            "report) to this JSONL file")
    audit.add_argument("--out-dir", default=None, metavar="DIR",
                       help="write audit-violations.json here when "
                            "anything fails")
    audit.add_argument("--no-identity", action="store_true",
                       help="skip the armed fig1 identity check "
                            "(fuzz-only run)")

    bench = sub.add_parser(
        "bench", help="run the perf benchmark suites and write "
                      "BENCH_kernel.json / BENCH_e2e.json")
    bench.add_argument("--quick", action="store_true",
                       help="small shapes, single repeat, 16-disk "
                            "identity subset (the CI smoke setting)")
    bench.add_argument("--suite", choices=("kernel", "e2e", "all"),
                       default="all")
    bench.add_argument("--repeats", type=int, default=3, metavar="N",
                       help="timing repeats per benchmark; the best "
                            "wall clock is kept (default 3)")
    bench.add_argument("--out-dir", default=".",
                       help="directory for BENCH_*.json (default .)")
    bench.add_argument("--no-identity", action="store_true",
                       help="skip the fig1 byte-identity guard "
                            "(timing-only run)")
    bench.add_argument("--compare", metavar="DIR", default=None,
                       help="also print per-benchmark speedups against "
                            "the BENCH_*.json files in this directory "
                            "(e.g. a baseline worktree)")
    bench.add_argument("--fail-below", type=float, metavar="RATIO",
                       default=None,
                       help="with --compare: exit nonzero when any "
                            "benchmark's events/s ratio (or wall "
                            "speedup) drops below RATIO, so CI can "
                            "gate on throughput regressions")
    _add_queue_flag(bench)

    for name, helptext, extras in (
            ("fig1", "architecture comparison (Figure 1)", "sizes tasks"),
            ("fig2", "interconnect bandwidth (Figure 2)", "sizes tasks"),
            ("fig3", "sort breakdown (Figure 3)", "sizes"),
            ("fig4", "disk memory (Figure 4)", "sizes tasks"),
            ("fig5", "disk-to-disk communication (Figure 5)",
             "sizes tasks"),
            ("table1", "configuration costs (Table 1)", ""),
            ("table2", "task datasets (Table 2)", "")):
        cmd = sub.add_parser(name, help=helptext)
        if name.startswith("fig"):
            cmd.add_argument("--scale", type=parse_scale,
                             default=DEFAULT_SCALE)
        if "sizes" in extras:
            cmd.add_argument("--sizes", type=_parse_sizes, default=None)
        if "tasks" in extras:
            cmd.add_argument("--tasks", type=_parse_tasks, default=None)
        if name == "table1":
            cmd.add_argument("--disks", type=int, default=64)
    return parser


def _add_queue_flag(cmd) -> None:
    from .sim.queues import QUEUE_BACKENDS
    cmd.add_argument("--queue-backend", choices=sorted(QUEUE_BACKENDS),
                     default=None, metavar="NAME",
                     help="kernel event-queue backend "
                          f"({'/'.join(sorted(QUEUE_BACKENDS))}; default: "
                          "REPRO_SIM_QUEUE or the built-in default)")


def _add_harness_flags(cmd) -> None:
    cmd.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="worker processes; > 1 isolates each cell in "
                          "its own subprocess (default 1)")
    cmd.add_argument("--timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="per-cell wall-clock timeout (implies process "
                          "isolation; default none)")
    cmd.add_argument("--retries", type=int, default=1, metavar="K",
                     help="retry attempts before a cell is quarantined "
                          "(default 1)")
    cmd.add_argument("--memory-budget", type=int, default=None,
                     metavar="MB",
                     help="per-cell address-space budget in MB (implies "
                          "process isolation); a cell that busts it is "
                          "quarantined as 'oom', not retried")


def _scale_value(args) -> float:
    scale = getattr(args, "scale", DEFAULT_SCALE)
    return parse_scale(scale) if isinstance(scale, str) else scale


def _command_list(_args) -> str:
    lines = ["tasks:"]
    lines.extend(f"  {task}" for task in registered_tasks())
    lines.append("architectures:")
    lines.extend(f"  {arch}" for arch in ("active", "cluster", "smp"))
    return "\n".join(lines)


def _command_run(args) -> str:
    config = config_for(args.arch, args.disks)
    if isinstance(config, ActiveDiskConfig):
        if args.memory_mb:
            config = config.with_memory(args.memory_mb * MB)
        if args.restricted:
            config = config.restricted()
        if args.fibreswitch:
            config = config.with_fibreswitch(args.fibreswitch)
    if args.interconnect_mb:
        config = config.with_interconnect(args.interconnect_mb * MB)
    scale = _scale_value(args)
    telemetry = None
    if args.trace_out or args.metrics_out:
        from .telemetry import Telemetry
        telemetry = Telemetry(sample_interval=args.sample_interval)
    fault_plan = None
    if args.fault_plan:
        from .faults import FaultPlan
        fault_plan = FaultPlan.from_file(args.fault_plan)
    result = run_task(config, args.task, scale, telemetry=telemetry,
                      fault_plan=fault_plan, fault_seed=args.fault_seed,
                      queue_backend=args.queue_backend)
    lines = [
        f"{args.task} on {args.arch} / {args.disks} disks "
        f"(scale {scale:g})",
        f"elapsed: {result.elapsed:.3f} simulated seconds",
    ]
    for phase in result.phases:
        parts = ", ".join(f"{k}={v:.0%}"
                          for k, v in sorted(phase.fractions().items()))
        lines.append(f"  phase {phase.name}: {phase.elapsed:.3f}s ({parts})")
    for key, value in sorted(result.extras.items()):
        lines.append(f"  {key}: {value:,.0f}"
                     if value >= 100 else f"  {key}: {value:.3f}")
    if telemetry is not None:
        from .telemetry import write_chrome_trace, write_metrics_json
        events = len(telemetry.spans)
        if args.trace_out:
            write_chrome_trace(telemetry, args.trace_out)
            lines.append(f"trace: {args.trace_out} ({events} events; "
                         f"open in https://ui.perfetto.dev)")
        if args.metrics_out:
            write_metrics_json(telemetry, args.metrics_out)
            lines.append(f"metrics: {args.metrics_out} "
                         f"({len(telemetry.registry)} metrics)")
    return "\n".join(lines)


def _command_degraded(args) -> str:
    from .experiments import run_degraded_sweep
    result = run_degraded_sweep(
        task=args.task, num_disks=args.disks,
        failed_disk=args.failed_disk, fail_fraction=args.fail_at,
        scale=_scale_value(args), seed=args.seed)
    lines = [
        f"{args.task} with disk.{args.failed_disk} failing at "
        f"{args.fail_at:.0%} of the clean run ({args.disks} disks)",
    ]
    for cell in result.cells:
        lines.append(
            f"  {cell.arch:8s} clean={cell.baseline.elapsed:8.3f}s  "
            f"degraded={cell.degraded.elapsed:8.3f}s  "
            f"inflation={cell.inflation:.3f}x")
        for key, value in sorted(cell.counters.items()):
            lines.append(f"           {key}: {value:,.0f}")
    return "\n".join(lines)


def _traffic_grid(args):
    """Expand the traffic CLI flags into keyed sweep cells."""
    from .experiments import ARCHITECTURES
    from .traffic import DEFAULT_LOADS, TrafficConfig, traffic_cell

    archs = ARCHITECTURES if args.arch == "all" else (args.arch,)
    loads = tuple(args.loads) if args.loads else DEFAULT_LOADS
    grid = {}
    for arch in archs:
        for load in loads:
            tconfig = TrafficConfig(
                arch=arch, num_disks=args.disks, sessions=args.sessions,
                seed=args.seed, load=load, policy=args.policy,
                queue_capacity=args.queue_capacity, tenants=args.tenants,
                tenant_theta=args.tenant_theta,
                task_theta=args.task_theta,
                tasks=tuple(args.tasks) if args.tasks else (),
                scale=_scale_value(args),
                deadline_factor=args.deadline_factor)
            grid[(arch, args.disks, load, args.policy)] = \
                traffic_cell(tconfig)
    return grid


def _command_traffic(args) -> int:
    """Offered-load sweep -> saturation-curve artifacts (or --smoke)."""
    if args.smoke:
        return _traffic_smoke(args)
    from .experiments import SweepRunner
    from .experiments.artifacts import atomic_write_text, write_manifest
    from .experiments.export import rows_to_csv
    from .experiments.harness import execute_cells
    from .traffic import TrafficFigure, traffic_rows

    grid = _traffic_grid(args)
    runner = None
    journal = args.journal
    if journal or args.jobs > 1 or args.timeout is not None \
            or args.memory_budget is not None:
        if journal is None:
            os.makedirs(args.out_dir, exist_ok=True)
            journal = os.path.join(args.out_dir, "traffic.journal.jsonl")
        runner = SweepRunner(journal, jobs=args.jobs, timeout=args.timeout,
                             retries=args.retries,
                             memory_budget_mb=args.memory_budget)
    results = execute_cells(list(grid.values()), runner)
    figure = TrafficFigure({point: results[spec.key].extras
                            for point, spec in grid.items()})
    text = figure.render()
    os.makedirs(args.out_dir, exist_ok=True)
    atomic_write_text(os.path.join(args.out_dir, "traffic.txt"),
                      text + "\n")
    atomic_write_text(os.path.join(args.out_dir, "traffic.csv"),
                      rows_to_csv(traffic_rows(figure)))
    write_manifest(args.out_dir)
    print(text)
    tail = []
    if runner is not None:
        counters = ", ".join(f"{name}={value}"
                             for name, value in runner.counters.items()
                             if value)
        tail.append(f"harness: {counters or 'nothing to do'}")
        tail.append(f"journal: {journal}")
    tail.append(f"artifacts: {args.out_dir}/traffic.txt, "
                f"{args.out_dir}/traffic.csv "
                f"(checksums in {args.out_dir}/MANIFEST.json)")
    print("\n".join(tail))
    return 0


def _traffic_smoke(args) -> int:
    """The CI overload gate: every architecture, deadlines off.

    With deadlines disabled the admission policy is the only escape
    valve, so the assertions are sharp: a light stream must shed
    nothing, a saturating one must shed without the queue ever busting
    its bound, and the Python-heap peak must stay flat in the session
    count (both flatness runs exceed the quantile reservoir cap, so
    any growth is a real leak).
    """
    import tracemalloc

    from .experiments import ARCHITECTURES
    from .experiments.artifacts import atomic_write_text
    from .traffic import TrafficConfig, run_traffic

    def cell(arch: str, load: float, sessions: int) -> "TrafficConfig":
        return TrafficConfig(
            arch=arch, num_disks=args.disks, sessions=sessions,
            seed=args.seed, load=load, policy=args.policy,
            queue_capacity=args.queue_capacity, tenants=args.tenants,
            tenant_theta=args.tenant_theta, task_theta=args.task_theta,
            tasks=tuple(args.tasks) if args.tasks else (),
            scale=_scale_value(args), deadline_factor=0.0)

    failures = []
    lines = ["traffic smoke: open-loop overload gate (deadlines off)"]
    for arch in ARCHITECTURES:
        light = run_traffic(cell(arch, 0.4, 400))
        heavy = run_traffic(cell(arch, 1.6, 800))
        for name, ok in (
                ("light load sheds nothing", light.shed == 0),
                ("light load accounted", light.accounted),
                ("saturating load sheds", heavy.shed > 0),
                ("saturating load accounted", heavy.accounted),
                ("queue stays bounded", heavy.peak_queue_depth
                 <= heavy.config.queue_capacity)):
            if not ok:
                failures.append(f"{arch}: {name}")
        sojourn = heavy.sojourn
        lines.append(
            f"  {arch:8s} light: shed {light.shed}/{light.arrivals}"
            f"  saturated: shed {heavy.shed}/{heavy.arrivals}"
            f" peak queue {heavy.peak_queue_depth}"
            f"/{heavy.config.queue_capacity}"
            f" p50 {sojourn['p50']:.3f}s p95 {sojourn['p95']:.3f}s"
            f" p99 {sojourn['p99']:.3f}s")

    # Both flatness points lie past the point where the quantile
    # reservoirs saturate (4096 samples), so the only growth left to
    # measure would be a genuine per-session leak.
    sizes = (8000, 16000)
    peaks = []
    for sessions in sizes:
        tracemalloc.start()
        run_traffic(cell("active", 1.6, sessions))
        peaks.append(tracemalloc.get_traced_memory()[1])
        tracemalloc.stop()
    ratio = peaks[1] / peaks[0] if peaks[0] else float("inf")
    lines.append(f"  memory: heap peak {peaks[0] / 1024:.0f} KiB at "
                 f"{sizes[0]} sessions, {peaks[1] / 1024:.0f} KiB at "
                 f"{sizes[1]} (ratio {ratio:.3f})")
    if ratio > 1.10:
        failures.append(
            f"heap peak grows with session count (x{ratio:.3f})")

    lines.append("traffic smoke: "
                 + ("ok" if not failures
                    else "FAIL: " + "; ".join(failures)))
    report = "\n".join(lines)
    print(report)
    os.makedirs(args.out_dir, exist_ok=True)
    atomic_write_text(os.path.join(args.out_dir, "traffic-smoke.txt"),
                      report + "\n")
    return 1 if failures else 0


def _run_figure_sweep(figure: str, sizes, tasks, scale: float,
                      journal: Optional[str], out_dir: str,
                      jobs: int, timeout: Optional[float],
                      retries: int,
                      memory_budget: Optional[int] = None,
                      queue: Optional[str] = None) -> str:
    """Run one figure through the harness and write crash-safe artifacts."""
    from .experiments import SweepRunner
    from .service.requests import SweepRequest

    request = SweepRequest(figure=figure,
                           sizes=tuple(sizes) if sizes else None,
                           tasks=tuple(tasks) if tasks else None,
                           scale=scale, out_dir=out_dir, queue=queue)
    os.makedirs(out_dir, exist_ok=True)
    if journal is None:
        journal = os.path.join(out_dir, f"{figure}.journal.jsonl")
    runner = SweepRunner(journal, jobs=jobs, timeout=timeout,
                         retries=retries, meta=request.meta(),
                         memory_budget_mb=memory_budget)
    text = request.run_with(runner)
    counters = ", ".join(f"{name}={value}"
                         for name, value in runner.counters.items() if value)
    return (f"{text}\n\n"
            f"harness: {counters or 'nothing to do'}\n"
            f"journal: {journal}\n"
            f"artifacts: {out_dir}/{figure}.txt, {out_dir}/{figure}.csv "
            f"(checksums in {out_dir}/MANIFEST.json)")


def _command_sweep(args) -> str:
    return _run_figure_sweep(
        args.figure, args.sizes, args.tasks, _scale_value(args),
        args.journal, args.out_dir, args.jobs, args.timeout, args.retries,
        args.memory_budget, queue=args.queue_backend)


def _command_resume(args) -> str:
    from .experiments import SweepJournal, resume_sweep

    journal = SweepJournal.load(args.journal)
    meta = journal.meta
    if meta.get("figure") in FIG_SWEEPS:
        out_dir = args.out_dir or meta.get("out_dir") or (
            os.path.dirname(args.journal) or ".")
        return _run_figure_sweep(
            meta["figure"], meta.get("sizes"), meta.get("tasks"),
            meta.get("scale", parse_scale(DEFAULT_SCALE)),
            args.journal, out_dir, args.jobs, args.timeout, args.retries,
            args.memory_budget, queue=meta.get("queue"))
    # A journal without driver metadata: just complete its cells.
    _, results = resume_sweep(args.journal, jobs=args.jobs,
                              timeout=args.timeout, retries=args.retries,
                              memory_budget_mb=args.memory_budget)
    lines = [f"resumed {args.journal}: {len(results)} cell(s) complete"]
    for key in sorted(results):
        lines.append(f"  {key}: {results[key].elapsed:.3f}s")
    return "\n".join(lines)


def _service_address(args) -> str:
    from .service.server import DEFAULT_STATE_DIR, default_socket
    if getattr(args, "socket", None):
        return args.socket
    state_dir = getattr(args, "state_dir", None) or DEFAULT_STATE_DIR
    return default_socket(state_dir)


def _command_serve(args) -> int:
    from .service.server import DEFAULT_STATE_DIR, serve
    state_dir = args.state_dir or DEFAULT_STATE_DIR
    return serve(args.socket,
                 state_dir=state_dir,
                 out_dir=args.out_dir,
                 workers=args.workers,
                 retries=args.retries,
                 heartbeat_interval=args.heartbeat,
                 assign_timeout=args.assign_timeout,
                 max_pending=args.max_pending,
                 cell_timeout=args.cell_timeout,
                 exit_after_jobs=args.exit_after_jobs)


def _command_submit(args) -> int:
    from .service.server import submit_request
    request = {"figure": args.figure, "scale": _scale_value(args)}
    if args.sizes:
        request["sizes"] = list(args.sizes)
    if args.tasks:
        request["tasks"] = list(args.tasks)
    if args.queue_backend:
        request["queue"] = args.queue_backend
    try:
        outcome = submit_request(_service_address(args), request,
                                 wait=args.wait,
                                 wait_timeout=args.wait_timeout,
                                 log=print)
    except (OSError, TimeoutError, ValueError) as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 1
    if not args.wait:
        return 0
    print(f"{outcome['job']}: {outcome['status']}"
          + (f" ({outcome['error']})" if outcome.get("error") else ""))
    return 0 if outcome["status"] == "done" else 1


def _command_status(args) -> int:
    from .service.server import fetch_status, render_status
    address = _service_address(args)
    try:
        payload = fetch_status(address)
    except (OSError, TimeoutError, ValueError) as exc:
        print(f"no service at {address}: {exc}", file=sys.stderr)
        return 1
    print(render_status(payload))
    return 0


def _command_worker(args) -> int:
    from .service.worker import worker_main
    try:
        return worker_main(_service_address(args), args.worker_id,
                           heartbeat_interval=args.heartbeat,
                           cell_timeout=args.cell_timeout)
    except KeyboardInterrupt:
        return 130


def _command_chaos(args) -> int:
    from .service.chaos import ChaosPlan
    from .service.gauntlet import render_report, run_gauntlet
    plan = None
    if args.plan:
        try:
            plan = ChaosPlan.from_file(args.plan)
        except (OSError, ValueError) as exc:
            print(f"chaos: bad plan file: {exc}", file=sys.stderr)
            return 2
    state_dir = args.state_dir or os.path.join("results", "chaos")
    try:
        report = run_gauntlet(state_dir,
                              plan=plan,
                              seed=args.seed,
                              workers=args.workers,
                              quick=args.quick,
                              kill_worker=not args.no_kill,
                              log=print)
    except (OSError, TimeoutError, ValueError) as exc:
        print(f"chaos gauntlet failed to run: {exc}", file=sys.stderr)
        return 1
    print(render_report(report))
    return 0 if report["ok"] else 1


def _command_crashtest(args) -> int:
    """Durability gauntlet (crash-point enumeration + fault plans)."""
    from .durability.gauntlet import render_crashtest, run_crashtest
    try:
        report = run_crashtest(out_dir=args.out_dir,
                               seed=args.seed,
                               quick=args.quick,
                               points=args.points,
                               log=print)
    except (OSError, ValueError) as exc:
        print(f"crashtest failed to run: {exc}", file=sys.stderr)
        return 1
    print(render_crashtest(report))
    print(f"report: {os.path.join(args.out_dir, 'crashtest-report.json')}")
    return 0 if report["ok"] else 1


def _command_bench(args) -> int:
    """Run the perf suites, write BENCH_*.json, optionally A/B compare."""
    from .perfbench import (
        run_e2e_suite,
        run_kernel_suite,
        suite_document,
        write_suite,
    )
    from .perfbench.report import (
        compare_suites,
        load_suite,
        render_comparison,
        worst_events_ratio,
    )
    from .sim.queues import queue_override, resolve_backend

    if args.fail_below is not None and not args.compare:
        print("bench: --fail-below requires --compare", file=sys.stderr)
        return 2

    def run_suites() -> int:
        backend = resolve_backend()
        print(f"queue backend: {backend}")
        suites = {}
        if args.suite in ("kernel", "all"):
            suites["kernel"] = run_kernel_suite(quick=args.quick,
                                                repeats=args.repeats)
        if args.suite in ("e2e", "all"):
            suites["e2e"] = run_e2e_suite(quick=args.quick,
                                          repeats=args.repeats,
                                          check_identity=not args.no_identity)
        os.makedirs(args.out_dir, exist_ok=True)
        status = 0
        for name, results in suites.items():
            document = suite_document(name, results, quick=args.quick)
            path = os.path.join(args.out_dir, f"BENCH_{name}.json")
            write_suite(path, document)
            print(f"{name} suite -> {path}")
            for result in results:
                rate = (f"  {result.events_per_sec:>12,.0f} ev/s"
                        if result.events else " " * 17)
                print(f"  {result.name:<28} {result.wall_s:>9.4f}s{rate}")
            if args.compare:
                baseline_path = os.path.join(args.compare,
                                             f"BENCH_{name}.json")
                try:
                    baseline = load_suite(baseline_path)
                except OSError as exc:
                    print(f"  (no baseline to compare: {exc})")
                else:
                    rows = compare_suites(baseline, document)
                    print(render_comparison(rows, queue_backend=backend))
                    worst = worst_events_ratio(rows)
                    if (args.fail_below is not None and worst is not None
                            and worst < args.fail_below):
                        print(f"bench: {name} suite regressed: worst "
                              f"throughput ratio {worst:.3f} is below "
                              f"--fail-below {args.fail_below:.3f}",
                              file=sys.stderr)
                        status = 1
        return status

    if args.queue_backend:
        with queue_override(args.queue_backend):
            return run_suites()
    return run_suites()


def _command_doctor(args) -> int:
    """Environment + smoke checks; returns the exit code."""
    import platform
    import time

    from .experiments import ARCHITECTURES, CellSpec, run_cell

    checks = []

    version_ok = sys.version_info >= (3, 9)
    checks.append(("python >= 3.9", version_ok,
                   platform.python_version()))

    try:
        from . import __version__
        checks.append(("repro importable", True, f"v{__version__}"))
    except Exception as exc:  # pragma: no cover - import already worked
        checks.append(("repro importable", False, repr(exc)))

    results_dir = "results"
    try:
        from .experiments.artifacts import atomic_write_text
        os.makedirs(results_dir, exist_ok=True)
        probe = os.path.join(results_dir, ".doctor-probe")
        atomic_write_text(probe, "ok\n")
        os.unlink(probe)
        checks.append((f"{results_dir}/ writable (atomic)", True, ""))
    except OSError as exc:
        checks.append((f"{results_dir}/ writable (atomic)", False,
                       str(exc)))

    import multiprocessing
    methods = multiprocessing.get_all_start_methods()
    checks.append(("process isolation available", bool(methods),
                   ",".join(methods)))

    for arch in ARCHITECTURES:
        spec = CellSpec(task="select", arch=arch, num_disks=8,
                        scale=1 / 256)
        began = time.perf_counter()
        try:
            result = run_cell(spec)
            wall = time.perf_counter() - began
            checks.append((f"smoke: select on {arch}",
                           result.elapsed > 0,
                           f"{result.elapsed:.2f} simulated s in "
                           f"{wall:.2f}s wall"))
        except Exception as exc:
            checks.append((f"smoke: select on {arch}", False, repr(exc)))

    try:
        from .traffic import TrafficConfig, run_traffic
        traffic = run_traffic(TrafficConfig(
            arch="active", num_disks=8, sessions=200, load=1.2,
            queue_capacity=16, scale=1 / 256))
        sojourn = traffic.sojourn
        checks.append(("smoke: open-loop traffic (exact quantiles)",
                       traffic.accounted,
                       f"p50 {sojourn['p50']:.3f}s "
                       f"p95 {sojourn['p95']:.3f}s "
                       f"p99 {sojourn['p99']:.3f}s over "
                       f"{traffic.arrivals} sessions"))
    except Exception as exc:
        checks.append(("smoke: open-loop traffic (exact quantiles)",
                       False, repr(exc)))

    violated = {}
    service_lines = []
    if getattr(args, "journal", None):
        from .experiments import SweepJournal
        try:
            journal = SweepJournal.load(args.journal)
        except (OSError, ValueError) as exc:
            checks.append((f"journal {args.journal}", False, str(exc)))
        else:
            violated = journal.violated()
            oom_cells = journal.oom_cells()
            counts = journal.counts()
            detail = ", ".join(f"{value} {status}"
                               for status, value in counts.items()
                               if value) or "empty"
            if violated:
                detail += f"; {len(violated)} invariant violation(s)"
            if oom_cells:
                detail += (f"; {len(oom_cells)} cell(s) over their "
                           f"memory budget")
            worker_cells = journal.worker_cells()
            if worker_cells or journal.service_events:
                # A service journal: attribute the work and the losses.
                detail += (f"; service run ({journal.reassignments()} "
                           f"reassignment(s), {journal.heartbeat_losses()} "
                           f"heartbeat loss(es))")
                hardening = [(journal.duplicates_dropped(),
                              "duplicate(s) dropped"),
                             (journal.epoch_fences(), "epoch fence(s)"),
                             (journal.rejected_submits(),
                              "rejected submit(s)"),
                             (journal.reconnects(), "reconnect(s)")]
                extras = ", ".join(f"{count} {label}"
                                   for count, label in hardening if count)
                if extras:
                    detail += f"; hardening: {extras}"
                for worker_id in sorted(worker_cells):
                    service_lines.append(f"  worker {worker_id}: "
                                         f"{worker_cells[worker_id]} "
                                         f"cell(s) done")
                for event in journal.service_events:
                    name = event.get("event", "?")
                    if name == "reassign":
                        service_lines.append(
                            f"  reassigned {event.get('key', '?')} from "
                            f"{event.get('worker', '?')} "
                            f"(attempt {event.get('attempt', '?')})")
                    elif name == "epoch_fence":
                        service_lines.append(
                            f"  fenced stale result for "
                            f"{event.get('key', '?')} from "
                            f"{event.get('worker', '?')} (epoch "
                            f"{event.get('stale_epoch', '?')}, current "
                            f"{event.get('epoch', '?')})")
                    elif name == "duplicate_dropped":
                        service_lines.append(
                            f"  dropped duplicate result for "
                            f"{event.get('key', '?')} (attempt "
                            f"{event.get('attempt', '?')}) from "
                            f"{event.get('worker', '?')}")
                    elif name == "submit_rejected":
                        service_lines.append(
                            f"  rejected a submit "
                            f"({event.get('reason', '?')})")
                    elif name == "worker_reconnect":
                        service_lines.append(
                            f"  worker {event.get('worker', '?')} "
                            f"reconnected (epoch {event.get('epoch', '?')})")
                    elif name == "assign_timeout":
                        service_lines.append(
                            f"  assignment of {event.get('key', '?')} to "
                            f"{event.get('worker', '?')} timed out "
                            f"(attempt {event.get('attempt', '?')})")
                    else:
                        service_lines.append(
                            f"  {name}: {event.get('worker', '?')}"
                            + (f" ({event['reason']})"
                               if event.get("reason") else ""))
            for key, cell in sorted(oom_cells.items()):
                service_lines.append(f"  oom: {key}: {cell.error}")
            checks.append((f"journal {args.journal}",
                           not violated and not oom_cells, detail))

    drift_lines = []
    if getattr(args, "verify_artifacts", None):
        from .experiments.artifacts import MANIFEST_NAME, manifest_report
        directory = args.verify_artifacts
        try:
            report = manifest_report(directory)
        except (OSError, ValueError) as exc:
            checks.append((f"artifacts {directory}", False, str(exc)))
        else:
            if report is None:
                checks.append((f"artifacts {directory}", False,
                               f"no {MANIFEST_NAME}"))
            else:
                drifted = {name: status
                           for name, status in report.items()
                           if status != "ok"}
                detail = (f"{len(report) - len(drifted)}/{len(report)} "
                          f"file(s) match their checksums")
                checks.append((f"artifacts {directory}", not drifted,
                               detail))
                for name, status in sorted(drifted.items()):
                    drift_lines.append(f"  drift: {name}: {status}")

    width = max(len(name) for name, _, _ in checks)
    for name, ok, detail in checks:
        status = "ok" if ok else "FAIL"
        line = f"  {name:<{width}}  {status}"
        print(f"{line}  {detail}" if detail else line)
    for line in service_lines:
        print(line)
    for line in drift_lines:
        print(line)
    for key, cell in sorted(violated.items()):
        report = cell.violation
        print(f"  violation in {key}: {report['component']}: "
              f"{report['invariant']} at t={report['sim_time']:.6f}s")
        print(f"    expected {report['expected']!r}, "
              f"observed {report['observed']!r}"
              + (f" ({report['detail']})" if report.get("detail") else ""))
    failed = [name for name, ok, _ in checks if not ok]
    print(f"doctor: {len(checks) - len(failed)}/{len(checks)} checks "
          f"passed" + (f"; failing: {', '.join(failed)}" if failed else ""))
    return 1 if failed else 0


def _command_audit(args) -> int:
    """Differential fuzz + armed fig1 identity; returns the exit code."""
    import json
    import time

    from .invariants import InvariantViolation, armed
    from .invariants.fuzz import run_fuzz
    from .perfbench.e2e import IdentityDrift, fig1_identity_check

    count = args.cells if args.cells is not None else (
        10 if args.quick else 25)
    began = time.perf_counter()
    report = run_fuzz(count=count, seed=args.seed,
                      journal_path=args.journal)
    wall = time.perf_counter() - began
    print(f"{report.summary()} in {wall:.1f}s wall")
    for outcome in report.failures:
        print(f"  FAIL {outcome.spec.key} [{outcome.status}]: "
              f"{outcome.error}")
    exit_code = 0 if report.ok else 1

    identity_error = None
    if not args.no_identity:
        try:
            with armed():
                identity = fig1_identity_check(quick=args.quick)
        except (IdentityDrift, InvariantViolation) as exc:
            identity_error = f"{type(exc).__name__}: {exc}"
            print(f"armed fig1 identity FAILED: {identity_error}",
                  file=sys.stderr)
            exit_code = 1
        else:
            print(f"armed fig1 identity: ok ({identity['cells']} cells "
                  f"regenerated byte-identically with every auditor "
                  f"armed, {identity['wall_s']:.1f}s wall)")

    if args.out_dir and exit_code:
        os.makedirs(args.out_dir, exist_ok=True)
        path = os.path.join(args.out_dir, "audit-violations.json")
        payload = {
            "seed": args.seed,
            "cells": count,
            "failures": [
                {"cell": outcome.spec.key, "status": outcome.status,
                 "violation": outcome.violation, "diff": outcome.diff,
                 "error": outcome.error}
                for outcome in report.failures
            ],
            "identity_error": identity_error,
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"violation reports: {path}", file=sys.stderr)
    if args.journal:
        print(f"journal: {args.journal}")
    return exit_code


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        print(_command_list(args))
        return 0
    if args.command == "run":
        print(_command_run(args))
        return 0
    if args.command == "degraded":
        print(_command_degraded(args))
        return 0
    if args.command == "doctor":
        return _command_doctor(args)
    if args.command == "traffic":
        from .experiments import SweepInterrupted
        try:
            return _command_traffic(args)
        except SweepInterrupted as exc:
            print(exc, file=sys.stderr)
            return 130
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "submit":
        return _command_submit(args)
    if args.command == "status":
        return _command_status(args)
    if args.command == "worker":
        return _command_worker(args)
    if args.command == "chaos":
        return _command_chaos(args)
    if args.command == "crashtest":
        return _command_crashtest(args)
    if args.command == "audit":
        return _command_audit(args)
    if args.command == "bench":
        from .perfbench.e2e import IdentityDrift
        try:
            return _command_bench(args)
        except IdentityDrift as exc:
            print(f"bit-identity FAILED: {exc}", file=sys.stderr)
            return 1
    if args.command in ("sweep", "resume"):
        from .experiments import SweepInterrupted
        try:
            print(_command_sweep(args) if args.command == "sweep"
                  else _command_resume(args))
        except SweepInterrupted as exc:
            print(exc, file=sys.stderr)
            return 130
        except ValueError as exc:   # unreadable/empty journal, bad grid
            print(f"error: {exc}", file=sys.stderr)
            return 1
        return 0
    if args.command == "scorecard":
        from .experiments import run_scorecard
        results, table = run_scorecard(scale=_scale_value(args))
        print(table)
        return 0 if all(r.passed for r in results) else 1
    if args.command == "all":
        from .experiments import run_all
        report = run_all(scale=_scale_value(args), sizes=args.sizes)
        print(report)
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(report + "\n")
        return 0
    if args.command == "table1":
        print(run_table1(args.disks))
        return 0
    if args.command == "table2":
        print(run_table2())
        return 0
    scale = _scale_value(args)
    if args.command == "fig1":
        print(run_fig1(sizes=args.sizes or (16, 32, 64, 128),
                       tasks=args.tasks, scale=scale).render())
    elif args.command == "fig2":
        print(run_fig2(sizes=args.sizes or (64, 128),
                       tasks=args.tasks, scale=scale).render())
    elif args.command == "fig3":
        print(run_fig3(sizes=args.sizes or (16, 32, 64, 128),
                       scale=scale).render())
    elif args.command == "fig4":
        print(run_fig4(sizes=args.sizes or (16, 32, 64, 128),
                       tasks=args.tasks, scale=scale).render())
    elif args.command == "fig5":
        print(run_fig5(sizes=args.sizes or (32, 64, 128),
                       tasks=args.tasks, scale=scale).render())
    else:  # pragma: no cover - argparse enforces choices
        raise AssertionError(args.command)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
