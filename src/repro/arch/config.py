"""Configuration dataclasses for the three architectures (paper Section 2.1).

Defaults reproduce the paper's core configurations exactly; the variant
constructors produce the alternatives studied in Sections 4.2-4.4
(400 MB/s interconnect, 64/128 MB disk memory, 1 GHz front-end,
front-end-only communication).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

from ..disk import SEAGATE_ST39102, DriveSpec
from ..net import EthernetParams

__all__ = [
    "MB", "GB",
    "ArchConfig", "ActiveDiskConfig", "ClusterConfig", "SMPConfig",
    "CORE_SIZES",
]

KB = 1_024
MB = 1_000_000
GB = 1_000_000_000

#: Disk counts of the paper's core experiments.
CORE_SIZES = (16, 32, 64, 128)


def _require_positive(**fields: float) -> None:
    """Raise a named ValueError for any non-positive parameter."""
    for name, value in fields.items():
        if value <= 0:
            raise ValueError(f"{name} must be positive, got {value}")


@dataclass(frozen=True)
class ArchConfig:
    """Parameters shared by all three architectures."""

    num_disks: int = 16
    drive: DriveSpec = SEAGATE_ST39102
    io_request_bytes: int = 256 * KB   # "large (256 KB) I/O requests"
    queue_depth: int = 4               # "up to four asynchronous requests"
    #: Heterogeneous-farm support: (disk index, spec) pairs overriding
    #: ``drive`` for specific spindles (degraded/mixed-generation farms).
    drive_overrides: Tuple[Tuple[int, DriveSpec], ...] = ()

    def __post_init__(self) -> None:
        if self.num_disks < 1:
            raise ValueError(f"need at least one disk, got {self.num_disks}")
        if self.io_request_bytes < 512:
            raise ValueError(
                f"request size below one sector: {self.io_request_bytes}")
        if self.queue_depth < 1:
            raise ValueError(f"queue depth must be >= 1: {self.queue_depth}")
        for index, _spec in self.drive_overrides:
            if not 0 <= index < self.num_disks:
                raise ValueError(
                    f"drive override index {index} out of range")

    def drive_for(self, index: int) -> DriveSpec:
        """The spec disk ``index`` uses (override or farm default)."""
        for override_index, spec in self.drive_overrides:
            if override_index == index:
                return spec
        return self.drive

    def with_degraded_drive(self, index: int,
                            spec: DriveSpec) -> "ArchConfig":
        """A copy with one spindle replaced (straggler studies)."""
        overrides = tuple(pair for pair in self.drive_overrides
                          if pair[0] != index) + ((index, spec),)
        return replace(self, drive_overrides=overrides)

    @property
    def arch(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class ActiveDiskConfig(ArchConfig):
    """Active Disk farm: embedded CPUs, dual FC-AL, front-end host."""

    disk_cpu_mhz: float = 200.0            # Cyrix 6x86 200MX
    disk_memory_bytes: int = 32 * MB       # SDRAM per disk unit
    interconnect_rate: float = 200 * MB    # dual-loop FC-AL aggregate
    interconnect_loops: int = 2
    #: "dual_loop" = the paper's core FC-AL; "fibreswitch" = the paper's
    #: recommended scale-out fabric (Section 6): one loop per segment
    #: behind a crossbar, bisection growing with segment count;
    #: "ethernet" = NASD-style network-attached disks on the cluster's
    #: switched fat-tree (each disk gets a 100BaseT port).
    interconnect_kind: str = "dual_loop"
    switch_segments: int = 4
    frontend_cpu_mhz: float = 450.0        # Pentium II front-end
    frontend_memory_bytes: int = 1 * GB
    frontend_pci_rate: float = 133 * MB
    direct_disk_to_disk: bool = True       # SCSI-like peer addressing

    @property
    def arch(self) -> str:
        return "active"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.interconnect_kind not in ("dual_loop", "fibreswitch",
                                          "ethernet"):
            raise ValueError(
                f"unknown interconnect kind {self.interconnect_kind!r}")
        if self.switch_segments < 1:
            raise ValueError(
                f"switch_segments must be >= 1: {self.switch_segments}")
        _require_positive(disk_cpu_mhz=self.disk_cpu_mhz,
                          disk_memory_bytes=self.disk_memory_bytes,
                          interconnect_rate=self.interconnect_rate,
                          frontend_cpu_mhz=self.frontend_cpu_mhz,
                          frontend_memory_bytes=self.frontend_memory_bytes,
                          frontend_pci_rate=self.frontend_pci_rate)
        if self.interconnect_loops < 1:
            raise ValueError(
                f"interconnect_loops must be >= 1: {self.interconnect_loops}")

    def with_interconnect(self, rate: float) -> "ActiveDiskConfig":
        """Section 4.2 variant: scale the serial interconnect."""
        return replace(self, interconnect_rate=rate)

    def with_fibreswitch(self, segments: int = 4) -> "ActiveDiskConfig":
        """Section 6 variant: loops-behind-a-FibreSwitch fabric."""
        return replace(self, interconnect_kind="fibreswitch",
                       switch_segments=segments)

    def with_ethernet(self) -> "ActiveDiskConfig":
        """NASD-style variant: disks as network-attached nodes on the
        cluster's switched fat-tree (100 Mb/s per disk)."""
        return replace(self, interconnect_kind="ethernet")

    def with_memory(self, nbytes: int) -> "ActiveDiskConfig":
        """Section 4.3 variant: scale per-disk memory."""
        return replace(self, disk_memory_bytes=nbytes)

    def with_frontend_mhz(self, mhz: float) -> "ActiveDiskConfig":
        """Section 2.1 variant: scale the front-end processor."""
        return replace(self, frontend_cpu_mhz=mhz)

    def restricted(self) -> "ActiveDiskConfig":
        """Section 4.4 variant: all communication through the front-end."""
        return replace(self, direct_disk_to_disk=False)


@dataclass(frozen=True)
class ClusterConfig(ArchConfig):
    """Commodity PC cluster: one disk per node, switched Fast Ethernet."""

    node_cpu_mhz: float = 300.0            # Pentium II per node
    node_memory_bytes: int = 128 * MB
    node_usable_memory: int = 104 * MB     # after the measured OS footprint
    pci_rate: float = 133 * MB
    scsi_rate: float = 80 * MB             # Ultra2 SCSI to the private disk
    ethernet: EthernetParams = field(default_factory=EthernetParams)
    frontend_cpu_mhz: float = 450.0
    async_receives: int = 16               # posted receives per node

    @property
    def arch(self) -> str:
        return "cluster"

    def __post_init__(self) -> None:
        super().__post_init__()
        _require_positive(node_cpu_mhz=self.node_cpu_mhz,
                          node_memory_bytes=self.node_memory_bytes,
                          node_usable_memory=self.node_usable_memory,
                          pci_rate=self.pci_rate,
                          scsi_rate=self.scsi_rate,
                          frontend_cpu_mhz=self.frontend_cpu_mhz)
        if self.node_usable_memory > self.node_memory_bytes:
            raise ValueError(
                f"node_usable_memory ({self.node_usable_memory}) exceeds "
                f"node_memory_bytes ({self.node_memory_bytes})")
        if self.async_receives < 1:
            raise ValueError(
                f"async_receives must be >= 1: {self.async_receives}")

    @property
    def num_nodes(self) -> int:
        """One disk per node; the front-end is an additional host."""
        return self.num_disks


@dataclass(frozen=True)
class SMPConfig(ArchConfig):
    """ccNUMA SMP (Origin 2000-like) with a conventional disk farm."""

    cpu_mhz: float = 250.0                 # two per board
    cpus_per_board: int = 2
    memory_per_board: int = 128 * MB       # scales with processors
    numa_latency: float = 1e-6
    numa_link_rate: float = 780 * MB
    bte_rate: float = 521 * MB             # block-transfer engine, sustained
    xio_nodes: int = 2
    xio_total_rate: float = 1_400 * MB
    io_interconnect_rate: float = 200 * MB  # dual FC-AL, same as Active Disks
    io_interconnect_loops: int = 2
    stripe_chunk_bytes: int = 64 * KB
    spinlock_cost: float = 1e-6            # shared block-queue lock

    @property
    def arch(self) -> str:
        return "smp"

    def __post_init__(self) -> None:
        super().__post_init__()
        _require_positive(cpu_mhz=self.cpu_mhz,
                          memory_per_board=self.memory_per_board,
                          numa_link_rate=self.numa_link_rate,
                          bte_rate=self.bte_rate,
                          xio_total_rate=self.xio_total_rate,
                          io_interconnect_rate=self.io_interconnect_rate)
        if self.numa_latency < 0:
            raise ValueError(
                f"numa_latency must be >= 0: {self.numa_latency}")
        if self.spinlock_cost < 0:
            raise ValueError(
                f"spinlock_cost must be >= 0: {self.spinlock_cost}")
        if self.cpus_per_board < 1:
            raise ValueError(
                f"cpus_per_board must be >= 1: {self.cpus_per_board}")
        if self.xio_nodes < 1:
            raise ValueError(f"xio_nodes must be >= 1: {self.xio_nodes}")
        if self.io_interconnect_loops < 1:
            raise ValueError(
                f"io_interconnect_loops must be >= 1: "
                f"{self.io_interconnect_loops}")
        if self.stripe_chunk_bytes < 512:
            raise ValueError(
                f"stripe_chunk_bytes below one sector: "
                f"{self.stripe_chunk_bytes}")

    @property
    def num_cpus(self) -> int:
        """Processor count equals disk count (the paper's scaling rule)."""
        return self.num_disks

    @property
    def num_boards(self) -> int:
        return (self.num_cpus + self.cpus_per_board - 1) // self.cpus_per_board

    @property
    def total_memory(self) -> int:
        return self.num_boards * self.memory_per_board

    def with_interconnect(self, rate: float) -> "SMPConfig":
        """Section 4.2 variant: scale the FC I/O interconnect."""
        return replace(self, io_interconnect_rate=rate)
