"""The SMP machine: a ccNUMA multiprocessor with a conventional disk farm.

Modelled after the SGI Origin 2000 configuration of Section 2.1:
two-processor boards sharing 128 MB each, a 1 us / 780 MB/s NUMA
interconnect with a 521 MB/s block-transfer engine per board, an
XIO-class I/O subsystem (two I/O nodes, 1.4 GB/s total), and — crucially —
a dual FC-AL (200 MB/s aggregate) carrying **all** disk traffic. Every
byte any processor reads from or writes to the disk farm crosses that
loop, which is why SMP performance saturates as configurations grow while
Active Disks (which filter at the media) keep scaling.

Software structure follows the paper: files striped over the farm in
64 KB chunks, 256 KB asynchronous requests spanning four drives, and two
shared queues (read/write) of blocks in layout order that idle processors
pop under a spinlock. For sort and join the drives are split into
separate read and write groups (the NOW-sort arrangement).

Repartitioning shuffles move through shared memory (BTE + NUMA links)
and never touch the FC loop; "front-end" delivery is just a NUMA
transfer to the collector board — the SMP *is* the server.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from math import ceil
from typing import Any, Dict, Generator, List, Tuple

from ..disk import DiskDrive
from ..faults.errors import DriveFailed, FaultError
from ..host import Cpu, RemoteQueue, scaled_os_params
from ..interconnect import BusGroup, SerialBus, dual_fc_al
from ..sim import Event, Mutex, Simulator
from .base import Dribble, Machine, WorkLatch, destination_cycle
from .config import SMPConfig
from .program import Phase, TaskProgram

__all__ = ["SharedBlockQueue", "SMPMachine"]


class SharedBlockQueue:
    """The paper's shared queue of fixed-size blocks in layout order.

    Processors lock the queue and grab the next block; the global request
    sequence therefore roughly follows the on-disk layout, avoiding the
    long seeks an a-priori partitioning would cause.
    """

    def __init__(self, sim: Simulator, total_blocks: int,
                 spinlock_cost: float):
        self.sim = sim
        self.total_blocks = total_blocks
        self.spinlock_cost = spinlock_cost
        self.next_block = 0
        self.lock = Mutex(sim, name="blockq")

    def pop(self, cpu: Cpu, bucket: str) -> Generator[Event, Any, int]:
        """Grab the next block index, or -1 when the queue is empty."""
        yield self.lock.request()
        try:
            if self.spinlock_cost > 0:
                yield from cpu.compute_raw(self.spinlock_cost, bucket=bucket)
            index = self.next_block
            if index >= self.total_blocks:
                return -1
            self.next_block += 1
            return index
        finally:
            self.lock.release()


@dataclass
class _PhaseState:
    """Shared per-phase execution state (queue, disk groups, cursor)."""

    queue: SharedBlockQueue
    read_drives: List[DiskDrive]
    write_drives: List[DiskDrive]
    write_cursor: int = 0


class SMPMachine(Machine):
    """Executes task programs on the SMP architecture."""

    arch = "smp"

    def __init__(self, sim: Simulator, config: SMPConfig):
        super().__init__(sim, config)
        self.config: SMPConfig = config
        self.cpus = [Cpu(sim, config.cpu_mhz, name=f"smpcpu{i}")
                     for i in range(config.num_cpus)]
        self.drives = [DiskDrive(sim, config.drive_for(i),
                                 name=f"sdisk{i}", fault_id=f"disk.{i}")
                       for i in range(config.num_disks)]
        self.fc = dual_fc_al(sim, config.io_interconnect_rate,
                             loops=config.io_interconnect_loops)
        per_xio = config.xio_total_rate / config.xio_nodes
        self.xio = BusGroup(
            [SerialBus(sim, per_xio, startup=2e-6, name=f"xio{i}")
             for i in range(config.xio_nodes)],
            name="xio")
        self.numa = BusGroup(
            [SerialBus(sim, config.numa_link_rate,
                       startup=config.numa_latency, name=f"numa{b}")
             for b in range(config.num_boards)],
            name="numa")
        self.bte = [SerialBus(sim, config.bte_rate, startup=config.numa_latency,
                              name=f"bte{b}")
                    for b in range(config.num_boards)]
        # One remote queue per processor (Brewer et al.): shuffle blocks
        # deposit here, bounding the per-receiver staging memory.
        self.remote_queues = [RemoteQueue(sim, capacity=64, name=f"rq{i}")
                              for i in range(config.num_cpus)]
        self.os_params = scaled_os_params(config.cpu_mhz)
        self.frontend_bytes = 0
        # Per-phase shared state (block queue, disk groups, write
        # cursor), keyed by phase name so concurrent programs do not
        # clobber each other.
        self._phase_state: Dict[str, _PhaseState] = {}
        tel = sim.telemetry
        if tel.enabled:
            tel.add_probe("interconnect.utilization", self.fc.utilization)
            tel.add_probe("xio.utilization", self.xio.utilization)
            tel.add_probe("numa.utilization", self.numa.utilization)
            tel.add_probe(
                "host.cpu.utilization.mean",
                lambda: sum(c.utilization() for c in self.cpus)
                / len(self.cpus))
            tel.add_probe(
                "disk.queue.depth.mean",
                lambda: sum(len(d.queue) for d in self.drives)
                / len(self.drives))

    # -- striping ---------------------------------------------------------------
    def board_of(self, cpu_index: int) -> int:
        return cpu_index // self.config.cpus_per_board

    def _chunks(self, drives: List[DiskDrive], offset: int, nbytes: int,
                base_lbn: int):
        """Map a volume byte range to (drive, lbn, span) chunk requests."""
        chunk = self.config.stripe_chunk_bytes
        sector = 512
        cursor = offset
        remaining = nbytes
        while remaining > 0:
            within = cursor % chunk
            span = min(remaining, chunk - within)
            chunk_index = cursor // chunk
            drive = drives[chunk_index % len(drives)]
            row = chunk_index // len(drives)
            lbn = base_lbn + row * (chunk // sector) + within // sector
            yield drive, lbn, span
            cursor += span
            remaining -= span

    def _fc_chunked(self, nbytes: int):
        """Cross the FC loop one striping chunk (FCP exchange) at a time.

        The chunk transfers land on the least-loaded loop individually, so
        a 256 KB request uses both loops, but each 64 KB exchange pays the
        full command/status protocol cost — the reason the shared FC
        delivers well under its 200 MB/s wire rate to striped requests.
        """
        chunk = self.config.stripe_chunk_bytes
        remaining = nbytes
        events = []
        while remaining > 0:
            span = min(chunk, remaining)
            remaining -= span
            events.append(self.sim.process(
                self.fc.transfer(span), name="smp-fc"))
        if events:
            yield self.sim.all_of(events)

    def _volume_io(self, op: str, drives: List[DiskDrive], offset: int,
                   nbytes: int, base_lbn: int) -> Event:
        chunks = self._chunks(drives, offset, nbytes, base_lbn)
        if self.sim.faults.enabled:
            chunks = self._reroute(op, drives, chunks)
        events = [drive.submit(op, lbn, span)
                  for drive, lbn, span in chunks]
        return self.sim.all_of(events)

    def _reroute(self, op: str, drives: List[DiskDrive], chunks):
        """Steer striping chunks around drives marked failed.

        The reconstruction-read model: a failed drive's chunk is served
        by a deterministic survivor (same lbn — every drive has identical
        geometry). Raises :class:`~repro.faults.DriveFailed` when the
        whole group is gone.
        """
        for drive, lbn, span in chunks:
            if drive.failed:
                alive = [d for d in drives if not d.failed]
                if not alive:
                    raise DriveFailed(
                        "smp volume: every drive in the group failed")
                self.sim.faults.note(f"faults.arch.rerouted_{op}_chunks")
                drive = alive[drives.index(drive) % len(alive)]
            yield drive, lbn, span

    # -- hooks ------------------------------------------------------------------
    @property
    def worker_count(self) -> int:
        return self.config.num_cpus

    def worker_cpu(self, w: int) -> Cpu:
        return self.cpus[w]

    def _state_for(self, phase: Phase) -> "_PhaseState":
        state = self._phase_state.get(phase.name)
        if state is None:
            block = self.config.io_request_bytes
            total_blocks = ceil(phase.read_bytes_total / block)
            if phase.split_disk_groups and len(self.drives) >= 2:
                half = len(self.drives) // 2
                read_drives, write_drives = (self.drives[:half],
                                             self.drives[half:])
            else:
                read_drives = write_drives = self.drives
            state = _PhaseState(
                queue=SharedBlockQueue(self.sim, total_blocks,
                                       self.config.spinlock_cost),
                read_drives=read_drives,
                write_drives=write_drives,
            )
            self._phase_state[phase.name] = state
        return state

    def run_worker(self, phase: Phase, w: int, latch: WorkLatch):
        """Shared-queue worker: pop blocks until the queue drains."""
        yield from self._queue_loop(phase, w, latch)

    # -- I/O paths -----------------------------------------------------------------
    def read_block(self, phase: Phase, w: int, nbytes: int,
                   stream: int) -> Generator[Event, Any, None]:
        raise NotImplementedError("SMP reads go through the shared queue")

    def _read_at(self, phase: Phase, w: int, offset: int,
                 nbytes: int) -> Generator[Event, Any, None]:
        cpu = self.cpus[w]
        read_drives = self._state_for(phase).read_drives
        yield from cpu.compute_raw(
            self.os_params.io_submit_cost(), bucket=f"{phase.name}:os")
        yield self._volume_io("read", read_drives, offset, nbytes, 0)
        # Each 64 KB striping chunk is its own FCP exchange on the loop.
        yield from self._fc_chunked(nbytes)
        yield from self.xio.transfer(nbytes)
        yield from self.numa.transfer(nbytes)
        yield from cpu.compute_raw(
            self.os_params.io_complete_cost(), bucket=f"{phase.name}:os")

    def write_block(self, phase: Phase, w: int,
                    nbytes: int) -> Generator[Event, Any, None]:
        cpu = self.cpus[w]
        state = self._state_for(phase)
        write_drives = state.write_drives
        offset = state.write_cursor
        state.write_cursor += nbytes
        write_base = (0 if phase.split_disk_groups
                      else self.drives[0].geometry.total_sectors // 2)
        yield from cpu.compute_raw(
            self.os_params.io_submit_cost(), bucket=f"{phase.name}:os")
        yield from self.numa.transfer(nbytes)
        yield from self.xio.transfer(nbytes)
        yield from self._fc_chunked(nbytes)
        yield self._volume_io("write", write_drives, offset, nbytes,
                              write_base)
        yield from cpu.compute_raw(
            self.os_params.io_complete_cost(), bucket=f"{phase.name}:os")

    def send_shuffle(self, phase: Phase, w: int, dst: int, nbytes: int,
                     latch: WorkLatch) -> None:
        latch.begin()
        self.sim.process(self._deliver_shuffle(phase, w, dst, nbytes, latch),
                         name="smp-shuffle")

    def send_frontend(self, phase: Phase, w: int, nbytes: int,
                      latch: WorkLatch) -> None:
        latch.begin()
        self.sim.process(self._deliver_frontend(phase, w, nbytes, latch),
                         name="smp-fe")

    def _deliver_shuffle(self, phase: Phase, src: int, dst: int, nbytes: int,
                         latch: WorkLatch):
        try:
            queue = self.remote_queues[dst]
            yield from queue.acquire_slot()
            try:
                if self.board_of(src) != self.board_of(dst):
                    yield from self.bte[self.board_of(src)].transfer(nbytes)
                    yield from self.numa.transfer(nbytes)
                yield from self.recv_work(phase, dst, nbytes)
            finally:
                queue.release_slot()
        finally:
            latch.done()

    def _deliver_frontend(self, phase: Phase, w: int, nbytes: int,
                          latch: WorkLatch):
        try:
            if self.board_of(w) != 0:
                yield from self.numa.transfer(nbytes)
            if phase.frontend_cpu_ns_per_byte > 0:
                yield from self.cpus[0].compute(
                    phase.frontend_cpu_ns_per_byte * 1e-9 * nbytes,
                    bucket=f"{phase.name}:frontend")
            self.frontend_bytes += nbytes
        finally:
            latch.done()

    # -- the shared-queue worker loop -------------------------------------------------
    def _queue_loop(self, phase: Phase, w: int, latch: WorkLatch):
        sim = self.sim
        cpu = self.cpus[w]
        block = self.config.io_request_bytes
        depth = self.config.queue_depth
        total = phase.read_bytes_total
        queue = self._state_for(phase).queue
        audit = self._audit
        if audit is not None:
            audit.loop_started(phase)

        shuffle = Dribble(phase.shuffle_fraction)
        frontend = Dribble(phase.frontend_fraction)
        local_write = Dribble(phase.write_fraction)
        shuffle_pending = 0
        frontend_pending = 0
        write_pending = 0
        destinations = destination_cycle(
            self.worker_count, phase.shuffle_skew, start=w)
        dst_index = 0

        def flush(force: bool):
            nonlocal shuffle_pending, frontend_pending, dst_index
            while (shuffle_pending >= block
                   or (force and shuffle_pending > 0)):
                batch = min(block, shuffle_pending)
                shuffle_pending -= batch
                dst = destinations[dst_index % len(destinations)]
                dst_index += 1
                if audit is not None:
                    audit.sent_shuffle(phase, batch)
                self.send_shuffle(phase, w, dst, batch, latch)
            while (frontend_pending >= block
                   or (force and frontend_pending > 0)):
                batch = min(block, frontend_pending)
                frontend_pending -= batch
                if audit is not None:
                    audit.sent_frontend(phase, batch)
                self.send_frontend(phase, w, batch, latch)

        reads = deque()
        done = False
        while not done or reads:
            # Keep up to `depth` block reads in flight.
            while not done and len(reads) < depth:
                index = yield from queue.pop(cpu, f"{phase.name}:lock")
                if index < 0:
                    done = True
                    break
                offset = index * block
                nbytes = min(block, total - offset)
                gen = self._read_at(phase, w, offset, nbytes)
                if sim.faults.enabled:
                    gen = self._guard(gen)
                reader = sim.process(gen, name=f"{phase.name}-sr{w}")
                reads.append((reader, nbytes, offset))
            if not reads:
                break
            reader, nbytes, offset = reads.popleft()
            outcome = yield reader
            while outcome is not None:
                # A drive died with this request in flight; re-issue —
                # _volume_io now steers around drives marked failed.
                if all(d.failed
                       for d in self._state_for(phase).read_drives):
                    raise RuntimeError(
                        f"smp/{phase.name}: every drive in the read "
                        "group failed")
                sim.faults.note("faults.arch.reread_blocks")
                retry = sim.process(
                    self._guard(self._read_at(phase, w, offset, nbytes)),
                    name=f"{phase.name}-sr{w}")
                outcome = yield retry
            yield from self.charge_cpu(cpu, phase, phase.cpu, nbytes)
            if audit is not None:
                audit.processed(phase, nbytes)
            shuffle_pending += shuffle.take(nbytes)
            frontend_pending += frontend.take(nbytes)
            write_pending += local_write.take(nbytes)
            flush(force=False)
            while write_pending >= block:
                write_pending -= block
                yield from self._write_retry(phase, w, block)

        if audit is not None:
            if phase.shuffle_fixed_per_worker:
                audit.fixed_shuffle(phase, phase.shuffle_fixed_per_worker)
            if phase.frontend_fixed_per_worker:
                audit.fixed_frontend(phase, phase.frontend_fixed_per_worker)
        shuffle_pending += phase.shuffle_fixed_per_worker
        frontend_pending += phase.frontend_fixed_per_worker
        flush(force=True)
        if write_pending > 0:
            yield from self._write_retry(phase, w, write_pending)

    def _write_retry(self, phase: Phase, w: int, nbytes: int):
        """``write_block`` that re-issues after an in-flight drive death.

        The re-issued request reroutes around drives marked failed (see
        :meth:`_reroute`); only a whole-group failure propagates.
        """
        state = self._state_for(phase)
        while True:
            try:
                yield from self.write_block(phase, w, nbytes)
                return
            except FaultError:
                if all(d.failed for d in state.write_drives):
                    raise
                self.sim.faults.note("faults.arch.rewritten_blocks")

    def phase_barrier(self):
        """Shared-memory tree barrier across boards (1 us NUMA hops)."""
        from math import log2
        hops = 2 * max(1, ceil(log2(max(2, self.config.num_boards))))
        per_hop = self.config.numa_latency + self.config.spinlock_cost
        yield self.sim.pause(hops * per_hop)

    def _frontend_bytes_observed(self) -> int:
        return self.frontend_bytes

    # -- reporting ------------------------------------------------------------------
    def collect_extras(self) -> Dict[str, float]:
        return {
            "fc_bytes": self.fc.bytes_moved(),
            "fc_utilization": self.fc.utilization(),
            "numa_bytes": self.numa.bytes_moved(),
            "frontend_bytes": float(self.frontend_bytes),
            "disk_bytes_read": float(
                sum(d.bytes_read for d in self.drives)),
            "disk_bytes_written": float(
                sum(d.bytes_written for d in self.drives)),
        }
