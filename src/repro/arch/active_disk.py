"""The Active Disk machine: embedded processors on a dual FC-AL.

Resources
---------
* one :class:`~repro.disk.DiskDrive` + one 200 MHz embedded
  :class:`~repro.host.Cpu` + a DiskOS memory layout per disk unit;
* a dual Fibre Channel arbitrated loop (200 MB/s aggregate) shared by all
  disks and the front-end's host adaptor;
* a front-end host (450 MHz Pentium II, 1 GB RAM) whose FC adaptor sits
  behind a 133 MB/s PCI bus.

Data paths
----------
* **scan**: media -> on-disk buffer -> embedded CPU. Never touches the FC
  loop — this is the whole point of Active Disks.
* **shuffle (direct)**: source disk -> FC loop -> peer disk, gated by the
  receiver's DiskOS communication buffers (credit flow control).
* **shuffle (restricted, Section 4.4)**: source disk -> FC -> front-end
  PCI -> front-end memory (CPU copy) -> PCI -> FC -> peer disk. The
  front-end's PCI bus and copy bandwidth become the bottleneck, which is
  what produces the paper's up-to-5x slowdown.
* **front-end delivery**: FC -> PCI -> front-end CPU.
"""

from __future__ import annotations

from typing import Any, Dict, Generator

from ..disk import DiskDrive
from ..diskos import DiskMemory, StreamBufferProbe, disklet_restart_cost
from ..host import Cpu, scaled_os_params
from ..interconnect import FibreSwitch, SerialBus, dual_fc_al
from ..sim import Event, Server, Simulator
from .base import Machine, WorkLatch
from .config import ActiveDiskConfig
from .program import Phase, TaskProgram

__all__ = ["ActiveDiskNode", "FrontEnd", "ActiveDiskMachine"]

#: Per-byte cost of staging data through front-end memory (one copy),
#: in ns at the reference clock. Charged once on receive and once more
#: on re-send when the restricted communication mode relays a shuffle.
FRONTEND_COPY_NS = 10.0

#: Extra per-byte cost of *relaying* peer traffic through the front-end
#: in the restricted communication mode (Section 4.4): the data enters
#: and leaves through the full host network stack — kernel buffering,
#: header processing and flow control on top of the raw copy. Charged on
#: each relay leg in addition to :data:`FRONTEND_COPY_NS`.
RELAY_HANDLING_NS = 15.0

#: DiskOS request-handling overhead per media request, seconds at 200 MHz.
DISKOS_REQUEST_OVERHEAD = 30e-6


class ActiveDiskNode:
    """One disk unit: spindle + embedded CPU + DiskOS memory."""

    def __init__(self, sim: Simulator, config: ActiveDiskConfig, index: int):
        self.index = index
        self.drive = DiskDrive(sim, config.drive_for(index),
                               name=f"adisk{index}",
                               fault_id=f"disk.{index}")
        self.cpu = Cpu(sim, config.disk_cpu_mhz, name=f"adcpu{index}")
        self.memory = DiskMemory(
            config.disk_memory_bytes,
            direct_disk_to_disk=config.direct_disk_to_disk,
            io_buffer_bytes=config.io_request_bytes)
        layout = self.memory.layout()
        self.comm_credits = Server(
            sim, capacity=layout.comm_buffers, name=f"adcredit{index}")
        self.faults = (sim.faults.register(f"diskos.{index}")
                       if sim.faults.enabled else None)
        self.comm_probe = StreamBufferProbe(
            sim.telemetry, f"disk.{index}.comm.buffers",
            layout.comm_buffers, faults=self.faults,
            invariants=sim.invariants if sim.invariants.enabled else None)
        # Armed-only scratch ledger: phases reserve their scratch at
        # start and release it at end; exceeding the static DiskOS
        # layout is a memory-budget violation (no runtime allocation).
        self.scratch_audit = None
        if sim.invariants.enabled:
            self.scratch_audit = sim.invariants.memory_auditor(
                f"diskos.{index}.scratch", layout.scratch)
        self.read_cursors: Dict = {}
        half = self.drive.geometry.total_sectors // 2
        self.write_cursor = half
        self._write_base = half

    def next_read_lbn(self, key, sectors: int, stream: int,
                      stream_stride: int) -> int:
        """Sequential cursor per (phase, stream) over the data region."""
        cursor_key = (key, stream)
        if cursor_key not in self.read_cursors:
            self.read_cursors[cursor_key] = stream * stream_stride
        lbn = self.read_cursors[cursor_key]
        self.read_cursors[cursor_key] = lbn + sectors
        return lbn % max(1, self._write_base - sectors)

    def next_write_lbn(self, sectors: int) -> int:
        lbn = self.write_cursor
        self.write_cursor += sectors
        capacity = self.drive.geometry.total_sectors
        if self.write_cursor + sectors >= capacity:
            self.write_cursor = self._write_base
        return lbn


class FrontEnd:
    """The front-end host: CPU + PCI bus behind its FC host adaptor."""

    def __init__(self, sim: Simulator, config: ActiveDiskConfig):
        self.cpu = Cpu(sim, config.frontend_cpu_mhz, name="fe-cpu")
        self.pci = SerialBus(sim, config.frontend_pci_rate,
                             startup=1e-6, name="fe-pci")
        self.os_params = scaled_os_params(config.frontend_cpu_mhz)
        self.bytes_received = 0
        self.bytes_relayed = 0


class _LoopFabric:
    """Adapter giving the dual FC-AL the (src, dst)-addressed interface."""

    def __init__(self, group):
        self.group = group

    def transfer(self, src: int, dst: int, nbytes: int):
        yield from self.group.transfer(nbytes)

    def bytes_moved(self) -> float:
        return self.group.bytes_moved()

    def utilization(self) -> float:
        return self.group.utilization()


class _EthernetFabric:
    """NASD-style fabric: every disk a host on a switched fat-tree.

    Gives each disk a private 100 Mb/s access link (12.5 MB/s) but a
    bisection that grows with the farm — the inverse trade-off of the
    FC loop, and the design point Gibson et al.'s network-attached
    secure disks occupy in the paper's related work.
    """

    def __init__(self, sim, devices: int):
        from ..net import FatTree, Network
        self.tree = FatTree(sim, devices)
        self.network = Network(self.tree)

    def transfer(self, src: int, dst: int, nbytes: int):
        yield from self.network.transfer(src, dst, nbytes)

    def bytes_moved(self) -> float:
        return self.network.bytes.value

    def utilization(self) -> float:
        links = [port.tx for port in self.tree.ports]
        return sum(link.utilization() for link in links) / len(links)


class ActiveDiskMachine(Machine):
    """Executes task programs on the Active Disk architecture."""

    arch = "active"

    def __init__(self, sim: Simulator, config: ActiveDiskConfig):
        super().__init__(sim, config)
        self.config: ActiveDiskConfig = config
        # Device ids on the fabric: disks 0..N-1, front-end adaptor N.
        self.frontend_device = config.num_disks
        if config.interconnect_kind == "fibreswitch":
            self.fabric = FibreSwitch(
                sim, devices=config.num_disks + 1,
                segments=config.switch_segments,
                loop_rate=config.interconnect_rate / 2)
        elif config.interconnect_kind == "ethernet":
            self.fabric = _EthernetFabric(
                sim, devices=config.num_disks + 1)
        else:
            self.fabric = _LoopFabric(dual_fc_al(
                sim, config.interconnect_rate,
                loops=config.interconnect_loops))
        self.nodes = [ActiveDiskNode(sim, config, i)
                      for i in range(config.num_disks)]
        self.frontend = FrontEnd(sim, config)
        layout = self.nodes[0].memory.layout()
        self.scratch_bytes = layout.scratch
        tel = sim.telemetry
        if tel.enabled:
            tel.add_probe("interconnect.utilization",
                          self.fabric.utilization)
            tel.add_probe("frontend.cpu.utilization",
                          self.frontend.cpu.utilization)
            tel.add_probe(
                "disk.cpu.utilization.mean",
                lambda: sum(n.cpu.utilization() for n in self.nodes)
                / len(self.nodes))
            tel.add_probe(
                "disk.queue.depth.mean",
                lambda: sum(len(n.drive.queue) for n in self.nodes)
                / len(self.nodes))

    # -- hooks -----------------------------------------------------------------
    @property
    def worker_count(self) -> int:
        return self.config.num_disks

    def worker_cpu(self, w: int) -> Cpu:
        return self.nodes[w].cpu

    def check_program(self, program: TaskProgram) -> None:
        """Refuse programs whose scratch does not fit DiskOS memory."""
        for phase in program.phases:
            if phase.scratch_bytes > self.scratch_bytes:
                raise ValueError(
                    f"{program.task}/{phase.name}: scratch "
                    f"{phase.scratch_bytes} exceeds DiskOS scratch budget "
                    f"{self.scratch_bytes}")

    def run(self, program: TaskProgram):
        self.check_program(program)
        return super().run(program)

    def read_block(self, phase: Phase, w: int, nbytes: int,
                   stream: int) -> Generator[Event, Any, None]:
        node = self.nodes[w]
        fp = node.faults
        if fp is not None and fp.active:
            crash = fp.take("disklet_crash")
            if crash is not None:
                # DiskOS re-dispatches the disklet: tear down the
                # sandbox, reload code + scratch, replay the cursor.
                self.sim.faults.note("faults.diskos.disklet_restarts")
                yield from node.cpu.compute_raw(
                    disklet_restart_cost(phase.scratch_bytes),
                    bucket=f"{phase.name}:diskos")
        sectors = (nbytes + 511) // 512
        share = self.worker_share(phase, w)
        stride = (share // max(1, phase.read_streams) + 511) // 512
        lbn = node.next_read_lbn(phase.name, sectors, stream, stride)
        yield from node.cpu.compute_raw(
            DISKOS_REQUEST_OVERHEAD, bucket=f"{phase.name}:diskos")
        yield node.drive.read(lbn, nbytes)

    def write_block(self, phase: Phase, w: int,
                    nbytes: int) -> Generator[Event, Any, None]:
        node = self.nodes[w]
        sectors = (nbytes + 511) // 512
        lbn = node.next_write_lbn(sectors)
        yield from node.cpu.compute_raw(
            DISKOS_REQUEST_OVERHEAD, bucket=f"{phase.name}:diskos")
        yield node.drive.write(lbn, nbytes)

    def send_shuffle(self, phase: Phase, w: int, dst: int, nbytes: int,
                     latch: WorkLatch) -> None:
        latch.begin()
        if dst == w:
            self.sim.process(self._deliver_local(phase, w, nbytes, latch),
                             name="ad-local")
        elif self.config.direct_disk_to_disk:
            self.sim.process(self._deliver_direct(phase, w, dst, nbytes, latch),
                             name="ad-d2d")
        else:
            self.sim.process(
                self._deliver_via_frontend(phase, w, dst, nbytes, latch),
                name="ad-relay")

    def send_frontend(self, phase: Phase, w: int, nbytes: int,
                      latch: WorkLatch) -> None:
        latch.begin()
        self.sim.process(self._deliver_frontend(phase, w, nbytes, latch),
                         name="ad-fe")

    # -- delivery processes ------------------------------------------------------
    def _deliver_local(self, phase: Phase, w: int, nbytes: int,
                       latch: WorkLatch):
        try:
            yield from self.recv_work(phase, w, nbytes)
        finally:
            latch.done()

    def _deliver_direct(self, phase: Phase, src: int, dst: int, nbytes: int,
                        latch: WorkLatch):
        try:
            node = self.nodes[dst]
            yield node.comm_credits.request()
            node.comm_probe.acquire()
            try:
                yield from node.comm_probe.stall_wait(self.sim)
                yield from self.fabric.transfer(src, dst, nbytes)
                yield from self.recv_work(phase, dst, nbytes)
            finally:
                node.comm_probe.release()
                node.comm_credits.release()
        finally:
            latch.done()

    def _deliver_via_frontend(self, phase: Phase, src: int, dst: int,
                              nbytes: int, latch: WorkLatch):
        fe = self.frontend
        tel = self.sim.telemetry
        began = self.sim.now
        try:
            leg_ns = FRONTEND_COPY_NS + RELAY_HANDLING_NS
            # Leg 1: source disk -> front-end memory.
            yield from self.fabric.transfer(src, self.frontend_device,
                                            nbytes)
            yield from fe.pci.transfer(nbytes)
            yield from fe.cpu.compute(
                leg_ns * 1e-9 * nbytes, bucket=f"{phase.name}:relay")
            fe.bytes_relayed += nbytes
            # Leg 2: front-end -> destination disk (gated by its buffers).
            node = self.nodes[dst]
            yield node.comm_credits.request()
            node.comm_probe.acquire()
            try:
                yield from fe.cpu.compute(
                    leg_ns * 1e-9 * nbytes, bucket=f"{phase.name}:relay")
                yield from fe.pci.transfer(nbytes)
                yield from self.fabric.transfer(self.frontend_device,
                                                dst, nbytes)
                yield from self.recv_work(phase, dst, nbytes)
            finally:
                node.comm_probe.release()
                node.comm_credits.release()
            if tel.enabled:
                tel.spans.complete(
                    "host", f"relay {src}->{dst}", "host.frontend.relay",
                    began, self.sim.now - began, args={"nbytes": nbytes})
        finally:
            latch.done()

    def _deliver_frontend(self, phase: Phase, w: int, nbytes: int,
                          latch: WorkLatch):
        fe = self.frontend
        try:
            yield from self.fabric.transfer(w, self.frontend_device, nbytes)
            yield from fe.pci.transfer(nbytes)
            cost_ns = (FRONTEND_COPY_NS + phase.frontend_cpu_ns_per_byte)
            yield from fe.cpu.compute(
                cost_ns * 1e-9 * nbytes, bucket=f"{phase.name}:frontend")
            fe.bytes_received += nbytes
        finally:
            latch.done()

    def _frontend_bytes_observed(self) -> int:
        return self.frontend.bytes_received

    def _audit_scratch(self, phase: Phase, active: bool) -> None:
        what = f"{phase.name}: scratch_bytes={phase.scratch_bytes}"
        for node in self.nodes:
            if node.scratch_audit is None:
                continue
            if active:
                node.scratch_audit.reserve(phase.scratch_bytes, what)
            else:
                node.scratch_audit.release(phase.scratch_bytes, what)

    def phase_barrier(self):
        """Front-end coordination round: every disklet posts completion
        and receives the next phase's initialization over the loop."""
        fc_exchange = 250e-6 + 64 / 100e6  # FCP cost + tiny payload
        cost = 2 * (fc_exchange + self.frontend.os_params.interrupt)
        yield self.sim.pause(cost)

    # -- reporting ---------------------------------------------------------------
    def collect_extras(self) -> Dict[str, float]:
        return {
            "fc_bytes": self.fabric.bytes_moved(),
            "fc_utilization": self.fabric.utilization(),
            "frontend_bytes": float(self.frontend.bytes_received),
            "frontend_relay_bytes": float(self.frontend.bytes_relayed),
            "frontend_cpu_utilization": self.frontend.cpu.utilization(),
            "disk_bytes_read": float(
                sum(n.drive.bytes_read for n in self.nodes)),
            "disk_bytes_written": float(
                sum(n.drive.bytes_written for n in self.nodes)),
        }
