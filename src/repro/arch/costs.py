"""Cost model for the three architectures (paper Table 1 + Section 2.2).

Component prices are the paper's published figures (pricewatch.com /
streetprices.com retail, tracked at three dates over one year). The
configuration cost formulas reproduce Table 1's totals:

* Active Disk node = disk + embedded CPU + SDRAM + interconnect port +
  high-end-component premium; plus one FC host adaptor and one front-end.
* Cluster node = disk + monitor-less PC + network port; plus a front-end.
* The SMP figure is the paper's estimate for a 64-processor Origin 2000
  with 4 GB: $1.8 M list for the 8 GB machine minus a generous $300 K for
  the 4 GB difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = [
    "ComponentPrices", "PRICE_DATES", "PRICES",
    "active_disk_cost", "cluster_cost", "smp_cost_estimate",
    "cost_table",
]

PRICE_DATES = ("8/98", "11/98", "7/99")


@dataclass(frozen=True)
class ComponentPrices:
    """Per-item component prices at one date (US dollars)."""

    date: str
    disk: float                 # Seagate ST39102
    embedded_cpu: float         # Cyrix 6x86 200 MHz
    sdram_32mb: float
    interconnect_port: float    # FC-AL, per port
    premium: float              # high-end component premium, per drive
    fc_host_adaptor: float      # Emulex LP3000-class
    frontend: float             # complete front-end system
    cluster_node: float         # monitor-less Micron ClientPro, complete
    network_port: float         # two-level 3Com SuperStack, per port


#: The paper's Table 1 price points.
PRICES: Dict[str, ComponentPrices] = {
    "8/98": ComponentPrices(
        date="8/98", disk=670, embedded_cpu=32, sdram_32mb=38,
        interconnect_port=60, premium=150, fc_host_adaptor=600,
        frontend=9_000, cluster_node=1_500, network_port=300),
    "11/98": ComponentPrices(
        date="11/98", disk=540, embedded_cpu=30, sdram_32mb=30,
        interconnect_port=60, premium=150, fc_host_adaptor=600,
        frontend=6_000, cluster_node=1_300, network_port=300),
    "7/99": ComponentPrices(
        date="7/99", disk=470, embedded_cpu=22, sdram_32mb=18,
        interconnect_port=60, premium=150, fc_host_adaptor=600,
        frontend=4_200, cluster_node=1_150, network_port=300),
}


def active_disk_cost(num_disks: int, date: str = "7/99",
                     memory_mb: int = 32) -> float:
    """Total price of an Active Disk configuration.

    Memory beyond the base 32 MB is priced at the same $/MB as the base
    SDRAM module (used by the Section 4.3 what-if ablations).
    """
    prices = PRICES[date]
    per_disk = (prices.disk + prices.embedded_cpu
                + prices.sdram_32mb * (memory_mb / 32.0)
                + prices.interconnect_port + prices.premium)
    return num_disks * per_disk + prices.fc_host_adaptor + prices.frontend


def cluster_cost(num_nodes: int, date: str = "7/99") -> float:
    """Total price of a commodity-cluster configuration."""
    prices = PRICES[date]
    per_node = prices.disk + prices.cluster_node + prices.network_port
    return num_nodes * per_node + prices.frontend


def smp_cost_estimate(num_cpus: int = 64) -> float:
    """The paper's SMP estimate, scaled linearly in processor count.

    $1.5 M for the 64-processor / 4 GB Origin 2000 studied in the paper.
    """
    return 1_500_000 * (num_cpus / 64.0)


def cost_table(num_disks: int = 64) -> List[Tuple[str, float, float, float]]:
    """Rows of Table 1: (date, active_total, cluster_total, ratio)."""
    rows = []
    for date in PRICE_DATES:
        active = active_disk_cost(num_disks, date)
        cluster = cluster_cost(num_disks, date)
        rows.append((date, active, cluster, active / cluster))
    return rows
