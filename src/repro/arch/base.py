"""Machine base: the shared phase-execution engine and result types.

All three machines execute :class:`~repro.arch.program.TaskProgram`\\ s with
the same skeleton — per-phase worker processes that pipeline block reads,
charge labelled CPU costs, and route output bytes — and differ only in
*which resources* each step touches. The hooks a machine implements:

``read_block``     local/striped read of one request, including any buses
``write_block``    local/striped write of one request
``worker_cpu``     the :class:`~repro.host.Cpu` executing worker ``w``
``send_shuffle``   deliver a repartitioned batch to a peer worker
``send_frontend``  deliver a result batch to the front-end

Time accounting: every CPU charge lands in a labelled bucket prefixed by
the phase name, and :meth:`Machine.run` snapshots the buckets at phase
boundaries — so per-phase busy/idle breakdowns (the paper's Figure 3)
fall out without task-specific instrumentation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

from ..faults.errors import FaultError
from ..host import Cpu
from ..sim import Event, Simulator
from .config import ArchConfig
from .program import Phase, TaskProgram

__all__ = ["Dribble", "WorkLatch", "PhaseResult", "RunResult", "Machine",
           "destination_cycle"]


class _RecoveryPool:
    """Input bytes orphaned by failed workers during one phase.

    A worker that dies deposits its unprocessed share (plus any fixed
    output tail it never emitted); surviving workers claim the bytes in
    block-sized chunks during the post-barrier recovery rounds and
    re-scan them from their own replicas.
    """

    def __init__(self) -> None:
        self.lost_bytes = 0
        self.fixed_shuffle = 0
        self.fixed_frontend = 0
        self.failed: set = set()

    def worker_down(self, w: int) -> None:
        self.failed.add(w)

    def deposit(self, nbytes: int) -> None:
        self.lost_bytes += nbytes

    def claim(self, maxbytes: int) -> int:
        take = min(maxbytes, self.lost_bytes)
        self.lost_bytes -= take
        return take

    def pending(self) -> bool:
        return (self.lost_bytes > 0 or self.fixed_shuffle > 0
                or self.fixed_frontend > 0)


def _prefix_phase(phase: Phase, prefix: str) -> Phase:
    """A copy of ``phase`` with a namespaced name (concurrent runs)."""
    from dataclasses import replace
    return replace(phase, name=f"{prefix}:{phase.name}")


class Dribble:
    """Exact cumulative apportioning of a byte fraction.

    ``take(n)`` returns the integral number of output bytes owed after
    ``n`` more input bytes, such that the running total never drifts from
    ``fraction * input`` by more than one byte.
    """

    def __init__(self, fraction: float):
        if fraction < 0:
            raise ValueError(f"negative fraction: {fraction}")
        self.fraction = fraction
        self.taken_in = 0
        self.given_out = 0

    def take(self, nbytes: int) -> int:
        self.taken_in += nbytes
        owed = int(self.fraction * self.taken_in) - self.given_out
        self.given_out += owed
        return owed


def destination_cycle(workers: int, skew: float, start: int,
                      cycle_factor: int = 4) -> List[int]:
    """Deterministic shuffle-destination schedule.

    With ``skew == 0`` this is a plain rotation starting after ``start``
    (the uniform spread of the paper's datasets). With ``skew > 0`` the
    schedule approximates a Zipf(``skew``) distribution over workers —
    worker 0 owns the hottest partition — using largest-remainder
    apportionment over a cycle of ``workers * cycle_factor`` slots, with
    destinations interleaved so hot receivers are hit steadily rather
    than in bursts. Deterministic by construction, so simulations stay
    reproducible.
    """
    if workers < 1:
        raise ValueError(f"need at least one worker, got {workers}")
    if workers == 1:
        return [0]
    if skew <= 0:
        return [(start + 1 + i) % workers for i in range(workers)]
    weights = [1.0 / (d + 1) ** skew for d in range(workers)]
    total = sum(weights)
    length = workers * cycle_factor
    quotas = [w / total * length for w in weights]
    counts = [int(q) for q in quotas]
    shortfall = length - sum(counts)
    by_remainder = sorted(range(workers),
                          key=lambda d: quotas[d] - counts[d], reverse=True)
    for d in by_remainder[:shortfall]:
        counts[d] += 1
    # Spread each destination's occurrences evenly over the cycle so the
    # hot receiver is hit steadily rather than in a burst at the end.
    slots = []
    for d in range(workers):
        for i in range(counts[d]):
            slots.append(((i + 0.5) / counts[d], d))
    slots.sort()
    return [d for _, d in slots]


class WorkLatch:
    """Counts in-flight asynchronous work; lets a phase wait for drain."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.open = 0
        self._waiter: Optional[Event] = None

    def begin(self) -> None:
        self.open += 1

    def done(self) -> None:
        if self.open <= 0:
            raise RuntimeError("WorkLatch.done() without begin()")
        self.open -= 1
        if self.open == 0 and self._waiter is not None:
            waiter, self._waiter = self._waiter, None
            waiter.succeed()

    def drained(self) -> Generator[Event, Any, None]:
        while self.open > 0:
            if self._waiter is None:
                self._waiter = Event(self.sim)
            yield self._waiter


@dataclass
class PhaseResult:
    """Timing and busy breakdown of one executed phase."""

    name: str
    elapsed: float
    workers: int
    busy: Dict[str, float]          # label -> aggregate busy seconds

    @property
    def worker_seconds(self) -> float:
        return self.elapsed * self.workers

    @property
    def busy_total(self) -> float:
        return sum(self.busy.values())

    @property
    def idle(self) -> float:
        """Aggregate worker-CPU idle time during the phase."""
        return max(0.0, self.worker_seconds - self.busy_total)

    def fractions(self) -> Dict[str, float]:
        """Breakdown including idle, as fractions of worker-seconds."""
        if self.worker_seconds <= 0:
            return {}
        out = {k: v / self.worker_seconds for k, v in self.busy.items()}
        out["idle"] = self.idle / self.worker_seconds
        return out


@dataclass
class RunResult:
    """Outcome of running one task program on one machine."""

    task: str
    arch: str
    num_disks: int
    elapsed: float
    phases: List[PhaseResult]
    extras: Dict[str, float] = field(default_factory=dict)

    def phase(self, name: str) -> PhaseResult:
        for result in self.phases:
            if result.name == name:
                return result
        raise KeyError(f"no phase named {name!r} in {self.task} run")


class Machine(ABC):
    """Shared phase-execution engine. Subclasses wire the resources."""

    arch = "abstract"

    def __init__(self, sim: Simulator, config: ArchConfig):
        self.sim = sim
        self.config = config
        self._phase_results: List[PhaseResult] = []
        self._recovery_pools: Dict[str, _RecoveryPool] = {}
        # Invariant auditor: None unless armed, so every probe site in
        # the worker loops pays one load and a branch when disarmed.
        # Armed, it keeps per-phase byte ledgers (input processed,
        # shuffle sent/delivered, stream fractions) that are settled at
        # each phase boundary and at end of run.
        self._audit = None
        if sim.invariants.enabled:
            self._audit = sim.invariants.machine_auditor(self)

    # -- hooks ----------------------------------------------------------------
    @property
    @abstractmethod
    def worker_count(self) -> int:
        """Workers executing phases (disks / nodes / processors)."""

    @abstractmethod
    def worker_cpu(self, w: int) -> Cpu:
        """The CPU that runs worker ``w``."""

    @abstractmethod
    def read_block(self, phase: Phase, w: int, nbytes: int,
                   stream: int) -> Generator[Event, Any, None]:
        """Read one request of ``nbytes`` from worker ``w``'s input."""

    @abstractmethod
    def write_block(self, phase: Phase, w: int,
                    nbytes: int) -> Generator[Event, Any, None]:
        """Write one request of ``nbytes`` from worker ``w``."""

    @abstractmethod
    def send_shuffle(self, phase: Phase, w: int, dst: int, nbytes: int,
                     latch: WorkLatch) -> None:
        """Asynchronously repartition ``nbytes`` from ``w`` to ``dst``."""

    @abstractmethod
    def send_frontend(self, phase: Phase, w: int, nbytes: int,
                      latch: WorkLatch) -> None:
        """Asynchronously deliver ``nbytes`` from ``w`` to the front-end."""

    def collect_extras(self) -> Dict[str, float]:
        """Machine-specific counters for :attr:`RunResult.extras`."""
        return {}

    def _frontend_bytes_observed(self) -> Optional[int]:
        """Front-end byte counter for the armed conservation audit.

        ``None`` (the default) skips the frontend ledger check;
        machines with a front-end counter override this.
        """
        return None

    def _audit_scratch(self, phase: Phase, active: bool) -> None:
        """Armed-only notification that ``phase``'s scratch is (de)allocated.

        The Active Disk machine overrides this to charge each node's
        DiskOS scratch ledger; hosts with virtual memory have no static
        budget to enforce.
        """

    def phase_barrier(self) -> Generator[Event, Any, None]:
        """Global synchronization cost charged between phases.

        Machines override this with their synchronization primitive's
        latency (MPI barrier on the cluster, NUMA barrier on the SMP,
        front-end coordination round on Active Disks). The default is
        free.
        """
        return
        yield  # pragma: no cover - makes this a generator

    # -- helpers shared by subclasses ------------------------------------------
    def charge_cpu(self, cpu: Cpu, phase: Phase, components, nbytes: int
                   ) -> Generator[Event, Any, None]:
        """Charge each labelled cost for ``nbytes`` on ``cpu``."""
        for component in components:
            cost = component.ns_per_byte * 1e-9 * nbytes
            if cost > 0:
                yield from cpu.compute(
                    cost, bucket=f"{phase.name}:{component.label}")

    def recv_work(self, phase: Phase, dst: int, nbytes: int
                  ) -> Generator[Event, Any, None]:
        """Receiver-side CPU + write for a delivered shuffle batch."""
        if self._audit is not None:
            self._audit.delivered_shuffle(phase, nbytes)
        yield from self.charge_cpu(
            self.worker_cpu(dst), phase, phase.recv, nbytes)
        to_write = int(nbytes * phase.recv_write_fraction)
        if to_write > 0:
            try:
                yield from self.write_block(phase, dst, to_write)
            except FaultError:
                self._lost_write(to_write)

    def _lost_write(self, nbytes: int) -> None:
        """Account output bytes dropped because the target device died.

        Locally-written run data is an intermediate the model does not
        replay; a write refused by a failed drive is counted rather than
        re-routed (the re-scan of the failed drive's *input* partition is
        what recovery replays).
        """
        self.sim.faults.note("faults.arch.lost_write_bytes", nbytes)

    # -- the engine -------------------------------------------------------------
    def run(self, program: TaskProgram) -> RunResult:
        """Execute ``program`` to completion and return the results."""
        self._phase_results = []
        self._finished_at: Optional[float] = None
        driver = self.sim.process(self._run_program(program), name="driver")
        self.sim.run()
        if not driver.triggered or not driver.ok:
            raise RuntimeError(
                f"{self.arch}/{program.task}: program did not complete")
        # Prefer the program's own completion time: a telemetry sampler
        # (or any other periodic observer) may tick once more after the
        # last real event, advancing sim.now past the interesting part.
        elapsed = (self._finished_at if self._finished_at is not None
                   else self.sim.now)
        return RunResult(
            task=program.task,
            arch=self.arch,
            num_disks=self.config.num_disks,
            elapsed=elapsed,
            phases=self._phase_results,
            extras=self.collect_extras(),
        )

    def run_concurrent(self, programs: List[TaskProgram]) -> List[RunResult]:
        """Execute several programs at once on this machine.

        Models a mixed decision-support workload: the programs contend
        for every resource (media, CPUs, interconnect, front-end). Each
        result's ``elapsed`` is that program's own completion time;
        phase buckets are kept separate by prefixing each program's
        phases with its task name.

        A machine instance is still single-use: build a fresh one per
        call.
        """
        if not programs:
            raise ValueError("run_concurrent needs at least one program")
        completion: Dict[int, float] = {}
        results_by_program: Dict[int, List[PhaseResult]] = {}

        def driver(index: int, program: TaskProgram):
            prefixed = TaskProgram(
                task=program.task,
                phases=tuple(
                    _prefix_phase(phase, f"{program.task}#{index}")
                    for phase in program.phases))
            own_results: List[PhaseResult] = []
            results_by_program[index] = own_results
            yield from self._run_program(prefixed, own_results)
            completion[index] = self.sim.now

        drivers = [
            self.sim.process(driver(i, program), name=f"driver{i}")
            for i, program in enumerate(programs)
        ]
        self.sim.run()
        for process in drivers:
            if not process.triggered or not process.ok:
                raise RuntimeError(
                    f"{self.arch}: concurrent program did not complete")
        return [
            RunResult(
                task=program.task,
                arch=self.arch,
                num_disks=self.config.num_disks,
                elapsed=completion[i],
                phases=results_by_program[i],
                extras=self.collect_extras(),
            )
            for i, program in enumerate(programs)
        ]


    def _busy_snapshot(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for w in range(self.worker_count):
            for label, value in self.worker_cpu(w).busy.buckets.items():
                totals[label] = totals.get(label, 0.0) + value
        return totals

    def _run_program(self, program: TaskProgram,
                     sink: Optional[List[PhaseResult]] = None):
        results = self._phase_results if sink is None else sink
        tel = self.sim.telemetry
        track = f"machine.{self.arch}"
        for phase in program.phases:
            began = self.sim.now
            before = self._busy_snapshot()
            if self._audit is not None:
                self._audit_scratch(phase, active=True)
            latch = WorkLatch(self.sim)
            workers = [
                self.sim.process(self.run_worker(phase, w, latch),
                                 name=f"{phase.name}-w{w}")
                for w in range(self.worker_count)
            ]
            yield self.sim.all_of(workers)
            yield from latch.drained()
            pool = self._recovery_pools.get(phase.name)
            if pool is not None and pool.pending():
                yield from self._recover_phase(phase, latch, pool)
            if self._audit is not None:
                self._audit_scratch(phase, active=False)
                self._audit.phase_finished(phase)
            if tel.enabled:
                tel.spans.instant("phase", f"{phase.name}: barrier", track)
            yield from self.phase_barrier()
            after = self._busy_snapshot()
            prefix = f"{phase.name}:"
            busy = {
                label[len(prefix):]: after[label] - before.get(label, 0.0)
                for label in after if label.startswith(prefix)
            }
            results.append(PhaseResult(
                name=phase.name,
                elapsed=self.sim.now - began,
                workers=self.worker_count,
                busy={k: v for k, v in busy.items() if v > 0},
            ))
            if tel.enabled:
                tel.spans.complete("phase", phase.name, track, began,
                                   self.sim.now - began,
                                   args={"workers": self.worker_count})
        self._finished_at = self.sim.now

    # -- degraded-mode recovery -------------------------------------------------
    def _recover_phase(self, phase: Phase, latch: WorkLatch,
                       pool: _RecoveryPool):
        """Re-scan a failed worker's partition on the survivors.

        Runs after the phase's normal workers finish (and their async
        deliveries drain): the survivors claim the orphaned bytes in
        block-sized chunks and replay read + compute + route for them —
        the declustered-reconstruction model, where every survivor holds
        a replica of a slice of the dead partition. Rounds repeat while
        the pool refills (a survivor can itself die mid-recovery); the
        run only fails when no workers are left.
        """
        sim = self.sim
        tel = sim.telemetry
        began = sim.now
        while pool.pending():
            survivors = [w for w in range(self.worker_count)
                         if w not in pool.failed]
            if not survivors:
                raise RuntimeError(
                    f"{self.arch}/{phase.name}: all workers failed with "
                    f"{pool.lost_bytes} bytes unrecovered")
            sim.faults.note("faults.arch.recovery_rounds")
            emitter = survivors[0]
            recoverers = [
                sim.process(
                    self._recovery_worker(phase, w, latch, pool,
                                          emit_fixed=(w == emitter)),
                    name=f"{phase.name}-rec{w}")
                for w in survivors
            ]
            yield sim.all_of(recoverers)
            yield from latch.drained()
        if tel.enabled:
            tel.spans.complete(
                "recovery", phase.name, f"machine.{self.arch}",
                began, sim.now - began,
                args={"failed_workers": len(pool.failed)})

    def _recovery_worker(self, phase: Phase, w: int, latch: WorkLatch,
                         pool: _RecoveryPool, emit_fixed: bool):
        """One survivor's share of a recovery round.

        ``emit_fixed``: the lowest-indexed survivor also emits the fixed
        output tails the failed workers never sent. The tails are taken
        from the pool up front and re-deposited if this survivor dies
        before flushing them.
        """
        fixed_shuffle = fixed_frontend = 0
        if emit_fixed:
            fixed_shuffle, pool.fixed_shuffle = pool.fixed_shuffle, 0
            fixed_frontend, pool.fixed_frontend = pool.fixed_frontend, 0
        state = {"claimed": 0}

        def claim(maxbytes: int) -> int:
            take = pool.claim(maxbytes)
            state["claimed"] += take
            return take

        def on_failure(lost: int) -> None:
            pool.worker_down(w)
            pool.deposit(lost)
            pool.fixed_shuffle += fixed_shuffle
            pool.fixed_frontend += fixed_frontend
            state["claimed"] -= lost
            self.sim.faults.note("faults.arch.worker_failures")

        yield from self._block_loop(
            phase, w, latch, claim,
            fixed_shuffle=fixed_shuffle,
            fixed_frontend=fixed_frontend,
            on_failure=on_failure)
        self.sim.faults.note("faults.arch.recovered_bytes",
                             state["claimed"])

    def worker_share(self, phase: Phase, w: int) -> int:
        """Bytes worker ``w`` reads in ``phase`` (even split, w-indexed)."""
        total = phase.read_bytes_total
        workers = self.worker_count
        share = total // workers
        if w < total % workers:
            share += 1
        return share

    def _pool_for(self, phase: Phase) -> _RecoveryPool:
        return self._recovery_pools.setdefault(phase.name, _RecoveryPool())

    def run_worker(self, phase: Phase, w: int, latch: WorkLatch):
        """Default pipelined worker loop (AD and cluster; SMP overrides)."""
        total_bytes = self.worker_share(phase, w)
        if (total_bytes <= 0 and phase.frontend_fixed_per_worker <= 0
                and phase.shuffle_fixed_per_worker <= 0):
            return
        state = {"claimed": 0}

        def claim(maxbytes: int) -> int:
            take = min(maxbytes, total_bytes - state["claimed"])
            state["claimed"] += take
            return take

        def on_failure(lost: int) -> None:
            pool = self._pool_for(phase)
            pool.worker_down(w)
            pool.deposit(lost + (total_bytes - state["claimed"]))
            pool.fixed_shuffle += phase.shuffle_fixed_per_worker
            pool.fixed_frontend += phase.frontend_fixed_per_worker
            self.sim.faults.note("faults.arch.worker_failures")

        yield from self._block_loop(
            phase, w, latch, claim,
            fixed_shuffle=phase.shuffle_fixed_per_worker,
            fixed_frontend=phase.frontend_fixed_per_worker,
            on_failure=on_failure)

    def _guard(self, gen):
        """Run an I/O generator, handing a fault back as the value.

        The block loops keep several reads in flight; raising out of a
        reader process would abort the simulation before the worker can
        account the loss, so the guard converts :class:`FaultError` into
        the process's return value (None on success, as before).
        """
        try:
            yield from gen
        except FaultError as exc:
            return exc

    def _read_guard(self, phase: Phase, w: int, nbytes: int, stream: int):
        gen = self.read_block(phase, w, nbytes, stream)
        if not self.sim.faults.enabled:
            return gen
        return self._guard(gen)

    def _block_loop(self, phase: Phase, w: int, latch: WorkLatch, claim,
                    fixed_shuffle: int, fixed_frontend: int,
                    on_failure=None):
        """Pipelined read -> compute -> route loop over a byte source.

        ``claim(maxbytes) -> int`` hands out the next chunk of input (0
        when the source is dry). On a read fault the worker stops
        claiming, drains its in-flight reads (counting their bytes as
        lost), flushes what it already computed, and reports the loss
        through ``on_failure(lost_bytes)`` instead of emitting the fixed
        tails.
        """
        sim = self.sim
        cpu = self.worker_cpu(w)
        block = self.config.io_request_bytes
        depth = self.config.queue_depth
        streams = max(1, phase.read_streams)
        audit = self._audit
        if audit is not None:
            audit.loop_started(phase)

        shuffle = Dribble(phase.shuffle_fraction)
        frontend = Dribble(phase.frontend_fraction)
        local_write = Dribble(phase.write_fraction)

        shuffle_pending = 0
        frontend_pending = 0
        write_pending = 0
        destinations = destination_cycle(
            self.worker_count, phase.shuffle_skew, start=w)
        dst_index = 0

        pending = deque()
        stream_cursor = 0
        broken = False
        lost = 0

        def top_up():
            nonlocal stream_cursor
            if broken:
                return
            while len(pending) < depth:
                nbytes = claim(block)
                if nbytes <= 0:
                    break
                stream = stream_cursor % streams
                stream_cursor += 1
                reader = sim.process(
                    self._read_guard(phase, w, nbytes, stream),
                    name=f"{phase.name}-r{w}")
                pending.append((reader, nbytes))

        def flush_shuffle(force: bool):
            nonlocal shuffle_pending, dst_index
            while (shuffle_pending >= block
                   or (force and shuffle_pending > 0)):
                batch = min(block, shuffle_pending)
                shuffle_pending -= batch
                dst = destinations[dst_index % len(destinations)]
                dst_index += 1
                if audit is not None:
                    audit.sent_shuffle(phase, batch)
                self.send_shuffle(phase, w, dst, batch, latch)

        def flush_frontend(force: bool):
            nonlocal frontend_pending
            while (frontend_pending >= block
                   or (force and frontend_pending > 0)):
                batch = min(block, frontend_pending)
                frontend_pending -= batch
                if audit is not None:
                    audit.sent_frontend(phase, batch)
                self.send_frontend(phase, w, batch, latch)

        def write_batch(nbytes: int):
            nonlocal lost
            try:
                yield from self.write_block(phase, w, nbytes)
            except FaultError:
                self._lost_write(nbytes)

        top_up()
        while pending:
            reader, nbytes = pending.popleft()
            outcome = yield reader
            if outcome is not None:
                broken = True
                lost += nbytes
                continue
            top_up()
            yield from self.charge_cpu(cpu, phase, phase.cpu, nbytes)
            if audit is not None:
                audit.processed(phase, nbytes)
            shuffle_pending += shuffle.take(nbytes)
            frontend_pending += frontend.take(nbytes)
            write_pending += local_write.take(nbytes)
            flush_shuffle(force=False)
            flush_frontend(force=False)
            while write_pending >= block:
                write_pending -= block
                yield from write_batch(block)
            top_up()

        if broken:
            # Flush what was computed before the fault (the controller
            # survives a media failure), then hand the unread remainder
            # to the phase's recovery pool.
            flush_shuffle(force=True)
            flush_frontend(force=True)
            if write_pending > 0:
                yield from write_batch(write_pending)
            if on_failure is not None:
                on_failure(lost)
            return

        if audit is not None:
            if fixed_shuffle:
                audit.fixed_shuffle(phase, fixed_shuffle)
            if fixed_frontend:
                audit.fixed_frontend(phase, fixed_frontend)
        shuffle_pending += fixed_shuffle
        frontend_pending += fixed_frontend
        flush_shuffle(force=True)
        flush_frontend(force=True)
        if write_pending > 0:
            yield from write_batch(write_pending)
