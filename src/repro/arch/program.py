"""Architecture-neutral task programs: phases of block-granular dataflow.

Every decision-support task, on every architecture, boils down to one or
more *phases* in which each worker (disk / node / processor):

1. reads its share of a dataset sequentially in fixed-size requests,
2. spends CPU on every byte (one or more labelled cost components),
3. routes output bytes — to peer workers (a repartitioning shuffle), to
   the front-end, back to local storage, or nowhere (consumed),
4. performs receiver-side CPU work and writes for bytes that arrive from
   peers,
5. synchronizes at a barrier before the next phase.

A :class:`Phase` captures exactly that, with costs expressed at the trace
machine's clock rate (:data:`~repro.host.cpu.REFERENCE_MHZ`). The three
machine models execute the same :class:`TaskProgram` against their own
resources, which is what makes the cross-architecture comparison an
apples-to-apples one — mirroring how the paper implemented each task
three times against a common trace format.

Labelled cost components exist so execution-time breakdowns (the paper's
Figure 3) fall out of the accounting: e.g. sort's first phase charges
``partitioner`` at the reading worker and ``append`` + ``sort`` at the
shuffle receiver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

__all__ = ["CostComponent", "Phase", "TaskProgram"]


@dataclass(frozen=True)
class CostComponent:
    """One labelled CPU cost: nanoseconds per byte at the reference clock."""

    label: str
    ns_per_byte: float

    def __post_init__(self) -> None:
        if self.ns_per_byte < 0:
            raise ValueError(
                f"{self.label}: negative cost {self.ns_per_byte}")


@dataclass(frozen=True)
class Phase:
    """One barrier-delimited stage of a task.

    Attributes
    ----------
    read_bytes_total:
        Bytes read in this phase, summed over all workers (each worker
        reads an equal share of it from its local/striped storage).
    cpu:
        Labelled per-byte costs charged at the reading worker.
    shuffle_fraction:
        Fraction of read bytes repartitioned across all workers. With W
        workers, (W-1)/W of it crosses the interconnect; 1/W stays local
        (but still pays receiver-side costs).
    recv:
        Labelled per-byte costs charged at the worker a shuffled byte
        lands on.
    recv_write_fraction:
        Fraction of shuffled bytes written to storage at the receiver
        (run files, partition files).
    shuffle_fixed_per_worker:
        Extra bytes each worker repartitions once, at end of input
        (candidate-count exchanges and other fixed-size collectives).
    frontend_fraction / frontend_fixed_per_worker:
        Bytes delivered to the front-end: proportional to input, plus a
        fixed per-worker tail (partial aggregates, counter tables).
    frontend_cpu_ns_per_byte:
        Cost charged at the front-end per delivered byte.
    write_fraction:
        Fraction of read bytes written back locally by the reader.
    read_streams:
        Interleaved sequential streams the reader's request pattern forms
        (1 for a scan; the run count for an external-merge phase). Drives
        lose sequential streaming once this exceeds their cache segments.
    split_disk_groups:
        On the SMP, read from one half of the disk farm and write to the
        other (the NOW-sort trick the paper applies to sort and join).
    scratch_bytes:
        Per-worker scratch memory the phase's algorithm needs; the
        Active Disk machine checks it against the DiskOS memory layout.
    """

    name: str
    read_bytes_total: int
    cpu: Tuple[CostComponent, ...] = ()
    shuffle_fraction: float = 0.0
    shuffle_fixed_per_worker: int = 0
    #: Zipf exponent of the shuffle's destination distribution. 0 means
    #: the uniform spread of the paper's datasets; > 0 concentrates
    #: repartitioned bytes on low-numbered workers (hot partitions).
    shuffle_skew: float = 0.0
    recv: Tuple[CostComponent, ...] = ()
    recv_write_fraction: float = 0.0
    frontend_fraction: float = 0.0
    frontend_fixed_per_worker: int = 0
    frontend_cpu_ns_per_byte: float = 0.0
    write_fraction: float = 0.0
    read_streams: int = 1
    split_disk_groups: bool = False
    scratch_bytes: int = 0

    def __post_init__(self) -> None:
        if self.read_bytes_total < 0:
            raise ValueError(f"{self.name}: negative read volume")
        for frac, label in ((self.shuffle_fraction, "shuffle_fraction"),
                            (self.recv_write_fraction, "recv_write_fraction"),
                            (self.frontend_fraction, "frontend_fraction"),
                            (self.write_fraction, "write_fraction"),
                            (self.shuffle_skew, "shuffle_skew")):
            if frac < 0:
                raise ValueError(f"{self.name}: negative {label}")
        if self.read_streams < 1:
            raise ValueError(f"{self.name}: read_streams must be >= 1")

    @property
    def cpu_total_ns_per_byte(self) -> float:
        return sum(c.ns_per_byte for c in self.cpu)

    @property
    def recv_total_ns_per_byte(self) -> float:
        return sum(c.ns_per_byte for c in self.recv)


@dataclass(frozen=True)
class TaskProgram:
    """A named sequence of phases implementing one task on one machine."""

    task: str
    phases: Tuple[Phase, ...]

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError(f"{self.task}: a program needs at least one phase")

    def total_read_bytes(self) -> int:
        return sum(p.read_bytes_total for p in self.phases)

    def total_shuffle_bytes(self) -> int:
        return sum(int(p.read_bytes_total * p.shuffle_fraction)
                   for p in self.phases)
