"""The three server architectures and the shared phase-execution engine."""

from .active_disk import ActiveDiskMachine, ActiveDiskNode, FrontEnd
from .base import Dribble, Machine, PhaseResult, RunResult, WorkLatch
from .cluster import ClusterMachine, ClusterNode
from .config import (
    CORE_SIZES,
    GB,
    MB,
    ActiveDiskConfig,
    ArchConfig,
    ClusterConfig,
    SMPConfig,
)
from .costs import (
    PRICE_DATES,
    PRICES,
    active_disk_cost,
    cluster_cost,
    cost_table,
    smp_cost_estimate,
)
from .program import CostComponent, Phase, TaskProgram
from .smp import SMPMachine, SharedBlockQueue

__all__ = [
    "ArchConfig", "ActiveDiskConfig", "ClusterConfig", "SMPConfig",
    "CORE_SIZES", "MB", "GB",
    "Machine", "RunResult", "PhaseResult", "WorkLatch", "Dribble",
    "ActiveDiskMachine", "ActiveDiskNode", "FrontEnd",
    "ClusterMachine", "ClusterNode",
    "SMPMachine", "SharedBlockQueue",
    "Phase", "TaskProgram", "CostComponent",
    "PRICES", "PRICE_DATES", "active_disk_cost", "cluster_cost",
    "smp_cost_estimate", "cost_table",
]


def build_machine(sim, config):
    """Instantiate the machine matching a configuration's architecture."""
    if isinstance(config, ActiveDiskConfig):
        return ActiveDiskMachine(sim, config)
    if isinstance(config, ClusterConfig):
        return ClusterMachine(sim, config)
    if isinstance(config, SMPConfig):
        return SMPMachine(sim, config)
    raise TypeError(f"unknown configuration type: {type(config).__name__}")


__all__.append("build_machine")
