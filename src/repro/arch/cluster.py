"""The commodity-cluster machine: one PC + one disk per node.

Resources per node: a 300 MHz Pentium II :class:`~repro.host.Cpu`, a
private Seagate drive on an Ultra2 SCSI bus (80 MB/s), a 133 MB/s PCI bus
shared by the SCSI adaptor and the 100BaseT NIC, and measured Linux OS
costs. Nodes are connected by the two-level switched-Ethernet fat-tree of
:class:`~repro.net.FatTree`; the front-end is an additional host behind
its own 100 Mb/s access link — the link whose congestion limits group-by
in the paper's Figure 1.

Data paths
----------
* **scan**: media -> SCSI -> PCI -> memory -> CPU; submit/completion OS
  costs charged per request on the node CPU.
* **shuffle**: sender PCI -> NIC -> fat-tree -> receiver PCI, gated by
  the receiver's 16 posted asynchronous receives.
* **front-end delivery**: fat-tree -> front-end access link -> front-end
  CPU.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List

from ..disk import DiskDrive
from ..host import Cpu, OSParams, scaled_os_params
from ..interconnect import SerialBus
from ..net import FatTree, Network
from ..sim import Event, Server, Simulator
from ..tracegen.costs import CLUSTER_COPY_NS
from .base import Machine, WorkLatch
from .config import ClusterConfig
from .program import Phase

__all__ = ["ClusterNode", "ClusterMachine"]

#: User-space messaging library CPU overhead per send/receive, seconds
#: at the node's own clock (BSPlib-style pinned-buffer library).
MESSAGE_OVERHEAD = 25e-6


class ClusterNode:
    """One PC: CPU, private disk behind SCSI, PCI shared with the NIC."""

    def __init__(self, sim: Simulator, config: ClusterConfig, index: int):
        self.index = index
        self.cpu = Cpu(sim, config.node_cpu_mhz, name=f"node{index}")
        self.drive = DiskDrive(sim, config.drive_for(index),
                               name=f"cdisk{index}",
                               fault_id=f"disk.{index}")
        self.scsi = SerialBus(sim, config.scsi_rate, startup=10e-6,
                              name=f"scsi{index}")
        self.pci = SerialBus(sim, config.pci_rate, startup=1e-6,
                             name=f"pci{index}")
        self.os_params = scaled_os_params(config.node_cpu_mhz)
        self.recv_credits = Server(sim, capacity=config.async_receives,
                                   name=f"recv{index}")
        self.read_cursors: Dict = {}
        half = self.drive.geometry.total_sectors // 2
        self.write_cursor = half
        self._write_base = half

    def next_read_lbn(self, key, sectors: int, stream: int,
                      stream_stride: int) -> int:
        cursor_key = (key, stream)
        if cursor_key not in self.read_cursors:
            self.read_cursors[cursor_key] = stream * stream_stride
        lbn = self.read_cursors[cursor_key]
        self.read_cursors[cursor_key] = lbn + sectors
        return lbn % max(1, self._write_base - sectors)

    def next_write_lbn(self, sectors: int) -> int:
        lbn = self.write_cursor
        self.write_cursor += sectors
        if self.write_cursor + sectors >= self.drive.geometry.total_sectors:
            self.write_cursor = self._write_base
        return lbn


class ClusterMachine(Machine):
    """Executes task programs on the commodity-cluster architecture."""

    arch = "cluster"

    def __init__(self, sim: Simulator, config: ClusterConfig):
        super().__init__(sim, config)
        self.config: ClusterConfig = config
        self.nodes = [ClusterNode(sim, config, i)
                      for i in range(config.num_nodes)]
        # Host index num_nodes is the front-end, on its own access link.
        self.tree = FatTree(sim, config.num_nodes + 1, config.ethernet)
        self.network = Network(self.tree)
        self.frontend_cpu = Cpu(sim, config.frontend_cpu_mhz, name="fe-cpu")
        self.frontend_host = config.num_nodes
        self.frontend_bytes = 0
        tel = sim.telemetry
        if tel.enabled:
            tel.add_probe(
                "node.cpu.utilization.mean",
                lambda: sum(n.cpu.utilization() for n in self.nodes)
                / len(self.nodes))
            tel.add_probe("frontend.cpu.utilization",
                          self.frontend_cpu.utilization)
            tel.add_probe(
                "net.frontend.link.utilization",
                self.tree.port(self.frontend_host).rx.utilization)
            tel.add_probe(
                "disk.queue.depth.mean",
                lambda: sum(len(n.drive.queue) for n in self.nodes)
                / len(self.nodes))

    # -- hooks -----------------------------------------------------------------
    @property
    def worker_count(self) -> int:
        return self.config.num_nodes

    def worker_cpu(self, w: int) -> Cpu:
        return self.nodes[w].cpu

    def _frontend_bytes_observed(self):
        return self.frontend_bytes

    def read_block(self, phase: Phase, w: int, nbytes: int,
                   stream: int) -> Generator[Event, Any, None]:
        node = self.nodes[w]
        sectors = (nbytes + 511) // 512
        share = self.worker_share(phase, w)
        stride = (share // max(1, phase.read_streams) + 511) // 512
        lbn = node.next_read_lbn(phase.name, sectors, stream, stride)
        yield from node.cpu.compute_raw(
            node.os_params.io_submit_cost(), bucket=f"{phase.name}:os")
        yield node.drive.read(lbn, nbytes)
        yield from node.scsi.transfer(nbytes)
        yield from node.pci.transfer(nbytes)
        yield from node.cpu.compute(
            CLUSTER_COPY_NS * 1e-9 * nbytes, bucket=f"{phase.name}:copy")
        yield from node.cpu.compute_raw(
            node.os_params.io_complete_cost(), bucket=f"{phase.name}:os")

    def write_block(self, phase: Phase, w: int,
                    nbytes: int) -> Generator[Event, Any, None]:
        node = self.nodes[w]
        sectors = (nbytes + 511) // 512
        lbn = node.next_write_lbn(sectors)
        yield from node.cpu.compute_raw(
            node.os_params.io_submit_cost(), bucket=f"{phase.name}:os")
        yield from node.cpu.compute(
            CLUSTER_COPY_NS * 1e-9 * nbytes, bucket=f"{phase.name}:copy")
        yield from node.pci.transfer(nbytes)
        yield from node.scsi.transfer(nbytes)
        yield node.drive.write(lbn, nbytes)
        yield from node.cpu.compute_raw(
            node.os_params.io_complete_cost(), bucket=f"{phase.name}:os")

    def send_shuffle(self, phase: Phase, w: int, dst: int, nbytes: int,
                     latch: WorkLatch) -> None:
        latch.begin()
        if dst == w:
            self.sim.process(self._deliver_local(phase, w, nbytes, latch),
                             name="cl-local")
        else:
            self.sim.process(self._deliver_peer(phase, w, dst, nbytes, latch),
                             name="cl-shuffle")

    def send_frontend(self, phase: Phase, w: int, nbytes: int,
                      latch: WorkLatch) -> None:
        latch.begin()
        self.sim.process(self._deliver_frontend(phase, w, nbytes, latch),
                         name="cl-fe")

    # -- delivery processes -------------------------------------------------------
    def _deliver_local(self, phase: Phase, w: int, nbytes: int,
                       latch: WorkLatch):
        try:
            yield from self.recv_work(phase, w, nbytes)
        finally:
            latch.done()

    def _deliver_peer(self, phase: Phase, src: int, dst: int, nbytes: int,
                      latch: WorkLatch):
        sender = self.nodes[src]
        receiver = self.nodes[dst]
        try:
            yield from sender.cpu.compute_raw(
                MESSAGE_OVERHEAD, bucket=f"{phase.name}:msg")
            yield from sender.cpu.compute(
                CLUSTER_COPY_NS * 1e-9 * nbytes, bucket=f"{phase.name}:copy")
            yield from sender.pci.transfer(nbytes)
            yield receiver.recv_credits.request()
            try:
                yield from self.network.transfer(src, dst, nbytes)
                yield from receiver.pci.transfer(nbytes)
                yield from receiver.cpu.compute_raw(
                    MESSAGE_OVERHEAD, bucket=f"{phase.name}:msg")
                yield from receiver.cpu.compute(
                    CLUSTER_COPY_NS * 1e-9 * nbytes,
                    bucket=f"{phase.name}:copy")
                yield from self.recv_work(phase, dst, nbytes)
            finally:
                receiver.recv_credits.release()
        finally:
            latch.done()

    def _deliver_frontend(self, phase: Phase, w: int, nbytes: int,
                          latch: WorkLatch):
        sender = self.nodes[w]
        try:
            yield from sender.cpu.compute_raw(
                MESSAGE_OVERHEAD, bucket=f"{phase.name}:msg")
            yield from sender.pci.transfer(nbytes)
            yield from self.network.transfer(w, self.frontend_host, nbytes)
            if phase.frontend_cpu_ns_per_byte > 0:
                yield from self.frontend_cpu.compute(
                    phase.frontend_cpu_ns_per_byte * 1e-9 * nbytes,
                    bucket=f"{phase.name}:frontend")
            self.frontend_bytes += nbytes
        finally:
            latch.done()

    def phase_barrier(self):
        """MPI-style tree barrier: 2*ceil(log2 N) small-message hops."""
        from math import ceil, log2
        params = self.config.ethernet
        hops = 2 * max(1, ceil(log2(max(2, self.config.num_nodes))))
        per_hop = (64 / params.host_link_rate + params.switch_latency
                   + 2 * MESSAGE_OVERHEAD)
        yield self.sim.pause(hops * per_hop)

    # -- reporting ------------------------------------------------------------------
    def collect_extras(self) -> Dict[str, float]:
        fe_port = self.tree.port(self.frontend_host)
        return {
            "net_bytes": self.network.bytes.value,
            "net_messages": self.network.messages.value,
            "frontend_bytes": float(self.frontend_bytes),
            "frontend_rx_utilization": fe_port.rx.utilization(),
            "disk_bytes_read": float(
                sum(n.drive.bytes_read for n in self.nodes)),
            "disk_bytes_written": float(
                sum(n.drive.bytes_written for n in self.nodes)),
        }
