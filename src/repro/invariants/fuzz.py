"""Differential fuzzing of the simulator's kernels and physics.

The repo carries three interchangeable kernel run loops — the fast one
(``Simulator._run_fast``), the checked one (``repro.sim.debug``) and the
audited one (:mod:`repro.invariants.kernel`). They are hand-kept mirrors
of each other, which is exactly the kind of code that rots silently.
This module keeps them honest by brute force: generate seeded random
small simulation cells (workload x architecture x fault plan x memory
size), run each cell once through the **audited fast loop** with every
conservation-law auditor armed and once through the **checked loop**
disarmed, and require

* neither run raises (no invariant violations, no kernel-protocol
  errors), and
* both runs produce **bit-identical** :class:`~repro.arch.RunResult`
  payloads (compared through the artifact serializer, so every float is
  compared exactly).

Any divergence is a real defect: either a conservation law broke (the
violation's ledger says which, where and when) or the loops disagree
(the diff says on what). The CLI front-end is ``repro audit``; the CI
job ``invariant-smoke`` runs ``repro audit --quick`` on every push.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..experiments.journal import SweepJournal
from ..experiments.workers import CellSpec, run_cell
from .auditor import InvariantAuditor
from .errors import InvariantViolation

__all__ = ["FuzzOutcome", "FuzzReport", "fuzz_cells", "run_fuzz"]

#: Architectures cycled by the generator (all three must be covered).
FUZZ_ARCHS = ("active", "cluster", "smp")

#: Tasks the fuzzer draws from: every registered workload generator.
FUZZ_TASKS = ("select", "groupby", "sort", "aggregate", "join",
              "dmine", "dcube", "mview")

#: Simulation scale band. Small enough that a full default batch (25
#: cells x 2 runs) stays in CI territory, large enough that every cell
#: crosses phase boundaries, shuffles and front-end delivery.
FUZZ_SCALE = (1 / 1024, 1 / 256)

#: Every Nth cell runs in degraded mode (one injected drive failure).
FAULT_EVERY = 5


@dataclass
class FuzzOutcome:
    """Terminal state of one differential cell."""

    spec: CellSpec
    status: str                      # "ok" | "violation" | "diverged" | "error"
    elapsed: Optional[float] = None
    violation: Optional[Dict] = None
    diff: List[str] = field(default_factory=list)
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class FuzzReport:
    """Batch result of :func:`run_fuzz`."""

    seed: int
    outcomes: List[FuzzOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def failures(self) -> List[FuzzOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    def summary(self) -> str:
        counts: Dict[str, int] = {}
        for outcome in self.outcomes:
            counts[outcome.status] = counts.get(outcome.status, 0) + 1
        parts = ", ".join(f"{count} {status}"
                          for status, count in sorted(counts.items()))
        return (f"differential fuzz (seed {self.seed}): "
                f"{len(self.outcomes)} cells — {parts or 'empty'}")


def fuzz_cells(count: int = 25, seed: int = 0) -> List[CellSpec]:
    """Generate ``count`` seeded random differential cells.

    The batch is deterministic in ``(count, seed)``: architectures
    rotate so all three appear, tasks/disk counts/scales are drawn from
    the seeded generator, and every :data:`FAULT_EVERY`-th cell gets a
    drive-failure plan (the failing disk is the last one, so every
    architecture's survivor re-scan path is exercised).
    """
    if count < 1:
        raise ValueError(f"need at least one fuzz cell, got {count}")
    rng = random.Random(seed)
    cells: List[CellSpec] = []
    for index in range(count):
        arch = FUZZ_ARCHS[index % len(FUZZ_ARCHS)]
        task = rng.choice(FUZZ_TASKS)
        num_disks = rng.choice((2, 4))
        low, high = FUZZ_SCALE
        scale = round(rng.uniform(low, high), 9)
        fault_disk = None
        fault_at = None
        fault_seed = 0
        if index % FAULT_EVERY == FAULT_EVERY - 1:
            fault_disk = num_disks - 1
            fault_at = round(rng.uniform(0.002, 0.05), 6)
            fault_seed = rng.randrange(1 << 16)
        cells.append(CellSpec(
            task=task, arch=arch, num_disks=num_disks,
            variant=f"fuzz{index:03d}", scale=scale,
            fault_disk=fault_disk, fault_at=fault_at,
            fault_seed=fault_seed, audit=True))
    return cells


def _diff_results(audited: Dict, checked: Dict) -> List[str]:
    """Exact field-by-field diff of two serialized RunResults."""
    diffs: List[str] = []
    keys = sorted(set(audited) | set(checked))
    for key in keys:
        left = audited.get(key)
        right = checked.get(key)
        if left != right:
            diffs.append(f"{key}: audited={left!r} checked={right!r}")
    return diffs


def run_fuzz(cells: Optional[Sequence[CellSpec]] = None, *,
             count: int = 25, seed: int = 0,
             journal_path: Optional[str] = None,
             on_cell=None) -> FuzzReport:
    """Run the differential batch; every cell fast-audited vs checked.

    Each cell runs twice: once through the audited fast kernel loop with
    a fresh :class:`InvariantAuditor` armed, once through the checked
    loop disarmed. The two serialized results must match exactly.
    ``on_cell(outcome)`` fires per terminal cell; with ``journal_path``
    every cell's lifecycle (including any violation report) is journaled
    through the standard :class:`~repro.experiments.journal.SweepJournal`
    so ``repro doctor`` can summarize a fuzz run like any sweep.
    """
    from ..experiments.artifacts import result_to_dict

    if cells is None:
        cells = fuzz_cells(count=count, seed=seed)
    journal = SweepJournal.load(journal_path) if journal_path else None
    if journal is not None and not journal.meta:
        journal.note_sweep({"driver": "invariants.fuzz", "seed": seed,
                            "cells": len(cells)})
    report = FuzzReport(seed=seed)
    try:
        for spec in cells:
            if journal is not None:
                journal.note_cell(spec.key, "pending", spec=spec.to_dict(),
                                  config_hash=spec.config_hash())
                journal.note_cell(spec.key, "running", attempt=0)
            outcome = _run_one(spec, result_to_dict)
            report.outcomes.append(outcome)
            if journal is not None:
                if outcome.ok:
                    journal.note_cell(spec.key, "done", attempt=0)
                else:
                    journal.note_cell(spec.key, "quarantined", attempt=0,
                                      error=outcome.error,
                                      violation=outcome.violation)
            if on_cell is not None:
                on_cell(outcome)
    finally:
        if journal is not None:
            journal.close()
    return report


def _run_one(spec: CellSpec, result_to_dict) -> FuzzOutcome:
    hub = InvariantAuditor()
    try:
        audited = run_cell(spec, invariants=hub)
    except InvariantViolation as violation:
        return FuzzOutcome(spec, "violation", violation=violation.report(),
                           error=str(violation))
    except Exception as exc:
        return FuzzOutcome(spec, "error",
                           error=f"audited run: {exc!r}")
    checked_spec = dataclasses.replace(spec, audit=False)
    try:
        checked = run_cell(checked_spec, debug=True)
    except Exception as exc:
        return FuzzOutcome(spec, "error",
                           error=f"checked run: {exc!r}")
    diff = _diff_results(result_to_dict(audited), result_to_dict(checked))
    if diff:
        return FuzzOutcome(spec, "diverged", diff=diff,
                           error="; ".join(diff[:3]))
    return FuzzOutcome(spec, "ok", elapsed=audited.elapsed)
