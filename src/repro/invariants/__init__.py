"""repro.invariants — runtime conservation-law auditing.

The repo's other correctness guards are *offline* (analytic disk
validation, dataflow counting, byte-identity against ``results/``).
This subsystem polices the simulator's physics *at runtime*: armed
auditors attach to live components and raise a structured
:class:`InvariantViolation` — component path, simulated time,
expected-vs-observed ledger — the moment a conservation law breaks.

Arming follows the telemetry/faults pattern::

    from repro.invariants import InvariantAuditor
    from repro.experiments import config_for, run_task

    result = run_task(config_for("active", num_disks=4), "select",
                      scale=1 / 64, invariants=InvariantAuditor())

or, to arm every :func:`~repro.experiments.runner.run_task` in a block
(used by the armed figure-regeneration tests)::

    from repro.invariants import armed
    with armed():
        fig1_identity_check(quick=True)

Disarmed (the default), the layer costs one attribute load and a branch
per probe site and simulations are bit-identical to builds without it.
Armed, auditors only observe — no events, no processes, no clock
interaction — so armed runs are bit-identical too; they just might
raise. The differential fuzzer lives in :mod:`repro.invariants.fuzz`
and behind ``repro audit`` on the CLI.

See ``docs/INVARIANTS.md`` for the auditor catalog and ledger format.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from .auditor import (
    NULL_INVARIANTS,
    BusAuditor,
    DriveAuditor,
    InvariantAuditor,
    MachineAuditor,
    MemoryAuditor,
    MessagingAuditor,
    NullInvariants,
)
from .errors import InvariantViolation

__all__ = [
    "InvariantViolation",
    "InvariantAuditor",
    "NullInvariants",
    "NULL_INVARIANTS",
    "DriveAuditor",
    "MachineAuditor",
    "MemoryAuditor",
    "BusAuditor",
    "MessagingAuditor",
    "armed",
    "is_armed",
    "default_auditor",
]

#: Nesting depth of :func:`armed` contexts (0 = disarmed default).
_ARMED_DEPTH = 0


@contextmanager
def armed() -> Iterator[None]:
    """Arm a fresh auditor on every :func:`run_task` in this block.

    Drivers that build their own simulators (the figure sweeps, the
    benchmark suites) consult :func:`default_auditor` through
    ``run_task``; wrapping them in ``with armed():`` audits every cell
    without threading a parameter through every call site.
    """
    global _ARMED_DEPTH
    _ARMED_DEPTH += 1
    try:
        yield
    finally:
        _ARMED_DEPTH -= 1


def is_armed() -> bool:
    """True inside an :func:`armed` block."""
    return _ARMED_DEPTH > 0


def default_auditor() -> Optional[InvariantAuditor]:
    """A fresh auditor inside an :func:`armed` block, else ``None``."""
    if _ARMED_DEPTH > 0:
        return InvariantAuditor()
    return None
