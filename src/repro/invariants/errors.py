"""Structured invariant-violation error.

An :class:`InvariantViolation` is raised by an armed auditor the moment a
conservation law breaks. It carries the component path, the simulated
time of detection, and an expected-vs-observed ledger, and it renders all
of that into a JSON-serializable :meth:`~InvariantViolation.report` so
the sweep harness can quarantine the cell with the evidence attached
instead of a bare traceback.

It subclasses :class:`~repro.sim.core.SimulationError` deliberately: a
broken conservation law means the simulated physics are wrong, which is
the same class of defect as a kernel-protocol breach.
"""

from __future__ import annotations

from typing import Any, Dict

from ..sim.core import SimulationError

__all__ = ["InvariantViolation"]


def _jsonable(value: Any) -> Any:
    """Coerce ledger values to something ``json.dumps`` accepts."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(key): _jsonable(val) for key, val in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(val) for val in value]
    return repr(value)


class InvariantViolation(SimulationError):
    """A conservation-law auditor observed an impossible state.

    Attributes:
        component: dotted path of the violating component
            (``drive.adisk0``, ``arch.active.phase.scan``, ...).
        invariant: short name of the broken law (``byte-conservation``,
            ``request-lifecycle``, ``memory-budget``, ...).
        sim_time: simulated seconds at the moment of detection.
        ledger: ``{"expected": ..., "observed": ...}`` evidence.
        detail: optional free-form context.
    """

    def __init__(self, component: str, invariant: str, sim_time: float,
                 expected: Any, observed: Any, detail: str = ""):
        self.component = component
        self.invariant = invariant
        self.sim_time = sim_time
        self.expected = expected
        self.observed = observed
        self.detail = detail
        self.ledger = {"expected": expected, "observed": observed}
        message = (f"{component}: invariant {invariant!r} violated at "
                   f"t={sim_time:.9f}s: expected {expected!r}, "
                   f"observed {observed!r}")
        if detail:
            message = f"{message} ({detail})"
        super().__init__(message)

    def report(self) -> Dict[str, Any]:
        """JSON-serializable violation report for journals and the CLI."""
        return {
            "component": self.component,
            "invariant": self.invariant,
            "sim_time": self.sim_time,
            "expected": _jsonable(self.expected),
            "observed": _jsonable(self.observed),
            "detail": self.detail,
        }
