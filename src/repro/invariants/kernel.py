"""The audited kernel loop: ``_run_fast`` with conservation checks.

:func:`run_audited` is a third twin of the kernel's run loops (fast /
checked / audited), selected by :meth:`Simulator.run` when an armed
:class:`~repro.invariants.InvariantAuditor` is installed. It mirrors the
fast loop exactly — same pop order, same pooled-event recycling, same
stall detection — and adds only *observations*:

* clock monotonicity — a queued event timestamped before the current
  clock is a kernel-protocol breach (raised as a structured
  ``clock-monotonicity`` violation; the fast and checked loops raise the
  same defect as a plain ``SimulationError``);
* event-heap sanity — a popped event whose callbacks are already gone
  was scheduled twice, or a pooled event escaped its recycling contract;
* a periodic resource sweep (every ``hub.period`` events) over all
  watched servers, stream buffers and memory ledgers.

Because the audits never schedule events, spawn processes, or touch the
clock, an armed run is bit-identical to a disarmed one.
"""

from __future__ import annotations

from heapq import heappop
from typing import Optional

from ..sim.core import SimStalled, Simulator, Timeout

__all__ = ["run_audited"]


def run_audited(sim: Simulator, until: Optional[float]) -> None:
    """Run the kernel loop with invariant audits armed."""
    hub = sim.invariants
    queue = sim._queue
    pop = heappop
    relay_pool = sim._relay_pool
    timeout_pool = sim._timeout_pool
    timeout_cls = Timeout
    period = hub.period
    stride = 0
    count = 0
    try:
        if until is None:
            while queue:
                when, _, event = pop(queue)
                if when < sim._now:
                    hub.fail(
                        "sim.kernel", "clock-monotonicity",
                        expected=f"next event at or after t={sim._now!r}",
                        observed=f"event scheduled at t={when!r}",
                        detail="event scheduled in the past")
                callbacks = event.callbacks
                if callbacks is None:
                    hub.fail(
                        "sim.kernel", "event-heap",
                        expected="every queued event is unprocessed",
                        observed=f"already-processed {event!r} queued "
                                 f"for t={when!r}",
                        detail="an event was scheduled twice, or a "
                               "pooled event escaped its recycler")
                sim._now = when
                count += 1
                event.callbacks = None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event.value
                if event._pooled:
                    # Recycle exactly like the fast loop (see _run_fast).
                    callbacks.clear()
                    event.callbacks = callbacks
                    if event.__class__ is timeout_cls:
                        timeout_pool.append(event)
                    else:
                        event.value = None
                        event._ok = True
                        event._defused = False
                        relay_pool.append(event)
                stride += 1
                if stride >= period:
                    stride = 0
                    hub.sweep()
            if sim._alive:
                raise SimStalled(sorted(p.name for p in sim._alive))
        else:
            while queue:
                if queue[0][0] > until:
                    break
                when, _, event = pop(queue)
                if when < sim._now:
                    hub.fail(
                        "sim.kernel", "clock-monotonicity",
                        expected=f"next event at or after t={sim._now!r}",
                        observed=f"event scheduled at t={when!r}",
                        detail="event scheduled in the past")
                callbacks = event.callbacks
                if callbacks is None:
                    hub.fail(
                        "sim.kernel", "event-heap",
                        expected="every queued event is unprocessed",
                        observed=f"already-processed {event!r} queued "
                                 f"for t={when!r}",
                        detail="an event was scheduled twice, or a "
                               "pooled event escaped its recycler")
                sim._now = when
                count += 1
                event.callbacks = None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event.value
                if event._pooled:
                    # Recycle exactly like the fast loop (see _run_fast).
                    callbacks.clear()
                    event.callbacks = callbacks
                    if event.__class__ is timeout_cls:
                        timeout_pool.append(event)
                    else:
                        event.value = None
                        event._ok = True
                        event._defused = False
                        relay_pool.append(event)
                stride += 1
                if stride >= period:
                    stride = 0
                    hub.sweep()
            sim._now = until
    finally:
        sim.event_count += count
