"""The audited kernel loop: ``_run_fast`` with conservation checks.

:func:`run_audited` is a third twin of the kernel's run loops (fast /
checked / audited), selected by :meth:`Simulator.run` when an armed
:class:`~repro.invariants.InvariantAuditor` is installed. It mirrors the
fast loop exactly — same pop order, same pooled-event recycling, same
stall detection, same heap-vs-batched backend split — and adds only
*observations*:

* clock monotonicity — a queued event timestamped before the current
  clock is a kernel-protocol breach (raised as a structured
  ``clock-monotonicity`` violation; the fast and checked loops raise the
  same defect as a plain ``SimulationError``);
* event-heap sanity — a popped event whose callbacks are already gone
  was scheduled twice, or a pooled event escaped its recycling contract;
* a periodic resource sweep (every ``hub.period`` events) over all
  watched servers, stream buffers and memory ledgers.

Because the audits never schedule events, spawn processes, or touch the
clock, an armed run is bit-identical to a disarmed one — on either
queue backend.
"""

from __future__ import annotations

from heapq import heappop
from typing import Optional

from ..sim.core import SimStalled, Simulator, Timeout

__all__ = ["run_audited"]


def run_audited(sim: Simulator, until: Optional[float]) -> None:
    """Run the kernel loop with invariant audits armed."""
    if sim._queue.batched:
        _run_audited_batched(sim, until)
        return
    hub = sim.invariants
    queue = sim._queue.entries
    pop = heappop
    relay_pool = sim._relay_pool
    timeout_pool = sim._timeout_pool
    timeout_cls = Timeout
    period = hub.period
    stride = 0
    count = 0
    try:
        if until is None:
            while queue:
                when, _, event = pop(queue)
                if when < sim._now:
                    hub.fail(
                        "sim.kernel", "clock-monotonicity",
                        expected=f"next event at or after t={sim._now!r}",
                        observed=f"event scheduled at t={when!r}",
                        detail="event scheduled in the past")
                callbacks = event.callbacks
                if callbacks is None:
                    hub.fail(
                        "sim.kernel", "event-heap",
                        expected="every queued event is unprocessed",
                        observed=f"already-processed {event!r} queued "
                                 f"for t={when!r}",
                        detail="an event was scheduled twice, or a "
                               "pooled event escaped its recycler")
                sim._now = when
                count += 1
                event.callbacks = None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event.value
                if event._pooled:
                    # Recycle exactly like the fast loop (see _run_fast).
                    callbacks.clear()
                    event.callbacks = callbacks
                    if event.__class__ is timeout_cls:
                        timeout_pool.append(event)
                    else:
                        event.value = None
                        event._ok = True
                        event._defused = False
                        relay_pool.append(event)
                stride += 1
                if stride >= period:
                    stride = 0
                    hub.sweep()
            if sim._alive:
                raise SimStalled(sorted(p.name for p in sim._alive))
        else:
            while queue:
                if queue[0][0] > until:
                    break
                when, _, event = pop(queue)
                if when < sim._now:
                    hub.fail(
                        "sim.kernel", "clock-monotonicity",
                        expected=f"next event at or after t={sim._now!r}",
                        observed=f"event scheduled at t={when!r}",
                        detail="event scheduled in the past")
                callbacks = event.callbacks
                if callbacks is None:
                    hub.fail(
                        "sim.kernel", "event-heap",
                        expected="every queued event is unprocessed",
                        observed=f"already-processed {event!r} queued "
                                 f"for t={when!r}",
                        detail="an event was scheduled twice, or a "
                               "pooled event escaped its recycler")
                sim._now = when
                count += 1
                event.callbacks = None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event.value
                if event._pooled:
                    # Recycle exactly like the fast loop (see _run_fast).
                    callbacks.clear()
                    event.callbacks = callbacks
                    if event.__class__ is timeout_cls:
                        timeout_pool.append(event)
                    else:
                        event.value = None
                        event._ok = True
                        event._defused = False
                        relay_pool.append(event)
                stride += 1
                if stride >= period:
                    stride = 0
                    hub.sweep()
            sim._now = until
    finally:
        sim.event_count += count


def _run_audited_batched(sim: Simulator, until: Optional[float]) -> None:
    """Audited twin of ``Simulator._run_batched`` for batched backends.

    The clock-monotonicity check is hoisted per batch (every entry in a
    batch shares one timestamp); the event-heap sanity check and the
    periodic sweep stay per event, so an armed batched run observes
    exactly what an armed per-event run would.
    """
    hub = sim.invariants
    queue = sim._queue
    pop_batch = queue.pop_batch
    push = queue.push
    relay_pool = sim._relay_pool
    timeout_pool = sim._timeout_pool
    timeout_cls = Timeout
    period = hub.period
    stride = 0
    count = 0
    peek = queue.peek_time
    try:
        while True:
            if until is None:
                batch = pop_batch()
                if batch is None:
                    break
                when = batch[0][0]
            else:
                when = peek()
                if when > until:
                    break
                batch = pop_batch()
            if when < sim._now:
                for entry in batch[1:]:
                    push(entry)
                hub.fail(
                    "sim.kernel", "clock-monotonicity",
                    expected=f"next event at or after t={sim._now!r}",
                    observed=f"event scheduled at t={when!r}",
                    detail="event scheduled in the past")
            sim._now = when
            sim._batch = batch
            n = len(batch)
            count += n
            i = 0
            try:
                while i < n:
                    event = batch[i][2]
                    i += 1
                    callbacks = event.callbacks
                    if callbacks is None:
                        # Never dispatched: the per-event twin fails
                        # before counting it.
                        count -= 1
                        hub.fail(
                            "sim.kernel", "event-heap",
                            expected="every queued event is unprocessed",
                            observed=f"already-processed {event!r} queued "
                                     f"for t={when!r}",
                            detail="an event was scheduled twice, or a "
                                   "pooled event escaped its recycler")
                    event.callbacks = None
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        raise event.value
                    if event._pooled:
                        # Recycle exactly like the fast loop.
                        callbacks.clear()
                        event.callbacks = callbacks
                        if event.__class__ is timeout_cls:
                            timeout_pool.append(event)
                        else:
                            event.value = None
                            event._ok = True
                            event._defused = False
                            relay_pool.append(event)
                    stride += 1
                    if stride >= period:
                        stride = 0
                        hub.sweep()
            except BaseException:
                count -= n - i
                for entry in batch[i:]:
                    push(entry)
                raise
        if until is None:
            if sim._alive:
                raise SimStalled(sorted(p.name for p in sim._alive))
        else:
            sim._now = until
    finally:
        sim._batch = None
        sim.event_count += count
