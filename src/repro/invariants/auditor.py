"""The invariant-auditing hub and its per-component auditors.

Mirrors the telemetry/faults install pattern: every :class:`Simulator`
carries ``sim.invariants = NULL_INVARIANTS`` (a shared do-nothing
singleton) until a real :class:`InvariantAuditor` is installed. Hot
components cache either ``None`` or a live per-component auditor at
construction time, so the disarmed cost at every probe site is one
attribute load and a branch — and the armed auditors only *observe*
(no events, no processes, no clock interaction), so an armed run is
bit-identical to a disarmed one.

Auditor catalog (see ``docs/INVARIANTS.md``):

* kernel — clock monotonicity + event-heap sanity (``invariants.kernel``)
* :class:`DriveAuditor` — request lifecycle + media byte conservation
* :class:`MachineAuditor` — phase input/shuffle/frontend byte ledgers
* :class:`MemoryAuditor` — DiskOS static-budget enforcement
* :class:`BusAuditor` — interconnect transfer lifecycle + byte ledger
* :class:`MessagingAuditor` — barrier/collective participation counts
* resource sweep — ``Server`` occupancy/queue/utilization bounds and
  stream-buffer occupancy, checked periodically and at end of run
"""

from __future__ import annotations

import sys
from typing import Any, Dict, List

from .errors import InvariantViolation

__all__ = [
    "InvariantAuditor", "NullInvariants", "NULL_INVARIANTS",
    "DriveAuditor", "MachineAuditor", "MemoryAuditor", "BusAuditor",
    "MessagingAuditor",
]

#: Float slack for utilization comparisons (busy-time rounding).
UTIL_EPS = 1e-9


class NullInvariants:
    """Do-nothing stand-in wired into every Simulator by default."""

    enabled = False

    def install(self, sim) -> "NullInvariants":
        sim.invariants = self
        return self


#: Shared disarmed singleton (never mutated).
NULL_INVARIANTS = NullInvariants()


class DriveAuditor:
    """Request lifecycle + media byte conservation for one drive.

    Every request submitted to the drive must complete exactly once or
    fail via a declared fault path (drive death drains the queue; a dead
    drive refuses new submissions). The drive's ``bytes_read`` /
    ``bytes_written`` tallies must equal the sum over completed requests
    — a dropped or duplicated chunk breaks that ledger.
    """

    def __init__(self, hub: "InvariantAuditor", drive: Any):
        self.hub = hub
        self.drive = drive
        self.component = f"drive.{drive.name}"
        self.issued = 0
        self.completed = 0
        self.failed = 0
        self.refused = 0
        self.read_bytes = 0
        self.write_bytes = 0
        self._inflight: Dict[int, Any] = {}

    def request_issued(self, request: Any) -> None:
        self.issued += 1
        self._inflight[id(request)] = request
        self.hub.note("invariants.drive.issued")

    def request_completed(self, request: Any) -> None:
        if self._inflight.pop(id(request), None) is None:
            self.hub.fail(
                self.component, "request-lifecycle",
                expected="each issued request completes exactly once",
                observed=f"extra completion for {request.op} "
                         f"lbn={request.lbn} nbytes={request.nbytes}",
                detail="double completion, or completion without submit")
        self.completed += 1
        if request.op == "read":
            self.read_bytes += request.nbytes
        else:
            self.write_bytes += request.nbytes

    def request_failed(self, request: Any) -> None:
        if self._inflight.pop(id(request), None) is None:
            self.hub.fail(
                self.component, "request-lifecycle",
                expected="only in-flight requests can fail",
                observed=f"failure for {request.op} lbn={request.lbn} "
                         "that was never issued",
                detail="fault path fired for an unknown request")
        self.failed += 1
        self.hub.note("invariants.drive.failed")

    def request_refused(self) -> None:
        # A dead drive refusing a submit is a declared fault path; the
        # request never entered the in-flight ledger.
        self.refused += 1
        self.hub.note("invariants.drive.refused")

    def final_check(self, quiesced: bool) -> None:
        if self.drive.bytes_read != self.read_bytes:
            self.hub.fail(
                self.component, "byte-conservation",
                expected={"bytes_read": self.read_bytes},
                observed={"bytes_read": self.drive.bytes_read},
                detail=f"{self.completed} completed requests account for "
                       f"{self.read_bytes} media read bytes")
        if self.drive.bytes_written != self.write_bytes:
            self.hub.fail(
                self.component, "byte-conservation",
                expected={"bytes_written": self.write_bytes},
                observed={"bytes_written": self.drive.bytes_written},
                detail=f"{self.completed} completed requests account for "
                       f"{self.write_bytes} media written bytes")
        if quiesced and self._inflight:
            stuck = [f"{r.op} lbn={r.lbn}"
                     for r in list(self._inflight.values())[:4]]
            self.hub.fail(
                self.component, "request-lifecycle",
                expected="no requests in flight once the simulation drains",
                observed=f"{len(self._inflight)} still in flight",
                detail=", ".join(stuck))


class _PhaseLedger:
    __slots__ = ("processed", "shuffle_sent", "shuffle_delivered",
                 "frontend_sent", "fixed_shuffle", "fixed_frontend",
                 "loops", "closed")

    def __init__(self) -> None:
        self.processed = 0
        self.shuffle_sent = 0
        self.shuffle_delivered = 0
        self.frontend_sent = 0
        self.fixed_shuffle = 0
        self.fixed_frontend = 0
        self.loops = 0
        self.closed = False


class MachineAuditor:
    """Byte conservation through a machine's phase dataflow.

    Per phase: every input byte is processed exactly once (including
    survivor re-scan rounds after a drive failure), shuffle bytes sent
    equal shuffle bytes delivered, and stream outputs match the
    :class:`~repro.workloads.program.StreamSpec` fractions to within the
    Dribble apportioning tolerance (one byte per emitting loop).
    """

    def __init__(self, hub: "InvariantAuditor", machine: Any):
        self.hub = hub
        self.machine = machine
        self.component = f"arch.{machine.arch}"
        self.phases: Dict[str, _PhaseLedger] = {}
        self.total_shuffle_sent = 0
        self.total_shuffle_delivered = 0
        self.total_frontend_sent = 0

    def _ledger(self, phase: Any) -> _PhaseLedger:
        ledger = self.phases.get(phase.name)
        if ledger is None:
            ledger = self.phases[phase.name] = _PhaseLedger()
        return ledger

    def loop_started(self, phase: Any) -> None:
        self._ledger(phase).loops += 1

    def processed(self, phase: Any, nbytes: int) -> None:
        self._ledger(phase).processed += nbytes

    def sent_shuffle(self, phase: Any, nbytes: int) -> None:
        self._ledger(phase).shuffle_sent += nbytes
        self.total_shuffle_sent += nbytes

    def sent_frontend(self, phase: Any, nbytes: int) -> None:
        self._ledger(phase).frontend_sent += nbytes
        self.total_frontend_sent += nbytes

    def fixed_shuffle(self, phase: Any, nbytes: int) -> None:
        self._ledger(phase).fixed_shuffle += nbytes

    def fixed_frontend(self, phase: Any, nbytes: int) -> None:
        self._ledger(phase).fixed_frontend += nbytes

    def delivered_shuffle(self, phase: Any, nbytes: int) -> None:
        self._ledger(phase).shuffle_delivered += nbytes
        self.total_shuffle_delivered += nbytes

    def phase_finished(self, phase: Any) -> None:
        ledger = self._ledger(phase)
        ledger.closed = True
        where = f"{self.component}.phase.{phase.name}"
        expected_in = phase.read_bytes_total
        if ledger.processed != expected_in:
            self.hub.fail(
                where, "input-conservation",
                expected={"processed_bytes": expected_in},
                observed={"processed_bytes": ledger.processed},
                detail="every media byte must be processed exactly once, "
                       "including degraded-mode re-scan rounds")
        if ledger.shuffle_delivered != ledger.shuffle_sent:
            self.hub.fail(
                where, "shuffle-conservation",
                expected={"delivered_bytes": ledger.shuffle_sent},
                observed={"delivered_bytes": ledger.shuffle_delivered},
                detail="every shuffled byte sent must be received by a "
                       "peer exactly once")
        tolerance = ledger.loops + 1
        self._check_fraction(where, "shuffle-fraction",
                             phase.shuffle_fraction, ledger.processed,
                             ledger.fixed_shuffle, ledger.shuffle_sent,
                             tolerance)
        self._check_fraction(where, "frontend-fraction",
                             phase.frontend_fraction, ledger.processed,
                             ledger.fixed_frontend, ledger.frontend_sent,
                             tolerance)
        self.hub.note("invariants.phase_audits")

    def _check_fraction(self, where: str, invariant: str, fraction: float,
                        processed: int, fixed: int, sent: int,
                        tolerance: int) -> None:
        expected = fraction * processed + fixed
        if abs(sent - expected) > tolerance:
            self.hub.fail(
                where, invariant,
                expected={"stream_bytes": expected,
                          "tolerance_bytes": tolerance},
                observed={"stream_bytes": sent},
                detail=f"StreamSpec fraction {fraction!r} of "
                       f"{processed} processed bytes plus {fixed} fixed "
                       "bytes")

    def final_check(self, quiesced: bool) -> None:
        if not quiesced:
            return
        if self.total_shuffle_delivered != self.total_shuffle_sent:
            self.hub.fail(
                self.component, "shuffle-conservation",
                expected={"delivered_bytes": self.total_shuffle_sent},
                observed={"delivered_bytes": self.total_shuffle_delivered},
                detail="machine-wide shuffle ledger")
        observed_fe = self.machine._frontend_bytes_observed()
        if observed_fe is not None and observed_fe != self.total_frontend_sent:
            self.hub.fail(
                self.component, "frontend-conservation",
                expected={"frontend_bytes": self.total_frontend_sent},
                observed={"frontend_bytes": observed_fe},
                detail="bytes received at the front end must equal bytes "
                       "sent to it")


class MemoryAuditor:
    """Static-budget ledger (DiskOS forbids runtime allocation).

    Reservations must never exceed the budget carved out by
    :class:`~repro.diskos.memory.MemoryLayout`, and releases must never
    exceed reservations.
    """

    def __init__(self, hub: "InvariantAuditor", component: str,
                 limit_bytes: int):
        self.hub = hub
        self.component = component
        self.limit = limit_bytes
        self.in_use = 0
        self.high_water = 0

    def reserve(self, nbytes: int, what: str = "") -> None:
        self.in_use += nbytes
        if self.in_use > self.high_water:
            self.high_water = self.in_use
        if self.in_use > self.limit:
            self.hub.fail(
                self.component, "memory-budget",
                expected={"limit_bytes": self.limit},
                observed={"reserved_bytes": self.in_use},
                detail=what or "DiskOS forbids allocating beyond the "
                               "static memory layout at runtime")

    def release(self, nbytes: int, what: str = "") -> None:
        self.in_use -= nbytes
        if self.in_use < 0:
            self.hub.fail(
                self.component, "memory-budget",
                expected="releases never exceed reservations",
                observed={"reserved_bytes": self.in_use},
                detail=what)


class BusAuditor:
    """Transfer lifecycle + byte ledger for one interconnect resource."""

    def __init__(self, hub: "InvariantAuditor", component: str,
                 moved: Any = None):
        self.hub = hub
        self.component = component
        self._moved = moved  # optional callable: bus's own byte counter
        self.open = 0
        self.transfers = 0
        self.started_bytes = 0
        self.finished_bytes = 0

    def begin(self, nbytes: int) -> None:
        if nbytes < 0:
            self.hub.fail(
                self.component, "transfer-size",
                expected="transfer sizes are non-negative",
                observed=nbytes)
        self.open += 1
        self.transfers += 1
        self.started_bytes += nbytes

    def end(self, nbytes: int) -> None:
        self.open -= 1
        self.finished_bytes += nbytes
        if self.open < 0:
            self.hub.fail(
                self.component, "transfer-lifecycle",
                expected="every completion matches exactly one begin",
                observed={"open_transfers": self.open})

    def final_check(self, quiesced: bool) -> None:
        if not quiesced:
            return
        if self.open:
            self.hub.fail(
                self.component, "transfer-lifecycle",
                expected="no transfers in flight once the simulation "
                         "drains",
                observed={"open_transfers": self.open})
        if self.finished_bytes != self.started_bytes:
            self.hub.fail(
                self.component, "byte-conservation",
                expected={"finished_bytes": self.started_bytes},
                observed={"finished_bytes": self.finished_bytes})
        if self._moved is not None:
            moved = self._moved()
            if moved != self.finished_bytes:
                self.hub.fail(
                    self.component, "byte-accounting",
                    expected={"bytes_moved": self.finished_bytes},
                    observed={"bytes_moved": moved},
                    detail="the bus's own byte counter disagrees with "
                           "the transfer ledger")


class MessagingAuditor:
    """Barrier/collective participation counts for one Messaging layer."""

    def __init__(self, hub: "InvariantAuditor", component: str,
                 num_hosts: int):
        self.hub = hub
        self.component = component
        self.num_hosts = num_hosts
        self._joined: Dict[Any, set] = {}
        self._expected: Dict[Any, int] = {}

    def join(self, op: str, key: Any, host: int, participants: int) -> None:
        where = f"{self.component}.{op}"
        if not 0 <= host < self.num_hosts:
            self.hub.fail(
                where, "participant-range",
                expected=f"0 <= host < {self.num_hosts}",
                observed=host, detail=f"key={key!r}")
        if not 1 <= participants <= self.num_hosts:
            self.hub.fail(
                where, "participation-count",
                expected=f"1 <= participants <= {self.num_hosts}",
                observed=participants, detail=f"key={key!r}")
        ident = (op, key)
        joined = self._joined.setdefault(ident, set())
        expected = self._expected.setdefault(ident, participants)
        if expected != participants:
            self.hub.fail(
                where, "participation-count",
                expected={"participants": expected},
                observed={"participants": participants},
                detail=f"hosts disagree on the roster for key={key!r}")
        if host in joined:
            self.hub.fail(
                where, "participation-count",
                expected="each host joins a collective exactly once",
                observed=f"host {host} joined twice",
                detail=f"key={key!r}, joined={sorted(joined)}")
        joined.add(host)
        self.hub.note("invariants.net.joins")
        if len(joined) == participants:
            del self._joined[ident]
            del self._expected[ident]

    def final_check(self, quiesced: bool) -> None:
        if quiesced and self._joined:
            ident = next(iter(self._joined))
            joined = self._joined[ident]
            self.hub.fail(
                f"{self.component}.{ident[0]}", "participation-count",
                expected={"participants": self._expected[ident]},
                observed={"joined": len(joined)},
                detail=f"collective key={ident[1]!r} never released")


class InvariantAuditor:
    """The armed hub: registry of component auditors + periodic sweeps.

    Install on a simulator *before* building the machine::

        auditor = InvariantAuditor()
        sim = Simulator()
        auditor.install(sim)
        machine = build_machine(sim, config)   # components self-register
        machine.run()                          # violations raise here

    The hub piggybacks on the simulator's lifecycle hooks: ``run()``
    selects the audited kernel loop (clock monotonicity, heap sanity,
    periodic resource sweeps) and ``run_finished`` settles the final
    conservation ledgers — unless the run is already unwinding with an
    exception, which the final audit must not mask.
    """

    enabled = True

    def __init__(self, period: int = 2048):
        self.period = max(1, int(period))
        self.sim: Any = None
        self.counters: Dict[str, int] = {}
        self.violations: List[InvariantViolation] = []
        self._servers: List[Any] = []
        self._probes: List[Any] = []
        self._drives: List[DriveAuditor] = []
        self._machines: List[MachineAuditor] = []
        self._memories: List[MemoryAuditor] = []
        self._buses: List[BusAuditor] = []
        self._messaging: List[MessagingAuditor] = []

    # ----------------------------------------------------------- install
    def install(self, sim: Any) -> "InvariantAuditor":
        if self.sim is not None and self.sim is not sim:
            raise RuntimeError(
                "InvariantAuditor is already installed on another simulator")
        self.sim = sim
        sim.invariants = self
        sim.add_hook(self)
        return self

    @property
    def now(self) -> float:
        return self.sim.now if self.sim is not None else 0.0

    # ---------------------------------------------------------- plumbing
    def note(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount
        sim = self.sim
        if sim is not None and sim.telemetry.enabled:
            sim.telemetry.registry.counter(name).add(amount)

    def fail(self, component: str, invariant: str, expected: Any,
             observed: Any, detail: str = "") -> None:
        """Record and raise an :class:`InvariantViolation`."""
        violation = InvariantViolation(component, invariant, self.now,
                                       expected, observed, detail)
        self.violations.append(violation)
        self.note("invariants.violations")
        raise violation

    # ------------------------------------------------------ registration
    def watch_server(self, server: Any) -> None:
        self._servers.append(server)
        self.note("invariants.watched.servers")

    def watch_probe(self, probe: Any) -> None:
        self._probes.append(probe)
        self.note("invariants.watched.buffers")

    def drive_auditor(self, drive: Any) -> DriveAuditor:
        auditor = DriveAuditor(self, drive)
        self._drives.append(auditor)
        return auditor

    def machine_auditor(self, machine: Any) -> MachineAuditor:
        auditor = MachineAuditor(self, machine)
        self._machines.append(auditor)
        return auditor

    def memory_auditor(self, component: str,
                       limit_bytes: int) -> MemoryAuditor:
        auditor = MemoryAuditor(self, component, limit_bytes)
        self._memories.append(auditor)
        return auditor

    def bus_auditor(self, component: str, moved: Any = None) -> BusAuditor:
        auditor = BusAuditor(self, component, moved)
        self._buses.append(auditor)
        return auditor

    def messaging_auditor(self, component: str,
                          num_hosts: int) -> MessagingAuditor:
        auditor = MessagingAuditor(self, component, num_hosts)
        self._messaging.append(auditor)
        return auditor

    # ------------------------------------------------------------ sweeps
    def sweep(self) -> None:
        """Bounds checks over every watched resource (cheap, frequent)."""
        self.note("invariants.sweeps")
        for server in self._servers:
            self._check_server(server)
        for probe in self._probes:
            if not 0 <= probe.held <= probe.capacity:
                self.fail(
                    f"buffer.{probe.name}", "occupancy-bounds",
                    expected=f"0 <= held <= {probe.capacity}",
                    observed=probe.held,
                    detail="stream buffers are a fixed pool carved from "
                           "the DiskOS memory layout")
        for memory in self._memories:
            if not 0 <= memory.in_use <= memory.limit:
                self.fail(
                    memory.component, "memory-budget",
                    expected=f"0 <= reserved <= {memory.limit}",
                    observed=memory.in_use)

    def _check_server(self, server: Any) -> None:
        where = f"server.{server.name or 'anonymous'}"
        if not 0 <= server.in_use <= server.capacity:
            self.fail(
                where, "occupancy-bounds",
                expected=f"0 <= in_use <= {server.capacity}",
                observed=server.in_use)
        if server.queue_length < 0:
            self.fail(where, "queue-length",
                      expected="queue length is non-negative",
                      observed=server.queue_length)
        utilization = server.utilization()
        if not 0.0 <= utilization <= 1.0 + UTIL_EPS:
            self.fail(
                where, "utilization-bound",
                expected="0 <= utilization <= 1",
                observed=utilization,
                detail=f"busy {server.busy_time()!r}s of {self.now!r}s")

    # ----------------------------------------------------- kernel hooks
    def run_started(self, sim: Any) -> None:  # lifecycle-hook protocol
        self.note("invariants.runs")

    def run_finished(self, sim: Any) -> None:
        if sys.exc_info()[0] is not None:
            # The run is already unwinding (possibly with our own
            # violation); a final audit of the aborted state would only
            # mask the original error.
            return
        self.note("invariants.final_audits")
        quiesced = not sim._queue
        self.sweep()
        for drive in self._drives:
            drive.final_check(quiesced)
        for bus in self._buses:
            bus.final_check(quiesced)
        for machine in self._machines:
            machine.final_check(quiesced)
        for messaging in self._messaging:
            messaging.final_check(quiesced)
