"""Processor model: trace-time scaling over a contended CPU resource.

Howsim "models variation in processor speed by scaling [trace] processing
times" (Section 2.3). All task CPU costs in this repository are expressed
at :data:`REFERENCE_MHZ` — the DEC Alpha 2100 4/275 the original traces
were captured on — and a :class:`Cpu` stretches them by
``reference / actual`` megahertz when work is charged to it.

A :class:`Cpu` is a single-slot FIFO server, so concurrent activities on
one processor serialize, and utilization/busy-bucket accounting comes for
free.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..sim import BusyTracker, Event, Server, Simulator

__all__ = ["REFERENCE_MHZ", "Cpu"]

#: Clock rate of the DEC Alpha 2100 4/275 used for trace acquisition.
REFERENCE_MHZ = 275.0


class Cpu:
    """One processor with a clock-rate scale factor and busy accounting."""

    def __init__(self, sim: Simulator, mhz: float, name: str = "cpu"):
        if mhz <= 0:
            raise ValueError(f"CPU speed must be positive, got {mhz}")
        self.sim = sim
        self.mhz = mhz
        self.name = name
        self.server = Server(sim, capacity=1, name=name)
        self.busy = BusyTracker(name)
        # Same division as the old per-call property — the cached float
        # is bit-identical; compute() runs per charged cost component.
        self._scale = REFERENCE_MHZ / mhz
        self._telemetry = sim.telemetry

    @property
    def scale(self) -> float:
        """Multiplier applied to reference-machine processing times."""
        return self._scale

    def scaled(self, reference_seconds: float) -> float:
        """Wall time this CPU needs for ``reference_seconds`` of trace time."""
        return reference_seconds * self._scale

    def compute(self, reference_seconds: float,
                bucket: str = "compute") -> Generator[Event, Any, None]:
        """Charge trace-time work (generator; blocks for queueing + service)."""
        if reference_seconds < 0:
            raise ValueError(f"negative compute time: {reference_seconds}")
        if reference_seconds == 0:
            return
        duration = self.scaled(reference_seconds)
        yield from self.server.serve(duration)
        self.busy.charge(bucket, duration)
        self._record_span(bucket, duration)

    def compute_raw(self, seconds: float,
                    bucket: str = "os") -> Generator[Event, Any, None]:
        """Charge already-scaled wall time (OS costs scale separately)."""
        if seconds < 0:
            raise ValueError(f"negative compute time: {seconds}")
        if seconds == 0:
            return
        yield from self.server.serve(seconds)
        self.busy.charge(bucket, seconds)
        self._record_span(bucket, seconds)

    def _record_span(self, bucket: str, duration: float) -> None:
        """Busy span for the service interval just completed.

        The CPU is a FIFO single-slot server, so the service happened in
        the trailing ``duration`` of the serve — queueing wait shows up
        as the gap before the span, i.e. the timeline's idle/contended
        distinction falls out for free.
        """
        tel = self._telemetry
        if tel.enabled:
            tel.spans.complete("host", bucket, f"cpu.{self.name}",
                               self.sim.now - duration, duration)

    def utilization(self) -> float:
        return self.server.utilization()
