"""Host operating-system cost model.

Howsim charges fixed costs for the OS operations on a request's path;
the paper measured them with lmbench on a 300 MHz Pentium II running
Linux: 10 us per read/write system call, 103 us per context switch, and a
fixed 16 us to queue an I/O request at the device driver. Interrupt
service is charged at half a context switch (the paper folds it into the
switch figure; we keep it separate so ablations can vary it).

Costs scale with CPU speed the same way user traces do: a 450 MHz
front-end pays 300/450 of the measured times.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["OSParams", "LINUX_PII_300", "scaled_os_params"]


@dataclass(frozen=True)
class OSParams:
    """Fixed OS operation costs, in seconds, at ``measured_mhz``."""

    syscall: float = 10e-6          # read()/write() entry+exit
    context_switch: float = 103e-6
    driver_queue: float = 16e-6     # enqueue one request at the driver
    interrupt: float = 51.5e-6      # I/O completion interrupt service
    measured_mhz: float = 300.0

    def at_mhz(self, mhz: float) -> "OSParams":
        """The same OS on a CPU running at ``mhz``."""
        if mhz <= 0:
            raise ValueError(f"CPU speed must be positive, got {mhz}")
        factor = self.measured_mhz / mhz
        return OSParams(
            syscall=self.syscall * factor,
            context_switch=self.context_switch * factor,
            driver_queue=self.driver_queue * factor,
            interrupt=self.interrupt * factor,
            measured_mhz=mhz,
        )

    def io_submit_cost(self) -> float:
        """CPU cost to issue one asynchronous I/O request."""
        return self.syscall + self.driver_queue

    def io_complete_cost(self) -> float:
        """CPU cost to take the completion interrupt and wake the waiter."""
        return self.interrupt + self.context_switch

    def io_retry_cost(self) -> float:
        """CPU cost to reap a failed/timed-out request and re-issue it.

        An error completion still takes the interrupt, then the driver
        re-queues the request — there is no extra syscall because the
        original submission is still posted.
        """
        return self.interrupt + self.driver_queue


#: The paper's measured numbers (lmbench, 300 MHz Pentium II, Linux).
LINUX_PII_300 = OSParams()


def scaled_os_params(mhz: float) -> OSParams:
    """The standard OS cost set scaled to a CPU at ``mhz``."""
    return LINUX_PII_300.at_mhz(mhz)
