"""Remote queues (Brewer et al., SPAA'95): the SMP's message primitive.

The paper's SMP implementation moves data between processors with
one-way block transfers and *remote queues* — bounded receiver-side
buffers a sender deposits into without involving the receiver's CPU,
with flow control when the queue fills. This module implements the
primitive; the SMP machine uses one per processor for shuffle delivery,
giving the SMP the same bounded-buffer backpressure the Active Disk
(DiskOS comm buffers) and cluster (posted receives) models have.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..faults.errors import QueueTimeout
from ..faults.policies import RetryPolicy
from ..sim import Event, Simulator, Store

__all__ = ["RemoteQueue", "ACQUIRE_RETRY"]

#: Default bounded-wait schedule for :meth:`RemoteQueue.acquire_slot_with`.
ACQUIRE_RETRY = RetryPolicy(max_attempts=8, base_delay=100e-6, factor=2.0,
                            max_delay=10e-3)


class RemoteQueue:
    """A bounded receiver-side queue with sender-side flow control.

    ``enqueue`` blocks the sender while the queue is full (the hardware
    returns backpressure); ``dequeue`` blocks the receiver while empty.
    Entries are opaque descriptors — the payload bytes move separately
    via the block-transfer engine.
    """

    def __init__(self, sim: Simulator, capacity: int = 64,
                 name: str = "rq"):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._store = Store(sim, capacity=capacity, name=name)
        self.enqueued = 0
        self.dequeued = 0
        self.timeouts = 0
        self.high_watermark = 0

    def __len__(self) -> int:
        return len(self._store)

    @property
    def is_full(self) -> bool:
        return self._store.is_full

    def enqueue(self, item: Any) -> Generator[Event, Any, None]:
        """Deposit ``item``; blocks while the queue is full."""
        yield self._store.put(item)
        self.enqueued += 1
        self.high_watermark = max(self.high_watermark, len(self._store))

    def try_enqueue(self, item: Any) -> bool:
        """Non-blocking deposit; False when the queue is full."""
        if self._store.try_put(item):
            self.enqueued += 1
            self.high_watermark = max(self.high_watermark,
                                      len(self._store))
            return True
        return False

    def dequeue(self) -> Generator[Event, Any, Any]:
        """Remove and return the oldest entry; blocks while empty."""
        item = yield self._store.get()
        self.dequeued += 1
        return item

    def acquire_slot(self) -> Generator[Event, Any, None]:
        """Reserve a slot without carrying a payload descriptor.

        Convenience for models that only need the flow control: pairs
        with :meth:`release_slot`.
        """
        yield self._store.put(None)
        self.enqueued += 1
        self.high_watermark = max(self.high_watermark, len(self._store))

    def acquire_slot_with(self, retry: RetryPolicy = ACQUIRE_RETRY,
                          ) -> Generator[Event, Any, None]:
        """Bounded-wait :meth:`acquire_slot`: poll with exponential backoff.

        Unlike the blocking acquire, a sender stuck behind a receiver
        that stopped draining (crashed worker, stalled stream) gives up
        after ``retry.max_attempts`` polls and raises
        :class:`~repro.faults.QueueTimeout` so the caller can reroute
        instead of hanging forever.
        """
        for attempt in range(retry.max_attempts):
            if self.try_enqueue(None):
                if attempt > 0:
                    self.sim.faults.note("faults.host.queue_backoffs", attempt)
                return
            yield self.sim.timeout(retry.delay(attempt))
        self.timeouts += 1
        self.sim.faults.note("faults.host.queue_timeouts")
        raise QueueTimeout(self.name)

    def release_slot(self) -> None:
        """Free a slot reserved with :meth:`acquire_slot`."""
        ok, _ = self._store.try_get()
        if not ok:
            raise RuntimeError(f"{self.name}: release without acquire")
        self.dequeued += 1
