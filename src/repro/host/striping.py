"""User-controllable disk striping (the SMP's raw-disk striping library).

The SMP configurations stripe each file over all disks with a 64 KB chunk
per disk; each 256 KB application request therefore fans out to four
consecutive drives (paper, Section 3). :class:`StripedVolume` maps a byte
offset in the logical volume to (drive, LBN) pairs and issues the chunk
requests, completing when the slowest chunk lands.

The volume can be restricted to a subset of drives — the paper partitions
drives into separate read and write groups for sort and join on the SMP
(as in NOW-sort) to avoid interleaving read and write seek patterns.
"""

from __future__ import annotations

from math import ceil
from typing import List, Sequence

from ..disk import DiskDrive
from ..sim import AllOf, Event, Simulator

__all__ = ["StripedVolume"]


class StripedVolume:
    """A logical volume striped over ``drives`` in ``chunk_bytes`` units."""

    def __init__(self, sim: Simulator, drives: Sequence[DiskDrive],
                 chunk_bytes: int = 64 * 1024, base_lbn: int = 0):
        if not drives:
            raise ValueError("StripedVolume needs at least one drive")
        if chunk_bytes <= 0:
            raise ValueError(f"chunk size must be positive, got {chunk_bytes}")
        self.sim = sim
        self.drives = list(drives)
        self.chunk_bytes = chunk_bytes
        self.base_lbn = base_lbn
        sector = drives[0].spec.sector_bytes
        if chunk_bytes % sector:
            raise ValueError(
                f"chunk size {chunk_bytes} not a multiple of the "
                f"sector size {sector}")
        self.chunk_sectors = chunk_bytes // sector

    @property
    def width(self) -> int:
        return len(self.drives)

    def capacity_bytes(self) -> int:
        per_drive = min(d.geometry.total_sectors for d in self.drives)
        per_drive -= self.base_lbn
        return per_drive * self.drives[0].spec.sector_bytes * self.width

    def _locate(self, offset: int) -> tuple:
        """Map a volume byte offset to ``(drive_index, lbn)``."""
        if offset % self.chunk_bytes:
            raise ValueError(
                f"offset {offset} not chunk-aligned ({self.chunk_bytes})")
        chunk_index = offset // self.chunk_bytes
        drive_index = chunk_index % self.width
        stripe_row = chunk_index // self.width
        lbn = self.base_lbn + stripe_row * self.chunk_sectors
        return drive_index, lbn

    def submit(self, op: str, offset: int, nbytes: int) -> Event:
        """Issue one logical request as per-drive chunk requests.

        The returned event fires when every chunk has completed.
        """
        if nbytes <= 0:
            raise ValueError(f"request size must be positive, got {nbytes}")
        chunk_events: List[Event] = []
        remaining = nbytes
        cursor = offset
        while remaining > 0:
            span = min(remaining, self.chunk_bytes - cursor % self.chunk_bytes)
            drive_index, lbn = self._locate(cursor - cursor % self.chunk_bytes)
            within = (cursor % self.chunk_bytes) // 512
            drive = self.drives[drive_index]
            chunk_events.append(drive.submit(op, lbn + within, span))
            cursor += span
            remaining -= span
        return AllOf(self.sim, chunk_events)

    def read(self, offset: int, nbytes: int) -> Event:
        return self.submit("read", offset, nbytes)

    def write(self, offset: int, nbytes: int) -> Event:
        return self.submit("write", offset, nbytes)
