"""Host-side models: CPUs, OS costs, async I/O, striping."""

from .aio import AsyncIO
from .cpu import REFERENCE_MHZ, Cpu
from .os_model import LINUX_PII_300, OSParams, scaled_os_params
from .remote_queue import RemoteQueue
from .striping import StripedVolume

__all__ = [
    "Cpu", "REFERENCE_MHZ",
    "OSParams", "LINUX_PII_300", "scaled_os_params",
    "AsyncIO", "StripedVolume", "RemoteQueue",
]
