"""Asynchronous I/O interface (``lio_listio``-style) with bounded depth.

All three architectures issue large (256 KB) requests and keep several in
flight ("deep request queues — up to four asynchronous requests", paper
Section 3). :class:`AsyncIO` enforces the depth bound with a credit
semaphore and charges the OS costs on the owning CPU: submit pays
``syscall + driver_queue``, completion pays ``interrupt + context_switch``.

Recovery: an optional :class:`~repro.faults.RetryPolicy` /
:class:`~repro.faults.TimeoutPolicy` pair makes the completion side
supervise each request — device errors and missed deadlines are re-issued
after an exponential backoff (each re-issue paying
``OSParams.io_retry_cost`` on the CPU) until the budget runs dry, at
which point the overall event fails with
:class:`~repro.faults.RequestAborted`. Without policies a device error
simply propagates to the waiter.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from ..disk import DiskDrive
from ..faults.errors import FaultError, RequestAborted
from ..faults.policies import RetryPolicy, TimeoutPolicy
from ..sim import Event, Server, Simulator
from .cpu import Cpu
from .os_model import OSParams

__all__ = ["AsyncIO"]


class AsyncIO:
    """Bounded-depth async request issue against one drive (or volume).

    Parameters
    ----------
    submit_fn:
        ``submit_fn(op, offset, nbytes) -> Event`` — the underlying device
        operation (a :class:`DiskDrive` bound method or a striped-volume
        method).
    depth:
        Maximum requests in flight.
    retry:
        Re-issue schedule for failed or timed-out requests (None: no
        re-issue, errors propagate on the first failure).
    timeout:
        Per-attempt deadline after which a request is declared lost and
        re-issued (None: wait forever for the device).
    """

    def __init__(self, sim: Simulator, cpu: Cpu, os_params: OSParams,
                 submit_fn: Callable[[str, int, int], Event],
                 depth: int = 4,
                 retry: Optional[RetryPolicy] = None,
                 timeout: Optional[TimeoutPolicy] = None):
        if depth < 1:
            raise ValueError(f"queue depth must be >= 1, got {depth}")
        self.sim = sim
        self.cpu = cpu
        self.os_params = os_params
        self.submit_fn = submit_fn
        self.depth = depth
        self.retry = retry
        self.timeout = timeout
        self._credits = Server(sim, capacity=depth, name="aio.credits")
        self._outstanding: list = []
        self.submitted = 0
        self.completed = 0
        self.retried = 0
        self.timeouts = 0
        self.errors = 0

    def submit(self, op: str, offset: int,
               nbytes: int) -> Generator[Event, Any, Event]:
        """Issue a request; blocks while the queue is full.

        Returns (as generator value) an event that fires when the request —
        including its completion-side OS cost — is done. With a retry or
        timeout policy armed the event fails with
        :class:`~repro.faults.RequestAborted` (or the last device error)
        only after the recovery budget is exhausted.
        """
        yield self._credits.request()
        yield from self.cpu.compute_raw(
            self.os_params.io_submit_cost(), bucket="os")
        self.submitted += 1
        device_done = self.submit_fn(op, offset, nbytes)
        overall_done = Event(self.sim)
        self._outstanding.append(overall_done)
        self.sim.process(
            self._completion(op, offset, nbytes, device_done, overall_done),
            name="aio-complete")
        return overall_done

    def _completion(self, op: str, offset: int, nbytes: int,
                    device_done: Event, overall_done: Event):
        error = yield from self._supervise(op, offset, nbytes, device_done)
        self._credits.release()
        yield from self.cpu.compute_raw(
            self.os_params.io_complete_cost(), bucket="os")
        self._outstanding.remove(overall_done)
        if error is None:
            self.completed += 1
            overall_done.succeed()
        else:
            self.errors += 1
            overall_done.fail(error)
            # Pre-defused: a waiter that yields the event still sees the
            # exception; an abandoned one cannot abort the simulation.
            overall_done._defused = True

    def _supervise(self, op: str, offset: int, nbytes: int,
                   device_done: Event):
        """Wait for the device, re-issuing per policy. Returns the error
        that exhausted the budget, or None on success."""
        attempts = self.retry.max_attempts if self.retry is not None else 1
        last_error: Optional[BaseException] = None
        for attempt in range(attempts):
            if attempt > 0:
                self.retried += 1
                self.sim.faults.note("faults.host.io_retries")
                yield self.sim.timeout(self.retry.delay(attempt - 1))
                yield from self.cpu.compute_raw(
                    self.os_params.io_retry_cost(), bucket="os")
                device_done = self.submit_fn(op, offset, nbytes)
            try:
                if self.timeout is None:
                    yield device_done
                    return None
                deadline = self.sim.timeout(self.timeout.timeout_for(attempt))
                fired, _ = yield self.sim.any_of([device_done, deadline])
                if fired is not deadline:
                    return None
                # The orphaned request may still complete (or fail —
                # AnyOf defuses late failures); either way it is charged
                # to the device, exactly like a real lost request.
                self.timeouts += 1
                self.sim.faults.note("faults.host.io_timeouts")
                last_error = RequestAborted(
                    f"aio {op} at {offset} timed out "
                    f"(attempt {attempt + 1}/{attempts})")
            except FaultError as exc:
                self.sim.faults.note("faults.host.io_errors")
                last_error = exc
        return last_error

    def drain(self) -> Generator[Event, Any, None]:
        """Wait until every in-flight request has completed."""
        while self._outstanding:
            yield self.sim.all_of(list(self._outstanding))
