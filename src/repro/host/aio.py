"""Asynchronous I/O interface (``lio_listio``-style) with bounded depth.

All three architectures issue large (256 KB) requests and keep several in
flight ("deep request queues — up to four asynchronous requests", paper
Section 3). :class:`AsyncIO` enforces the depth bound with a credit
semaphore and charges the OS costs on the owning CPU: submit pays
``syscall + driver_queue``, completion pays ``interrupt + context_switch``.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from ..disk import DiskDrive
from ..sim import Event, Server, Simulator
from .cpu import Cpu
from .os_model import OSParams

__all__ = ["AsyncIO"]


class AsyncIO:
    """Bounded-depth async request issue against one drive (or volume).

    Parameters
    ----------
    submit_fn:
        ``submit_fn(op, offset, nbytes) -> Event`` — the underlying device
        operation (a :class:`DiskDrive` bound method or a striped-volume
        method).
    depth:
        Maximum requests in flight.
    """

    def __init__(self, sim: Simulator, cpu: Cpu, os_params: OSParams,
                 submit_fn: Callable[[str, int, int], Event],
                 depth: int = 4):
        if depth < 1:
            raise ValueError(f"queue depth must be >= 1, got {depth}")
        self.sim = sim
        self.cpu = cpu
        self.os_params = os_params
        self.submit_fn = submit_fn
        self.depth = depth
        self._credits = Server(sim, capacity=depth, name="aio.credits")
        self._outstanding: list = []
        self.submitted = 0
        self.completed = 0

    def submit(self, op: str, offset: int,
               nbytes: int) -> Generator[Event, Any, Event]:
        """Issue a request; blocks while the queue is full.

        Returns (as generator value) an event that fires when the request —
        including its completion-side OS cost — is done.
        """
        yield self._credits.request()
        yield from self.cpu.compute_raw(
            self.os_params.io_submit_cost(), bucket="os")
        self.submitted += 1
        device_done = self.submit_fn(op, offset, nbytes)
        overall_done = Event(self.sim)
        self._outstanding.append(overall_done)
        self.sim.process(self._completion(device_done, overall_done),
                         name="aio-complete")
        return overall_done

    def _completion(self, device_done: Event, overall_done: Event):
        yield device_done
        self._credits.release()
        yield from self.cpu.compute_raw(
            self.os_params.io_complete_cost(), bucket="os")
        self.completed += 1
        self._outstanding.remove(overall_done)
        overall_done.succeed()

    def drain(self) -> Generator[Event, Any, None]:
        """Wait until every in-flight request has completed."""
        while self._outstanding:
            yield self.sim.all_of(list(self._outstanding))
