"""The fault-injecting IO layer: a seeded, lying, failing filesystem.

:class:`FaultyIO` wraps any :class:`~repro.durability.io_layer.IOLayer`
(default :data:`~repro.durability.io_layer.REAL_IO`) and consults a
:class:`~repro.durability.plan.DurabilityPlan` before every seam
operation. Fired faults surface exactly like the real thing —
``OSError`` with ``errno.ENOSPC``/``errno.EIO`` — so callers exercise
their genuine error paths, and every fault carries ``(injected)`` in
its message so test assertions can tell them from real failures.

``fsync_lie`` is the one silent kind: the fsync "succeeds" without
making anything durable. The layer tracks the truly-synced length of
every file it touched (following renames), and
:meth:`FaultyIO.lose_unsynced` plays the power cut that reveals the
lie — truncating each file back to what an honest drive would have
kept.
"""

from __future__ import annotations

import errno
import os
import random
from typing import BinaryIO, Dict, Optional, Tuple

from .io_layer import IOLayer, REAL_IO
from .plan import DurabilityPlan, DurabilitySpec

__all__ = ["FaultyIO"]


class FaultyIO(IOLayer):
    """Inject filesystem faults per a seeded :class:`DurabilityPlan`."""

    def __init__(self, plan: DurabilityPlan,
                 inner: Optional[IOLayer] = None):
        self.plan = plan
        self.inner = inner if inner is not None else REAL_IO
        self._rng = random.Random(f"{plan.seed}:durability")
        self._eligible = [0] * len(plan.specs)
        self._fired = [0] * len(plan.specs)
        #: Injected faults by kind, for test assertions and reports.
        self.stats: Dict[str, int] = {}
        self._synced: Dict[str, int] = {}
        self._paths: Dict[int, str] = {}

    # -------------------------------------------------------- plan match
    def _fault(self, op: str, path: str) -> Optional[DurabilitySpec]:
        """The fault rule firing on this operation, if any."""
        fired = None
        for index, spec in enumerate(self.plan.specs):
            if not spec.matches(op, path):
                continue
            self._eligible[index] += 1
            if fired is not None:
                continue  # first firing rule wins; later ones still count
            if self._eligible[index] <= spec.after:
                continue
            if spec.limit and self._fired[index] >= spec.limit:
                continue
            if (spec.probability < 1
                    and self._rng.random() >= spec.probability):
                continue
            self._fired[index] += 1
            self.stats[spec.kind] = self.stats.get(spec.kind, 0) + 1
            fired = spec
        return fired

    @staticmethod
    def _raise(code: int, op: str, path: str) -> None:
        raise OSError(code, f"{os.strerror(code)} (injected {op})", path)

    # ------------------------------------------------------ seam methods
    def open_append(self, path: str) -> BinaryIO:
        if not os.path.exists(path):
            if self._fault("create", path) is not None:
                self._raise(errno.ENOSPC, "create", path)
        handle = self.inner.open_append(path)
        self._paths[id(handle)] = path
        self._synced.setdefault(path, os.path.getsize(path))
        return handle

    def mkstemp(self, directory: str, prefix: str,
                suffix: str) -> Tuple[BinaryIO, str]:
        probe = os.path.join(directory, prefix + suffix)
        if self._fault("create", probe) is not None:
            self._raise(errno.ENOSPC, "create", probe)
        handle, tmp = self.inner.mkstemp(directory, prefix, suffix)
        self._paths[id(handle)] = tmp
        self._synced.setdefault(tmp, 0)
        return handle, tmp

    def write(self, handle: BinaryIO, data: bytes) -> None:
        path = self._paths.get(id(handle), getattr(handle, "name", "?"))
        spec = self._fault("write", path)
        if spec is not None and spec.kind == "enospc":
            self._raise(errno.ENOSPC, "write", path)
        if spec is not None and spec.kind == "eio":
            self._raise(errno.EIO, "write", path)
        if spec is not None and spec.kind == "short_write":
            landed = int(spec.magnitude) or max(1, len(data) // 2)
            self.inner.write(handle, data[:landed])
            self._raise(errno.EIO, "short write", path)
        self.inner.write(handle, data)

    def fsync(self, handle: BinaryIO) -> None:
        path = self._paths.get(id(handle), getattr(handle, "name", "?"))
        spec = self._fault("fsync", path)
        if spec is not None and spec.kind == "eio":
            self._raise(errno.EIO, "fsync", path)
        if spec is not None and spec.kind == "fsync_lie":
            return  # "success" — nothing reached the platter
        self.inner.fsync(handle)
        if path in self._synced:
            try:
                self._synced[path] = os.path.getsize(path)
            except OSError:  # pragma: no cover - file vanished
                pass

    def fsync_dir(self, directory: str) -> None:
        self.inner.fsync_dir(directory)

    def replace(self, src: str, dst: str) -> None:
        if self._fault("replace", dst) is not None:
            self._raise(errno.EIO, "rename", dst)
        self.inner.replace(src, dst)
        if src in self._synced:
            self._synced[dst] = self._synced.pop(src)

    # ----------------------------------------------------- lie reveal
    def lose_unsynced(self) -> Dict[str, int]:
        """Play the power cut an ``fsync_lie`` was hiding.

        Every file this layer touched is truncated back to its last
        *truly*-synced length — what an honest drive would have kept.
        Returns ``{path: bytes_lost}`` for the files that shrank.
        """
        lost: Dict[str, int] = {}
        for path, synced in self._synced.items():
            try:
                size = os.path.getsize(path)
            except OSError:
                continue
            if size > synced:
                with open(path, "rb+") as handle:
                    handle.truncate(synced)
                lost[path] = size - synced
        return lost
