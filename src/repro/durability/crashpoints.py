"""Power-loss simulation at exact write/fsync/rename boundaries.

:class:`CrashPointIO` counts every durability boundary a workload
crosses — file creation, content write, fsync, directory fsync,
rename — and can cut the power at exactly one of them: the operation
at ``crash_at`` raises :class:`~repro.durability.io_layer.SimulatedCrash`
and :meth:`CrashPointIO.materialize` then rewrites the sandbox to hold
only what a real disk would have kept.

The durability model is a simplified ALICE/CrashMonkey: per file it
tracks *durable* bytes (fsync'd), *pending* bytes (written, still in
the page cache), and whether the file's *directory entry* is durable
(parent directory fsync'd since creation). Renames are pending until
the destination directory is fsync'd. At the crash:

``create``
    Power dies as the file is created: the file never existed.
``write``
    A torn write: this file keeps its pending bytes plus the first
    half of the interrupted buffer; nothing else leaves the cache.
``fsync``
    Power dies before the flush: every pending byte is lost.
``fsync_dir``
    Entries and renames waiting on this directory stay volatile.
``replace``
    The rename never happens; the destination keeps its old content.

Un-fired operations update the model *adversarially*: writes stay
pending until an fsync, creations and renames stay volatile until the
parent-directory fsync — so a workload that skips a durability step
loses data at the next crash point, exactly like a worst-case real
filesystem. Before the crash, real files carry the full (cached)
content, so in-workload reads behave like reads against a live page
cache.

Only paths under ``root`` are modeled; everything else passes through.
After the crash fires the layer becomes a pure pass-through so unwind
code (handle closes, temp-file cleanup) cannot disturb the counting.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from typing import BinaryIO, Dict, List, Optional, Tuple

from .io_layer import IOLayer, REAL_IO, SimulatedCrash

__all__ = ["CrashPointIO", "Boundary"]

#: Matches the random token ``tempfile.mkstemp`` puts between the
#: artifact-derived prefix and the ``.tmp`` suffix.
_TMP_TOKEN = re.compile(r"^(\..+\.)[A-Za-z0-9_]+(\.tmp)$")


@dataclass(frozen=True)
class Boundary:
    """One counted durability boundary."""

    index: int
    op: str
    path: str

    @property
    def label(self) -> str:
        return f"{self.index}:{self.op}:{self.path}"


@dataclass
class _FileModel:
    """What a real disk holds for one file."""

    entry_durable: bool
    durable: bytes = b""
    pending: bytes = b""


class CrashPointIO(IOLayer):
    """Count durability boundaries; optionally crash at one of them."""

    def __init__(self, root: str, crash_at: Optional[int] = None,
                 inner: Optional[IOLayer] = None):
        self.root = os.path.abspath(root)
        self.crash_at = crash_at
        self.inner = inner if inner is not None else REAL_IO
        self.boundaries: List[Boundary] = []
        self.crashed: Optional[Boundary] = None
        self._files: Dict[str, _FileModel] = {}
        self._renames: List[Tuple[str, str, bytes]] = []
        self._paths: Dict[int, str] = {}

    # ----------------------------------------------------- bookkeeping
    def _tracked(self, path: str) -> Optional[str]:
        """The canonical key for a modeled path, or None if untracked."""
        if self.crashed is not None:
            return None
        absolute = os.path.abspath(path)
        if absolute == self.root or absolute.startswith(self.root + os.sep):
            return absolute
        return None

    def _display(self, path: str) -> str:
        """A stable, sandbox-relative label for a boundary path."""
        relative = os.path.relpath(path, self.root)
        head, name = os.path.split(relative)
        match = _TMP_TOKEN.match(name)
        if match:
            name = f"{match.group(1)}*{match.group(2)}"
        return os.path.join(head, name) if head else name

    def _boundary(self, op: str, path: str) -> bool:
        """Count one boundary; True when the crash fires here."""
        boundary = Boundary(index=len(self.boundaries), op=op,
                            path=self._display(path))
        self.boundaries.append(boundary)
        if self.crash_at is not None and boundary.index == self.crash_at:
            self.crashed = boundary
            return True
        return False

    def _crash(self) -> None:
        raise SimulatedCrash(self.crashed.label)

    def _model(self, path: str) -> _FileModel:
        model = self._files.get(path)
        if model is None:
            # First sighting. A file that already exists predates this
            # layer (e.g. handed over from a reference phase): its
            # current content counts as durable.
            if os.path.exists(path):
                with open(path, "rb") as handle:
                    content = handle.read()
                model = _FileModel(entry_durable=True, durable=content)
            else:
                model = _FileModel(entry_durable=False)
            self._files[path] = model
        return model

    # ------------------------------------------------------ seam methods
    def open_append(self, path: str) -> BinaryIO:
        key = self._tracked(path)
        if key is not None and not os.path.exists(path):
            if self._boundary("create", key):
                # Power died as the entry was created: the file never
                # existed. Don't create it for real either.
                self._crash()
            self._files[key] = _FileModel(entry_durable=False)
        elif key is not None:
            self._model(key)
        handle = self.inner.open_append(path)
        if key is not None:
            self._paths[id(handle)] = key
        return handle

    def mkstemp(self, directory: str,
                prefix: str, suffix: str) -> Tuple[BinaryIO, str]:
        key = self._tracked(os.path.join(directory, prefix + suffix))
        if key is not None and self._boundary("create", key):
            self._crash()
        handle, tmp = self.inner.mkstemp(directory, prefix, suffix)
        if key is not None:
            self._files[os.path.abspath(tmp)] = _FileModel(
                entry_durable=False)
            self._paths[id(handle)] = os.path.abspath(tmp)
        return handle, tmp

    def write(self, handle: BinaryIO, data: bytes) -> None:
        key = self._paths.get(id(handle))
        if key is None or self.crashed is not None:
            self.inner.write(handle, data)
            return
        if self._boundary("write", key):
            # A torn write: this file's cached pages plus half the
            # interrupted buffer reach the platter, nothing else does.
            model = self._model(key)
            model.durable += model.pending + data[:len(data) // 2]
            model.pending = b""
            self._crash()
        self.inner.write(handle, data)
        self._model(key).pending += data

    def fsync(self, handle: BinaryIO) -> None:
        key = self._paths.get(id(handle))
        if key is None or self.crashed is not None:
            self.inner.fsync(handle)
            return
        if self._boundary("fsync", key):
            self._crash()  # nothing pending was flushed anywhere
        self.inner.fsync(handle)
        model = self._model(key)
        model.durable += model.pending
        model.pending = b""

    def fsync_dir(self, directory: str) -> None:
        key = self._tracked(directory)
        if key is None:
            self.inner.fsync_dir(directory)
            return
        if self._boundary("fsync_dir", key):
            self._crash()  # entries/renames below stay volatile
        self.inner.fsync_dir(directory)
        for path, model in self._files.items():
            if os.path.dirname(path) == key:
                model.entry_durable = True
        applied = []
        for rename in self._renames:
            src, dst, content = rename
            if os.path.dirname(dst) == key:
                self._files[dst] = _FileModel(entry_durable=True,
                                              durable=content)
                applied.append(rename)
        for rename in applied:
            self._renames.remove(rename)

    def replace(self, src: str, dst: str) -> None:
        src_key, dst_key = self._tracked(src), self._tracked(dst)
        if dst_key is None:
            self.inner.replace(src, dst)
            return
        if self._boundary("replace", dst_key):
            # The rename never happened: dst keeps its old durable
            # content, src (a volatile temp entry) evaporates.
            self._crash()
        source = (self._files.pop(src_key, None)
                  if src_key is not None else None)
        content = b"" if source is None else source.durable + source.pending
        # Snapshot dst's pre-rename state first: the rename is durable
        # only once the destination directory is fsync'd, and until
        # then a crash exposes dst's *old* content (or absence).
        self._model(dst_key)
        self.inner.replace(src, dst)
        self._renames.append((src_key or src, dst_key, content))

    # ------------------------------------------------------ materialize
    def materialize(self) -> List[str]:
        """Rewrite the sandbox to the post-crash durable state.

        Returns the sandbox-relative paths that changed or vanished —
        the visible blast radius of the crash.
        """
        touched: List[str] = []
        for path, model in sorted(self._files.items()):
            display = self._display(path)
            if not model.entry_durable:
                if os.path.exists(path):
                    os.unlink(path)
                    touched.append(f"{display}: gone (entry never durable)")
                continue
            current = None
            if os.path.exists(path):
                with open(path, "rb") as handle:
                    current = handle.read()
            if current != model.durable:
                with open(path, "wb") as handle:
                    handle.write(model.durable)
                touched.append(f"{display}: rewound to "
                               f"{len(model.durable)} durable byte(s)")
        return touched
