"""Durability testing: IO fault injection and crash-point enumeration.

The package has two halves:

* the **seam** — :func:`current_io` / :func:`io_scope` and the
  :class:`IOLayer` implementations (:data:`REAL_IO`,
  :class:`FaultyIO`, :class:`CrashPointIO`) that every journal append
  and atomic artifact write in the repo goes through;
* the **gauntlet** — :mod:`repro.durability.gauntlet` (``repro
  crashtest``), which runs real journal / job-queue / artifact
  workloads, cuts the power at every write/fsync/rename boundary, and
  asserts recovery. It is imported lazily (not here) because it pulls
  in the experiment harness.

See ``docs/DURABILITY.md`` for the fault model and the verified
guarantees.
"""

from .crashpoints import Boundary, CrashPointIO
from .faulty import FaultyIO
from .io_layer import (
    IOLayer,
    REAL_IO,
    RealIO,
    SimulatedCrash,
    current_io,
    io_scope,
)
from .plan import DURABILITY_KINDS, DurabilityPlan, DurabilitySpec

__all__ = [
    "IOLayer", "RealIO", "REAL_IO", "SimulatedCrash",
    "current_io", "io_scope",
    "DURABILITY_KINDS", "DurabilitySpec", "DurabilityPlan",
    "FaultyIO", "CrashPointIO", "Boundary",
]
