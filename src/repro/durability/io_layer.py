"""The filesystem seam the persistence stack writes through.

Every durability-relevant operation in the persistence stack — journal
appends (:mod:`repro.experiments.journal`), atomic artifact writes
(:mod:`repro.experiments.artifacts`), and therefore the service's
:class:`~repro.service.jobs.JobQueue` — goes through the small
:class:`IOLayer` protocol below instead of calling ``os`` directly.
The active layer is process-global and defaults to :data:`REAL_IO`,
which is a zero-policy pass-through; tests and the durability gauntlet
swap in a :class:`~repro.durability.faulty.FaultyIO` (seeded ENOSPC /
EIO / short-write / fsync-lie / rename-failure injection) or a
:class:`~repro.durability.crashpoints.CrashPointIO` (power-loss
simulation at an exact write/fsync/rename boundary) with
:func:`io_scope`::

    with io_scope(FaultyIO(plan)):
        runner.run(specs)          # every append/fsync can now fail

The seam is deliberately tiny — seven operations cover the whole
stack — and layers operate on *real* file objects, so handles obtained
under one layer remain valid under another (a recovery pass with
:data:`REAL_IO` can reopen files a faulty run left behind).

Reads are *not* part of the seam: before a crash the OS page cache
serves un-synced data to readers exactly like the real files do here,
and after a simulated crash the gauntlet materializes the durable
state back onto disk before anything reads it.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from typing import BinaryIO, Tuple

__all__ = ["SimulatedCrash", "IOLayer", "RealIO", "REAL_IO",
           "current_io", "io_scope"]


class SimulatedCrash(BaseException):
    """Power was (simulatedly) cut at a write/fsync/rename boundary.

    Deliberately a :class:`BaseException`: a real power cut does not
    flow through ``except Exception:`` recovery handlers, so neither
    does its simulation — it unwinds straight out of the workload to
    the gauntlet driver.
    """

    def __init__(self, boundary: str):
        super().__init__(f"simulated power loss at boundary {boundary}")
        self.boundary = boundary


class IOLayer:
    """The durability-relevant filesystem operations, overridable.

    :class:`RealIO` documents the contract; fault layers wrap or
    replace individual operations but always leave real files and real
    file objects behind.
    """

    def open_append(self, path: str) -> BinaryIO:  # pragma: no cover
        raise NotImplementedError

    def mkstemp(self, directory: str, prefix: str,
                suffix: str) -> Tuple[BinaryIO, str]:  # pragma: no cover
        raise NotImplementedError

    def write(self, handle: BinaryIO, data: bytes) -> None:
        raise NotImplementedError  # pragma: no cover

    def fsync(self, handle: BinaryIO) -> None:  # pragma: no cover
        raise NotImplementedError

    def fsync_dir(self, directory: str) -> None:  # pragma: no cover
        raise NotImplementedError

    def replace(self, src: str, dst: str) -> None:  # pragma: no cover
        raise NotImplementedError


class RealIO(IOLayer):
    """The production layer: plain ``os`` calls, no policy."""

    def open_append(self, path: str) -> BinaryIO:
        """Open ``path`` for appending in binary mode, creating it."""
        return open(path, "ab")

    def mkstemp(self, directory: str, prefix: str,
                suffix: str) -> Tuple[BinaryIO, str]:
        """Create an exclusive temporary file; returns (handle, path)."""
        fd, tmp = tempfile.mkstemp(dir=directory, prefix=prefix,
                                   suffix=suffix)
        return os.fdopen(fd, "wb"), tmp

    def write(self, handle: BinaryIO, data: bytes) -> None:
        """Write ``data`` and flush it to the OS (not yet durable)."""
        handle.write(data)
        handle.flush()

    def fsync(self, handle: BinaryIO) -> None:
        """Make the file's *content* durable."""
        os.fsync(handle.fileno())

    def fsync_dir(self, directory: str) -> None:
        """Best-effort durability of directory entries (creates/renames)."""
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def replace(self, src: str, dst: str) -> None:
        """Atomically rename ``src`` over ``dst``."""
        os.replace(src, dst)


#: The default, zero-policy layer.
REAL_IO = RealIO()

_ACTIVE: IOLayer = REAL_IO


def current_io() -> IOLayer:
    """The process-global active layer (``REAL_IO`` unless scoped)."""
    return _ACTIVE


@contextmanager
def io_scope(layer: IOLayer):
    """Route all seam operations through ``layer`` for the block.

    Scopes nest; leaving the block always restores the previous layer,
    even when the block exits via :class:`SimulatedCrash`.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = layer
    try:
        yield layer
    finally:
        _ACTIVE = previous
