"""The durability gauntlet: crash every boundary, assert recovery.

``repro crashtest`` (:func:`run_crashtest`) drives three real
workloads — a journaled sweep through :class:`SweepRunner`, a scripted
:class:`~repro.service.jobs.JobQueue` session, and a sequence of
atomic artifact + manifest writes — through the durability seam:

1. a **reference** run under :data:`~repro.durability.io_layer.REAL_IO`
   records the uninterrupted outcome, snapshotting the sandbox at
   every acknowledged durability point;
2. a **counting** run under a pass-through
   :class:`~repro.durability.crashpoints.CrashPointIO` enumerates
   every create/write/fsync/fsync_dir/replace boundary the workload
   crosses;
3. one run **per boundary** cuts the power there
   (:class:`~repro.durability.io_layer.SimulatedCrash`), materializes
   the post-crash durable state, and asserts the recovery invariants:

   * nothing acknowledged before the crash is lost (journal records,
     job transitions, artifact versions survive the power cut);
   * no file is ever torn: every surviving artifact byte-equals some
     version the uninterrupted run produced, and every surviving log
     is a clean prefix of the uninterrupted log;
   * recovery (resume for sweeps, deterministic replay for the job
     queue, re-running the writes for artifacts) converges to results
     **byte-identical** to the uninterrupted run, with
     :func:`~repro.experiments.artifacts.verify_manifest` clean.

A second phase replays seeded
:class:`~repro.durability.plan.DurabilityPlan` fault scenarios —
ENOSPC clean aborts, one-shot EIO and short writes absorbed by the
journal's retry, rename failures, fsync lies revealed by
:meth:`~repro.durability.faulty.FaultyIO.lose_unsynced` — and asserts
the hardened error paths. See ``docs/DURABILITY.md``.
"""

from __future__ import annotations

import errno
import json
import os
import shutil
from typing import Callable, Dict, List, Optional, Tuple

from ..experiments.artifacts import (
    atomic_write_text,
    verify_manifest,
    write_manifest,
)
from ..experiments.harness import SweepRunner
from ..experiments.journal import JournalWriteError, SweepJournal
from ..experiments.workers import CellSpec
from ..service.jobs import JobQueue
from .crashpoints import CrashPointIO
from .faulty import FaultyIO
from .io_layer import SimulatedCrash, io_scope
from .plan import DurabilityPlan, DurabilitySpec

__all__ = ["run_crashtest", "render_crashtest"]


# ---------------------------------------------------------------- helpers
def _read_tree(root: str) -> Dict[str, bytes]:
    """Every regular file under ``root``, relative path -> bytes."""
    tree: Dict[str, bytes] = {}
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in filenames:
            path = os.path.join(dirpath, name)
            with open(path, "rb") as handle:
                tree[os.path.relpath(path, root)] = handle.read()
    return tree


def _trim_torn(data: bytes) -> bytes:
    """A log minus its crash-torn final fragment (if any)."""
    if data.endswith(b"\n"):
        return data
    return data[:data.rfind(b"\n") + 1]


class _AckRecorder(list):
    """An ack list that snapshots the sandbox at every durability point."""

    def __init__(self, root: str):
        super().__init__()
        self.root = root
        self.snapshots: List[Dict[str, bytes]] = []

    def append(self, item) -> None:
        super().append(item)
        self.snapshots.append(_read_tree(self.root))


class _Reference:
    """What the uninterrupted run produced, version history included."""

    def __init__(self, root: str, final: Dict[str, bytes],
                 snapshots: List[Dict[str, bytes]]):
        self.root = root
        self.final = final
        self.snapshots = snapshots
        # First-seen order of each file's content versions across the
        # ack snapshots plus the final tree: the only states a crash
        # may legally expose (plus absence).
        self.versions: Dict[str, List[bytes]] = {}
        for tree in snapshots + [final]:
            for name, content in tree.items():
                seen = self.versions.setdefault(name, [])
                if content not in seen:
                    seen.append(content)

    def version_index(self, name: str, content: bytes) -> int:
        try:
            return self.versions[name].index(content)
        except (KeyError, ValueError):
            return -1


# -------------------------------------------------------------- workloads
class _Workload:
    """One persistence-stack workload the gauntlet can crash anywhere.

    ``log_files`` names the append-only JSONL files, which get
    prefix-of-reference checks instead of whole-version checks.
    """

    name = "?"
    log_files: Tuple[str, ...] = ()

    def run(self, root: str, acked: list) -> None:
        raise NotImplementedError

    def recover(self, root: str) -> None:
        """Default recovery: re-run the workload (it must be resumable)."""
        self.run(root, [])

    def check_crashed(self, root: str, acked: list) -> List[str]:
        return []

    def check_recovered(self, root: str,
                        reference: _Reference) -> List[str]:
        return []


class JournalSweepWorkload(_Workload):
    """A real (tiny) sweep through SweepRunner + SweepJournal + artifacts."""

    name = "journal"
    log_files = ("sweep.journal.jsonl",)

    def __init__(self, quick: bool):
        self.specs = [CellSpec(task="select", arch="active", num_disks=2,
                               scale=1 / 256)]
        if not quick:
            self.specs.append(CellSpec(task="select", arch="smp",
                                       num_disks=2, scale=1 / 256))

    def run(self, root: str, acked: list) -> None:
        runner = SweepRunner(os.path.join(root, "sweep.journal.jsonl"),
                             meta={"figure": "crashtest"})

        def ack(outcome) -> None:
            if outcome.status == "done":
                acked.append(("cell", outcome.key))

        results = runner.run(self.specs, after_cell=ack)
        lines = [f"{key}: {results[key].elapsed!r}"
                 for key in sorted(results)]
        atomic_write_text(os.path.join(root, "cells.txt"),
                          "\n".join(lines) + "\n")
        write_manifest(root)

    def check_crashed(self, root: str, acked: list) -> List[str]:
        path = os.path.join(root, self.log_files[0])
        if not os.path.exists(path):
            if acked:
                return [f"{self.log_files[0]}: {len(acked)} acked "
                        f"cell(s) lost with the journal file"]
            return []
        try:
            journal = SweepJournal.load(path)
        except ValueError as exc:
            return [f"journal does not replay after crash: {exc}"]
        done = journal.done()
        return [f"acked cell {key!r} not done after crash"
                for _kind, key in acked if key not in done]

    def check_recovered(self, root: str,
                        reference: _Reference) -> List[str]:
        problems = [f"manifest: {problem}"
                    for problem in verify_manifest(root)]
        journal = SweepJournal.load(os.path.join(root, self.log_files[0]))
        ref_journal = SweepJournal.load(
            os.path.join(reference.root, self.log_files[0]))
        done, ref_done = journal.done(), ref_journal.done()
        if set(done) != set(ref_done):
            problems.append(f"recovered journal finished {sorted(done)}, "
                            f"reference finished {sorted(ref_done)}")
        else:
            for key, cell in done.items():
                if cell.result != ref_done[key].result:
                    problems.append(f"cell {key!r}: recovered result is "
                                    f"not bit-identical to the reference")
        return problems


class JobQueueWorkload(_Workload):
    """A scripted coordinator session against the persistent JobQueue."""

    name = "jobqueue"
    log_files = ("jobs.jsonl",)

    _REQUEST_A = {"figure": "fig1", "sizes": [16], "tasks": ["select"],
                  "scale": 1 / 256, "out_dir": "results"}
    _REQUEST_B = {"figure": "fig3", "sizes": [16, 32],
                  "scale": 1 / 256, "out_dir": "results"}

    def _script(self) -> List[Callable[[JobQueue], None]]:
        return [
            lambda q: q.submit(self._REQUEST_A),
            lambda q: q.update("job-0001", "running"),
            lambda q: q.submit(self._REQUEST_B),
            lambda q: q.update("job-0001", "done"),
            lambda q: q.update("job-0002", "running"),
            lambda q: q.update("job-0002", "failed",
                               error="2 cell(s) quarantined"),
        ]

    @staticmethod
    def _applied(path: str) -> int:
        """Complete records on disk (the torn tail doesn't count)."""
        if not os.path.exists(path):
            return 0
        with open(path, "rb") as handle:
            data = _trim_torn(handle.read())
        return sum(1 for line in data.split(b"\n") if line.strip())

    def run(self, root: str, acked: list) -> None:
        path = os.path.join(root, self.log_files[0])
        queue = JobQueue.load(path)
        try:
            for index, op in enumerate(self._script()):
                op(queue)
                acked.append(("op", index))
        finally:
            queue.close()

    def recover(self, root: str) -> None:
        """Deterministic replay: re-apply exactly the ops that are
        missing from the on-disk record stream."""
        path = os.path.join(root, self.log_files[0])
        applied = self._applied(path)
        queue = JobQueue.load(path)
        try:
            for op in self._script()[applied:]:
                op(queue)
        finally:
            queue.close()

    def check_crashed(self, root: str, acked: list) -> List[str]:
        path = os.path.join(root, self.log_files[0])
        if not os.path.exists(path):
            if acked:
                return [f"{self.log_files[0]}: {len(acked)} acked "
                        f"op(s) lost with the queue file"]
            return []
        try:
            queue = JobQueue.load(path)
        except ValueError as exc:
            return [f"job queue does not replay after crash: {exc}"]
        queue.close()
        applied = self._applied(path)
        if applied < len(acked):
            return [f"{self.log_files[0]}: only {applied} of "
                    f"{len(acked)} acked op(s) survived the crash"]
        return []

    def check_recovered(self, root: str,
                        reference: _Reference) -> List[str]:
        name = self.log_files[0]
        with open(os.path.join(root, name), "rb") as handle:
            recovered = handle.read()
        if recovered != reference.final[name]:
            return [f"{name}: recovered queue is not byte-identical "
                    f"to the uninterrupted run"]
        return []


class ArtifactWorkload(_Workload):
    """Atomic artifact writes + manifest refreshes, with an overwrite."""

    name = "artifacts"
    _V1 = "throughput by farm size\n16 disks: 1.0x\n"
    _V2 = ("throughput by farm size\n16 disks: 1.0x\n"
           "32 disks: 1.9x\n")
    _CSV = "disks,speedup\n16,1.0\n32,1.9\n"

    def __init__(self, quick: bool):
        self.quick = quick

    def run(self, root: str, acked: list) -> None:
        atomic_write_text(os.path.join(root, "report.txt"), self._V1)
        acked.append(("file", "report.txt", 1))
        atomic_write_text(os.path.join(root, "data.csv"), self._CSV)
        acked.append(("file", "data.csv", 1))
        write_manifest(root)
        acked.append(("manifest", 1))
        if not self.quick:
            atomic_write_text(os.path.join(root, "report.txt"), self._V2)
            acked.append(("file", "report.txt", 2))
            write_manifest(root)
            acked.append(("manifest", 2))

    def check_recovered(self, root: str,
                        reference: _Reference) -> List[str]:
        return [f"manifest: {problem}" for problem in verify_manifest(root)]


# --------------------------------------------------------- generic checks
def _check_crashed(workload: _Workload, root: str, acked: list,
                   reference: _Reference) -> List[str]:
    problems: List[str] = []
    tree = _read_tree(root)
    logs = set(workload.log_files)
    for name, content in sorted(tree.items()):
        if name.endswith(".tmp"):
            problems.append(f"{name}: leftover temporary after crash")
        elif name in logs:
            refbytes = reference.final.get(name, b"")
            if not refbytes.startswith(_trim_torn(content)):
                problems.append(f"{name}: surviving log is not a clean "
                                f"prefix of the uninterrupted log")
        elif reference.version_index(name, content) < 0:
            problems.append(f"{name}: torn or unknown content after crash")
    if acked:
        # The floor: everything durable at the last acknowledged point
        # must still be there (same or newer version; logs at least as
        # long as when the ack happened).
        floor = reference.snapshots[len(acked) - 1]
        for name, floor_bytes in sorted(floor.items()):
            current = tree.get(name)
            if name in logs:
                survived = b"" if current is None else _trim_torn(current)
                if len(survived) < len(floor_bytes):
                    problems.append(f"{name}: acked record(s) lost (log "
                                    f"rewound below the last ack)")
            elif current is None:
                problems.append(f"{name}: acked file missing after crash")
            elif (reference.version_index(name, current)
                  < reference.version_index(name, floor_bytes)):
                problems.append(f"{name}: rolled back past the acked "
                                f"version")
    problems.extend(workload.check_crashed(root, acked))
    return problems


def _check_recovered(workload: _Workload, root: str,
                     reference: _Reference) -> List[str]:
    problems: List[str] = []
    tree = _read_tree(root)
    logs = set(workload.log_files)
    for name, refbytes in sorted(reference.final.items()):
        if name in logs:
            continue  # logs may legally grow extra resume records
        if tree.get(name) != refbytes:
            problems.append(f"{name}: not byte-identical to the "
                            f"uninterrupted run after recovery")
    for name in sorted(tree):
        if name not in reference.final and not name.endswith(
                tuple(logs) if logs else ()):
            problems.append(f"{name}: unexpected file after recovery")
    problems.extend(workload.check_recovered(root, reference))
    return problems


# ------------------------------------------------------------ enumeration
def _gauntlet_workload(workload: _Workload, base: str,
                       points: Optional[int],
                       log: Callable[[str], None]) -> Dict:
    ref_root = os.path.join(base, f"{workload.name}-ref")
    os.makedirs(ref_root, exist_ok=True)
    recorder = _AckRecorder(ref_root)
    workload.run(ref_root, recorder)
    reference = _Reference(ref_root, _read_tree(ref_root),
                           recorder.snapshots)

    count_root = os.path.join(base, f"{workload.name}-count")
    os.makedirs(count_root, exist_ok=True)
    counter = CrashPointIO(count_root)
    with io_scope(counter):
        workload.run(count_root, [])
    shutil.rmtree(count_root, ignore_errors=True)
    total = len(counter.boundaries)

    indices = list(range(total))
    if points is not None and 0 < points < total:
        step = (total - 1) / (points - 1) if points > 1 else 0
        indices = sorted({round(i * step) for i in range(points)})
    log(f"crashtest[{workload.name}]: {total} boundaries, "
        f"testing {len(indices)} crash point(s)")

    outcomes = []
    for index in indices:
        root = os.path.join(base, f"{workload.name}-p{index:03d}")
        os.makedirs(root, exist_ok=True)
        acked: list = []
        layer = CrashPointIO(root, crash_at=index)
        crashed = False
        try:
            with io_scope(layer):
                workload.run(root, acked)
        except SimulatedCrash:
            crashed = True
        problems: List[str] = []
        if not crashed:
            problems.append("boundary never reached (workload ran to "
                            "completion; enumeration is stale?)")
        else:
            layer.materialize()
            problems.extend(_check_crashed(workload, root, acked,
                                           reference))
            if not problems:
                try:
                    workload.recover(root)
                except Exception as exc:
                    problems.append(f"recovery raised "
                                    f"{type(exc).__name__}: {exc}")
                else:
                    problems.extend(_check_recovered(workload, root,
                                                     reference))
        outcomes.append({
            "point": index,
            "boundary": (counter.boundaries[index].label
                         if index < total else "?"),
            "recovered": not problems,
            "problems": problems,
        })
        if problems:
            log(f"crashtest[{workload.name}] point {index} "
                f"UNRECOVERABLE: {problems[0]}")
        else:
            shutil.rmtree(root, ignore_errors=True)
    recovered = sum(1 for outcome in outcomes if outcome["recovered"])
    return {"name": workload.name, "boundaries": total,
            "points": len(outcomes), "recovered": recovered,
            "ok": recovered == len(outcomes), "outcomes": outcomes}


# -------------------------------------------------------- fault scenarios
def _scenario_enospc(base: str, seed: int) -> Dict:
    """ENOSPC mid-sweep: clean abort, reload, resume once space frees."""
    workload = JournalSweepWorkload(quick=True)
    ref_root = os.path.join(base, "faults-enospc-ref")
    os.makedirs(ref_root, exist_ok=True)
    workload.run(ref_root, [])
    reference = _Reference(ref_root, _read_tree(ref_root), [])

    root = os.path.join(base, "faults-enospc")
    os.makedirs(root, exist_ok=True)
    plan = DurabilityPlan.of(
        DurabilitySpec(kind="enospc", target="*.journal.jsonl", after=3),
        seed=seed)
    problems: List[str] = []
    try:
        with io_scope(FaultyIO(plan)):
            workload.run(root, [])
    except JournalWriteError as exc:
        if exc.__cause__ is None or exc.__cause__.errno != errno.ENOSPC:
            problems.append(f"abort did not carry ENOSPC: {exc!r}")
    else:
        problems.append("full disk never surfaced as JournalWriteError")
    journal_path = os.path.join(root, "sweep.journal.jsonl")
    try:
        SweepJournal.load(journal_path)
    except ValueError as exc:
        problems.append(f"journal not well-formed after clean abort: {exc}")
    if not problems:
        workload.recover(root)  # the disk "has space again"
        problems.extend(_check_recovered(workload, root, reference))
    return {"name": "enospc-clean-abort", "ok": not problems,
            "problems": problems}


def _scenario_eio_retry(base: str, seed: int) -> Dict:
    """One-shot EIO + a short write, both absorbed by the append retry."""
    workload = JournalSweepWorkload(quick=True)
    ref_root = os.path.join(base, "faults-eio-ref")
    os.makedirs(ref_root, exist_ok=True)
    workload.run(ref_root, [])
    reference = _Reference(ref_root, _read_tree(ref_root), [])

    root = os.path.join(base, "faults-eio")
    os.makedirs(root, exist_ok=True)
    plan = DurabilityPlan.of(
        DurabilitySpec(kind="eio", target="*.journal.jsonl", after=1,
                       limit=1),
        DurabilitySpec(kind="short_write", target="*.journal.jsonl",
                       after=3, limit=1),
        seed=seed)
    faulty = FaultyIO(plan)
    problems: List[str] = []
    try:
        with io_scope(faulty):
            workload.run(root, [])
    except OSError as exc:
        problems.append(f"retry did not absorb the one-shot fault: "
                        f"{exc!r}")
    if faulty.stats.get("eio", 0) != 1:
        problems.append(f"expected 1 injected EIO, saw {faulty.stats}")
    if faulty.stats.get("short_write", 0) != 1:
        problems.append(f"expected 1 injected short write, "
                        f"saw {faulty.stats}")
    if not problems:
        name = "sweep.journal.jsonl"
        with open(os.path.join(root, name), "rb") as handle:
            survived = handle.read()
        if survived != reference.final[name]:
            problems.append(f"{name}: retries left the journal "
                            f"different from a fault-free run (torn "
                            f"fragment or duplicate record)")
        problems.extend(_check_recovered(workload, root, reference))
    return {"name": "eio-short-write-retry", "ok": not problems,
            "problems": problems}


def _scenario_rename_fail(base: str, seed: int) -> Dict:
    """A failed rename must keep the old artifact and drop the temp."""
    root = os.path.join(base, "faults-rename")
    os.makedirs(root, exist_ok=True)
    v1, v2 = "report v1\n", "report v2\n"
    path = os.path.join(root, "report.txt")
    atomic_write_text(path, v1)
    plan = DurabilityPlan.of(
        DurabilitySpec(kind="rename_fail", target="report.txt", limit=1),
        seed=seed)
    problems: List[str] = []
    try:
        with io_scope(FaultyIO(plan)):
            atomic_write_text(path, v2)
    except OSError as exc:
        if exc.errno != errno.EIO:
            problems.append(f"rename failure carried {exc.errno}, "
                            f"not EIO")
    else:
        problems.append("injected rename failure never surfaced")
    with open(path, "r", encoding="utf-8") as handle:
        content = handle.read()
    if content != v1:
        problems.append(f"report.txt: old content not preserved "
                        f"({content!r})")
    litter = [name for name in os.listdir(root) if name.endswith(".tmp")]
    if litter:
        problems.append(f"temporary litter after failed rename: {litter}")
    atomic_write_text(path, v2)  # the device recovered
    with open(path, "r", encoding="utf-8") as handle:
        if handle.read() != v2:
            problems.append("retried write did not land v2")
    return {"name": "rename-fail-keeps-old", "ok": not problems,
            "problems": problems}


def _scenario_fsync_lie(base: str, seed: int) -> Dict:
    """A lying drive: lose everything un-synced, then recover."""
    workload = JournalSweepWorkload(quick=True)
    ref_root = os.path.join(base, "faults-lie-ref")
    os.makedirs(ref_root, exist_ok=True)
    workload.run(ref_root, [])
    reference = _Reference(ref_root, _read_tree(ref_root), [])

    root = os.path.join(base, "faults-lie")
    os.makedirs(root, exist_ok=True)
    plan = DurabilityPlan.of(DurabilitySpec(kind="fsync_lie"), seed=seed)
    faulty = FaultyIO(plan)
    problems: List[str] = []
    with io_scope(faulty):
        workload.run(root, [])
    if not faulty.stats.get("fsync_lie"):
        problems.append("no fsync was ever lied about")
    lost = faulty.lose_unsynced()
    if not lost:
        problems.append("power cut after lies lost nothing — the lie "
                        "was not actually hiding anything")
    try:
        SweepJournal.load(os.path.join(root, "sweep.journal.jsonl"))
    except ValueError as exc:
        problems.append(f"journal unreadable after revealed lie: {exc}")
    if not problems:
        workload.recover(root)
        problems.extend(_check_recovered(workload, root, reference))
    return {"name": "fsync-lie-lose-unsynced", "ok": not problems,
            "problems": problems}


# ------------------------------------------------------------- the driver
def run_crashtest(out_dir: str = "results", seed: int = 0,
                  quick: bool = False, points: Optional[int] = None,
                  log: Optional[Callable[[str], None]] = None) -> Dict:
    """Run the full durability gauntlet; returns the JSON-able report.

    ``points`` caps the crash points tested per workload (evenly
    sampled; default all). Failing sandboxes are kept under
    ``<out_dir>/crashtest/`` for inspection; the report is written to
    ``<out_dir>/crashtest-report.json`` either way.
    """
    log = log or (lambda message: None)
    base = os.path.join(out_dir, "crashtest")
    shutil.rmtree(base, ignore_errors=True)
    os.makedirs(base, exist_ok=True)

    workloads: List[_Workload] = [
        JournalSweepWorkload(quick),
        JobQueueWorkload(),
        ArtifactWorkload(quick),
    ]
    report: Dict = {"seed": seed, "quick": quick, "workloads": [],
                    "faults": []}
    for workload in workloads:
        report["workloads"].append(
            _gauntlet_workload(workload, base, points, log))

    for scenario in (_scenario_enospc, _scenario_eio_retry,
                     _scenario_rename_fail, _scenario_fsync_lie):
        outcome = scenario(base, seed)
        log(f"crashtest[faults] {outcome['name']}: "
            f"{'ok' if outcome['ok'] else 'FAILED'}")
        report["faults"].append(outcome)

    report["points"] = sum(w["points"] for w in report["workloads"])
    report["recovered"] = sum(w["recovered"] for w in report["workloads"])
    report["ok"] = (all(w["ok"] for w in report["workloads"])
                    and all(f["ok"] for f in report["faults"]))
    os.makedirs(out_dir, exist_ok=True)
    atomic_write_text(os.path.join(out_dir, "crashtest-report.json"),
                      json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def render_crashtest(report: Dict) -> str:
    """Human-readable gauntlet summary (the CLI output)."""
    lines = []
    for workload in report["workloads"]:
        lines.append(f"  {workload['name']}: {workload['recovered']}/"
                     f"{workload['points']} crash point(s) recovered "
                     f"({workload['boundaries']} boundaries enumerated)")
        for outcome in workload["outcomes"]:
            if not outcome["recovered"]:
                lines.append(f"    point {outcome['point']} "
                             f"[{outcome['boundary']}]: "
                             f"{'; '.join(outcome['problems'])}")
    for fault in report["faults"]:
        lines.append(f"  fault {fault['name']}: "
                     f"{'ok' if fault['ok'] else 'FAILED'}")
        for problem in fault["problems"]:
            lines.append(f"    {problem}")
    status = "OK" if report["ok"] else "FAILED"
    lines.append(f"crashtest: {status} ({report['recovered']}/"
                 f"{report['points']} crash points recovered, "
                 f"{sum(1 for f in report['faults'] if f['ok'])}/"
                 f"{len(report['faults'])} fault scenarios clean)")
    return "\n".join(lines)
