"""Seeded, serialisable filesystem fault plans.

The durability sibling of :class:`~repro.service.chaos.ChaosPlan`:
where a chaos plan schedules *network* faults on the channels between
coordinator and workers, a :class:`DurabilityPlan` schedules
*filesystem* faults on the seam every journal append and atomic
artifact write goes through (:mod:`repro.durability.io_layer`). The
same design rules apply:

* **Declarative and serialisable.** A plan is a tuple of
  :class:`DurabilitySpec` entries plus a seed; it round-trips through
  JSON losslessly.
* **Deterministic.** One :class:`random.Random` seeded from the plan
  drives every probability draw, and ``after``/``limit`` count
  *eligible operations* per rule — the same plan against the same
  operation sequence always injects the same faults.
* **Zero-cost when disarmed.** Faults live entirely in the
  :class:`~repro.durability.faulty.FaultyIO` wrapper; a run without a
  plan keeps the default :data:`~repro.durability.io_layer.REAL_IO`
  pass-through and never constructs one.

Plan-file schema::

    {
      "seed": 7,
      "durability": [
        {"kind": "enospc", "target": "*.journal.jsonl", "after": 3},
        {"kind": "eio", "probability": 0.1, "limit": 1},
        {"kind": "short_write", "target": "jobs.jsonl", "limit": 1},
        {"kind": "fsync_lie"},
        {"kind": "rename_fail", "target": "*.txt", "limit": 1}
      ]
    }

``target`` is an fnmatch pattern matched against both the basename
and the full path of the file an operation touches (rename failures
match the *destination*). Kinds and the seam operations they can hit:

``enospc``
    ``OSError(ENOSPC)`` on a file create or content write — the disk
    filled up. Not retried by the stack: callers abort cleanly.
``eio``
    ``OSError(EIO)`` on a write or fsync — a flaky device. The journal
    retries these once (see ``docs/DURABILITY.md``).
``short_write``
    The write lands only a prefix (``magnitude`` bytes; 0 means half)
    before failing with ``OSError(EIO)`` — a torn append.
``fsync_lie``
    The fsync returns success without making anything durable — the
    classic lying-drive cache. :meth:`FaultyIO.lose_unsynced
    <repro.durability.faulty.FaultyIO.lose_unsynced>` later reveals
    the lie by truncating files back to their truly-synced length.
``rename_fail``
    ``OSError(EIO)`` before the ``os.replace`` — the destination keeps
    its old content, the temporary is cleaned up by the caller.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from fnmatch import fnmatchcase
from typing import Any, Dict, Iterable, Tuple

__all__ = ["DURABILITY_KINDS", "DurabilitySpec", "DurabilityPlan"]

#: Injectable filesystem fault kinds.
DURABILITY_KINDS = ("enospc", "eio", "short_write", "fsync_lie",
                    "rename_fail")

#: Seam operations each kind is eligible to hit.
KIND_OPS = {
    "enospc": frozenset({"create", "write"}),
    "eio": frozenset({"write", "fsync"}),
    "short_write": frozenset({"write"}),
    "fsync_lie": frozenset({"fsync"}),
    "rename_fail": frozenset({"replace"}),
}


@dataclass(frozen=True)
class DurabilitySpec:
    """One filesystem fault rule.

    ``probability`` is the per-eligible-operation chance the rule
    fires; ``after`` delays arming until that many eligible operations
    have passed; ``limit`` caps total firings (0 means unlimited).
    ``magnitude`` is only meaningful for ``short_write``: the number
    of bytes that land before the failure (0 picks half the buffer).
    """

    kind: str
    target: str = "*"
    probability: float = 1.0
    after: int = 0
    limit: int = 0
    magnitude: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in DURABILITY_KINDS:
            raise ValueError(f"unknown durability kind {self.kind!r}; "
                             f"expected one of {', '.join(DURABILITY_KINDS)}")
        if not self.target:
            raise ValueError("durability target pattern must be non-empty")
        if not 0 < self.probability <= 1:
            raise ValueError(f"probability must be in (0, 1], "
                             f"got {self.probability}")
        if self.after < 0:
            raise ValueError(f"after must be >= 0, got {self.after}")
        if self.limit < 0:
            raise ValueError(f"limit must be >= 0, got {self.limit}")
        if self.magnitude < 0 or self.magnitude != int(self.magnitude):
            raise ValueError(f"magnitude is a whole byte count, "
                             f"got {self.magnitude}")
        if self.kind != "short_write" and self.magnitude:
            raise ValueError(f"{self.kind} takes no magnitude, "
                             f"got {self.magnitude}")

    def matches(self, op: str, path: str) -> bool:
        """Is this rule eligible for seam operation ``op`` on ``path``?"""
        if op not in KIND_OPS[self.kind]:
            return False
        return (fnmatchcase(os.path.basename(path), self.target)
                or fnmatchcase(path, self.target))

    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        defaults = {"target": "*", "probability": 1.0, "after": 0,
                    "limit": 0, "magnitude": 0.0}
        return {key: value for key, value in data.items()
                if key == "kind" or value != defaults.get(key)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DurabilitySpec":
        unknown = set(data) - {"kind", "target", "probability", "after",
                               "limit", "magnitude"}
        if unknown:
            raise ValueError(f"unknown durability spec fields: "
                             f"{', '.join(sorted(unknown))}")
        return cls(**data)


@dataclass(frozen=True)
class DurabilityPlan:
    """An immutable schedule of filesystem fault rules plus the seed."""

    specs: Tuple[DurabilitySpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))
        for spec in self.specs:
            if not isinstance(spec, DurabilitySpec):
                raise TypeError(
                    f"expected DurabilitySpec, got {type(spec).__name__}")

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    @classmethod
    def of(cls, *specs: DurabilitySpec, seed: int = 0) -> "DurabilityPlan":
        return cls(specs=specs, seed=seed)

    def to_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed,
                "durability": [spec.to_dict() for spec in self.specs]}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DurabilityPlan":
        unknown = set(data) - {"seed", "durability"}
        if unknown:
            raise ValueError(f"unknown durability plan fields: "
                             f"{', '.join(sorted(unknown))}")
        rules = data.get("durability", ())
        if not isinstance(rules, Iterable) or isinstance(rules, (str, bytes)):
            raise ValueError("'durability' must be a list of fault specs")
        return cls(specs=tuple(DurabilitySpec.from_dict(item)
                               for item in rules),
                   seed=int(data.get("seed", 0)))

    @classmethod
    def from_json(cls, text: str) -> "DurabilityPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: str) -> "DurabilityPlan":
        with open(path) as handle:
            return cls.from_json(handle.read())

    def to_file(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")
