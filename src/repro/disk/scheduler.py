"""On-drive request queue scheduling disciplines.

The drive holds a queue of outstanding requests (hosts in the paper keep
up to four 256 KB asynchronous requests in flight per drive) and picks the
next one to service according to a discipline:

* ``fcfs``   — first come, first served (strictly fair, deterministic);
* ``sstf``   — shortest seek time first (greedy on cylinder distance);
* ``look``   — elevator: continue in the current sweep direction, reverse
  at the last pending request.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

__all__ = ["RequestQueue", "DISCIPLINES"]

DISCIPLINES = ("fcfs", "sstf", "look")


class RequestQueue:
    """Pending disk requests plus a pick-next policy.

    Items are opaque except for a ``cylinder`` attribute the spatial
    disciplines use.
    """

    def __init__(self, discipline: str = "fcfs"):
        if discipline not in DISCIPLINES:
            raise ValueError(
                f"unknown discipline {discipline!r}; pick one of {DISCIPLINES}")
        self.discipline = discipline
        self._queue: Deque = deque()
        self._direction = 1  # for LOOK: +1 toward higher cylinders
        self.max_depth = 0

    def __len__(self) -> int:
        return len(self._queue)

    def push(self, request) -> None:
        self._queue.append(request)
        self.max_depth = max(self.max_depth, len(self._queue))

    def drain(self) -> List:
        """Remove and return every pending request (drive failure path)."""
        drained = list(self._queue)
        self._queue.clear()
        return drained

    def pop_next(self, current_cylinder: int):
        """Remove and return the next request per the discipline."""
        if not self._queue:
            raise IndexError("pop from empty request queue")
        if self.discipline == "fcfs" or len(self._queue) == 1:
            return self._queue.popleft()
        if self.discipline == "sstf":
            best = min(self._queue,
                       key=lambda r: abs(r.cylinder - current_cylinder))
            self._queue.remove(best)
            return best
        return self._pop_look(current_cylinder)

    def _pop_look(self, current_cylinder: int):
        ahead: List = [r for r in self._queue
                       if (r.cylinder - current_cylinder) * self._direction >= 0]
        if not ahead:
            self._direction = -self._direction
            ahead = list(self._queue)
        best = min(ahead,
                   key=lambda r: abs(r.cylinder - current_cylinder))
        self._queue.remove(best)
        return best
