"""Disk-drive specifications used in the paper's experiments.

Two drives appear in the paper:

* **Seagate ST39102** (Cheetah 9LP family) — the baseline drive in every
  configuration: 10,025 RPM, 14.5-21.3 MB/s formatted media rate, average
  seek 5.4 ms read / 6.2 ms write, maximum seek 12.2 ms / 13.2 ms.
* **Hitachi DK3E1T-91** — the "Fast Disk" upgrade in Figure 3: 12,030 RPM,
  18.3-27.3 MB/s media rate, average seek 5 ms / 6 ms, maximum
  10.5 ms / 11.5 ms.

Numbers quoted by the paper are used verbatim; remaining geometry values
(cylinder count, head count, cache organization) come from the published
product manuals for the drive families.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

__all__ = ["DriveSpec", "SEAGATE_ST39102", "HITACHI_DK3E1T91", "fast_variant"]

MB = 1_000_000
SECTOR_BYTES = 512


@dataclass(frozen=True)
class DriveSpec:
    """Static description of a disk drive model.

    Attributes
    ----------
    media_rate_min / media_rate_max:
        Formatted media transfer rate in bytes/s at the innermost and
        outermost zones.
    seek_avg_read / seek_avg_write / seek_max_read / seek_max_write:
        Seek figures in seconds, as published.
    seek_track_to_track:
        Single-cylinder seek, seconds.
    cache_bytes / cache_segments:
        On-drive buffer size and its segmentation.
    bus_rate:
        Drive interface burst rate in bytes/s (Ultra2 SCSI / FC).
    controller_overhead:
        Fixed command processing time charged per request, seconds.
    """

    name: str
    rpm: float
    cylinders: int
    heads: int
    media_rate_min: float
    media_rate_max: float
    seek_avg_read: float
    seek_avg_write: float
    seek_max_read: float
    seek_max_write: float
    seek_track_to_track: float = 0.8e-3
    cache_bytes: int = 1_024 * 1_024
    cache_segments: int = 8
    bus_rate: float = 80 * MB
    controller_overhead: float = 0.3e-3
    sector_bytes: int = SECTOR_BYTES
    zones: int = 10

    def __post_init__(self) -> None:
        for attr in ("rpm", "media_rate_min", "media_rate_max", "bus_rate"):
            if getattr(self, attr) <= 0:
                raise ValueError(
                    f"{self.name}: {attr} must be positive, "
                    f"got {getattr(self, attr)}")
        for attr in ("cylinders", "heads", "sector_bytes"):
            if getattr(self, attr) < 1:
                raise ValueError(
                    f"{self.name}: {attr} must be >= 1, "
                    f"got {getattr(self, attr)}")
        for attr in ("seek_avg_read", "seek_avg_write", "seek_max_read",
                     "seek_max_write", "seek_track_to_track",
                     "controller_overhead"):
            if getattr(self, attr) < 0:
                raise ValueError(
                    f"{self.name}: {attr} must be >= 0, "
                    f"got {getattr(self, attr)}")
        if self.media_rate_max < self.media_rate_min:
            raise ValueError(
                f"{self.name}: media_rate_max ({self.media_rate_max}) below "
                f"media_rate_min ({self.media_rate_min}) — outer zones are "
                f"the fast ones")
        if self.cache_bytes < 0:
            raise ValueError(
                f"{self.name}: cache_bytes must be >= 0, got {self.cache_bytes}")
        if self.cache_segments < 1:
            raise ValueError(
                f"{self.name}: cache_segments must be >= 1, "
                f"got {self.cache_segments}")
        if not 1 <= self.zones <= self.cylinders:
            raise ValueError(
                f"{self.name}: zones must be in [1, cylinders], "
                f"got {self.zones}")

    @property
    def revolution_time(self) -> float:
        """Seconds per platter revolution."""
        return 60.0 / self.rpm

    @property
    def avg_rotational_latency(self) -> float:
        """Expected rotational delay for a random request: half a rev."""
        return self.revolution_time / 2.0

    def media_rate_at(self, fraction: float) -> float:
        """Media rate at radial position ``fraction`` (0 = outer, 1 = inner).

        Outer tracks are longer and therefore faster; the rate interpolates
        linearly between the published max (outer) and min (inner).
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"radial fraction out of range: {fraction}")
        return self.media_rate_max + fraction * (
            self.media_rate_min - self.media_rate_max)

    def sectors_per_track_at(self, fraction: float) -> int:
        """Sectors per track at radial ``fraction``, from the media rate."""
        rate = self.media_rate_at(fraction)
        bytes_per_rev = rate * self.revolution_time
        return max(1, int(bytes_per_rev // self.sector_bytes))

    @property
    def capacity_bytes(self) -> int:
        """Total formatted capacity implied by the zone layout."""
        total_sectors = 0
        cyls_per_zone = self.cylinders // self.zones
        for zone in range(self.zones):
            fraction = (zone + 0.5) / self.zones
            spt = self.sectors_per_track_at(fraction)
            total_sectors += spt * self.heads * cyls_per_zone
        return total_sectors * self.sector_bytes


#: Baseline drive for every configuration in the paper (Section 2.1).
SEAGATE_ST39102 = DriveSpec(
    name="Seagate ST39102 (Cheetah 9LP)",
    rpm=10_025,
    cylinders=6_962,
    heads=12,
    media_rate_min=14.5 * MB,
    media_rate_max=21.3 * MB,
    seek_avg_read=5.4e-3,
    seek_avg_write=6.2e-3,
    seek_max_read=12.2e-3,
    seek_max_write=13.2e-3,
    seek_track_to_track=0.8e-3,
    cache_bytes=1_024 * 1_024,
    cache_segments=8,
    bus_rate=80 * MB,
)

#: "Fast Disk" upgrade used in Figure 3.
HITACHI_DK3E1T91 = DriveSpec(
    name="Hitachi DK3E1T-91",
    rpm=12_030,
    cylinders=6_720,
    heads=10,
    media_rate_min=18.3 * MB,
    media_rate_max=27.3 * MB,
    seek_avg_read=5.0e-3,
    seek_avg_write=6.0e-3,
    seek_max_read=10.5e-3,
    seek_max_write=11.5e-3,
    seek_track_to_track=0.7e-3,
    cache_bytes=1_024 * 1_024,
    cache_segments=8,
    bus_rate=80 * MB,
)


def fast_variant(spec: DriveSpec, speedup: float) -> DriveSpec:
    """A hypothetical drive scaled uniformly faster, for sensitivity runs."""
    if speedup <= 0:
        raise ValueError(f"speedup must be positive, got {speedup}")
    return replace(
        spec,
        name=f"{spec.name} (x{speedup:g})",
        rpm=spec.rpm * speedup,
        media_rate_min=spec.media_rate_min * speedup,
        media_rate_max=spec.media_rate_max * speedup,
        seek_avg_read=spec.seek_avg_read / speedup,
        seek_avg_write=spec.seek_avg_write / speedup,
        seek_max_read=spec.seek_max_read / speedup,
        seek_max_write=spec.seek_max_write / speedup,
        seek_track_to_track=spec.seek_track_to_track / speedup,
    )
