"""DiskSim-style drive model: zoned geometry, mechanics, cache, drive."""

from .cache import CacheOutcome, Segment, SegmentedCache
from .drive import DiskDrive, DiskRequest
from .geometry import DiskGeometry, Zone
from .mechanics import DiskMechanics, SeekCurve
from .scheduler import DISCIPLINES, RequestQueue
from .specs import HITACHI_DK3E1T91, SEAGATE_ST39102, DriveSpec, fast_variant

__all__ = [
    "DriveSpec", "SEAGATE_ST39102", "HITACHI_DK3E1T91", "fast_variant",
    "DiskGeometry", "Zone",
    "DiskMechanics", "SeekCurve",
    "SegmentedCache", "Segment", "CacheOutcome",
    "RequestQueue", "DISCIPLINES",
    "DiskDrive", "DiskRequest",
]
