"""Analytic cross-checks for the drive model (DiskSim-style validation).

DiskSim was validated against real drives using published specifications
and SCSI logic analyzers. We have no hardware, but the same discipline
applies one level down: the *simulated* service times must agree with
the closed-form expectations implied by the drive specification. This
module computes those expectations; the test suite runs the simulator
against them.

* sequential streaming rate -> zone media rate;
* random single-sector read  -> overhead + E[seek] + E[rotation];
* full sweep across the drive -> per-request seek from the curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .geometry import DiskGeometry
from .mechanics import DiskMechanics
from .specs import DriveSpec

__all__ = ["ExpectedServiceTime", "expected_sequential_rate",
           "expected_random_read_time", "validation_points"]


@dataclass(frozen=True)
class ExpectedServiceTime:
    """One analytic validation point."""

    name: str
    expected: float
    tolerance: float          # relative


def expected_sequential_rate(spec: DriveSpec, lbn: int = 0) -> float:
    """Streaming throughput at ``lbn``: the zone's media rate."""
    geometry = DiskGeometry(spec)
    return geometry.media_rate_at_lbn(lbn)


def expected_random_read_time(spec: DriveSpec, nbytes: int) -> float:
    """Mean service time of an independent random read.

    overhead + average seek + half a revolution + media transfer at the
    capacity-weighted mean media rate.
    """
    mean_rate = (spec.media_rate_min + spec.media_rate_max) / 2.0
    return (spec.controller_overhead
            + spec.seek_avg_read
            + spec.avg_rotational_latency
            + nbytes / mean_rate)


def validation_points(spec: DriveSpec) -> List[ExpectedServiceTime]:
    """The standard battery the tests run against the simulator."""
    return [
        ExpectedServiceTime(
            name="sequential-256K-rate",
            expected=expected_sequential_rate(spec),
            tolerance=0.10),
        ExpectedServiceTime(
            name="random-8K-read",
            expected=expected_random_read_time(spec, 8 * 1024),
            tolerance=0.20),
        ExpectedServiceTime(
            name="random-256K-read",
            expected=expected_random_read_time(spec, 256 * 1024),
            tolerance=0.20),
    ]
