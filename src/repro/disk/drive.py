"""The disk drive as a simulation process.

A :class:`DiskDrive` owns the geometry, mechanics, segmented cache and
request queue of one spindle, and runs a service loop that, per request:

1. charges the controller's fixed command overhead;
2. consults the cache — buffer hit (no media work), streaming continuation
   (media transfer only) or full positioning (seek + rotational wait +
   media transfer);
3. completes the request's event.

Interface (SCSI/FC) transfer time is deliberately **not** modelled here:
the interconnect a drive sits on is a shared resource owned by the
architecture model (dual FC-AL for Active Disks and SMPs, private
Ultra2 SCSI + PCI for cluster nodes), which charges it separately. The
drive accounts media-side time only, which is what the published
"media transfer rate" measures.

Time accounting lands in a :class:`~repro.sim.stats.BusyTracker` with
buckets ``seek``, ``rotate``, ``transfer``, ``overhead`` so experiment
drivers can build breakdowns.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from math import ceil
from typing import Optional

from ..faults.errors import DriveFailed
from ..sim import BusyTracker, Event, Simulator, Store, Tally
from .cache import SegmentedCache
from .geometry import DiskGeometry
from .mechanics import DiskMechanics
from .scheduler import RequestQueue
from .specs import DriveSpec

__all__ = ["DiskRequest", "DiskDrive"]

#: Read retries (full revolutions) a drive spends on a marginal sector
#: when the fault spec does not pin a count.
DEFAULT_READ_RETRIES = 2


@dataclass(slots=True)
class DiskRequest:
    """One read or write of ``nbytes`` starting at sector ``lbn``."""

    op: str                    # "read" | "write"
    lbn: int
    nbytes: int
    done: Event
    issued_at: float
    cylinder: int = 0          # filled in at submit time, used by schedulers

    def __post_init__(self) -> None:
        if self.op not in ("read", "write"):
            raise ValueError(f"bad op {self.op!r}")
        if self.nbytes <= 0:
            raise ValueError(f"bad request size {self.nbytes}")
        if self.lbn < 0:
            raise ValueError(f"negative LBN {self.lbn}")

    @property
    def sectors(self) -> int:
        return ceil(self.nbytes / 512)


class DiskDrive:
    """One spindle: mechanics + cache + queue + service-loop process.

    ``write_policy`` selects how writes complete:

    * ``"through"`` (default, and what every paper experiment uses):
      a write completes after its media work — the safe setting the
      decision-support tasks assume for run files and outputs.
    * ``"back"``: a write completes once buffered; media work happens
      during idle time (or synchronously once dirty data would exceed
      the buffer). Latency improves for bursty writers; sustained
      throughput is unchanged because the platters still do the work.
    """

    def __init__(self, sim: Simulator, spec: DriveSpec,
                 discipline: str = "fcfs", name: str = "disk",
                 write_policy: str = "through",
                 fault_id: Optional[str] = None):
        if write_policy not in ("through", "back"):
            raise ValueError(
                f"unknown write policy {write_policy!r}; "
                f"pick 'through' or 'back'")
        self.sim = sim
        self.spec = spec
        self.name = name
        self.write_policy = write_policy
        self._dirty: "deque" = deque()
        self._dirty_bytes = 0
        self.geometry = DiskGeometry(spec)
        self.mechanics = DiskMechanics(spec, self.geometry)
        segment_sectors = max(
            1, spec.cache_bytes // spec.cache_segments // spec.sector_bytes)
        self.cache = SegmentedCache(spec.cache_segments, segment_sectors)
        self.queue = RequestQueue(discipline)
        self.current_cylinder = 0
        self.head_lbn = 0
        self.busy = BusyTracker(name)
        self.response_times = Tally(f"{name}.response")
        self.bytes_read = 0
        self.bytes_written = 0
        self._wakeup: Optional[Event] = None
        self._idle_since = sim.now
        self._track = f"disk.{name}"
        # Hot-path caches: the telemetry hub and sector size are fixed
        # for the simulator's lifetime.
        self._telemetry = sim.telemetry
        self._sector_bytes = spec.sector_bytes
        tel = sim.telemetry
        if tel.enabled:
            tel.registry.bind(f"disk.{name}.queue.depth",
                              lambda: float(len(self.queue)))
            tel.registry.bind(f"disk.{name}.utilization", self.utilization)
        # Fault port: None unless a plan is armed, so the hot paths pay a
        # single `is None` branch (the zero-cost contract).
        self.failed = False
        self.faults = None
        if sim.faults.enabled:
            self.faults = sim.faults.register(fault_id or f"disk.{name}")
            self.faults.on("drive_failure", self._on_drive_failure)
        # Invariant auditor: None unless armed, same zero-cost contract.
        # Tracks request lifecycle (issued/completed/failed exactly once)
        # and the media byte ledger against bytes_read/bytes_written.
        self._audit = None
        if sim.invariants.enabled:
            self._audit = sim.invariants.drive_auditor(self)
        # The service loop idles forever between requests: a daemon by
        # design, excluded from SimStalled deadlock detection.
        self.process = sim.process(self._service_loop(), name=f"{name}-svc",
                                   daemon=True)

    # -- public API --------------------------------------------------------
    def submit(self, op: str, lbn: int, nbytes: int) -> Event:
        """Queue a request; the returned event fires at completion.

        On a failed drive the event fails immediately with
        :class:`~repro.faults.DriveFailed` (pre-defused, so an unwaited
        rejection cannot abort the run).
        """
        if self.failed:
            return self._refuse()
        sectors = ceil(nbytes / self._sector_bytes)
        if lbn + sectors > self.geometry.total_sectors:
            raise ValueError(
                f"{self.name}: request [{lbn}, {lbn + sectors}) beyond "
                f"capacity {self.geometry.total_sectors} sectors")
        request = DiskRequest(
            op=op, lbn=lbn, nbytes=nbytes,
            done=Event(self.sim), issued_at=self.sim.now)
        request.cylinder = self.geometry.cylinder_of_lbn(lbn)
        if self._audit is not None:
            self._audit.request_issued(request)
        self.queue.push(request)
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()
        return request.done

    def read(self, lbn: int, nbytes: int) -> Event:
        return self.submit("read", lbn, nbytes)

    def write(self, lbn: int, nbytes: int) -> Event:
        return self.submit("write", lbn, nbytes)

    def utilization(self) -> float:
        """Fraction of time spent on media work so far."""
        if self.sim.now <= 0:
            return 0.0
        return self.busy.total() / self.sim.now

    # -- fault handling ------------------------------------------------------
    def _failure(self) -> DriveFailed:
        return DriveFailed(self.name)

    def _refuse(self) -> Event:
        """A pre-failed, pre-defused completion event for a dead drive."""
        done = Event(self.sim)
        done.fail(self._failure())
        # Defused up front: a waiter that yields the event still sees the
        # exception (the resume path re-raises it), but a request nobody
        # ends up waiting on cannot abort the whole simulation.
        done._defused = True
        if self.faults is not None:
            self.faults.note("faults.disk.rejected_requests")
        if self._audit is not None:
            self._audit.request_refused()
        return done

    def _on_drive_failure(self, _spec) -> None:
        """Push callback from the injector: the whole spindle dies now."""
        self.failed = True
        self._dirty.clear()
        self._dirty_bytes = 0
        port = self.faults
        port.note("faults.disk.failures")
        dropped = self.queue.drain()
        for request in dropped:
            request.done._defused = True  # see _refuse
            request.done.fail(self._failure())
            if self._audit is not None:
                self._audit.request_failed(request)
        if dropped:
            port.note("faults.disk.dropped_requests", len(dropped))
        tel = self.sim.telemetry
        if tel.enabled:
            tel.spans.instant("fault", "drive-failure", self._track,
                              args={"dropped": len(dropped)})

    def _media_recovery(self, fault, op: str):
        """Charge read-retry revolutions (and a remap) for a bad sector."""
        port = self.faults
        port.consume(fault)
        if op == "write":
            # Overwriting the marginal sector rewrites (or revectors) it;
            # no retries needed on the write path.
            port.note("faults.disk.media_cleared")
            return
        retries = int(fault.magnitude) or DEFAULT_READ_RETRIES
        penalty = retries * self.spec.revolution_time
        if fault.kind == "latent_sector_error":
            # Revector to a spare sector: one track switch plus the
            # rotational delay of landing on the spare.
            penalty += self.spec.seek_track_to_track + self.spec.revolution_time
            port.note("faults.disk.remaps")
        began = self.sim.now
        yield self.sim.pause(penalty)
        self.busy.charge("recovery", penalty)
        port.note("faults.disk.media_errors")
        port.note("faults.disk.read_retries", retries)
        tel = self.sim.telemetry
        if tel.enabled:
            tel.spans.complete("disk", "media-recovery", self._track,
                               began, penalty,
                               args={"lbn": fault.lbn, "kind": fault.kind})

    # -- service loop --------------------------------------------------------
    def _service_loop(self):
        while True:
            while not len(self.queue):
                if self._dirty:
                    # Idle time: destage one buffered write to media.
                    yield from self._flush_one()
                    continue
                self._wakeup = Event(self.sim)
                yield self._wakeup
                self._wakeup = None
            request = self.queue.pop_next(self.current_cylinder)
            yield from self._service(request)

    def _flush_one(self):
        """Destage the oldest dirty extent (write-back policy)."""
        lbn, nbytes = self._dirty.popleft()
        self._dirty_bytes -= nbytes
        yield from self._media_work("write", lbn, nbytes)

    def _media_work(self, op: str, lbn: int, nbytes: int):
        """Positioning + transfer for one extent, cache-aware."""
        sim = self.sim
        tel = self._telemetry
        sectors = ceil(nbytes / self._sector_bytes)
        outcome = self.cache.lookup(op, lbn, lbn + sectors)
        write = op == "write"
        if outcome.buffer_hit:
            if tel.enabled:
                tel.spans.instant("disk", "cache-hit", self._track,
                                  args={"lbn": lbn, "nbytes": nbytes})
                tel.registry.counter(f"{self._track}.cache.hits").add()
            return
        # Limp mode: an active drive_slowdown fault stretches every
        # mechanical delay by its factor.
        fp = self.faults
        slow = fp.factor() if fp is not None and fp.active else 1.0
        if not (outcome.streaming and self.head_lbn == lbn):
            seek, rotation, cylinder = self.mechanics.positioning_parts(
                sim.now, self.current_cylinder, lbn, write)
            delay = seek + rotation
            if slow != 1.0:
                delay *= slow
                seek *= slow
            began = sim.now
            if delay > 0:
                yield sim.pause(delay)
            self.busy.charge("seek", seek)
            self.busy.charge("rotate", delay - seek)
            if tel.enabled and delay > 0:
                if seek > 0:
                    tel.spans.complete("disk", "seek", self._track,
                                       began, seek)
                if delay - seek > 0:
                    tel.spans.complete("disk", "rotate", self._track,
                                       began + seek, delay - seek)
            self.current_cylinder = cylinder
        transfer = self.mechanics.transfer_time(lbn, nbytes)
        if slow != 1.0:
            transfer *= slow
        began = sim.now
        if transfer > 0:
            yield sim.pause(transfer)
        self.busy.charge("transfer", transfer)
        if tel.enabled and transfer > 0:
            tel.spans.complete("disk", op, self._track, began, transfer,
                               args={"nbytes": nbytes})
        if fp is not None and fp.active:
            hit = fp.media_hit(lbn, sectors)
            if hit is not None:
                yield from self._media_recovery(hit, op)
        end = lbn + sectors
        self.current_cylinder = self.geometry.cylinder_of_lbn(end - 1)
        self.head_lbn = end

    def _service(self, request: DiskRequest):
        spec = self.spec
        if spec.controller_overhead > 0:
            yield self.sim.pause(spec.controller_overhead)
            self.busy.charge("overhead", spec.controller_overhead)

        write = request.op == "write"
        if write and self.write_policy == "back":
            # Buffer the write; destage lazily. Once dirty data would
            # overflow the buffer the writer waits for destaging —
            # write-back hides latency, never sustained throughput.
            while (self._dirty
                   and self._dirty_bytes + request.nbytes
                   > self.spec.cache_bytes):
                yield from self._flush_one()
            self._dirty.append((request.lbn, request.nbytes))
            self._dirty_bytes += request.nbytes
        else:
            # A tracked stream only avoids positioning when the head is
            # still parked at the continuation point; interleaved streams
            # (read + write zones, many merge runs) move it away and pay
            # a seek + rotational wait per switch (see _media_work).
            yield from self._media_work(request.op, request.lbn,
                                        request.nbytes)

        if write:
            self.bytes_written += request.nbytes
        else:
            self.bytes_read += request.nbytes
        response = self.sim.now - request.issued_at
        self.response_times.observe(response)
        tel = self._telemetry
        if tel.enabled:
            tel.registry.histogram(f"{self._track}.response").observe(response)
            tel.registry.counter(
                f"{self._track}.bytes.{request.op}").add(request.nbytes)
        if self._audit is not None:
            self._audit.request_completed(request)
        request.done.succeed(request)
