"""The disk drive as a simulation process.

A :class:`DiskDrive` owns the geometry, mechanics, segmented cache and
request queue of one spindle, and runs a service loop that, per request:

1. charges the controller's fixed command overhead;
2. consults the cache — buffer hit (no media work), streaming continuation
   (media transfer only) or full positioning (seek + rotational wait +
   media transfer);
3. completes the request's event.

Interface (SCSI/FC) transfer time is deliberately **not** modelled here:
the interconnect a drive sits on is a shared resource owned by the
architecture model (dual FC-AL for Active Disks and SMPs, private
Ultra2 SCSI + PCI for cluster nodes), which charges it separately. The
drive accounts media-side time only, which is what the published
"media transfer rate" measures.

Time accounting lands in a :class:`~repro.sim.stats.BusyTracker` with
buckets ``seek``, ``rotate``, ``transfer``, ``overhead`` so experiment
drivers can build breakdowns.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from math import ceil
from typing import Optional

from ..sim import BusyTracker, Event, Simulator, Store, Tally
from .cache import SegmentedCache
from .geometry import DiskGeometry
from .mechanics import DiskMechanics
from .scheduler import RequestQueue
from .specs import DriveSpec

__all__ = ["DiskRequest", "DiskDrive"]


@dataclass
class DiskRequest:
    """One read or write of ``nbytes`` starting at sector ``lbn``."""

    op: str                    # "read" | "write"
    lbn: int
    nbytes: int
    done: Event
    issued_at: float
    cylinder: int = 0          # filled in at submit time, used by schedulers

    def __post_init__(self) -> None:
        if self.op not in ("read", "write"):
            raise ValueError(f"bad op {self.op!r}")
        if self.nbytes <= 0:
            raise ValueError(f"bad request size {self.nbytes}")
        if self.lbn < 0:
            raise ValueError(f"negative LBN {self.lbn}")

    @property
    def sectors(self) -> int:
        return ceil(self.nbytes / 512)


class DiskDrive:
    """One spindle: mechanics + cache + queue + service-loop process.

    ``write_policy`` selects how writes complete:

    * ``"through"`` (default, and what every paper experiment uses):
      a write completes after its media work — the safe setting the
      decision-support tasks assume for run files and outputs.
    * ``"back"``: a write completes once buffered; media work happens
      during idle time (or synchronously once dirty data would exceed
      the buffer). Latency improves for bursty writers; sustained
      throughput is unchanged because the platters still do the work.
    """

    def __init__(self, sim: Simulator, spec: DriveSpec,
                 discipline: str = "fcfs", name: str = "disk",
                 write_policy: str = "through"):
        if write_policy not in ("through", "back"):
            raise ValueError(
                f"unknown write policy {write_policy!r}; "
                f"pick 'through' or 'back'")
        self.sim = sim
        self.spec = spec
        self.name = name
        self.write_policy = write_policy
        self._dirty: "deque" = deque()
        self._dirty_bytes = 0
        self.geometry = DiskGeometry(spec)
        self.mechanics = DiskMechanics(spec, self.geometry)
        segment_sectors = max(
            1, spec.cache_bytes // spec.cache_segments // spec.sector_bytes)
        self.cache = SegmentedCache(spec.cache_segments, segment_sectors)
        self.queue = RequestQueue(discipline)
        self.current_cylinder = 0
        self.head_lbn = 0
        self.busy = BusyTracker(name)
        self.response_times = Tally(f"{name}.response")
        self.bytes_read = 0
        self.bytes_written = 0
        self._wakeup: Optional[Event] = None
        self._idle_since = sim.now
        self._track = f"disk.{name}"
        tel = sim.telemetry
        if tel.enabled:
            tel.registry.bind(f"disk.{name}.queue.depth",
                              lambda: float(len(self.queue)))
            tel.registry.bind(f"disk.{name}.utilization", self.utilization)
        self.process = sim.process(self._service_loop(), name=f"{name}-svc")

    # -- public API --------------------------------------------------------
    def submit(self, op: str, lbn: int, nbytes: int) -> Event:
        """Queue a request; the returned event fires at completion."""
        sectors = ceil(nbytes / self.spec.sector_bytes)
        if lbn + sectors > self.geometry.total_sectors:
            raise ValueError(
                f"{self.name}: request [{lbn}, {lbn + sectors}) beyond "
                f"capacity {self.geometry.total_sectors} sectors")
        request = DiskRequest(
            op=op, lbn=lbn, nbytes=nbytes,
            done=Event(self.sim), issued_at=self.sim.now)
        request.cylinder, _, _ = self.geometry.lbn_to_chs(lbn)
        self.queue.push(request)
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()
        return request.done

    def read(self, lbn: int, nbytes: int) -> Event:
        return self.submit("read", lbn, nbytes)

    def write(self, lbn: int, nbytes: int) -> Event:
        return self.submit("write", lbn, nbytes)

    def utilization(self) -> float:
        """Fraction of time spent on media work so far."""
        if self.sim.now <= 0:
            return 0.0
        return self.busy.total() / self.sim.now

    # -- service loop --------------------------------------------------------
    def _service_loop(self):
        while True:
            while not len(self.queue):
                if self._dirty:
                    # Idle time: destage one buffered write to media.
                    yield from self._flush_one()
                    continue
                self._wakeup = Event(self.sim)
                yield self._wakeup
                self._wakeup = None
            request = self.queue.pop_next(self.current_cylinder)
            yield from self._service(request)

    def _flush_one(self):
        """Destage the oldest dirty extent (write-back policy)."""
        lbn, nbytes = self._dirty.popleft()
        self._dirty_bytes -= nbytes
        yield from self._media_work("write", lbn, nbytes)

    def _media_work(self, op: str, lbn: int, nbytes: int):
        """Positioning + transfer for one extent, cache-aware."""
        tel = self.sim.telemetry
        sectors = ceil(nbytes / self.spec.sector_bytes)
        outcome = self.cache.lookup(op, lbn, lbn + sectors)
        write = op == "write"
        if outcome.buffer_hit:
            if tel.enabled:
                tel.spans.instant("disk", "cache-hit", self._track,
                                  args={"lbn": lbn, "nbytes": nbytes})
                tel.registry.counter(f"{self._track}.cache.hits").add()
            return
        if not (outcome.streaming and self.head_lbn == lbn):
            delay, cylinder = self.mechanics.positioning_time(
                self.sim.now, self.current_cylinder, lbn, write)
            seek = self.mechanics.seek_time(
                self.current_cylinder, cylinder, write)
            began = self.sim.now
            if delay > 0:
                yield self.sim.timeout(delay)
            self.busy.charge("seek", seek)
            self.busy.charge("rotate", delay - seek)
            if tel.enabled and delay > 0:
                if seek > 0:
                    tel.spans.complete("disk", "seek", self._track,
                                       began, seek)
                if delay - seek > 0:
                    tel.spans.complete("disk", "rotate", self._track,
                                       began + seek, delay - seek)
            self.current_cylinder = cylinder
        transfer = self.mechanics.transfer_time(lbn, nbytes)
        began = self.sim.now
        if transfer > 0:
            yield self.sim.timeout(transfer)
        self.busy.charge("transfer", transfer)
        if tel.enabled and transfer > 0:
            tel.spans.complete("disk", op, self._track, began, transfer,
                               args={"nbytes": nbytes})
        end = lbn + sectors
        self.current_cylinder, _, _ = self.geometry.lbn_to_chs(end - 1)
        self.head_lbn = end

    def _service(self, request: DiskRequest):
        spec = self.spec
        if spec.controller_overhead > 0:
            yield self.sim.timeout(spec.controller_overhead)
            self.busy.charge("overhead", spec.controller_overhead)

        write = request.op == "write"
        if write and self.write_policy == "back":
            # Buffer the write; destage lazily. Once dirty data would
            # overflow the buffer the writer waits for destaging —
            # write-back hides latency, never sustained throughput.
            while (self._dirty
                   and self._dirty_bytes + request.nbytes
                   > self.spec.cache_bytes):
                yield from self._flush_one()
            self._dirty.append((request.lbn, request.nbytes))
            self._dirty_bytes += request.nbytes
        else:
            # A tracked stream only avoids positioning when the head is
            # still parked at the continuation point; interleaved streams
            # (read + write zones, many merge runs) move it away and pay
            # a seek + rotational wait per switch (see _media_work).
            yield from self._media_work(request.op, request.lbn,
                                        request.nbytes)

        if write:
            self.bytes_written += request.nbytes
        else:
            self.bytes_read += request.nbytes
        response = self.sim.now - request.issued_at
        self.response_times.observe(response)
        tel = self.sim.telemetry
        if tel.enabled:
            tel.registry.histogram(f"{self._track}.response").observe(response)
            tel.registry.counter(
                f"{self._track}.bytes.{request.op}").add(request.nbytes)
        request.done.succeed(request)
