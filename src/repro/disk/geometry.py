"""Zoned disk geometry: LBN to physical-position mapping.

Modern drives put more sectors on the (longer) outer tracks than the inner
ones; the drive is divided into *zones* of cylinders that share a
sectors-per-track count. This module derives a zone table from a
:class:`~repro.disk.specs.DriveSpec` and maps logical block numbers (LBNs)
to ``(cylinder, head, sector)`` coordinates — which the mechanical model
needs for seek distances and rotational offsets.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Tuple

from .specs import DriveSpec

__all__ = ["Zone", "DiskGeometry"]


@dataclass(frozen=True)
class Zone:
    """A contiguous band of cylinders sharing a sectors-per-track count."""

    index: int
    first_cylinder: int
    last_cylinder: int          # inclusive
    sectors_per_track: int
    first_lbn: int              # first LBN mapped into this zone

    @property
    def cylinder_count(self) -> int:
        return self.last_cylinder - self.first_cylinder + 1

    def sector_count(self, heads: int) -> int:
        return self.cylinder_count * heads * self.sectors_per_track


class DiskGeometry:
    """Derived zone table plus LBN translation for one drive model.

    LBNs are assigned outer-zone first (zone 0 = outermost = fastest),
    track-major within a cylinder, matching the conventional mapping that
    makes low LBNs the fastest part of the drive.
    """

    def __init__(self, spec: DriveSpec):
        if not isinstance(spec, DriveSpec):
            raise ValueError(
                f"DiskGeometry needs a DriveSpec, got {type(spec).__name__}")
        # DriveSpec validates its own fields; re-check the invariants the
        # zone-table construction depends on so a hand-rolled/mocked spec
        # fails here with a clear message rather than as mapping nonsense.
        if spec.cylinders < spec.zones:
            raise ValueError(
                f"{spec.name}: fewer cylinders ({spec.cylinders}) than "
                f"zones ({spec.zones})")
        self.spec = spec
        self.zones: List[Zone] = []
        self._build_zones()
        last = self.zones[-1]
        self.total_sectors = last.first_lbn + last.sector_count(spec.heads)
        self.capacity_bytes = self.total_sectors * spec.sector_bytes
        if self.total_sectors <= 0:
            raise ValueError(
                f"{spec.name}: geometry maps zero sectors — check media "
                f"rates and rpm")
        # Translation runs on every request the drive services; the zone
        # search is a C-level bisect over this boundary table, and the
        # per-zone media rate is computed once (same expression as
        # before, so the cached float is bit-identical).
        self._zone_starts = [zone.first_lbn for zone in self.zones]
        self._zone_rates = [
            zone.sectors_per_track * spec.sector_bytes
            / spec.revolution_time
            for zone in self.zones]

    def _build_zones(self) -> None:
        spec = self.spec
        base = spec.cylinders // spec.zones
        remainder = spec.cylinders % spec.zones
        cylinder = 0
        lbn = 0
        for index in range(spec.zones):
            count = base + (1 if index < remainder else 0)
            fraction = (index + 0.5) / spec.zones
            spt = spec.sectors_per_track_at(fraction)
            zone = Zone(
                index=index,
                first_cylinder=cylinder,
                last_cylinder=cylinder + count - 1,
                sectors_per_track=spt,
                first_lbn=lbn,
            )
            self.zones.append(zone)
            cylinder += count
            lbn += zone.sector_count(spec.heads)

    # -- translation ------------------------------------------------------
    def zone_of_lbn(self, lbn: int) -> Zone:
        """The zone containing ``lbn`` (binary search over zone bounds)."""
        if not 0 <= lbn < self.total_sectors:
            raise ValueError(
                f"LBN {lbn} out of range [0, {self.total_sectors})")
        return self.zones[bisect_right(self._zone_starts, lbn) - 1]

    def lbn_to_chs(self, lbn: int) -> Tuple[int, int, int]:
        """Map an LBN to ``(cylinder, head, sector)``."""
        zone = self.zone_of_lbn(lbn)
        offset = lbn - zone.first_lbn
        spt = zone.sectors_per_track
        heads = self.spec.heads
        cylinder_size = spt * heads
        cylinder = zone.first_cylinder + offset // cylinder_size
        within = offset % cylinder_size
        head = within // spt
        sector = within % spt
        return cylinder, head, sector

    def cylinder_of_lbn(self, lbn: int) -> int:
        """Just the cylinder of ``lbn`` (what schedulers and seeks need).

        Identical integer math to :meth:`lbn_to_chs` without computing
        the head and sector the callers throw away.
        """
        zone = self.zone_of_lbn(lbn)
        offset = lbn - zone.first_lbn
        return (zone.first_cylinder
                + offset // (zone.sectors_per_track * self.spec.heads))

    def chs_to_lbn(self, cylinder: int, head: int, sector: int) -> int:
        """Inverse of :meth:`lbn_to_chs`."""
        zone = self._zone_of_cylinder(cylinder)
        spt = zone.sectors_per_track
        if not 0 <= head < self.spec.heads:
            raise ValueError(f"head out of range: {head}")
        if not 0 <= sector < spt:
            raise ValueError(f"sector out of range for zone: {sector}")
        cylinder_offset = cylinder - zone.first_cylinder
        return (zone.first_lbn
                + cylinder_offset * spt * self.spec.heads
                + head * spt
                + sector)

    def _zone_of_cylinder(self, cylinder: int) -> Zone:
        if not 0 <= cylinder < self.spec.cylinders:
            raise ValueError(f"cylinder out of range: {cylinder}")
        for zone in self.zones:
            if zone.first_cylinder <= cylinder <= zone.last_cylinder:
                return zone
        raise AssertionError("zone table does not cover all cylinders")

    def media_rate_at_lbn(self, lbn: int) -> float:
        """Sustained media transfer rate (bytes/s) at ``lbn``'s zone."""
        if not 0 <= lbn < self.total_sectors:
            raise ValueError(
                f"LBN {lbn} out of range [0, {self.total_sectors})")
        return self._zone_rates[bisect_right(self._zone_starts, lbn) - 1]

    def angle_of(self, lbn: int) -> float:
        """Angular position of ``lbn`` on its track, in [0, 1).

        ``(offset % cylinder_size) % spt == offset % spt`` since ``spt``
        divides ``cylinder_size``, so one zone lookup suffices.
        """
        zone = self.zone_of_lbn(lbn)
        spt = zone.sectors_per_track
        return ((lbn - zone.first_lbn) % spt) / spt

    def _check_lbn(self, lbn: int) -> None:
        if not 0 <= lbn < getattr(self, "total_sectors", float("inf")):
            raise ValueError(
                f"LBN {lbn} out of range [0, {self.total_sectors})")
