"""Mechanical model: seek curve and rotational positioning.

The seek curve follows the classic two-piece shape (square-root for short
seeks where the arm is accelerating, linear for long seeks at coast speed),
calibrated so that it exactly reproduces the three published figures for a
drive: track-to-track, average (at one-third of the cylinder span, the
expected distance of a random seek) and full-stroke maximum.

Rotational position is modelled deterministically: the platter angle at
simulated time ``t`` is ``(t mod T_rev) / T_rev``, and the wait for a target
sector is the forward angular distance to it. This gives the same average
latency (half a revolution) as a random model while keeping simulations
reproducible.
"""

from __future__ import annotations

import math
from typing import Tuple

from .geometry import DiskGeometry
from .specs import DriveSpec

__all__ = ["SeekCurve", "DiskMechanics"]


class SeekCurve:
    """Seek time as a function of cylinder distance, for read or write."""

    def __init__(self, cylinders: int, track_to_track: float,
                 average: float, maximum: float):
        if not track_to_track <= average <= maximum:
            raise ValueError(
                "seek figures must satisfy t2t <= avg <= max, got "
                f"{track_to_track}, {average}, {maximum}")
        self.cylinders = cylinders
        self.track_to_track = track_to_track
        self.average = average
        self.maximum = maximum
        # The mean distance of a uniformly random seek is one third of the
        # stroke; anchor the curve's knee there.
        self.knee = max(2, cylinders // 3)
        # Seek times are pure in the distance, and real access patterns
        # revisit a handful of distances (0 for streaming, a few strides
        # for interleaved scans) — memoized per cylinder distance.
        self._memo = {0: 0.0}

    def __call__(self, distance: int) -> float:
        """Seek time in seconds for a move of ``distance`` cylinders."""
        memo = self._memo
        time = memo.get(distance)
        if time is None:
            time = self._compute(distance)
            memo[distance] = time
        return time

    def _compute(self, distance: int) -> float:
        if distance < 0:
            raise ValueError(f"negative seek distance: {distance}")
        if distance >= self.cylinders:
            raise ValueError(
                f"seek distance {distance} exceeds stroke {self.cylinders}")
        if distance <= self.knee:
            span = self.average - self.track_to_track
            frac = math.sqrt((distance - 1) / max(1, self.knee - 1))
            return self.track_to_track + span * frac
        span = self.maximum - self.average
        frac = (distance - self.knee) / max(1, self.cylinders - 1 - self.knee)
        return self.average + span * min(1.0, frac)


class DiskMechanics:
    """Combines geometry, seek curves and rotation for service-time math."""

    def __init__(self, spec: DriveSpec, geometry: DiskGeometry):
        self.spec = spec
        self.geometry = geometry
        self.read_seek = SeekCurve(
            spec.cylinders, spec.seek_track_to_track,
            spec.seek_avg_read, spec.seek_max_read)
        write_t2t = spec.seek_track_to_track * (
            spec.seek_avg_write / spec.seek_avg_read)
        self.write_seek = SeekCurve(
            spec.cylinders, write_t2t,
            spec.seek_avg_write, spec.seek_max_write)

    def seek_time(self, from_cylinder: int, to_cylinder: int,
                  write: bool) -> float:
        """Arm move time between two cylinders."""
        distance = abs(to_cylinder - from_cylinder)
        curve = self.write_seek if write else self.read_seek
        return curve(distance)

    def rotational_delay(self, now: float, lbn: int) -> float:
        """Forward rotational wait until ``lbn``'s sector passes the head."""
        rev = self.spec.revolution_time
        head_angle = (now / rev) % 1.0
        target_angle = self.geometry.angle_of(lbn)
        return ((target_angle - head_angle) % 1.0) * rev

    def transfer_time(self, lbn: int, nbytes: int) -> float:
        """Media transfer time for ``nbytes`` starting at ``lbn``.

        Track- and cylinder-switch costs are folded into the formatted
        media rate, which is how the paper quotes drive bandwidth.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        if nbytes == 0:
            return 0.0
        return nbytes / self.geometry.media_rate_at_lbn(lbn)

    def positioning_parts(self, now: float, from_cylinder: int,
                          lbn: int, write: bool) -> Tuple[float, float, int]:
        """Seek and rotational wait to reach ``lbn``, split out.

        Returns ``(seek_seconds, rotation_seconds, new_cylinder)`` so a
        caller that accounts seek and rotation separately (the drive's
        busy buckets) does not recompute the seek.
        """
        cylinder = self.geometry.cylinder_of_lbn(lbn)
        seek = self.seek_time(from_cylinder, cylinder, write)
        rotation = self.rotational_delay(now + seek, lbn)
        return seek, rotation, cylinder

    def positioning_time(self, now: float, from_cylinder: int,
                         lbn: int, write: bool) -> Tuple[float, int]:
        """Seek + rotational wait to reach ``lbn``.

        Returns ``(delay_seconds, new_cylinder)``.
        """
        seek, rotation, cylinder = self.positioning_parts(
            now, from_cylinder, lbn, write)
        return seek + rotation, cylinder
