"""Segmented drive cache with sequential read-ahead detection.

Drives of the Cheetah 9LP generation carry a buffer divided into a small
number of *segments*, each tracking one sequential stream. The performance
effects that matter at the granularity this simulator works at are:

* a request that **continues** a stream tracked by a segment needs no seek
  and no rotational wait — the drive's read-ahead has the heads already
  positioned (and typically the data already buffered);
* a request **fully contained** in data a segment has already read is a
  buffer hit and needs no media access at all;
* a drive can sustain only as many concurrent sequential streams as it has
  segments; a 9th interleaved stream on an 8-segment drive degrades to
  random positioning on every request.

The third point is what makes, e.g., a wide external-merge read pattern
behave differently from a single scan — and is why the cache is modelled
explicitly instead of folding "sequential = fast" into the drive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

__all__ = ["CacheOutcome", "Segment", "SegmentedCache"]


@dataclass(frozen=True)
class CacheOutcome:
    """Result of a cache lookup for one request.

    ``buffer_hit`` — data served entirely from the buffer (no media work).
    ``streaming`` — request continues a tracked stream (no positioning,
    media transfer only).  When both are False the request pays full
    positioning.

    Only three outcomes exist, so :meth:`SegmentedCache.lookup` returns
    shared frozen instances instead of allocating one per request.
    """

    buffer_hit: bool
    streaming: bool


_BUFFER_HIT = CacheOutcome(buffer_hit=True, streaming=False)
_STREAMING = CacheOutcome(buffer_hit=False, streaming=True)
_MISS = CacheOutcome(buffer_hit=False, streaming=False)


@dataclass(slots=True)
class Segment:
    """One tracked stream: a window of buffered LBNs plus its append point."""

    start_lbn: int       # oldest buffered block still resident
    next_lbn: int        # where the stream continues
    is_write: bool
    last_touch: int      # LRU stamp


class SegmentedCache:
    """Fixed number of LRU-managed segments over a shared buffer.

    Parameters
    ----------
    segments:
        Number of concurrently tracked streams.
    segment_sectors:
        Buffer window per segment, in sectors (buffer size / segments).
    """

    def __init__(self, segments: int, segment_sectors: int):
        if segments < 1:
            raise ValueError(f"need at least one segment, got {segments}")
        if segment_sectors < 1:
            raise ValueError(
                f"segment_sectors must be positive, got {segment_sectors}")
        self.capacity = segments
        self.segment_sectors = segment_sectors
        self.segments: List[Segment] = []
        self._clock = 0
        self.hits = 0
        self.streaming_hits = 0
        self.misses = 0

    def _touch(self, segment: Segment) -> None:
        self._clock += 1
        segment.last_touch = self._clock

    def lookup(self, op: str, start: int, end: int) -> CacheOutcome:
        """Classify a request and update the stream table.

        ``start``/``end`` are sector LBNs, end exclusive. ``op`` is
        ``"read"`` or ``"write"``.
        """
        if end <= start:
            raise ValueError(f"empty request [{start}, {end})")
        is_write = op == "write"

        for segment in self.segments:
            if segment.is_write != is_write:
                continue
            if not is_write and (segment.start_lbn <= start
                                 and end <= segment.next_lbn):
                self.hits += 1
                self._touch(segment)
                return _BUFFER_HIT
            if segment.next_lbn == start:
                self.streaming_hits += 1
                self._extend(segment, end)
                return _STREAMING

        self.misses += 1
        self._install(start, end, is_write)
        return _MISS

    def _extend(self, segment: Segment, end: int) -> None:
        segment.next_lbn = end
        segment.start_lbn = max(segment.start_lbn,
                                end - self.segment_sectors)
        self._touch(segment)

    def _install(self, start: int, end: int, is_write: bool) -> None:
        segment = Segment(
            start_lbn=max(start, end - self.segment_sectors),
            next_lbn=end,
            is_write=is_write,
            last_touch=0,
        )
        if len(self.segments) >= self.capacity:
            victim = min(self.segments, key=lambda s: s.last_touch)
            self.segments.remove(victim)
        self.segments.append(segment)
        self._touch(segment)

    def invalidate(self) -> None:
        """Drop all tracked streams (e.g. after a format or mode change)."""
        self.segments.clear()

    @property
    def total_lookups(self) -> int:
        return self.hits + self.streaming_hits + self.misses
