"""Open-loop session arrivals: seeded Poisson streams with Zipf mixes.

The paper evaluates one closed-loop query at a time; a service facing
many users sees an *open-loop* stream instead — sessions arrive on
their own schedule whether or not the machine has capacity, which is
exactly what makes overload possible. This module generates that
stream:

* interarrival times are exponential (a Poisson process) with a seeded
  :class:`random.Random`, so every run of the same seed produces the
  identical arrival sequence;
* each session is attributed to a *tenant* and carries one of the
  eight DSS *tasks*, both drawn from Zipf distributions built on
  :func:`repro.workloads.skew.zipf_weights` — a few hot tenants and a
  few hot query shapes dominate, as in real decision-support traffic.

The stream is a generator: sessions materialize one at a time as the
engine consumes them, never as a list, which keeps memory flat at any
session count.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass
from itertools import accumulate
from typing import Iterator, List, Sequence, Tuple

from ..workloads.skew import zipf_weights

__all__ = ["SessionSpec", "TrafficMix", "poisson_sessions"]


@dataclass(frozen=True)
class SessionSpec:
    """One open-loop session: who arrives when, asking for what."""

    index: int
    arrival: float        # absolute arrival time, seconds
    tenant: int
    task: str


def _cumulative(weights: Sequence[float]) -> List[float]:
    total = sum(weights)
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    return list(accumulate(w / total for w in weights))


class TrafficMix:
    """Zipf tenant/task mix: who sends traffic, and what they ask for.

    Tenant ``0`` is the hottest (rank 1 of the Zipf distribution);
    ``tenant_theta=0`` makes tenants uniform. The same applies to the
    task list under ``task_theta``, with tasks weighted in the order
    given.
    """

    def __init__(self, tenants: int, tasks: Sequence[str],
                 tenant_theta: float = 1.0, task_theta: float = 0.5):
        if tenants < 1:
            raise ValueError(f"need at least one tenant, got {tenants}")
        if not tasks:
            raise ValueError("need at least one task")
        self.tenants = tenants
        self.tasks = tuple(tasks)
        self.tenant_theta = tenant_theta
        self.task_theta = task_theta
        self.tenant_weights = zipf_weights(tenants, tenant_theta)
        self.task_weights = zipf_weights(len(self.tasks), task_theta)
        self._tenant_cdf = _cumulative(self.tenant_weights)
        self._task_cdf = _cumulative(self.task_weights)

    def sample(self, rng: random.Random) -> Tuple[int, str]:
        """Draw (tenant, task) via inverse-CDF — two rng.random() calls."""
        tenant = bisect_right(self._tenant_cdf, rng.random())
        task = self.tasks[bisect_right(self._task_cdf, rng.random())]
        return min(tenant, self.tenants - 1), task


def poisson_sessions(rate: float, sessions: int, mix: TrafficMix,
                     seed: int = 0) -> Iterator[SessionSpec]:
    """Lazily yield ``sessions`` Poisson arrivals at ``rate`` per second.

    The generator owns its seeded RNG, so the arrival process is a pure
    function of ``(rate, sessions, mix, seed)`` — the determinism the
    byte-identical traffic artifacts rest on.
    """
    if rate <= 0:
        raise ValueError(f"arrival rate must be positive, got {rate}")
    if sessions < 0:
        raise ValueError(f"negative session count: {sessions}")
    rng = random.Random(seed)
    now = 0.0
    for index in range(sessions):
        now += rng.expovariate(rate)
        tenant, task = mix.sample(rng)
        yield SessionSpec(index=index, arrival=now, tenant=tenant, task=task)
