"""Open-loop multi-tenant traffic: arrivals, admission control, shedding.

The paper measures one closed-loop query at a time; this package asks
the production question instead — what happens when an open-loop
session stream exceeds what the hardware can serve — and answers it
with bounded admission queues, configurable shedding policies, a
saturation detector with a degraded shed mode, and exact
(p50/p95/p99) sojourn-time reporting per offered load. See
``docs/TRAFFIC.md``.
"""

from .admission import (
    POLICIES,
    AdmissionQueue,
    QueuedSession,
    SaturationDetector,
    TokenBucket,
)
from .arrivals import SessionSpec, TrafficMix, poisson_sessions
from .driver import (
    DEFAULT_LOADS,
    DEFAULT_TRAFFIC_SIZES,
    run_traffic_cell,
    run_traffic_figure,
    traffic_cell,
)
from .engine import (
    DEFAULT_TRAFFIC_SCALE,
    AccountingError,
    TenantStats,
    TrafficConfig,
    TrafficResult,
    run_traffic,
    service_slots,
)
from .report import TrafficFigure, traffic_rows

__all__ = [
    "POLICIES", "AdmissionQueue", "QueuedSession", "SaturationDetector",
    "TokenBucket",
    "SessionSpec", "TrafficMix", "poisson_sessions",
    "DEFAULT_LOADS", "DEFAULT_TRAFFIC_SIZES", "traffic_cell",
    "run_traffic_cell", "run_traffic_figure",
    "DEFAULT_TRAFFIC_SCALE", "AccountingError", "TenantStats",
    "TrafficConfig", "TrafficResult", "run_traffic", "service_slots",
    "TrafficFigure", "traffic_rows",
]
