"""Saturation-curve reporting: latency vs offered load, per machine.

The report is assembled from ``RunResult.extras`` alone (the flat
float namespace the journal round-trips exactly), so a curve rebuilt
from a resumed journal is byte-identical to one rendered inline. No
wall-clock, host name, or RSS figure ever enters an artifact — those
belong to smoke checks, not reports.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["TrafficFigure", "traffic_rows"]

_COLUMNS = ("arch", "disks", "load", "policy", "offered/s", "capacity/s",
            "slots", "arrivals", "completed", "shed", "deadline_missed",
            "p50", "p95", "p99", "peak_queue", "saturated")


class TrafficFigure:
    """Latency-vs-offered-load curves for one or more architectures.

    ``points`` maps ``(arch, num_disks, load, policy)`` to the extras
    dict of the corresponding traffic cell.
    """

    def __init__(self, points: Dict[tuple, Dict[str, float]]):
        self.points = dict(sorted(points.items()))

    # ------------------------------------------------------------ rows
    def rows(self) -> List[Sequence]:
        rows: List[Sequence] = [list(_COLUMNS)]
        for (arch, disks, load, policy), extras in self.points.items():
            rows.append([
                arch, disks, f"{load:g}", policy,
                f"{extras['traffic.offered_rate']:.3f}",
                f"{extras['traffic.capacity_rate']:.3f}",
                int(extras["traffic.slots"]),
                int(extras["traffic.arrivals"]),
                int(extras["traffic.completed"]),
                int(extras["traffic.shed"]),
                int(extras["traffic.deadline_missed"]),
                f"{extras['traffic.sojourn.p50']:.4f}",
                f"{extras['traffic.sojourn.p95']:.4f}",
                f"{extras['traffic.sojourn.p99']:.4f}",
                int(extras["traffic.peak_queue_depth"]),
                f"{extras['traffic.saturated_fraction']:.3f}",
            ])
        return rows

    # ---------------------------------------------------------- render
    def render(self) -> str:
        rows = self.rows()
        header, body = rows[0], rows[1:]
        cells = [[str(value) for value in row] for row in [header] + body]
        widths = [max(len(row[i]) for row in cells)
                  for i in range(len(header))]
        lines = ["traffic: sojourn-time percentiles vs offered load "
                 "(exact p50/p95/p99, seconds)"]
        for index, row in enumerate(cells):
            lines.append("  " + "  ".join(
                value.rjust(width) for value, width in zip(row, widths)))
            if index == 0:
                lines.append("  " + "  ".join("-" * w for w in widths))
        shed_total = sum(int(e["traffic.shed"]) for e in self.points.values())
        missed = sum(int(e["traffic.deadline_missed"])
                     for e in self.points.values())
        done = sum(int(e["traffic.completed"]) for e in self.points.values())
        lines.append(f"  every session accounted once: {done} completed, "
                     f"{shed_total} shed, {missed} deadline-missed")
        return "\n".join(lines)


def traffic_rows(figure: TrafficFigure) -> List[Dict]:
    """CSV rows for :class:`TrafficFigure` (service exporter contract).

    One dict per grid point — the grid key columns first, then every
    ``traffic.*`` extra in sorted order, so the CSV carries the full
    flat metric namespace (tenant breakdowns included), not just the
    rendered table's columns.
    """
    rows: List[Dict] = []
    for (arch, disks, load, policy), extras in figure.points.items():
        row: Dict = {"figure": "traffic", "arch": arch, "disks": disks,
                     "load": load, "policy": policy}
        for key in sorted(extras):
            row[key] = extras[key]
        rows.append(row)
    return rows
