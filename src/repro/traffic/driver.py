"""Harness integration: traffic cells as first-class sweep cells.

A traffic cell is an ordinary :class:`~repro.experiments.workers.
CellSpec` whose ``traffic`` field carries a
:class:`~repro.traffic.engine.TrafficConfig` encoding. ``run_cell``
dispatches on that field, so traffic cells flow through every existing
execution path unchanged — inline drivers, the process pool (timeouts,
retries, memory budgets), journaled ``SweepRunner`` sweeps with resume,
and the distributed sweep service.

:func:`run_traffic_figure` is the figure-style driver: a grid of
(architecture x farm size x offered load) cells rendered as the
latency-vs-offered-load saturation curve. It is registered as the
``traffic`` entry of :data:`repro.service.requests.FIGURES`, which is
what makes ``repro sweep traffic``, ``repro submit traffic`` and
``repro resume`` work on traffic grids with zero new harness code.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..arch.base import RunResult
from ..experiments.harness import execute_cells
from ..experiments.runner import ARCHITECTURES
from ..experiments.workers import CellSpec
from .engine import DEFAULT_TRAFFIC_SCALE, TrafficConfig, run_traffic
from .report import TrafficFigure

__all__ = ["DEFAULT_LOADS", "DEFAULT_TRAFFIC_SIZES", "traffic_cell",
           "run_traffic_cell", "run_traffic_figure"]

#: Offered-load points for the default saturation curve: comfortably
#: under capacity, near the knee, and well past it.
DEFAULT_LOADS: Tuple[float, ...] = (0.5, 0.9, 1.5)

#: Farm sizes for the default traffic grid.
DEFAULT_TRAFFIC_SIZES: Tuple[int, ...] = (16, 64)

#: Sessions per cell for figure-grid runs: enough for stable tails,
#: small enough that a full grid stays interactive.
DEFAULT_SESSIONS = 1500


def traffic_cell(tconfig: TrafficConfig,
                 queue: Optional[str] = None) -> CellSpec:
    """Wrap a traffic configuration as a sweep cell.

    The variant encodes (load, policy) so keys stay unique across a
    saturation-curve grid sharing one (task, arch, size) triple.
    """
    return CellSpec(
        task="traffic", arch=tconfig.arch, num_disks=tconfig.num_disks,
        variant=f"load{tconfig.load:g}+{tconfig.policy}",
        scale=tconfig.scale, traffic=tconfig.to_dict(), queue=queue)


def run_traffic_cell(spec: CellSpec) -> RunResult:
    """Execute one traffic cell; called from ``run_cell`` dispatch."""
    if spec.traffic is None:
        raise ValueError(f"cell {spec.key!r} has no traffic configuration")
    tconfig = TrafficConfig.from_dict(spec.traffic)
    result = run_traffic(tconfig)
    return RunResult(task="traffic", arch=tconfig.arch,
                     num_disks=tconfig.num_disks, elapsed=result.makespan,
                     phases=[], extras=result.to_extras())


def run_traffic_figure(sizes: Sequence[int] = DEFAULT_TRAFFIC_SIZES,
                       tasks: Optional[Sequence[str]] = None,
                       scale: float = DEFAULT_TRAFFIC_SCALE,
                       runner=None, *,
                       archs: Sequence[str] = ARCHITECTURES,
                       loads: Sequence[float] = DEFAULT_LOADS,
                       sessions: int = DEFAULT_SESSIONS,
                       seed: int = 0,
                       policy: str = "reject-newest",
                       queue_capacity: int = 64,
                       tenants: int = 4,
                       tenant_theta: float = 1.0,
                       task_theta: float = 0.5,
                       deadline_factor: float = 8.0,
                       queue: Optional[str] = None) -> TrafficFigure:
    """The saturation-curve grid: archs x sizes x offered loads."""
    grid: Dict[tuple, CellSpec] = {}
    for arch in archs:
        for size in sizes:
            for load in loads:
                tconfig = TrafficConfig(
                    arch=arch, num_disks=size, sessions=sessions,
                    seed=seed, load=load, policy=policy,
                    queue_capacity=queue_capacity, tenants=tenants,
                    tenant_theta=tenant_theta, task_theta=task_theta,
                    tasks=tuple(tasks) if tasks else (), scale=scale,
                    deadline_factor=deadline_factor)
                grid[(arch, size, load, policy)] = traffic_cell(
                    tconfig, queue=queue)
    results = execute_cells(list(grid.values()), runner)
    points = {point: results[spec.key].extras
              for point, spec in grid.items()}
    return TrafficFigure(points)
