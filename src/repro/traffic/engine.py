"""The open-loop traffic engine: sessions, slots, shed modes, accounting.

Each architecture serves an open-loop session stream through a small
queueing model layered on the repo's existing machinery:

* **service demand** per task comes from the closed-form bottleneck
  model (:func:`repro.analysis.bottleneck.analyze`) — the same
  per-phase resource maxima the figures validate against the
  simulator, so a traffic cell costs microseconds per session instead
  of a full machine simulation;
* **byte profile** per task comes from the *streamed* session trace
  (:func:`repro.tracegen.session_totals`): each task's demand profile
  is folded once from its lazy per-worker record stream, O(1) memory
  regardless of dataset scale or session count;
* **concurrency slots** bound how many sessions a machine serves at
  once — on Active Disks by disklet scratch memory (DiskOS layout),
  on the cluster and SMP by a fraction of node/CPU count;
* **admission** is delegated to :mod:`repro.traffic.admission`:
  bounded queue, shedding policy, saturation detector with a degraded
  shed mode.

The whole engine is a deterministic discrete-event simulation on
:class:`repro.sim.Simulator` — the only randomness is the seeded
arrival stream — so a (config, seed) pair fully determines every
counter, every histogram, and therefore every byte of the report.

Every session ends in exactly one of three states:

``completed``        served, and met its deadline (if any)
``shed``             refused at the door by the admission policy
``deadline-missed``  evicted from the queue past its deadline, popped
                     too late to start, or finished after its deadline

The engine raises :class:`AccountingError` if the three buckets do not
sum to the arrival count — broken conservation is a bug, never a
statistic.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Tuple

from ..analysis.bottleneck import analyze
from ..arch.config import ArchConfig
from ..diskos.memory import DiskMemory
from ..experiments.runner import ARCHITECTURES, config_for
from ..sim import Simulator
from ..telemetry.metrics import MetricRegistry
from ..tracegen import session_totals
from ..workloads import build_program, registered_tasks
from .admission import POLICIES, AdmissionQueue, QueuedSession
from .arrivals import TrafficMix, poisson_sessions

__all__ = ["TrafficConfig", "TrafficResult", "TenantStats",
           "AccountingError", "run_traffic", "service_slots",
           "DEFAULT_TRAFFIC_SCALE"]

#: Traffic cells default to a small dataset scale: service demands stay
#: sub-second, so thousands of sessions resolve in seconds of sim time.
DEFAULT_TRAFFIC_SCALE = 1.0 / 128.0

#: Upper bound on concurrency slots for any architecture.
MAX_SLOTS = 16


class AccountingError(RuntimeError):
    """A session was lost or double-counted — conservation broke."""


@dataclass(frozen=True)
class TrafficConfig:
    """One traffic cell: arrival stream x admission policy x machine."""

    arch: str = "active"
    num_disks: int = 16
    sessions: int = 1000
    seed: int = 0
    load: float = 1.0                 # offered load as a multiple of capacity
    policy: str = "reject-newest"
    queue_capacity: int = 64
    tenants: int = 4
    tenant_theta: float = 1.0
    task_theta: float = 0.5
    tasks: Tuple[str, ...] = ()       # () = all registered tasks
    scale: float = DEFAULT_TRAFFIC_SCALE
    deadline_factor: float = 8.0      # deadline = arrival + factor * demand
    slots: int = 0                    # 0 = derive from the architecture

    def __post_init__(self):
        if self.arch not in ARCHITECTURES:
            raise ValueError(f"unknown architecture {self.arch!r}; "
                             f"pick one of {ARCHITECTURES}")
        if self.sessions < 0:
            raise ValueError(f"negative session count: {self.sessions}")
        if self.load <= 0:
            raise ValueError(f"offered load must be positive: {self.load}")
        if self.policy not in POLICIES:
            raise ValueError(f"unknown policy {self.policy!r}; "
                             f"pick one of {POLICIES}")
        if self.queue_capacity < 1:
            raise ValueError(
                f"queue capacity must be >= 1: {self.queue_capacity}")
        if self.tenants < 1:
            raise ValueError(f"need at least one tenant: {self.tenants}")
        if not 0 < self.scale <= 1:
            raise ValueError(f"scale must be in (0, 1]: {self.scale}")
        if self.deadline_factor < 0:
            raise ValueError(
                f"negative deadline factor: {self.deadline_factor}")
        if self.slots < 0:
            raise ValueError(f"negative slot count: {self.slots}")
        object.__setattr__(self, "tasks", tuple(self.tasks))
        unknown = set(self.tasks) - set(registered_tasks())
        if unknown:
            raise ValueError(f"unknown tasks: {', '.join(sorted(unknown))}")

    @property
    def resolved_tasks(self) -> Tuple[str, ...]:
        return self.tasks if self.tasks else registered_tasks()

    # ------------------------------------------------------- round-trip
    def to_dict(self) -> Dict:
        """JSON encoding; omits default fields so hashes stay stable."""
        out: Dict = {}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            default = spec_field.default
            if spec_field.name == "tasks":
                if value:
                    out["tasks"] = list(value)
                continue
            if value != default:
                out[spec_field.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "TrafficConfig":
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown traffic fields: {', '.join(sorted(unknown))}")
        kwargs = dict(data)
        if kwargs.get("tasks") is not None:
            kwargs["tasks"] = tuple(kwargs["tasks"])
        return cls(**kwargs)


@dataclass
class TenantStats:
    """Per-tenant session accounting."""

    tenant: int
    arrivals: int = 0
    completed: int = 0
    shed: int = 0
    deadline_missed: int = 0

    @property
    def shed_rate(self) -> float:
        return self.shed / self.arrivals if self.arrivals else 0.0


@dataclass
class TrafficResult:
    """Everything one traffic cell measured, deterministically."""

    config: TrafficConfig
    slots: int
    demands: Dict[str, float]         # task -> service seconds
    profiles: Dict[str, Dict]         # task -> streamed byte totals
    capacity_rate: float              # sessions/s the machine can absorb
    offered_rate: float               # sessions/s actually offered
    makespan: float
    arrivals: int
    admitted: int
    completed: int
    shed: int
    deadline_missed: int
    sojourn: Dict[str, float]         # p50/p95/p99/mean/max, seconds
    wait: Dict[str, float]            # queueing delay percentiles
    peak_queue_depth: int
    mean_queue_depth: float
    saturation_flips: int
    saturated_fraction: float
    tenants: List[TenantStats] = field(default_factory=list)

    @property
    def accounted(self) -> bool:
        return (self.completed + self.shed + self.deadline_missed
                == self.arrivals)

    def to_extras(self) -> Dict[str, float]:
        """Flatten to the ``RunResult.extras`` float namespace."""
        out: Dict[str, float] = {
            "traffic.load": self.config.load,
            "traffic.seed": float(self.config.seed),
            "traffic.sessions": float(self.config.sessions),
            "traffic.slots": float(self.slots),
            "traffic.queue_capacity": float(self.config.queue_capacity),
            "traffic.capacity_rate": self.capacity_rate,
            "traffic.offered_rate": self.offered_rate,
            "traffic.arrivals": float(self.arrivals),
            "traffic.admitted": float(self.admitted),
            "traffic.completed": float(self.completed),
            "traffic.shed": float(self.shed),
            "traffic.deadline_missed": float(self.deadline_missed),
            "traffic.peak_queue_depth": float(self.peak_queue_depth),
            "traffic.mean_queue_depth": self.mean_queue_depth,
            "traffic.saturation_flips": float(self.saturation_flips),
            "traffic.saturated_fraction": self.saturated_fraction,
        }
        for key, value in self.sojourn.items():
            out[f"traffic.sojourn.{key}"] = value
        for key, value in self.wait.items():
            out[f"traffic.wait.{key}"] = value
        for stats in self.tenants:
            prefix = f"traffic.tenant.{stats.tenant}"
            out[f"{prefix}.arrivals"] = float(stats.arrivals)
            out[f"{prefix}.completed"] = float(stats.completed)
            out[f"{prefix}.shed"] = float(stats.shed)
            out[f"{prefix}.deadline_missed"] = float(stats.deadline_missed)
        return out


def service_slots(config: ArchConfig, programs: Dict) -> int:
    """Concurrency limit: how many sessions ``config`` serves at once.

    Active Disks are bounded by disklet scratch memory — each
    concurrent query needs its largest phase's scratch resident on
    every disk (DiskOS layout, Section 2.1). The cluster and SMP are
    bounded by a quarter of their node/CPU count: the paper sizes both
    to saturate on a single query, so multiprogramming beyond a small
    factor only adds context pressure. All architectures clamp to
    [1, 16] slots.
    """
    if config.arch == "active":
        scratch = DiskMemory(config.disk_memory_bytes,
                             config.direct_disk_to_disk).scratch_bytes()
        per_query = max((phase.scratch_bytes
                         for program in programs.values()
                         for phase in program.phases), default=0)
        if per_query <= 0:
            return 8
        return max(1, min(MAX_SLOTS, scratch // per_query))
    if config.arch == "cluster":
        return max(1, min(MAX_SLOTS, config.num_nodes // 4))
    return max(1, min(MAX_SLOTS, config.num_cpus // 4))


def run_traffic(tconfig: TrafficConfig,
                registry: Optional[MetricRegistry] = None) -> TrafficResult:
    """Run one traffic cell to completion and account every session."""
    machine = config_for(tconfig.arch, tconfig.num_disks)
    tasks = tconfig.resolved_tasks
    mix = TrafficMix(tconfig.tenants, tasks,
                     tenant_theta=tconfig.tenant_theta,
                     task_theta=tconfig.task_theta)

    # Per-task sizing, computed once: closed-form service demand plus
    # the byte profile folded from the lazily streamed session trace.
    programs = {task: build_program(task, machine, tconfig.scale)
                for task in tasks}
    demands = {task: analyze(machine, task, tconfig.scale).seconds
               for task in tasks}
    profiles = {task: session_totals(programs[task], tconfig.num_disks)
                for task in tasks}

    slots = tconfig.slots or service_slots(machine, programs)
    mean_demand = sum(weight * demands[task]
                      for task, weight in zip(tasks, mix.task_weights))
    capacity_rate = slots / mean_demand
    offered_rate = tconfig.load * capacity_rate

    sim = Simulator()
    registry = registry if registry is not None \
        else MetricRegistry(clock=lambda: sim.now)
    counters = {name: registry.counter(f"traffic.{name}")
                for name in ("arrivals", "admitted", "completed", "shed",
                             "deadline_missed")}
    depth_series = registry.series("traffic.queue.depth")
    busy_series = registry.series("traffic.slots.busy")
    sojourn_hist = registry.histogram("traffic.sojourn")
    wait_hist = registry.histogram("traffic.wait")

    queue = AdmissionQueue(tconfig.queue_capacity, tconfig.policy,
                           tenants=tconfig.tenants,
                           fair_rate=capacity_rate)
    tenants = [TenantStats(tenant) for tenant in range(tconfig.tenants)]

    state = {"free": slots, "resolved": 0, "admitted": 0,
             "arrived": 0, "arrivals_done": tconfig.sessions == 0}
    wake = [sim.event()]

    def kick() -> None:
        if not wake[0].triggered:
            wake[0].succeed()

    def resolve(entry: QueuedSession, verdict: str) -> None:
        state["resolved"] += 1
        counters[verdict].add()
        stats = tenants[entry.spec.tenant]
        if verdict == "completed":
            stats.completed += 1
        elif verdict == "shed":
            stats.shed += 1
        else:
            stats.deadline_missed += 1
        kick()

    def serve(entry: QueuedSession):
        busy_series.add(1)
        yield sim.timeout(entry.demand)
        busy_series.add(-1)
        state["free"] += 1
        sojourn_hist.observe(sim.now - entry.spec.arrival)
        late = entry.deadline is not None and sim.now > entry.deadline
        resolve(entry, "deadline_missed" if late else "completed")

    def arrivals_proc():
        stream = poisson_sessions(offered_rate, tconfig.sessions, mix,
                                  tconfig.seed)
        for spec in stream:
            delay = spec.arrival - sim.now
            if delay > 0:
                yield sim.timeout(delay)
            state["arrived"] += 1
            counters["arrivals"].add()
            tenants[spec.tenant].arrivals += 1
            demand = demands[spec.task]
            deadline = (spec.arrival + tconfig.deadline_factor * demand
                        if tconfig.deadline_factor else None)
            entry = QueuedSession(spec, demand, deadline)
            rejected = queue.offer(entry, sim.now)
            depth_series.set(queue.depth)
            admitted = True
            for victim in rejected:
                if victim is entry:
                    admitted = False
                    resolve(entry, "shed")
                else:
                    # Only the deadline policy evicts queued entries,
                    # and only ones already past their deadline.
                    resolve(victim, "deadline_missed")
            if admitted:
                state["admitted"] += 1
                counters["admitted"].add()
                kick()
        state["arrivals_done"] = True
        kick()

    def dispatcher():
        while state["resolved"] < tconfig.sessions \
                or not state["arrivals_done"]:
            while state["free"] > 0 and queue.depth > 0:
                entry = queue.pop(sim.now)
                depth_series.set(queue.depth)
                if entry.deadline is not None \
                        and sim.now + entry.demand > entry.deadline:
                    resolve(entry, "deadline_missed")
                    continue
                wait_hist.observe(sim.now - entry.spec.arrival)
                state["free"] -= 1
                sim.process(serve(entry), name=f"serve-{entry.spec.index}")
            if state["resolved"] >= tconfig.sessions \
                    and state["arrivals_done"]:
                break
            yield wake[0]
            wake[0] = sim.event()

    sim.process(arrivals_proc(), name="arrivals")
    sim.process(dispatcher(), name="dispatcher")
    sim.run()
    queue.finish(sim.now)

    if state["resolved"] != state["arrived"] \
            or state["arrived"] != tconfig.sessions:
        raise AccountingError(
            f"session conservation broke: {tconfig.sessions} generated, "
            f"{state['arrived']} arrived, {state['resolved']} resolved")

    makespan = sim.now
    detector = queue.detector
    saturated_fraction = (detector.saturated_seconds / makespan
                          if makespan > 0 else 0.0)

    def percentiles(hist) -> Dict[str, float]:
        return {"p50": hist.quantile(0.5), "p95": hist.quantile(0.95),
                "p99": hist.quantile(0.99), "mean": hist.mean,
                "max": hist.max if hist.max is not None else 0.0}

    result = TrafficResult(
        config=tconfig,
        slots=slots,
        demands=demands,
        profiles=profiles,
        capacity_rate=capacity_rate,
        offered_rate=offered_rate,
        makespan=makespan,
        arrivals=int(counters["arrivals"].value),
        admitted=int(counters["admitted"].value),
        completed=int(counters["completed"].value),
        shed=int(counters["shed"].value),
        deadline_missed=int(counters["deadline_missed"].value),
        sojourn=percentiles(sojourn_hist),
        wait=percentiles(wait_hist),
        peak_queue_depth=queue.peak_depth,
        mean_queue_depth=depth_series.average(),
        saturation_flips=detector.flips_in,
        saturated_fraction=saturated_fraction,
        tenants=tenants,
    )
    if not result.accounted:
        raise AccountingError(
            f"verdicts do not sum to arrivals: {result.completed} "
            f"completed + {result.shed} shed + {result.deadline_missed} "
            f"deadline-missed != {result.arrivals}")
    return result
