"""Admission control: bounded queues, shedding policies, saturation.

An open-loop stream cannot be flow-controlled at the source, so the
only way to stay stable past saturation is to refuse work at the door.
This module holds the policy layer the traffic engine consults:

``reject-newest``
    Classic bounded FIFO: an arrival finding the queue at its limit is
    shed on the spot. Queue depth (and therefore queueing delay for
    admitted sessions) is hard-bounded.

``deadline-drop``
    Same bounded FIFO, but sessions carry deadlines. Arrivals first
    evict queued sessions that can no longer finish in time (their
    remaining slack is below their service demand) — freeing space for
    work that can still succeed — and are shed only if the queue is
    full of still-viable sessions.

``fair-share``
    Per-tenant token buckets sized to an equal share of admission
    capacity. While the queue is under its contention watermark every
    arrival is admitted token-free (work-conserving: hot tenants may
    use idle capacity). Once contended, admission costs a token — so a
    tenant sending under its fair share always has tokens and is only
    ever shed when the queue is hard-full, bounding the collateral
    damage a heavy co-tenant can inflict.

:class:`SaturationDetector` watches queue occupancy and flips the
engine into a degraded *shed mode* — a much shorter effective queue —
when the queue has been pinned near its limit for a sustained window,
instead of letting sojourn times grow without bound. It flips back
once occupancy stays low again. Both transitions are counted and the
saturated fraction of the run is reported.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from .arrivals import SessionSpec

__all__ = ["POLICIES", "QueuedSession", "AdmissionQueue",
           "SaturationDetector", "TokenBucket"]

#: Shedding policies the admission queue understands.
POLICIES = ("reject-newest", "deadline-drop", "fair-share")


class QueuedSession:
    """A session waiting for a service slot, plus its sizing."""

    __slots__ = ("spec", "demand", "deadline")

    def __init__(self, spec: SessionSpec, demand: float,
                 deadline: Optional[float]):
        self.spec = spec
        self.demand = demand
        self.deadline = deadline


class TokenBucket:
    """Deterministic token bucket: refill is a pure function of time."""

    def __init__(self, rate: float, burst: float):
        if rate <= 0 or burst <= 0:
            raise ValueError("token bucket needs positive rate and burst")
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self._last = 0.0

    def _refill(self, now: float) -> None:
        if now > self._last:
            self.tokens = min(self.burst,
                              self.tokens + (now - self._last) * self.rate)
            self._last = now

    def try_take(self, now: float, amount: float = 1.0) -> bool:
        self._refill(now)
        if self.tokens >= amount:
            self.tokens -= amount
            return True
        return False


class SaturationDetector:
    """Flips shed mode on sustained high queue occupancy.

    Hysteresis in both level and time: occupancy must sit at or above
    ``high_frac`` of capacity for ``trip_after`` continuous seconds to
    enter shed mode, and at or below ``low_frac`` for ``clear_after``
    continuous seconds to leave it. Driven event-wise from queue
    transitions — no polling process, so it adds no events of its own.
    """

    def __init__(self, capacity: int, high_frac: float = 0.9,
                 low_frac: float = 0.25, trip_after: float = 1.0,
                 clear_after: float = 2.0):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.high_level = max(1, int(capacity * high_frac))
        self.low_level = max(0, int(capacity * low_frac))
        self.trip_after = trip_after
        self.clear_after = clear_after
        self.saturated = False
        self.flips_in = 0
        self.flips_out = 0
        self.saturated_seconds = 0.0
        self._above_since: Optional[float] = None
        self._below_since: Optional[float] = None
        self._entered_at: Optional[float] = None

    def observe(self, now: float, depth: int) -> bool:
        """Feed one queue-depth transition; returns current mode."""
        if not self.saturated:
            if depth >= self.high_level:
                if self._above_since is None:
                    self._above_since = now
                elif now - self._above_since >= self.trip_after:
                    self.saturated = True
                    self.flips_in += 1
                    self._entered_at = now
                    self._below_since = None
            else:
                self._above_since = None
        else:
            if depth <= self.low_level:
                if self._below_since is None:
                    self._below_since = now
                elif now - self._below_since >= self.clear_after:
                    self.saturated = False
                    self.flips_out += 1
                    if self._entered_at is not None:
                        self.saturated_seconds += now - self._entered_at
                    self._entered_at = None
                    self._above_since = None
            else:
                self._below_since = None
        return self.saturated

    def finish(self, now: float) -> None:
        """Close an open saturated interval at end of run."""
        if self.saturated and self._entered_at is not None:
            self.saturated_seconds += now - self._entered_at
            self._entered_at = now


class AdmissionQueue:
    """Bounded admission queue with a pluggable shedding policy.

    Decisions are pure functions of (queue contents, policy state,
    time) — no randomness — so the whole admission layer is
    deterministic given a deterministic arrival stream.
    """

    def __init__(self, capacity: int, policy: str = "reject-newest", *,
                 tenants: int = 1, fair_rate: float = 1.0,
                 fair_burst_seconds: float = 2.0,
                 degraded_fraction: float = 0.25,
                 detector: Optional[SaturationDetector] = None):
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; "
                             f"pick one of {POLICIES}")
        self.capacity = capacity
        self.policy = policy
        self.degraded_capacity = max(1, int(capacity * degraded_fraction))
        self.detector = detector or SaturationDetector(capacity)
        self._queue: Deque[QueuedSession] = deque()
        self.peak_depth = 0
        # fair-share state: one bucket per tenant, equal shares.
        self._buckets: Dict[int, TokenBucket] = {}
        if policy == "fair-share":
            per_tenant = max(fair_rate / max(1, tenants), 1e-9)
            burst = max(1.0, per_tenant * fair_burst_seconds)
            self._buckets = {tenant: TokenBucket(per_tenant, burst)
                             for tenant in range(tenants)}
        # The contention watermark above which fair-share charges tokens.
        self._contended_level = max(1, capacity // 2)

    # ---------------------------------------------------------- queries
    @property
    def depth(self) -> int:
        return len(self._queue)

    @property
    def effective_capacity(self) -> int:
        """Current admission limit: tightens while saturated."""
        return (self.degraded_capacity if self.detector.saturated
                else self.capacity)

    # ----------------------------------------------------------- offers
    def _note_depth(self, now: float) -> None:
        if self.depth > self.peak_depth:
            self.peak_depth = self.depth
        self.detector.observe(now, self.depth)

    def offer(self, item: QueuedSession, now: float
              ) -> List[QueuedSession]:
        """Try to admit ``item``; returns the sessions rejected by this
        arrival (possibly including ``item`` itself).

        Rejected sessions carry no verdict — the engine classifies a
        rejected item as *shed* (refused at the door) unless it was a
        queued session evicted past its deadline, which the deadline
        policy signals by only ever evicting expired entries.
        """
        rejected: List[QueuedSession] = []
        limit = self.effective_capacity
        if self.policy == "deadline-drop":
            rejected.extend(self._evict_expired(now))
        if self.policy == "fair-share" and self.depth >= self._contended_level:
            bucket = self._buckets.get(item.spec.tenant)
            if bucket is not None and not bucket.try_take(now):
                rejected.append(item)
                self._note_depth(now)
                return rejected
        if self.depth >= limit:
            rejected.append(item)
        else:
            self._queue.append(item)
        self._note_depth(now)
        return rejected

    def _evict_expired(self, now: float) -> List[QueuedSession]:
        """Drop queued sessions that can no longer meet their deadline."""
        expired = [entry for entry in self._queue
                   if entry.deadline is not None
                   and now + entry.demand > entry.deadline]
        if expired:
            doomed = set(map(id, expired))
            self._queue = deque(entry for entry in self._queue
                                if id(entry) not in doomed)
        return expired

    def pop(self, now: float) -> Optional[QueuedSession]:
        """Dequeue the next session to serve (FIFO)."""
        if not self._queue:
            return None
        item = self._queue.popleft()
        self._note_depth(now)
        return item

    def finish(self, now: float) -> None:
        self.detector.finish(now)
