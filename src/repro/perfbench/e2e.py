"""End-to-end driver benchmarks plus the figure bit-identity guard.

The timing cells exercise the whole stack — kernel, device models,
architecture machines, workload programs — exactly the way the figure
drivers do, so a kernel optimization that pessimizes a device model (or
vice versa) shows up here even if the microbenchmarks improve.

The **identity guard** is what makes this a *safe* perf suite: it
regenerates Figure 1 with the live simulator and byte-compares the CSV
against the checked-in ``results/fig1_arch_comparison.csv``. The
simulator is deterministic, so any byte of drift means an optimization
changed simulated behaviour — the guard fails rather than letting a
"faster but different" kernel land.
"""

from __future__ import annotations

import pathlib
import time
from typing import List, Optional, Sequence

from ..sim import Simulator
from ..sim.queues import queue_override
from .report import BenchResult, measure, peak_rss_kb

__all__ = ["run_e2e_suite", "fig1_identity_check", "IdentityDrift"]

#: Checked-in Figure 1 baseline the guard compares against.
FIG1_BASELINE = (pathlib.Path(__file__).resolve().parents[3]
                 / "results" / "fig1_arch_comparison.csv")


class IdentityDrift(AssertionError):
    """The regenerated figure differs from the checked-in baseline."""


def _run_cell(arch: str, task: str, disks: int, scale: float) -> int:
    """One driver cell built by hand so the kernel event count is visible."""
    from ..arch import build_machine
    from ..experiments import config_for
    from ..workloads import build_program

    sim = Simulator()
    machine = build_machine(sim, config_for(arch, disks))
    program = build_program(task, config_for(arch, disks), scale)
    result = machine.run(program)
    assert result.elapsed > 0
    return sim.event_count


def _baseline_lines() -> List[bytes]:
    return FIG1_BASELINE.read_bytes().split(b"\r\n")


def _baseline_scale(lines: List[bytes]) -> float:
    # Column layout: figure,task,arch,disks,scale,elapsed_s,normalized
    return float(lines[1].split(b",")[4])


def fig1_identity_check(quick: bool = False,
                        sizes: Optional[Sequence[int]] = None,
                        queue: Optional[str] = None) -> dict:
    """Regenerate Figure 1 and byte-compare it to the baseline CSV.

    ``quick`` restricts the sweep to the 16-disk column and compares it
    against the corresponding subset of the baseline, which keeps the CI
    smoke job fast while still guarding every task x architecture cell.

    ``queue`` pins the kernel's event-queue backend for the regenerated
    sweep — the CI matrix and the bench A/B machinery use it to prove
    the figure is byte-identical under *every* backend.

    Returns ``{"identical": True, "cells": N, "wall_s": ...}`` or raises
    :class:`IdentityDrift` with the first differing line.
    """
    from ..experiments import fig1_rows, rows_to_csv, run_fig1

    if queue is not None:
        with queue_override(queue):
            return fig1_identity_check(quick=quick, sizes=sizes)

    baseline = _baseline_lines()
    scale = _baseline_scale(baseline)
    if sizes is None:
        sizes = (16,) if quick else (16, 32, 64, 128)
    began = time.perf_counter()
    fresh = rows_to_csv(fig1_rows(run_fig1(sizes=tuple(sizes), scale=scale)))
    wall = time.perf_counter() - began
    fresh_lines = fresh.encode().split(b"\r\n")
    wanted = {str(size).encode() for size in sizes}
    expected = [baseline[0]] + [
        line for line in baseline[1:]
        if line and line.split(b",")[3] in wanted] + [b""]
    if fresh_lines != expected:
        for got, want in zip(fresh_lines, expected):
            if got != want:
                raise IdentityDrift(
                    "fig1 output drifted from results/"
                    "fig1_arch_comparison.csv:\n"
                    f"  baseline: {want.decode(errors='replace')}\n"
                    f"  fresh:    {got.decode(errors='replace')}")
        raise IdentityDrift(
            f"fig1 output drifted: {len(fresh_lines)} lines regenerated "
            f"vs {len(expected)} in the baseline subset")
    return {"identical": True, "cells": len(expected) - 2, "wall_s": wall}


def run_e2e_suite(quick: bool = False, repeats: int = 3,
                  check_identity: bool = True,
                  queue: Optional[str] = None) -> List[BenchResult]:
    """Timed driver cells plus (optionally) the Figure 1 identity guard.

    ``queue`` pins the kernel's event-queue backend for every cell;
    ``None`` keeps the process-wide default.
    """
    if queue is not None:
        with queue_override(queue):
            return run_e2e_suite(quick=quick, repeats=repeats,
                                 check_identity=check_identity)
    scale = 1 / 128 if quick else 1 / 64
    results = [
        measure("fig1_cell_sort_active16",
                lambda: _run_cell("active", "sort", 16, scale),
                repeats=1 if quick else repeats, scale=scale),
        measure("fig1_cell_select_cluster16",
                lambda: _run_cell("cluster", "select", 16, scale),
                repeats=1 if quick else repeats, scale=scale),
        measure("fig3_sort_breakdown",
                lambda: _sort_breakdown(scale),
                repeats=1 if quick else repeats, scale=scale),
    ]
    if check_identity:
        guard = fig1_identity_check(quick=quick)
        results.append(BenchResult(
            name="fig1_identity_guard", wall_s=guard["wall_s"],
            events=0, repeats=1, peak_rss_kb=peak_rss_kb(),
            extras={"identical": 1.0, "cells": float(guard["cells"])}))
    return results


def _sort_breakdown(scale: float) -> int:
    from ..experiments import run_fig3

    result = run_fig3(sizes=(16,), scale=scale)
    assert result.results
    return 0
