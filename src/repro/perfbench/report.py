"""Benchmark result schema, JSON emission and A/B comparison.

A suite document looks like::

    {
      "suite": "kernel",
      "quick": false,
      "python": "3.11.7",
      "platform": "Linux-...",
      "benchmarks": [
        {"name": "timeout_storm", "wall_s": 0.41, "events": 600012,
         "events_per_sec": 1463443.0, "peak_rss_kb": 48564, ...},
        ...
      ]
    }

``peak_rss_kb`` is ``ru_maxrss`` and therefore monotonic over the
process lifetime: it tells you the high-water mark *by the end of* that
benchmark, not the benchmark's own allocation — read it left to right.
"""

from __future__ import annotations

import json
import platform
import resource
import sys
import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional

__all__ = [
    "BenchResult",
    "measure",
    "suite_document",
    "write_suite",
    "compare_suites",
    "render_comparison",
    "worst_events_ratio",
]


@dataclass
class BenchResult:
    """One benchmark's measurement (best of ``repeats`` runs)."""

    name: str
    wall_s: float
    events: int = 0
    repeats: int = 1
    peak_rss_kb: int = 0
    extras: Dict[str, object] = field(default_factory=dict)

    @property
    def events_per_sec(self) -> float:
        if self.wall_s <= 0 or self.events <= 0:
            return 0.0
        return self.events / self.wall_s

    def to_json(self) -> dict:
        doc = asdict(self)
        doc["events_per_sec"] = round(self.events_per_sec, 1)
        doc["wall_s"] = round(self.wall_s, 6)
        extras = doc.pop("extras")
        for key in sorted(extras):
            doc[key] = extras[key]
        return doc


def peak_rss_kb() -> int:
    """Process high-water RSS in KiB (Linux ``ru_maxrss`` unit)."""
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def measure(name: str, fn: Callable[[], int], repeats: int = 3,
            **extras) -> BenchResult:
    """Run ``fn`` ``repeats`` times; keep the best wall clock.

    ``fn`` returns the number of kernel events it processed (0 when the
    notion does not apply). The best-of-N policy reports the least
    noise-inflated run, which is the standard for microbenchmarks.
    """
    best_wall = float("inf")
    events = 0
    for _ in range(max(1, repeats)):
        began = time.perf_counter()
        events = fn()
        wall = time.perf_counter() - began
        best_wall = min(best_wall, wall)
    return BenchResult(name=name, wall_s=best_wall, events=events,
                       repeats=max(1, repeats), peak_rss_kb=peak_rss_kb(),
                       extras=dict(extras))


def suite_document(suite: str, results: List[BenchResult],
                   quick: bool) -> dict:
    from ..sim.queues import resolve_backend
    return {
        "suite": suite,
        "quick": quick,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "queue_backend": resolve_backend(),
        "benchmarks": [result.to_json() for result in results],
    }


def write_suite(path: str, document: dict) -> None:
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=False)
        handle.write("\n")


def _index(document: dict) -> Dict[str, dict]:
    return {bench["name"]: bench for bench in document.get("benchmarks", ())}


def compare_suites(baseline: dict, current: dict) -> List[dict]:
    """Per-benchmark speedups of ``current`` over ``baseline``.

    Returns rows with ``wall_speedup`` (baseline wall / current wall,
    higher is better) and, where both sides report events,
    ``events_per_sec_ratio``.
    """
    rows = []
    base = _index(baseline)
    for name, bench in _index(current).items():
        old = base.get(name)
        if old is None:
            continue
        row = {"name": name,
               "baseline_wall_s": old["wall_s"],
               "current_wall_s": bench["wall_s"]}
        if bench["wall_s"] > 0:
            row["wall_speedup"] = old["wall_s"] / bench["wall_s"]
        if old.get("events_per_sec") and bench.get("events_per_sec"):
            row["events_per_sec_ratio"] = (
                bench["events_per_sec"] / old["events_per_sec"])
        if old.get("peak_rss_kb") and bench.get("peak_rss_kb"):
            row["peak_rss_delta_kb"] = (
                bench["peak_rss_kb"] - old["peak_rss_kb"])
        rows.append(row)
    return rows


def worst_events_ratio(rows: List[dict]) -> Optional[float]:
    """The smallest throughput ratio across compared benchmarks.

    Prefers ``events_per_sec_ratio`` (what ``--fail-below`` gates on);
    benchmarks without an events metric fall back to ``wall_speedup``.
    Returns ``None`` when nothing comparable overlapped.
    """
    ratios = [row.get("events_per_sec_ratio") or row.get("wall_speedup")
              for row in rows]
    ratios = [ratio for ratio in ratios if ratio]
    return min(ratios) if ratios else None


def render_comparison(rows: List[dict],
                      queue_backend: Optional[str] = None) -> str:
    if not rows:
        return "no overlapping benchmarks to compare"
    lines = []
    if queue_backend:
        lines.append(f"queue backend: {queue_backend}")
    lines.append(f"{'benchmark':<24} {'base wall':>10} {'now wall':>10} "
                 f"{'speedup':>8} {'ev/s ratio':>10} {'rss delta':>10}")
    for row in rows:
        delta = row.get("peak_rss_delta_kb")
        rss = f"{delta:>+9,}K" if delta is not None else " " * 10
        lines.append(
            f"{row['name']:<24} {row['baseline_wall_s']:>10.4f} "
            f"{row['current_wall_s']:>10.4f} "
            f"{row.get('wall_speedup', 0.0):>7.2f}x "
            f"{row.get('events_per_sec_ratio', 0.0):>9.2f}x {rss}")
    return "\n".join(lines)


def load_suite(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


def main_compare(baseline_path: str, current_path: str,
                 out: Optional[Callable[[str], None]] = None) -> List[dict]:
    rows = compare_suites(load_suite(baseline_path),
                          load_suite(current_path))
    (out or sys.stdout.write)(render_comparison(rows) + "\n")
    return rows
