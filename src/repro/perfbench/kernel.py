"""Kernel microbenchmarks: one hot mechanism per benchmark.

Each benchmark builds a fresh :class:`~repro.sim.Simulator`, drives a
synthetic workload through the public kernel API only (so the same
benchmark runs unmodified against any kernel revision for A/B
comparisons), and reports the kernel's own ``event_count`` as the
events metric.

The shapes mirror what the experiment drivers actually do:

* ``timeout_storm`` — many processes sleeping in a loop, the dominant
  pattern in every device model (media transfers, CPU service, wire
  occupancy).
* ``event_churn`` — create/succeed/wait cycles, the completion-event
  pattern of :meth:`DiskDrive.submit` and the resource grants.
* ``relay_churn`` — yielding events that already fired and were
  processed, exercising the kernel's relay path (stores, cached
  completions).
* ``process_spawn`` — short-lived processes, the ``isend`` /
  reader-per-block pattern of the messaging and block loops.
* ``server_storm`` — contended FIFO :class:`~repro.sim.Server` slots,
  the CPU/bus arbitration pattern.
"""

from __future__ import annotations

from typing import List

from ..sim import Server, Simulator
from .report import BenchResult, measure

__all__ = ["run_kernel_suite", "KERNEL_BENCHMARKS"]


def _timeout_storm(procs: int, rounds: int) -> int:
    sim = Simulator()
    # The storm measures the kernel's sleep mechanism as the device
    # models use it: the pooled pause() path where available, plain
    # timeouts on kernels that predate it (keeps A/B runs comparable).
    sleep = getattr(sim, "pause", sim.timeout)

    def sleeper(delay: float):
        for _ in range(rounds):
            yield sleep(delay)

    for p in range(procs):
        sim.process(sleeper(1e-4 * (p + 1)), name=f"sleep{p}")
    sim.run()
    return sim.event_count


def _event_churn(procs: int, rounds: int) -> int:
    sim = Simulator()

    def churner():
        for _ in range(rounds):
            event = sim.event()
            event.succeed(None)
            yield event

    for p in range(procs):
        sim.process(churner(), name=f"churn{p}")
    sim.run()
    return sim.event_count


def _relay_churn(procs: int, rounds: int) -> int:
    sim = Simulator()

    def relayer():
        for _ in range(rounds):
            done = sim.event()
            done.succeed("payload")
            # Let the event be processed with no waiter...
            yield sim.timeout(1e-6)
            # ...then yield it after the fact: the kernel must relay.
            value = yield done
            assert value == "payload"

    for p in range(procs):
        sim.process(relayer(), name=f"relay{p}")
    sim.run()
    return sim.event_count


def _process_spawn(procs: int, rounds: int) -> int:
    sim = Simulator()

    def child(delay: float):
        yield sim.timeout(delay)
        return 1

    def spawner(p: int):
        total = 0
        for _ in range(rounds):
            total += yield sim.process(child(1e-5 * (p + 1)))
        assert total == rounds

    for p in range(procs):
        sim.process(spawner(p), name=f"spawn{p}")
    sim.run()
    return sim.event_count


def _server_storm(procs: int, rounds: int) -> int:
    sim = Simulator()
    server = Server(sim, capacity=4, name="storm")

    def client(p: int):
        for _ in range(rounds):
            yield from server.serve(1e-5 * ((p % 7) + 1))

    for p in range(procs):
        sim.process(client(p), name=f"client{p}")
    sim.run()
    return sim.event_count


#: name -> (callable, full (procs, rounds), quick (procs, rounds))
KERNEL_BENCHMARKS = {
    "timeout_storm": (_timeout_storm, (64, 4000), (16, 500)),
    "event_churn": (_event_churn, (64, 2000), (16, 250)),
    "relay_churn": (_relay_churn, (64, 1000), (16, 125)),
    "process_spawn": (_process_spawn, (64, 1500), (16, 200)),
    "server_storm": (_server_storm, (64, 2000), (16, 250)),
}


def run_kernel_suite(quick: bool = False,
                     repeats: int = 3) -> List[BenchResult]:
    """Run every kernel microbenchmark; returns one result each."""
    results = []
    for name, (fn, full_shape, quick_shape) in KERNEL_BENCHMARKS.items():
        procs, rounds = quick_shape if quick else full_shape
        results.append(measure(
            name, lambda fn=fn, s=(procs, rounds): fn(*s),
            repeats=1 if quick else repeats,
            procs=procs, rounds=rounds))
    return results
