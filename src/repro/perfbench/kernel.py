"""Kernel microbenchmarks: one hot mechanism per benchmark.

Each benchmark builds a fresh :class:`~repro.sim.Simulator`, drives a
synthetic workload through the public kernel API only (so the same
benchmark runs unmodified against any kernel revision for A/B
comparisons), and reports the kernel's own ``event_count`` as the
events metric.

The shapes mirror what the experiment drivers actually do:

* ``timeout_storm`` — many processes sleeping in a loop, the dominant
  pattern in every device model (media transfers, CPU service, wire
  occupancy).
* ``event_churn`` — create/succeed/wait cycles, the completion-event
  pattern of :meth:`DiskDrive.submit` and the resource grants.
* ``relay_churn`` — yielding events that already fired and were
  processed, exercising the kernel's relay path (stores, cached
  completions).
* ``process_spawn`` — short-lived processes, the ``isend`` /
  reader-per-block pattern of the messaging and block loops.
* ``server_storm`` — contended FIFO :class:`~repro.sim.Server` slots,
  the CPU/bus arbitration pattern.
* ``same_tick_flood`` — every process re-arming at the *current* tick,
  the barrier/fan-out pattern of phase changes and broadcast
  completions; this is the calendar queue's same-tick FIFO fast path
  versus the heap's equal-key compare storm.
* ``horizon_mix`` — a wide bimodal sleep distribution over many
  processes, keeping hundreds of events pending; heap push/pop cost
  grows with that depth while the calendar's bucket index does not.
* ``tick_fanout`` — one controller broadcasting a wide batch of inert
  same-tick completions per phase, the pattern of a controller
  signalling thousands of per-block readers at once. The heap's pop
  pays a full-depth equal-key percolation per entry; the calendar
  returns the whole tick as one FIFO buffer swap.
* ``fanout_ballast`` — the same broadcast with a large population of
  long-horizon timers pending (outstanding disk-arm and wire timers),
  deepening the heap every percolation has to traverse while the
  calendar keeps the ballast parked in future buckets it never scans.

A/B matrix
----------
In full mode :func:`run_kernel_suite` measures every benchmark under
both the primary (resolved) backend and the ``heap`` reference,
*interleaved* — within each timing repeat the backends alternate, so
thermal/clock drift hits both sides equally. The primary backend keeps
the plain benchmark name (and gains a ``speedup_vs_heap`` extra);
reference runs are reported as ``name[heap]``.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from ..sim import Server, Simulator
from ..sim.queues import resolve_backend
from .report import BenchResult, measure, peak_rss_kb

__all__ = ["run_kernel_suite", "KERNEL_BENCHMARKS"]


def _timeout_storm(procs: int, rounds: int, queue=None) -> int:
    sim = Simulator(queue=queue)
    # The storm measures the kernel's sleep mechanism as the device
    # models use it: the pooled pause() path where available, plain
    # timeouts on kernels that predate it (keeps A/B runs comparable).
    sleep = getattr(sim, "pause", sim.timeout)

    def sleeper(delay: float):
        for _ in range(rounds):
            yield sleep(delay)

    for p in range(procs):
        sim.process(sleeper(1e-4 * (p + 1)), name=f"sleep{p}")
    sim.run()
    return sim.event_count


def _event_churn(procs: int, rounds: int, queue=None) -> int:
    sim = Simulator(queue=queue)

    def churner():
        for _ in range(rounds):
            event = sim.event()
            event.succeed(None)
            yield event

    for p in range(procs):
        sim.process(churner(), name=f"churn{p}")
    sim.run()
    return sim.event_count


def _relay_churn(procs: int, rounds: int, queue=None) -> int:
    sim = Simulator(queue=queue)

    def relayer():
        for _ in range(rounds):
            done = sim.event()
            done.succeed("payload")
            # Let the event be processed with no waiter...
            yield sim.timeout(1e-6)
            # ...then yield it after the fact: the kernel must relay.
            value = yield done
            assert value == "payload"

    for p in range(procs):
        sim.process(relayer(), name=f"relay{p}")
    sim.run()
    return sim.event_count


def _process_spawn(procs: int, rounds: int, queue=None) -> int:
    sim = Simulator(queue=queue)

    def child(delay: float):
        yield sim.timeout(delay)
        return 1

    def spawner(p: int):
        total = 0
        for _ in range(rounds):
            total += yield sim.process(child(1e-5 * (p + 1)))
        assert total == rounds

    for p in range(procs):
        sim.process(spawner(p), name=f"spawn{p}")
    sim.run()
    return sim.event_count


def _server_storm(procs: int, rounds: int, queue=None) -> int:
    sim = Simulator(queue=queue)
    server = Server(sim, capacity=4, name="storm")

    def client(p: int):
        for _ in range(rounds):
            yield from server.serve(1e-5 * ((p % 7) + 1))

    for p in range(procs):
        sim.process(client(p), name=f"client{p}")
    sim.run()
    return sim.event_count


def _same_tick_flood(procs: int, rounds: int, queue=None) -> int:
    sim = Simulator(queue=queue)
    # Every process re-arms at the current tick: the whole population
    # forms one same-timestamp batch per round. An advancing timeout
    # per round keeps the clock (and the run) finite.
    def flooder():
        for _ in range(rounds):
            yield sim.pause(0.0)
            yield sim.pause(0.0)
            yield sim.pause(1e-6)

    for p in range(procs):
        sim.process(flooder(), name=f"flood{p}")
    sim.run()
    return sim.event_count


def _horizon_mix(procs: int, rounds: int, queue=None) -> int:
    sim = Simulator(queue=queue)
    # Bimodal sleep horizon: half the population wakes ~1000x less
    # often, so the pending set stays wide for the whole run.
    def sleeper(delay: float):
        for _ in range(rounds):
            yield sim.pause(delay)

    for p in range(procs):
        if p % 2:
            delay = 1e-2 * ((p % 7) + 1)
        else:
            delay = 1e-5 * ((p % 13) + 1)
        sim.process(sleeper(delay), name=f"mix{p}")
    sim.run(until=rounds * 1e-3)
    return sim.event_count


def _tick_fanout(procs: int, rounds: int, queue=None) -> int:
    sim = Simulator(queue=queue)
    # One controller arms `procs` inert same-tick completions per
    # phase: no waiters, no generator resume — the dispatch cost is
    # almost entirely the event queue's.
    def controller():
        for _ in range(rounds):
            for _ in range(procs):
                sim.pause(0.0)
            yield sim.pause(1e-6)

    sim.process(controller(), name="ctl")
    sim.run()
    return sim.event_count


def _fanout_ballast(procs: int, rounds: int, queue=None) -> int:
    sim = Simulator(queue=queue)
    # Long-horizon ballast: outstanding timers far beyond the measured
    # window. They never fire (the run stops first) but every heap
    # percolation has to traverse the depth they add.
    for _ in range(procs * 4):
        sim.pause(1e3)

    def controller():
        for _ in range(rounds):
            for _ in range(procs):
                sim.pause(0.0)
            yield sim.pause(1e-6)

    sim.process(controller(), name="ctl")
    sim.run(until=rounds * 1e-6 + 1.0)
    return sim.event_count


#: name -> (callable, full (procs, rounds), quick (procs, rounds))
KERNEL_BENCHMARKS = {
    "timeout_storm": (_timeout_storm, (64, 4000), (16, 500)),
    "event_churn": (_event_churn, (64, 2000), (16, 250)),
    "relay_churn": (_relay_churn, (64, 1000), (16, 125)),
    "process_spawn": (_process_spawn, (64, 1500), (16, 200)),
    "server_storm": (_server_storm, (64, 2000), (16, 250)),
    "same_tick_flood": (_same_tick_flood, (256, 400), (32, 50)),
    "horizon_mix": (_horizon_mix, (768, 500), (64, 50)),
    "tick_fanout": (_tick_fanout, (32768, 12), (512, 10)),
    "fanout_ballast": (_fanout_ballast, (8192, 50), (256, 10)),
}


def _interleaved(name: str, fn, shape, backends: Sequence[str],
                 repeats: int) -> List[BenchResult]:
    """Measure one benchmark under every backend, interleaved.

    Within each repeat the backends alternate (A, B, A, B, ...), so
    machine noise is shared instead of biasing whichever side ran
    last. Best wall clock per backend is kept, like :func:`measure`.
    """
    procs, rounds = shape
    walls = {backend: float("inf") for backend in backends}
    events = dict.fromkeys(backends, 0)
    for _ in range(max(1, repeats)):
        for backend in backends:
            began = time.perf_counter()
            events[backend] = fn(procs, rounds, queue=backend)
            wall = time.perf_counter() - began
            walls[backend] = min(walls[backend], wall)
    primary = backends[0]
    results = []
    for backend in backends:
        extras = {"procs": procs, "rounds": rounds, "queue": backend}
        label = name if backend == primary else f"{name}[{backend}]"
        if backend == primary and "heap" in backends and primary != "heap":
            heap_rate = events["heap"] / walls["heap"]
            primary_rate = events[primary] / walls[primary]
            extras["speedup_vs_heap"] = round(primary_rate / heap_rate, 3)
        results.append(BenchResult(
            name=label, wall_s=walls[backend], events=events[backend],
            repeats=max(1, repeats), peak_rss_kb=peak_rss_kb(),
            extras=extras))
    return results


def run_kernel_suite(quick: bool = False, repeats: int = 3,
                     backends: Optional[Sequence[str]] = None
                     ) -> List[BenchResult]:
    """Run every kernel microbenchmark; returns one result each.

    Full mode measures an interleaved A/B matrix: the primary backend
    (the resolved default — honoring ``REPRO_SIM_QUEUE`` and
    :func:`~repro.sim.queues.queue_override`) plus the ``heap``
    reference, with ``speedup_vs_heap`` recorded on the primary rows.
    Quick mode (and an explicit single-entry ``backends``) measures
    just the primary, keeping the smoke suite one run per benchmark.
    """
    primary = resolve_backend()
    if backends is None:
        if quick or primary == "heap":
            backends = (primary,)
        else:
            backends = (primary, "heap")
    else:
        backends = tuple(resolve_backend(name) for name in backends)
    results = []
    for name, (fn, full_shape, quick_shape) in KERNEL_BENCHMARKS.items():
        shape = quick_shape if quick else full_shape
        reps = 1 if quick else repeats
        if len(backends) == 1:
            procs, rounds = shape
            backend = backends[0]
            results.append(measure(
                name, lambda fn=fn, s=shape, b=backend: fn(*s, queue=b),
                repeats=reps, procs=procs, rounds=rounds, queue=backend))
        else:
            results.extend(_interleaved(name, fn, shape, backends, reps))
    return results
