"""Performance benchmark suite for the simulation kernel and drivers.

Two suites track the simulator's perf trajectory from PR 4 onward:

* **kernel** (:mod:`~repro.perfbench.kernel`) — microbenchmarks that
  hammer one kernel mechanism each (timeout storm, event churn, relay
  path, process spawn, server contention) and report events/sec.
* **e2e** (:mod:`~repro.perfbench.e2e`) — whole experiment-driver cells
  (a Figure 1 cell, the Figure 3 sort breakdown) plus a **bit-identity
  guard** that regenerates Figure 1 and byte-compares it against the
  checked-in ``results/fig1_arch_comparison.csv``: an optimization that
  changes any simulated outcome fails the suite.

Results are written as ``BENCH_kernel.json`` / ``BENCH_e2e.json``
(see :mod:`~repro.perfbench.report` for the schema and the A/B
comparison helper used to validate speedups against a baseline commit).
"""

from .e2e import run_e2e_suite
from .kernel import run_kernel_suite
from .report import (
    BenchResult,
    compare_suites,
    render_comparison,
    suite_document,
    write_suite,
)

__all__ = [
    "BenchResult",
    "run_kernel_suite",
    "run_e2e_suite",
    "suite_document",
    "write_suite",
    "compare_suites",
    "render_comparison",
]
